//! Drive the serving engine through its admission queue and show the
//! `serve::obs` stack end to end: per-request stage spans, the typed
//! metrics registry rendered as a Prometheus exposition, SLO burn rates,
//! the engine's memory-footprint tree with effective scan bandwidth,
//! and the flight recorder's slowest-request exemplar dumped as a Chrome
//! trace (load it at `chrome://tracing` or <https://ui.perfetto.dev>).
//! Finally it binds the zero-dependency exposition server on an
//! ephemeral port and scrapes `/metrics`, `/readyz` and `/debug/events`
//! over a raw TCP socket — the same bytes a Prometheus scraper or an
//! operator's `curl` would see.
//!
//! ```sh
//! cargo run -p cumf-examples --bin serve_obs_demo
//! ```

use cumf_als::{AlsConfig, AlsTrainer};
use cumf_datasets::{MfDataset, RequestSampler, SizeClass};
use cumf_gpu_sim::GpuSpec;
use cumf_serve::{
    admission_queue, AdmissionConfig, Completion, HttpConfig, ModelSnapshot, ObsConfig, ObsServer,
    Request, ServeConfig, ServeEngine, SloConfig,
};
use cumf_telemetry::footprint::human_bytes;
use cumf_telemetry::NOOP;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// One raw HTTP/1.1 GET against the exposition server — what `curl` does.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to obs server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: demo\r\n\r\n").expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn main() {
    // ── Train a small model to serve ────────────────────────────────────
    let data = MfDataset::netflix(SizeClass::Tiny, 42);
    let config = AlsConfig {
        f: 16,
        iterations: 4,
        rmse_target: None,
        ..AlsConfig::for_profile(&data.profile)
    };
    let mut trainer = AlsTrainer::new(&data, config, GpuSpec::maxwell_titan_x(), 1);
    trainer.train();

    // Tight thresholds so a Tiny-sized run still produces exemplars and
    // visible burn: anything over 300 µs counts as "slow", the SLO target
    // is 2 ms.
    let obs = ObsConfig {
        slow_threshold: Duration::from_micros(300),
        exemplar_capacity: 4,
        slo: SloConfig {
            target: Duration::from_millis(2),
            ..SloConfig::default()
        },
        ..ObsConfig::default()
    };
    let engine = Arc::new(
        ServeEngine::builder()
            .config(
                ServeConfig::default()
                    .with_k(10)
                    .with_shards(4)
                    .with_obs(obs),
            )
            .model(
                "default",
                trainer.x.clone(),
                ModelSnapshot::new(0, trainer.theta.clone(), vec![]),
            )
            .build()
            .expect("one trained model builds an engine"),
    );

    // ── Replay sampled traffic through the admission queue ──────────────
    let (queue, worker, done) = admission_queue(AdmissionConfig {
        max_batch: 32,
        queue_depth: 128,
        batch_age: Duration::from_micros(300),
    });
    let queue = queue.with_obs(engine.obs_arc());

    let mut sampler = RequestSampler::from_dataset(&data, 7);
    let stream = sampler.sample(400, 5000.0);
    let t0 = engine.now();
    let (report, completions) = std::thread::scope(|scope| {
        let engine = &engine;
        let handle = scope.spawn(move || worker.run(engine, &NOOP));
        for (i, s) in stream.iter().enumerate() {
            let due = t0 + s.arrival;
            let now = engine.now();
            if due > now {
                std::thread::sleep(Duration::from_secs_f64(due - now));
            }
            // Every 25th request arrives as a cold-start fold-in.
            let req = if i % 25 == 24 {
                Request::cold(i as u64, data.r.row_iter(s.user as usize).collect())
            } else {
                Request::known(i as u64, s.user)
            };
            queue.submit(req, due).expect("admission worker died");
        }
        drop(queue);
        let completions: Vec<Completion> = done.iter().collect();
        (handle.join().expect("worker panicked"), completions)
    });

    // ── Per-request stage decomposition (first few completions) ─────────
    println!(
        "served {} requests in {} batches; every completion decomposes into stages:",
        completions.len(),
        report.batches
    );
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "request", "e2e µs", "queue", "cache", "foldin", "score", "merge", "respond"
    );
    for c in completions.iter().take(6) {
        let st = &c.span.stages;
        println!(
            "{:<10} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            c.span.request_id,
            c.span.e2e() * 1e6,
            st.queue * 1e6,
            st.cache * 1e6,
            st.foldin * 1e6,
            st.score * 1e6,
            st.merge * 1e6,
            st.respond * 1e6,
        );
    }
    println!();

    // ── Prometheus text exposition of the typed registry ────────────────
    let now = engine.now();
    let exposition = engine.obs().render_prometheus(now);
    println!("── Prometheus exposition (histogram buckets elided) ──");
    for line in exposition.lines() {
        if !line.contains("_bucket{") {
            println!("{line}");
        }
    }
    println!();

    // ── SLO report ──────────────────────────────────────────────────────
    if let Some(slo) = &report.slo {
        println!(
            "SLO: target {:.2} ms, {:.1}% compliant, {} breached / {} shed of {} — {}",
            slo.target_secs * 1e3,
            slo.compliance * 100.0,
            slo.breached,
            slo.shed,
            slo.total,
            if slo.met() { "met" } else { "violated" }
        );
    }

    // ── Memory footprint tree + effective scan bandwidth ────────────────
    engine.refresh_memory_gauges();
    let mem = engine.memory_report();
    println!();
    println!("── Resident memory (children sum to each branch) ──");
    print!("{}", mem.render());
    println!(
        "bandwidth: {} streamed over {:.2} ms of score time — {:.2} GB/s effective",
        human_bytes(report.scan_bytes),
        report.score_secs * 1e3,
        report.effective_gbps()
    );

    // ── Flight recorder: slowest-request exemplar as a Chrome trace ─────
    let flight = engine.obs().flight();
    let (seen, slow) = flight.totals();
    println!(
        "flight recorder saw {seen} spans ({slow} over the slow threshold), keeping {} exemplars",
        flight.exemplars().len()
    );
    if let Some(worst) = flight.slowest() {
        println!(
            "slowest request: id {} at {:.1} µs, dominated by `{}`",
            worst.request_id,
            worst.e2e() * 1e6,
            worst.stages.slowest().0
        );
    }
    let trace_path = "target/serve_obs_demo.trace.json";
    std::fs::write(trace_path, flight.exemplar_trace()).expect("write exemplar trace");
    println!("wrote exemplar Chrome trace to {trace_path}");

    // ── The same data over the wire: the zero-dependency HTTP plane ─────
    let server = ObsServer::bind("127.0.0.1:0", Arc::clone(&engine), HttpConfig::default())
        .expect("bind an ephemeral observability port");
    let addr = server.local_addr();
    println!();
    println!("── Scraping http://{addr}/ over raw TCP ──");

    let readyz = http_get(addr, "/readyz");
    println!(
        "/readyz → {}",
        readyz.lines().next().unwrap_or("<no status line>")
    );

    let metrics = http_get(addr, "/metrics");
    let body = metrics.split("\r\n\r\n").nth(1).unwrap_or("");
    let families = body.lines().filter(|l| l.starts_with("# TYPE")).count();
    let sample = body
        .lines()
        .find(|l| l.starts_with("serve_requests_total"))
        .unwrap_or("serve_requests_total <missing>");
    println!("/metrics → {families} metric families; e.g. `{sample}`");

    let events = http_get(addr, "/debug/events");
    let recorded = events.matches("\"kind\"").count();
    println!(
        "/debug/events → {recorded} lifecycle records (ModelRegistered, SnapshotPublished, …)"
    );

    server.shutdown();
    println!("server shut down cleanly");
}
