//! Quickstart: factorize a synthetic Netflix-shaped rating matrix with
//! cuMF_ALS defaults and print the convergence trajectory.
//!
//! ```sh
//! cargo run -p cumf-examples --bin quickstart
//! ```

use cumf_als::{AlsConfig, AlsTrainer};
use cumf_datasets::{MfDataset, SizeClass};
use cumf_gpu_sim::GpuSpec;

fn main() {
    // 1. Get a dataset. Synthetic Netflix replica here; use
    //    `cumf_datasets::loader::load_ratings_file` for your own
    //    `user item rating` text data.
    let data = MfDataset::netflix(SizeClass::Tiny, 42);
    println!(
        "dataset: {} replica — {} x {}, {} train ratings, {} test ratings",
        data.profile.name,
        data.m(),
        data.n(),
        data.train_nnz(),
        data.test.nnz()
    );

    // 2. Configure. `for_profile` gives the paper's settings (f=100, λ from
    //    Table II, CG solver with fs=6 + FP16, non-coalesced loads); we
    //    shrink f for a fast demo.
    let config = AlsConfig {
        f: 16,
        iterations: 10,
        ..AlsConfig::for_profile(&data.profile)
    };

    // 3. Train on a simulated Maxwell Titan X.
    let mut trainer = AlsTrainer::new(&data, config, GpuSpec::maxwell_titan_x(), 1);
    let report = trainer.train();

    // 4. Inspect.
    println!(
        "\n{:>5} {:>12} {:>10} {:>9}",
        "epoch", "sim time (s)", "test RMSE", "CG iters"
    );
    for e in &report.epochs {
        println!(
            "{:>5} {:>12.3} {:>10.4} {:>9.2}",
            e.epoch, e.sim_time, e.test_rmse, e.mean_cg_iters
        );
    }
    match report.time_to_target {
        Some(t) => println!(
            "\nreached RMSE target {} at simulated {t:.2}s",
            data.profile.rmse_target
        ),
        None => println!("\nfinal RMSE {:.4}", report.final_rmse()),
    }

    // 5. Use the model: predict a held-out rating.
    if let Some(entry) = data.test.entries().first() {
        let pred = cumf_als::metrics::predict(
            trainer.x.row(entry.row as usize),
            trainer.theta.row(entry.col as usize),
        );
        println!(
            "sample prediction: user {} item {} → {pred:.2} (actual {:.2})",
            entry.row, entry.col, entry.value
        );
    }
}
