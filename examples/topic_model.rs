//! Document–term factorization (the Hugewiki workload): factorizing a
//! term-frequency matrix yields latent *topics* — each latent dimension's
//! strongest terms form a topic, and documents embed into topic space.
//!
//! Also demonstrates the model-compression use the paper's introduction
//! cites: the factorization stores (m+n)·f values in place of Nz.
//!
//! ```sh
//! cargo run -p cumf-examples --bin topic_model
//! ```

use cumf_als::{AlsConfig, AlsTrainer};
use cumf_datasets::{MfDataset, SizeClass};
use cumf_gpu_sim::GpuSpec;

fn main() {
    // Hugewiki-shaped synthetic data: documents × terms, values ≈ tf-idf.
    let data = MfDataset::hugewiki(SizeClass::Tiny, 17);
    let f = 12usize;
    println!(
        "corpus: {} documents × {} terms, {} weighted term occurrences",
        data.m(),
        data.n(),
        data.train_nnz()
    );

    let config = AlsConfig {
        f,
        iterations: 8,
        rmse_target: None,
        ..AlsConfig::for_profile(&data.profile)
    };
    let mut trainer = AlsTrainer::new(&data, config, GpuSpec::pascal_p100(), 1);
    let report = trainer.train();
    println!(
        "factorized to rank {f} in {} epochs, reconstruction RMSE {:.3}\n",
        report.epochs.len(),
        report.final_rmse()
    );

    // Topics: the highest-loading terms of each latent dimension.
    for topic in 0..3 {
        let mut loadings: Vec<(usize, f32)> = (0..data.n())
            .map(|t| (t, trainer.theta.get(t, topic)))
            .collect();
        loadings.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
        let terms: Vec<String> = loadings
            .iter()
            .take(6)
            .map(|(t, w)| format!("term{t}({w:+.2})"))
            .collect();
        println!("topic {topic}: {}", terms.join(" "));
    }

    // Document similarity in topic space (cosine over x rows).
    let cos = |a: &[f32], b: &[f32]| {
        let num = cumf_numeric::dense::dot(a, b);
        let den = cumf_numeric::dense::norm2(a) * cumf_numeric::dense::norm2(b);
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    };
    let probe = (0..data.m()).max_by_key(|&d| data.r.row_nnz(d)).unwrap();
    let mut sims: Vec<(usize, f32)> = (0..data.m())
        .filter(|&d| d != probe && data.r.row_nnz(d) > 0)
        .map(|d| (d, cos(trainer.x.row(probe), trainer.x.row(d))))
        .collect();
    sims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ndocuments most similar to doc {probe}:");
    for (d, s) in sims.iter().take(4) {
        println!("  doc {d:>5}  cosine {s:.3}");
    }

    // Compression ratio.
    let dense_values = data.train_nnz();
    let factor_values = (data.m() + data.n()) * f;
    println!(
        "\ncompression: {} stored values → {} factor values ({:.1}× smaller)",
        dense_values,
        factor_values,
        dense_values as f64 / factor_values as f64
    );
}
