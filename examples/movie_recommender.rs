//! A movie recommender built on the cuMF_ALS public API — the workload the
//! paper's introduction motivates (recommender systems at Netflix scale).
//!
//! Demonstrates: leave-k-out evaluation, top-N recommendation from the
//! factor matrices, ranking quality (hit rate), and cold-user handling.
//!
//! ```sh
//! cargo run -p cumf-examples --bin movie_recommender
//! ```

use cumf_als::{AlsConfig, AlsTrainer};
use cumf_datasets::{MfDataset, SizeClass};
use cumf_gpu_sim::GpuSpec;
use cumf_numeric::dense::dot;
use cumf_sparse::split::leave_k_out_split;

fn main() {
    // Build a ratings dataset, then re-split it leave-2-out so every user
    // keeps history (the recommender evaluation protocol, unlike the random
    // 10% holdout the RMSE benchmarks use).
    let base = MfDataset::netflix(SizeClass::Tiny, 7);
    let mut all = base.train_coo.clone();
    for e in base.test.entries() {
        all.push(e.row, e.col, e.value);
    }
    let split = leave_k_out_split(&all, 2, 3, 99);
    let data = MfDataset {
        r: cumf_sparse::CsrMatrix::from_coo(&split.train),
        rt: cumf_sparse::CsrMatrix::from_coo(&split.train).transpose(),
        test: split.test.clone(),
        train_coo: split.train.clone(),
        ..base
    };

    let config = AlsConfig {
        f: 16,
        iterations: 8,
        rmse_target: None,
        ..AlsConfig::for_profile(&data.profile)
    };
    let mut trainer = AlsTrainer::new(&data, config, GpuSpec::maxwell_titan_x(), 1);
    let report = trainer.train();
    println!(
        "trained {} epochs, leave-2-out RMSE {:.3}",
        report.epochs.len(),
        report.final_rmse()
    );

    // Top-N recommendation: score every unseen item for a user.
    let user = (0..data.m()).max_by_key(|&u| data.r.row_nnz(u)).unwrap();
    let seen: std::collections::HashSet<u32> = data.r.row_cols(user).iter().copied().collect();
    let mut scored: Vec<(u32, f32)> = (0..data.n() as u32)
        .filter(|v| !seen.contains(v))
        .map(|v| (v, dot(trainer.x.row(user), trainer.theta.row(v as usize))))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "\ntop-5 recommendations for user {user} ({} ratings in history):",
        seen.len()
    );
    for (v, score) in scored.iter().take(5) {
        println!("  item {v:>4}  predicted rating {score:.2}");
    }

    // Hit rate @ 20: how often a held-out item lands in the user's top-20.
    let mut hits = 0usize;
    let mut total = 0usize;
    for e in data.test.entries() {
        let u = e.row as usize;
        let seen: std::collections::HashSet<u32> = data.r.row_cols(u).iter().copied().collect();
        let target_score = dot(trainer.x.row(u), trainer.theta.row(e.col as usize));
        let better = (0..data.n() as u32)
            .filter(|v| !seen.contains(v) && *v != e.col)
            .filter(|&v| dot(trainer.x.row(u), trainer.theta.row(v as usize)) > target_score)
            .count();
        total += 1;
        if better < 20 {
            hits += 1;
        }
    }
    println!(
        "\nhit-rate@20 over {total} held-out ratings: {:.1}%",
        100.0 * hits as f64 / total as f64
    );

    // Cold user: no history → zero factors → fall back to popularity.
    let cold_scores: Vec<f32> = (0..data.n())
        .map(|v| dot(&[0.0; 16], trainer.theta.row(v)))
        .collect();
    assert!(cold_scores.iter().all(|&s| s == 0.0));
    println!(
        "cold users score 0 everywhere → serve popularity fallback (as production systems do)."
    );
}
