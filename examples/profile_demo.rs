//! Profile a short cuMF_ALS training run with the telemetry pipeline:
//! record every simulated kernel launch, print the nvprof-style per-kernel
//! summary, and write a Chrome trace (load it at `chrome://tracing` or
//! <https://ui.perfetto.dev>) plus a JSONL metrics stream.
//!
//! ```sh
//! cargo run -p cumf-examples --bin profile_demo
//! ```

use cumf_als::{AlsConfig, AlsTrainer, Precision, SolverKind};
use cumf_datasets::{MfDataset, SizeClass};
use cumf_gpu_sim::GpuSpec;
use cumf_telemetry::{
    render_summary, summarize_events, write_chrome_trace, write_jsonl, MemoryRecorder,
};

fn main() {
    let data = MfDataset::netflix(SizeClass::Tiny, 42);
    let config = AlsConfig {
        f: 16,
        iterations: 3,
        solver: SolverKind::Cg {
            fs: 6,
            tolerance: 1e-4,
            precision: Precision::Fp16,
        },
        rmse_target: None,
        ..AlsConfig::for_profile(&data.profile)
    };

    // Attach an in-memory recorder; the trainer emits kernel launches,
    // phase spans, solver records and counters stamped with simulated time.
    let recorder = MemoryRecorder::new();
    let mut trainer =
        AlsTrainer::with_recorder(&data, config, GpuSpec::maxwell_titan_x(), 1, &recorder);
    let report = trainer.train();
    println!(
        "trained {} epochs, final RMSE {:.4}, simulated time {:.3}s",
        report.epochs.len(),
        report.final_rmse(),
        report.total_sim_time()
    );
    println!();

    // nvprof-style summary: time share, bound classification, arithmetic
    // intensity, cache hit ratios, achieved fraction of peak.
    let events = recorder.events();
    println!("{}", render_summary(&summarize_events(&events)));

    // Per-sweep solver records: CG step counts and FP16 round-trip error.
    for s in recorder.solver_records().iter().take(4) {
        println!(
            "solver {} epoch {} side {}: mean {:.2} CG iters (max {}), {} converged / {} capped, fp16 rms err {:.2e}",
            s.solver, s.epoch, s.side, s.mean_cg_iters, s.max_cg_iters, s.rows_converged, s.rows_iteration_capped,
            s.fp16_roundtrip_rms
        );
    }
    println!();

    let trace_path = "target/profile_demo.trace.json";
    let metrics_path = "target/profile_demo.metrics.jsonl";
    write_chrome_trace(trace_path, &events).expect("write trace");
    write_jsonl(metrics_path, &events).expect("write metrics");
    println!(
        "wrote {trace_path} ({} events) — open in chrome://tracing",
        events.len()
    );
    println!("wrote {metrics_path}");
}
