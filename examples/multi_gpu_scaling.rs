//! Multi-GPU scaling: train the Hugewiki-shaped dataset on 1–4 simulated
//! GPUs of each generation, showing the capacity constraint (Hugewiki's
//! factor matrix alone exceeds one 12 GB device) and the compute/comm
//! trade-off of model-parallel ALS.
//!
//! ```sh
//! cargo run -p cumf-examples --bin multi_gpu_scaling
//! ```

use cumf_als::{AlsConfig, AlsTrainer};
use cumf_datasets::{MfDataset, SizeClass};
use cumf_gpu_sim::GpuSpec;

fn main() {
    let data = MfDataset::hugewiki(SizeClass::Tiny, 3);
    println!(
        "Hugewiki profile: {} × {} with {} non-zeros — X alone is {:.1} GB at f=100",
        data.profile.m,
        data.profile.n,
        data.profile.nz,
        data.profile.factor_bytes(data.profile.m) as f64 / 1e9
    );

    for spec in [GpuSpec::maxwell_titan_x(), GpuSpec::pascal_p100()] {
        println!("\ndevice: {} ({} GB)", spec.name, spec.dram_capacity >> 30);
        println!(
            "{:>5} {:>10} {:>12} {:>12} {:>12} {:>10}",
            "GPUs", "fits?", "epoch (s)", "compute (s)", "comm (s)", "speedup"
        );
        let mut base_epoch = None;
        for gpus in [1u32, 2, 4] {
            let config = AlsConfig {
                iterations: 1,
                rmse_target: None,
                ..AlsConfig::for_profile(&data.profile)
            };
            let mut trainer = AlsTrainer::new(&data, config, spec.clone(), gpus);
            let fits = trainer.device_bytes_per_gpu() <= spec.dram_capacity;
            let (phases, _) = trainer.run_epoch();
            let total = phases.total();
            let base = *base_epoch.get_or_insert(total);
            println!(
                "{:>5} {:>10} {:>12.2} {:>12.2} {:>12.2} {:>9.2}x",
                gpus,
                if fits { "yes" } else { "NO" },
                total,
                phases.compute + phases.load + phases.write + phases.bias + phases.solve,
                phases.comm,
                base / total
            );
        }
    }

    println!("\nReading: 1 Maxwell GPU cannot even hold Hugewiki (the paper runs it on 4);");
    println!("NVLink (Pascal) keeps the all-gather cheap enough for near-linear scaling,");
    println!("PCIe (Maxwell) gives up part of the 4-GPU gain to communication.");
}
