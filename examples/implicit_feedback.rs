//! Implicit-feedback factorization (§V-F): play counts / clicks instead of
//! ratings, trained with the Hu–Koren–Volinsky one-class model on the
//! cuMF_ALS implicit trainer.
//!
//! ```sh
//! cargo run -p cumf-examples --bin implicit_feedback
//! ```

use cumf_als::{ImplicitAlsConfig, ImplicitAlsTrainer};
use cumf_datasets::{MfDataset, SizeClass};
use cumf_gpu_sim::GpuSpec;
use cumf_numeric::dense::dot;

fn main() {
    // Reinterpret a ratings dataset as interaction counts: any observed
    // (user, item) pair is an interaction whose value becomes the
    // confidence weight c = 1 + α·r.
    let data = MfDataset::netflix(SizeClass::Tiny, 11);
    println!(
        "implicit dataset: {} users × {} items, {} interactions (every unobserved cell is a weak zero)",
        data.m(),
        data.n(),
        data.train_nnz()
    );

    let config = ImplicitAlsConfig {
        f: 16,
        iterations: 6,
        alpha: 20.0,
        ..ImplicitAlsConfig::default()
    };
    let mut trainer = ImplicitAlsTrainer::new(&data, config, GpuSpec::maxwell_titan_x());
    let reports = trainer.train();

    println!(
        "\n{:>6} {:>16} {:>12}",
        "sweep", "objective", "sim time (s)"
    );
    for r in &reports {
        println!("{:>6} {:>16.1} {:>12.2}", r.epoch, r.objective, r.sim_time);
    }

    // Preference scores are relative (not ratings): rank items per user.
    let user = (0..data.m()).max_by_key(|&u| data.r.row_nnz(u)).unwrap();
    let seen: std::collections::HashSet<u32> = data.r.row_cols(user).iter().copied().collect();
    let mut ranked: Vec<(u32, f32)> = (0..data.n() as u32)
        .map(|v| (v, dot(trainer.x.row(user), trainer.theta.row(v as usize))))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop preferences for user {user} (★ = already interacted):");
    for (v, score) in ranked.iter().take(8) {
        let marker = if seen.contains(v) { "★" } else { " " };
        println!("  {marker} item {v:>4}  preference {score:.3}");
    }

    // Sanity property the paper relies on: interacted items should rank
    // above the median unseen item.
    let seen_mean: f32 = ranked
        .iter()
        .filter(|(v, _)| seen.contains(v))
        .map(|(_, s)| s)
        .sum::<f32>()
        / seen.len().max(1) as f32;
    let unseen_mean: f32 = ranked
        .iter()
        .filter(|(v, _)| !seen.contains(v))
        .map(|(_, s)| s)
        .sum::<f32>()
        / (ranked.len() - seen.len()).max(1) as f32;
    println!("\nmean preference — interacted: {seen_mean:.3}, unseen: {unseen_mean:.3}");
    assert!(
        seen_mean > unseen_mean,
        "one-class training must separate the classes"
    );
}
