//! End-to-end implicit (one-class) MF across dataset shapes and solvers.

use cumf_als::{ImplicitAlsConfig, ImplicitAlsTrainer, Precision, SolverKind};
use cumf_datasets::{MfDataset, SizeClass};
use cumf_gpu_sim::GpuSpec;

fn config(f: usize) -> ImplicitAlsConfig {
    ImplicitAlsConfig {
        f,
        iterations: 4,
        alpha: 10.0,
        ..ImplicitAlsConfig::default()
    }
}

#[test]
fn objective_decreases_on_all_shapes() {
    let makers: [fn(SizeClass, u64) -> MfDataset; 3] = [
        MfDataset::netflix,
        MfDataset::yahoo_music,
        MfDataset::hugewiki,
    ];
    for mk in makers {
        let data = mk(SizeClass::Tiny, 3);
        let mut t = ImplicitAlsTrainer::new(&data, config(8), GpuSpec::maxwell_titan_x());
        let reports = t.train();
        for w in reports.windows(2) {
            assert!(
                w[1].objective <= w[0].objective * 1.001,
                "{}: objective rose {} → {}",
                data.profile.name,
                w[0].objective,
                w[1].objective
            );
        }
    }
}

#[test]
fn implicit_separates_observed_from_unobserved() {
    let data = MfDataset::netflix(SizeClass::Tiny, 4);
    let mut t = ImplicitAlsTrainer::new(&data, config(8), GpuSpec::maxwell_titan_x());
    t.train();
    let mut obs = cumf_numeric::stats::Welford::new();
    let mut unobs = cumf_numeric::stats::Welford::new();
    let mut rng = cumf_numeric::stats::XorShift64::new(1);
    for u in (0..data.m()).step_by(7) {
        let seen: std::collections::HashSet<u32> = data.r.row_cols(u).iter().copied().collect();
        for (v, _) in data.r.row_iter(u) {
            obs.push(cumf_als::metrics::predict(t.x.row(u), t.theta.row(v as usize)) as f64);
        }
        for _ in 0..8 {
            let v = rng.next_below(data.n()) as u32;
            if !seen.contains(&v) {
                unobs.push(cumf_als::metrics::predict(t.x.row(u), t.theta.row(v as usize)) as f64);
            }
        }
    }
    assert!(
        obs.mean() > unobs.mean() + 0.1,
        "observed mean {} must exceed unobserved mean {}",
        obs.mean(),
        unobs.mean()
    );
}

#[test]
fn cg_solver_matches_direct_on_implicit_systems() {
    let data = MfDataset::netflix(SizeClass::Tiny, 5);
    let mut direct_cfg = config(8);
    direct_cfg.solver = SolverKind::BatchCholesky;
    let mut cg_cfg = config(8);
    cg_cfg.solver = SolverKind::Cg {
        fs: 8,
        tolerance: 1e-6,
        precision: Precision::Fp32,
    };

    let mut a = ImplicitAlsTrainer::new(&data, direct_cfg, GpuSpec::maxwell_titan_x());
    let mut b = ImplicitAlsTrainer::new(&data, cg_cfg, GpuSpec::maxwell_titan_x());
    let ra = a.train();
    let rb = b.train();
    let fa = ra.last().unwrap().objective;
    let fb = rb.last().unwrap().objective;
    assert!(
        (fa - fb).abs() / fa.abs().max(1.0) < 0.01,
        "direct {fa} vs CG {fb}"
    );
}

#[test]
fn sim_time_grows_with_device_weakness() {
    let data = MfDataset::netflix(SizeClass::Tiny, 6);
    let t_k = ImplicitAlsTrainer::new(&data, config(8), GpuSpec::kepler_k40()).epoch_sim_time();
    let t_p = ImplicitAlsTrainer::new(&data, config(8), GpuSpec::pascal_p100()).epoch_sim_time();
    assert!(t_k > t_p);
}
