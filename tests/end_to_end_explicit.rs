//! End-to-end explicit MF: generate → train → converge, across all three
//! dataset shapes, devices, solvers and load patterns.

use cumf_als::{AlsConfig, AlsTrainer, Precision, SolverKind};
use cumf_datasets::{MfDataset, SizeClass};
use cumf_gpu_sim::memory::LoadPattern;
use cumf_gpu_sim::GpuSpec;

fn fast(data: &MfDataset, f: usize) -> AlsConfig {
    AlsConfig {
        f,
        iterations: 6,
        rmse_target: None,
        ..AlsConfig::for_profile(&data.profile)
    }
}

type DatasetMaker = fn(SizeClass, u64) -> MfDataset;

#[test]
fn all_three_datasets_converge() {
    let makers: [(DatasetMaker, f64); 3] = [
        (MfDataset::netflix, 1.05),
        (MfDataset::yahoo_music, 24.0),
        (MfDataset::hugewiki, 0.75),
    ];
    for (mk, loose_bound) in makers {
        let data = mk(SizeClass::Tiny, 5);
        let mut trainer = AlsTrainer::new(&data, fast(&data, 8), GpuSpec::maxwell_titan_x(), 1);
        let report = trainer.train();
        assert!(
            report.final_rmse() < loose_bound,
            "{}: final RMSE {} above {}",
            data.profile.name,
            report.final_rmse(),
            loose_bound
        );
        // Simulated time is positive and phases decompose it.
        let e = report.epochs.last().unwrap();
        let sum: f64 = report.epochs.iter().map(|e| e.phases.total()).sum();
        assert!(
            (sum - e.sim_time).abs() < 1e-9,
            "phase sums must equal the clock"
        );
    }
}

#[test]
fn load_pattern_never_changes_results_only_time() {
    let data = MfDataset::netflix(SizeClass::Tiny, 6);
    let mut results = Vec::new();
    for pattern in [
        LoadPattern::NonCoalescedL1,
        LoadPattern::NonCoalescedNoL1,
        LoadPattern::Coalesced,
    ] {
        let mut cfg = fast(&data, 8);
        cfg.load_pattern = pattern;
        let mut t = AlsTrainer::new(&data, cfg, GpuSpec::maxwell_titan_x(), 1);
        let r = t.train();
        results.push((pattern, r.final_rmse(), r.total_sim_time()));
    }
    // Identical RMSE (bitwise-identical math), different times.
    assert_eq!(results[0].1, results[1].1);
    assert_eq!(results[0].1, results[2].1);
    assert!(
        results[0].2 < results[2].2,
        "nonCoal-L1 must be faster than coal"
    );
}

#[test]
fn solver_choice_changes_time_far_more_than_quality() {
    let data = MfDataset::netflix(SizeClass::Tiny, 7);
    let solvers = [
        SolverKind::BatchLu,
        SolverKind::BatchCholesky,
        SolverKind::Cg {
            fs: 6,
            tolerance: 1e-4,
            precision: Precision::Fp32,
        },
        SolverKind::Cg {
            fs: 6,
            tolerance: 1e-4,
            precision: Precision::Fp16,
        },
    ];
    let mut rmses = Vec::new();
    let mut times = Vec::new();
    for s in solvers {
        let mut cfg = fast(&data, 8);
        cfg.solver = s;
        let mut t = AlsTrainer::new(&data, cfg, GpuSpec::maxwell_titan_x(), 1);
        let r = t.train();
        rmses.push(r.final_rmse());
        times.push(r.total_sim_time());
    }
    let spread = rmses.iter().cloned().fold(f64::MIN, f64::max)
        - rmses.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        spread < 0.03,
        "solver choice must not hurt convergence: {rmses:?}"
    );
    // FP16 storage always halves the CG solver's traffic, at any f. (The
    // O(f³) vs O(f²) LU-vs-CG gap needs the paper's f=100 and is asserted
    // in the simulator_consistency suite.)
    assert!(
        times[2] > times[3],
        "CG-FP32 {} vs CG-FP16 {}",
        times[2],
        times[3]
    );
}

#[test]
fn devices_order_by_capability_with_identical_results() {
    let data = MfDataset::netflix(SizeClass::Tiny, 8);
    let mut times = Vec::new();
    let mut rmses = Vec::new();
    for spec in GpuSpec::paper_catalog() {
        let mut t = AlsTrainer::new(&data, fast(&data, 8), spec, 1);
        let r = t.train();
        times.push(r.total_sim_time());
        rmses.push(r.final_rmse());
    }
    assert_eq!(rmses[0], rmses[1]);
    assert_eq!(rmses[1], rmses[2]);
    assert!(times[0] > times[1], "Kepler slower than Maxwell");
    assert!(times[1] > times[2], "Maxwell slower than Pascal");
}

#[test]
fn trained_model_beats_mean_predictor() {
    let data = MfDataset::netflix(SizeClass::Tiny, 9);
    let mut t = AlsTrainer::new(&data, fast(&data, 8), GpuSpec::pascal_p100(), 1);
    let report = t.train();
    // Mean-only predictor RMSE = std of test values around the global mean.
    let mean = data.train_coo.mean_value() as f32;
    let mut w = cumf_numeric::stats::Welford::new();
    for e in data.test.entries() {
        w.push(((e.value - mean) as f64).powi(2));
    }
    let mean_rmse = w.root_mean();
    assert!(
        report.final_rmse() < mean_rmse * 0.95,
        "model {} must beat mean predictor {}",
        report.final_rmse(),
        mean_rmse
    );
}

#[test]
fn deterministic_given_seed() {
    let data = MfDataset::netflix(SizeClass::Tiny, 10);
    let run = || {
        let mut t = AlsTrainer::new(&data, fast(&data, 8), GpuSpec::maxwell_titan_x(), 1);
        t.train().final_rmse()
    };
    assert_eq!(run(), run(), "same seed, same data → identical training");
}
