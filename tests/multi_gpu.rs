//! Multi-GPU behaviour through the full trainer: results must be identical
//! to single-GPU (model parallelism is a pure partitioning of independent
//! row solves), with time split across devices plus communication.

use cumf_als::{AlsConfig, AlsTrainer};
use cumf_datasets::{MfDataset, SizeClass};
use cumf_gpu_sim::GpuSpec;

fn fast(data: &MfDataset) -> AlsConfig {
    AlsConfig {
        f: 8,
        iterations: 4,
        rmse_target: None,
        ..AlsConfig::for_profile(&data.profile)
    }
}

#[test]
fn gpu_count_does_not_change_results() {
    let data = MfDataset::hugewiki(SizeClass::Tiny, 21);
    let mut rmses = Vec::new();
    for gpus in [1u32, 2, 4] {
        let mut t = AlsTrainer::new(&data, fast(&data), GpuSpec::pascal_p100(), gpus);
        rmses.push(t.train().final_rmse());
    }
    assert_eq!(rmses[0], rmses[1], "1 vs 2 GPUs");
    assert_eq!(rmses[1], rmses[2], "2 vs 4 GPUs");
}

#[test]
fn more_gpus_is_faster_overall() {
    let data = MfDataset::hugewiki(SizeClass::Tiny, 22);
    let time = |gpus| {
        let mut t = AlsTrainer::new(&data, fast(&data), GpuSpec::pascal_p100(), gpus);
        t.train().total_sim_time()
    };
    let t1 = time(1);
    let t2 = time(2);
    let t4 = time(4);
    assert!(t2 < t1);
    assert!(t4 < t2);
    assert!(t4 > t1 / 4.0, "communication prevents perfect scaling");
}

#[test]
fn capacity_check_tracks_partitioning() {
    let data = MfDataset::hugewiki(SizeClass::Tiny, 23);
    let cfg = AlsConfig {
        f: 100,
        iterations: 1,
        ..AlsConfig::for_profile(&data.profile)
    };
    let per_gpu_1 =
        AlsTrainer::new(&data, cfg.clone(), GpuSpec::pascal_p100(), 1).device_bytes_per_gpu();
    let per_gpu_4 = AlsTrainer::new(&data, cfg, GpuSpec::pascal_p100(), 4).device_bytes_per_gpu();
    assert!(per_gpu_4 < per_gpu_1);
    assert!(
        per_gpu_4 > per_gpu_1 / 4,
        "Θ replication keeps per-GPU bytes above a quarter"
    );
}

#[test]
fn comm_phase_only_appears_with_multiple_gpus() {
    let data = MfDataset::netflix(SizeClass::Tiny, 24);
    let mut t1 = AlsTrainer::new(&data, fast(&data), GpuSpec::maxwell_titan_x(), 1);
    let (p1, _) = t1.run_epoch();
    assert_eq!(p1.comm, 0.0);
    assert_eq!(t1.clock().phase_time("comm"), 0.0);

    let mut t2 = AlsTrainer::new(&data, fast(&data), GpuSpec::maxwell_titan_x(), 2);
    let (p2, _) = t2.run_epoch();
    assert!(p2.comm > 0.0);
    assert!((t2.clock().phase_time("comm") - p2.comm).abs() < 1e-12);
}
