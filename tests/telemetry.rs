//! Cross-crate telemetry tests: recorder/trainer consistency, exporter
//! validity, and the disabled-recorder bit-identity guarantee.

use cumf_als::{AlsConfig, AlsTrainer, Precision, SolverKind};
use cumf_datasets::{MfDataset, SizeClass};
use cumf_gpu_sim::GpuSpec;
use cumf_telemetry::{chrome_trace, to_jsonl, MemoryRecorder, SolverExit};
use serde::Value;

fn tiny() -> MfDataset {
    MfDataset::netflix(SizeClass::Tiny, 99)
}

fn cg_config(data: &MfDataset, precision: Precision, epochs: usize) -> AlsConfig {
    AlsConfig {
        f: 8,
        iterations: epochs,
        solver: SolverKind::Cg {
            fs: 4,
            tolerance: 1e-4,
            precision,
        },
        rmse_target: None,
        ..AlsConfig::for_profile(&data.profile)
    }
}

/// Property: for a full ALS epoch, the sum of per-launch simulated kernel
/// times equals the epoch's phase total — kernel records are a lossless
/// decomposition of the priced epoch. Holds at 1 GPU and (thanks to the
/// all-gather record) at 4 GPUs.
#[test]
fn kernel_records_sum_to_epoch_total() {
    for gpus in [1u32, 4] {
        let data = tiny();
        let rec = MemoryRecorder::new();
        let mut t = AlsTrainer::with_recorder(
            &data,
            cg_config(&data, Precision::Fp32, 1),
            GpuSpec::pascal_p100(),
            gpus,
            &rec,
        );
        let (phases, _) = t.run_epoch();
        let kernel_sum: f64 = rec.kernel_records().iter().map(|k| k.duration()).sum();
        let total = phases.total();
        assert!(
            (kernel_sum - total).abs() <= 1e-9 * total.max(1.0),
            "gpus={gpus}: kernel sum {kernel_sum} != epoch total {total}"
        );
    }
}

/// Phase spans tile the epoch: each sweep's get_hermitian/get_bias/solve
/// spans are contiguous and their union covers the epoch exactly.
#[test]
fn phase_spans_are_contiguous_and_cover_the_epoch() {
    let data = tiny();
    let rec = MemoryRecorder::new();
    let mut t = AlsTrainer::with_recorder(
        &data,
        cg_config(&data, Precision::Fp32, 1),
        GpuSpec::maxwell_titan_x(),
        1,
        &rec,
    );
    let (phases, _) = t.run_epoch();
    let spans = rec.phase_spans();
    // X sweep then Theta sweep, three spans each, back to back.
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_ref()).collect();
    assert_eq!(
        names,
        [
            "get_hermitian-X",
            "get_bias-X",
            "solve-X",
            "get_hermitian-Theta",
            "get_bias-Theta",
            "solve-Theta"
        ]
    );
    for w in spans.windows(2) {
        assert!(
            (w[1].start - w[0].end).abs() < 1e-12,
            "gap between {} and {}",
            w[0].name,
            w[1].name
        );
    }
    let covered: f64 = spans.iter().map(|s| s.duration()).sum();
    assert!((covered - phases.total()).abs() <= 1e-9 * phases.total());
}

/// Golden test: the Chrome-trace exporter emits valid JSON whose duration
/// events are properly paired and nested (every B has a matching E, stack
/// discipline holds, and ph values are from the trace-event vocabulary).
#[test]
fn chrome_trace_is_valid_json_with_balanced_events() {
    let data = tiny();
    let rec = MemoryRecorder::new();
    let mut t = AlsTrainer::with_recorder(
        &data,
        cg_config(&data, Precision::Fp16, 2),
        GpuSpec::maxwell_titan_x(),
        1,
        &rec,
    );
    t.train();
    let json = chrome_trace(&rec.events());
    let doc = Value::parse(&json).expect("trace must parse as JSON");
    let events = match doc.get("traceEvents") {
        Some(Value::Array(items)) => items,
        other => panic!("traceEvents missing or not an array: {other:?}"),
    };
    assert!(!events.is_empty());

    let mut depth = 0i64;
    let mut b_count = 0u64;
    let mut e_count = 0u64;
    let mut last_ts = f64::NEG_INFINITY;
    for ev in events {
        let ph = match ev.get("ph") {
            Some(Value::Str(s)) => s.clone(),
            _ => panic!("event without ph: {ev:?}"),
        };
        assert!(
            ["B", "E", "C", "i", "M"].contains(&ph.as_str()),
            "unexpected ph {ph:?}"
        );
        if ph == "B" || ph == "E" {
            let ts = match ev.get("ts") {
                Some(Value::Num(n)) => *n,
                _ => panic!("duration event without numeric ts"),
            };
            assert!(ts >= last_ts, "duration events must be time-ordered");
            last_ts = ts;
        }
        match ph.as_str() {
            "B" => {
                depth += 1;
                b_count += 1;
            }
            "E" => {
                depth -= 1;
                e_count += 1;
                assert!(depth >= 0, "E without matching B");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced B/E events");
    assert_eq!(b_count, e_count);
    assert!(b_count > 0, "trace must contain duration events");
}

/// The JSONL stream from a CG-FP16 run carries everything Figure 5 needs:
/// solver identity, per-sweep iteration counts, residual trajectories and
/// FP16 round-trip error — all parseable line by line.
#[test]
fn jsonl_solver_records_regenerate_fig5_inputs() {
    let data = tiny();
    let rec = MemoryRecorder::new();
    let mut t = AlsTrainer::with_recorder(
        &data,
        cg_config(&data, Precision::Fp16, 2),
        GpuSpec::maxwell_titan_x(),
        1,
        &rec,
    );
    t.train();

    let solvers = rec.solver_records();
    assert_eq!(solvers.len(), 4, "two sweeps per epoch, two epochs");
    for s in &solvers {
        assert_eq!(s.solver, "solve_cg_fp16");
        assert!(s.rows > 0);
        assert!(s.total_cg_iters > 0);
        assert!(s.mean_cg_iters > 0.0);
        assert!(s.max_cg_iters as u64 >= 1);
        assert!(
            !s.residual_trajectory.is_empty(),
            "need a residual trajectory"
        );
        assert!(
            s.fp16_roundtrip_rms > 0.0,
            "FP16 runs must report round-trip error"
        );
        assert!(s.fp16_roundtrip_max >= s.fp16_roundtrip_rms);
        assert!(matches!(
            s.exit,
            SolverExit::Converged | SolverExit::IterationCap
        ));
    }

    // And the JSONL stream itself: one valid JSON object per line, solver
    // events recoverable with their numeric payloads.
    let jsonl = to_jsonl(&rec.events());
    let mut solver_lines = 0;
    for line in jsonl.lines() {
        let v = Value::parse(line).expect("each JSONL line parses");
        if matches!(v.get("type"), Some(Value::Str(s)) if s == "Solver") {
            solver_lines += 1;
            match v.get("record").and_then(|r| r.get("mean_cg_iters")) {
                Some(Value::Num(n)) => assert!(*n > 0.0),
                other => panic!("solver record missing mean_cg_iters: {other:?}"),
            }
        }
    }
    assert_eq!(solver_lines, 4);
}

/// Attaching a recorder must not change the simulation: simulated times,
/// RMSE trajectory and the factor matrices are bit-identical with and
/// without telemetry.
#[test]
fn recorder_is_bit_identical_to_uninstrumented_run() {
    for precision in [Precision::Fp32, Precision::Fp16] {
        let data = tiny();
        let cfg = cg_config(&data, precision, 3);

        let mut plain = AlsTrainer::new(&data, cfg.clone(), GpuSpec::maxwell_titan_x(), 2);
        let r_plain = plain.train();

        let rec = MemoryRecorder::new();
        let mut traced = AlsTrainer::with_recorder(&data, cfg, GpuSpec::maxwell_titan_x(), 2, &rec);
        let r_traced = traced.train();

        assert!(!rec.is_empty(), "traced run must record events");
        assert_eq!(r_plain.epochs.len(), r_traced.epochs.len());
        for (a, b) in r_plain.epochs.iter().zip(&r_traced.epochs) {
            assert_eq!(
                a.sim_time.to_bits(),
                b.sim_time.to_bits(),
                "sim time must be bit-identical"
            );
            assert_eq!(
                a.test_rmse.to_bits(),
                b.test_rmse.to_bits(),
                "RMSE must be bit-identical"
            );
            assert_eq!(a.mean_cg_iters.to_bits(), b.mean_cg_iters.to_bits());
        }
        assert_eq!(
            plain.x.as_slice(),
            traced.x.as_slice(),
            "factors must be bit-identical"
        );
        assert_eq!(plain.theta.as_slice(), traced.theta.as_slice());
    }
}

/// Multi-GPU runs emit the interconnect counters and the all-gather kernel.
#[test]
fn multi_gpu_emits_comm_telemetry() {
    let data = tiny();
    let rec = MemoryRecorder::new();
    let mut t = AlsTrainer::with_recorder(
        &data,
        cg_config(&data, Precision::Fp32, 2),
        GpuSpec::pascal_p100(),
        4,
        &rec,
    );
    t.train();
    let kernels = rec.kernel_records();
    let allgathers: Vec<_> = kernels
        .iter()
        .filter(|k| k.kernel == "nccl_allgather")
        .collect();
    assert_eq!(allgathers.len(), 4, "one all-gather per sweep");
    let counters = rec.counter_samples();
    let ic: Vec<f64> = counters
        .iter()
        .filter(|c| c.name == "interconnect_bytes")
        .map(|c| c.value)
        .collect();
    assert_eq!(ic.len(), 4);
    assert!(
        ic.windows(2).all(|w| w[1] > w[0]),
        "interconnect counter must be cumulative"
    );
    assert!(counters.iter().any(|c| c.name == "device_mem_bytes"));
}
