//! Simulator consistency: the cost models must reproduce the paper's
//! headline performance relationships end-to-end through the public API.

use cumf_als::als::{price_epoch, price_side, Side};
use cumf_als::{AlsConfig, Precision, SolverKind};
use cumf_datasets::DatasetProfile;
use cumf_gpu_sim::memory::LoadPattern;
use cumf_gpu_sim::GpuSpec;

fn cfg(profile: &DatasetProfile, solver: SolverKind, pattern: LoadPattern) -> AlsConfig {
    AlsConfig {
        solver,
        load_pattern: pattern,
        ..AlsConfig::for_profile(profile)
    }
}

#[test]
fn figure1_two_to_four_x_speedup_band() {
    // The paper's single headline: memory optimization + approximate
    // computing = 2–4× over GPU-ALS, same accuracy, across datasets and
    // devices.
    for profile in DatasetProfile::table2() {
        for spec in [GpuSpec::maxwell_titan_x(), GpuSpec::pascal_p100()] {
            let fast = cfg(
                &profile,
                SolverKind::cumf_default(),
                LoadPattern::NonCoalescedL1,
            );
            let slow = cfg(&profile, SolverKind::BatchLu, LoadPattern::Coalesced);
            let t_fast = price_epoch(&profile, &fast, &spec, 1, 6.0).total();
            let t_slow = price_epoch(&profile, &slow, &spec, 1, 6.0).total();
            let speedup = t_slow / t_fast;
            assert!(
                speedup > 1.8 && speedup < 5.2,
                "{} on {}: speedup {speedup}",
                profile.name,
                spec.name
            );
        }
    }
}

#[test]
fn observation3_solve_dominates_with_lu() {
    // LU solve time exceeds get_hermitian time on Netflix (Observation 3).
    let profile = DatasetProfile::netflix();
    let spec = GpuSpec::maxwell_titan_x();
    let config = cfg(&profile, SolverKind::BatchLu, LoadPattern::NonCoalescedL1);
    let p = price_epoch(&profile, &config, &spec, 1, 0.0);
    let hermitian = p.load + p.compute + p.write;
    assert!(
        p.solve > 1.5 * hermitian,
        "solve {} vs hermitian {}",
        p.solve,
        hermitian
    );
}

#[test]
fn solution3_and_4_each_contribute() {
    let profile = DatasetProfile::netflix();
    let spec = GpuSpec::maxwell_titan_x();
    let solve_time = |solver| {
        let c = cfg(&profile, solver, LoadPattern::NonCoalescedL1);
        let p = price_epoch(&profile, &c, &spec, 1, 6.0);
        p.solve
    };
    let lu = solve_time(SolverKind::BatchLu);
    let cg32 = solve_time(SolverKind::Cg {
        fs: 6,
        tolerance: 1e-4,
        precision: Precision::Fp32,
    });
    let cg16 = solve_time(SolverKind::Cg {
        fs: 6,
        tolerance: 1e-4,
        precision: Precision::Fp16,
    });
    assert!(lu / cg32 > 3.0 && lu / cg32 < 5.5, "CG gain {}", lu / cg32);
    assert!(
        cg32 / cg16 > 1.6 && cg32 / cg16 < 2.1,
        "FP16 gain {}",
        cg32 / cg16
    );
    // Combined: ~1/8 as the paper reports.
    assert!(lu / cg16 > 5.5, "combined gain {}", lu / cg16);
}

#[test]
fn hugewiki_scales_to_four_gpus() {
    let profile = DatasetProfile::hugewiki();
    let config = cfg(
        &profile,
        SolverKind::cumf_default(),
        LoadPattern::NonCoalescedL1,
    );
    for spec in [GpuSpec::maxwell_titan_x(), GpuSpec::pascal_p100()] {
        let t1 = price_epoch(&profile, &config, &spec, 1, 6.0).total();
        let t4 = price_epoch(&profile, &config, &spec, 4, 6.0).total();
        let scaling = t1 / t4;
        assert!(scaling > 2.0, "{}: 4-GPU scaling {scaling}", spec.name);
        assert!(
            scaling <= 4.0,
            "{}: scaling cannot be superlinear, got {scaling}",
            spec.name
        );
    }
}

#[test]
fn nvlink_scales_better_than_pcie() {
    let profile = DatasetProfile::hugewiki();
    let config = cfg(
        &profile,
        SolverKind::cumf_default(),
        LoadPattern::NonCoalescedL1,
    );
    let comm_m = price_epoch(&profile, &config, &GpuSpec::maxwell_titan_x(), 4, 6.0).comm;
    let comm_p = price_epoch(&profile, &config, &GpuSpec::pascal_p100(), 4, 6.0).comm;
    assert!(
        comm_p < comm_m,
        "NVLink comm {} vs PCIe comm {}",
        comm_p,
        comm_m
    );
}

#[test]
fn update_sides_price_asymmetrically() {
    // Netflix: m ≫ n, so update-X writes more Gram matrices and solves more
    // systems; update-Θ stages a bigger unique working set.
    let profile = DatasetProfile::netflix();
    let spec = GpuSpec::maxwell_titan_x();
    let config = cfg(
        &profile,
        SolverKind::cumf_default(),
        LoadPattern::NonCoalescedL1,
    );
    let px = price_side(&profile, &config, Side::X, &spec, 1, 6.0);
    let pt = price_side(&profile, &config, Side::Theta, &spec, 1, 6.0);
    assert!(px.write > pt.write);
    assert!(px.solve > pt.solve);
    assert!(pt.load > px.load);
}

#[test]
fn per_epoch_times_in_paper_ballpark() {
    // cuMF_ALS@Maxwell on Netflix: the paper's 6.5 s to converge over ~7-10
    // epochs implies ≈0.7–1 s per epoch; our model must land within 3× of
    // that band.
    let profile = DatasetProfile::netflix();
    let config = cfg(
        &profile,
        SolverKind::cumf_default(),
        LoadPattern::NonCoalescedL1,
    );
    let t = price_epoch(&profile, &config, &GpuSpec::maxwell_titan_x(), 1, 6.0).total();
    assert!(t > 0.3 && t < 3.0, "epoch priced at {t}s");
}
