//! End-to-end serving: train with cumf-als, publish into cumf-serve,
//! replay sampled traffic, and check the rankings, the cold-start path,
//! the snapshot swap, multi-model canary routing with promote/rollback,
//! and the telemetry stream all line up.

use cumf_als::{AlsConfig, AlsTrainer};
use cumf_datasets::{MfDataset, RequestSampler, SizeClass};
use cumf_gpu_sim::GpuSpec;
use cumf_numeric::dense::DenseMatrix;
use cumf_serve::{
    overlap_at_k, AnnParams, CanaryPolicy, ModelSnapshot, QuantMode, Request, Retrieval,
    ScoreConfig, ServeConfig, ServeEngine,
};
use cumf_telemetry::{to_jsonl, MemoryRecorder, NOOP};

fn trained() -> (MfDataset, DenseMatrix, DenseMatrix) {
    let data = MfDataset::netflix(SizeClass::Tiny, 4242);
    let cfg = AlsConfig {
        f: 8,
        iterations: 6,
        rmse_target: None,
        ..AlsConfig::for_profile(&data.profile)
    };
    let mut t = AlsTrainer::new(&data, cfg, GpuSpec::maxwell_titan_x(), 1);
    t.train();
    let (x, theta) = (t.x.clone(), t.theta.clone());
    drop(t);
    (data, x, theta)
}

fn engine_from(x: &DenseMatrix, theta: &DenseMatrix, fp16: bool) -> ServeEngine {
    let mut snapshot = ModelSnapshot::new(0, theta.clone(), vec![]);
    if fp16 {
        snapshot = snapshot.with_fp16();
    }
    let score = ScoreConfig {
        use_fp16: fp16,
        ..ScoreConfig::default()
    };
    ServeEngine::builder()
        .config(ServeConfig::default().with_k(10).with_score(score))
        .model("default", x.clone(), snapshot)
        .build()
        .expect("single trained model builds")
}

#[test]
fn trained_model_serves_sampled_traffic() {
    let (data, x, theta) = trained();
    let engine = engine_from(&x, &theta, false);
    let mut sampler = RequestSampler::from_dataset(&data, 7);
    let stream = sampler.sample(300, 1000.0);

    let rec = MemoryRecorder::new();
    let mut served = 0;
    for chunk in stream.chunks(32) {
        let reqs: Vec<Request> = chunk
            .iter()
            .enumerate()
            .map(|(i, s)| Request::known(i as u64, s.user))
            .collect();
        let out = engine.recommend_batch(&reqs, &rec);
        assert_eq!(out.len(), reqs.len());
        for r in &out {
            let r = r.as_ref().expect("sampled users are all known");
            assert_eq!(r.items.len(), 10);
            assert_eq!(r.model.as_str(), "default");
            // Rankings are strictly ordered.
            for w in r.items.windows(2) {
                assert!(w[0].ranks_before(&w[1]));
            }
        }
        served += out.len();
    }
    assert_eq!(served, 300);

    // Skewed traffic over a Tiny population must produce repeat users,
    // hence cache hits.
    let stats = engine.cache_stats();
    assert!(stats.hits > 0, "no cache hits over 300 skewed requests");
    assert_eq!(stats.hits + stats.misses, 300);

    // The event stream carries the batch phase spans, and the engine's
    // typed registry carries the live totals (bridgeable into JSONL).
    let jsonl = to_jsonl(&rec.events());
    assert!(jsonl.contains("serve.batch"));
    assert!(jsonl.contains("serve.shard0.score"));
    let m = engine.obs().metrics();
    assert_eq!(m.requests.get(), 300);
    assert_eq!(m.cache_hits.get(), stats.hits);
    let bridged = to_jsonl(
        &m.registry()
            .to_counter_samples(engine.now())
            .into_iter()
            .map(|c| cumf_telemetry::Event::Counter { sample: c })
            .collect::<Vec<_>>(),
    );
    assert!(bridged.contains("serve_requests_total"));
    assert!(bridged.contains("serve_cache_hits_total"));
    // The v2 per-model series carry the model label.
    let prom = m.registry().render_prometheus();
    assert!(prom.contains("serve_model_requests_total{model=\"default\"} 300"));
}

#[test]
fn cold_start_reconstructs_a_known_users_taste() {
    let (data, x, theta) = trained();
    let engine = engine_from(&x, &theta, false);
    // The heaviest rater: their fold-in solve is best-conditioned.
    let user = (0..data.m()).max_by_key(|&u| data.r.row_nnz(u)).unwrap() as u32;
    let known = engine.recommend_user(user, &NOOP).unwrap();
    let cold = engine.recommend_batch(
        &[Request::cold(0, data.r.row_iter(user as usize).collect())],
        &NOOP,
    );
    // Folding the user's own history must land on essentially the same
    // recommendations the trained factors produce.
    let known_items: Vec<u32> = known.items.iter().map(|s| s.item).collect();
    let overlap = cold[0]
        .as_ref()
        .unwrap()
        .items
        .iter()
        .filter(|s| known_items.contains(&s.item))
        .count();
    assert!(
        overlap >= 7,
        "cold-start top-10 shares only {overlap}/10 items with the trained ranking"
    );
}

#[test]
fn publishing_a_new_epoch_rolls_the_cache_over() {
    let (_, x, theta) = trained();
    let engine = engine_from(&x, &theta, false);
    let first = engine.recommend_user(3, &NOOP).unwrap();
    assert!(!first.from_cache);
    assert!(engine.recommend_user(3, &NOOP).unwrap().from_cache);

    // "Retrain" (identity republish is enough for the swap semantics),
    // via the registry's keyed publish.
    engine
        .registry()
        .publish(
            &"default".into(),
            ModelSnapshot::new(1, theta.clone(), vec![]),
        )
        .unwrap();
    let after = engine.recommend_user(3, &NOOP).unwrap();
    assert_eq!(after.epoch, 1);
    assert!(!after.from_cache, "old epoch's entry must not answer");
    // Identical factors ⇒ identical ranking, fresh epoch tag.
    assert_eq!(after.items, first.items);
}

#[test]
fn fp16_engine_serves_nearly_the_same_items() {
    let (data, x, theta) = trained();
    let exact = engine_from(&x, &theta, false);
    let quant = engine_from(&x, &theta, true);
    let mut agree = 0usize;
    let mut total = 0usize;
    for user in (0..data.m() as u32).step_by(37) {
        let a = exact.recommend_user(user, &NOOP).unwrap();
        let b = quant.recommend_user(user, &NOOP).unwrap();
        let a_items: Vec<u32> = a.items.iter().map(|s| s.item).collect();
        agree += b.items.iter().filter(|s| a_items.contains(&s.item)).count();
        total += a.items.len();
    }
    let frac = agree as f64 / total as f64;
    assert!(
        frac > 0.95,
        "FP16 top-10 agreement with FP32 only {frac:.3}"
    );
}

/// Approximate retrieval end-to-end: an int8-rescoring approximate
/// engine over the same trained factors keeps recall@10 at or above 0.9
/// against the exact engine while streaming measurably fewer factor
/// bytes, and the `serve_ann_*` counters account for the probe.
#[test]
fn approximate_engine_trades_bounded_recall_for_fewer_scan_bytes() {
    let (data, x, theta) = trained();
    let exact = engine_from(&x, &theta, false);
    let approx = ServeEngine::builder()
        .config(
            ServeConfig::default()
                .with_k(10)
                .with_score(ScoreConfig {
                    retrieval: Retrieval::Approx {
                        n_probe: 8,
                        quant: QuantMode::Int8,
                    },
                    ..ScoreConfig::default()
                })
                .with_ann(AnnParams {
                    k_clusters: 16,
                    ..AnnParams::default()
                }),
        )
        .model(
            "default",
            x.clone(),
            ModelSnapshot::new(0, theta.clone(), vec![]),
        )
        .build()
        .expect("approx engine builds");

    let mut recall = 0.0f64;
    let mut served = 0usize;
    for user in (0..data.m() as u32).step_by(11) {
        let a = exact.recommend_user(user, &NOOP).unwrap();
        let b = approx.recommend_user(user, &NOOP).unwrap();
        recall += overlap_at_k(&a.items, &b.items, 10);
        served += 1;
    }
    recall /= served as f64;
    assert!(
        recall >= 0.9,
        "recall@10 vs the exact engine fell to {recall:.3}"
    );

    let (me, ma) = (exact.obs().metrics(), approx.obs().metrics());
    assert!(
        ma.scan_bytes.get() < me.scan_bytes.get(),
        "approx scan bytes {} must undercut exact {}",
        ma.scan_bytes.get(),
        me.scan_bytes.get()
    );
    assert!(ma.ann_probed.get() > 0, "the probe stage must be counted");
    assert!(
        ma.ann_rescored.get() > 0,
        "int8 shortlists must be rescored"
    );
    assert!(
        ma.ann_rescored.get() <= ma.ann_candidates.get(),
        "rescore fraction stays within [0, 1]"
    );
    assert_eq!(me.ann_probed.get(), 0, "exact engines never probe");
    assert_eq!(
        ma.model("default").ann_fallback.get(),
        0,
        "the builder attaches the index, so the approx path never falls back"
    );
}

/// The tentpole end-to-end: a champion/challenger pair behind one engine.
/// Traffic splits at the configured canary fraction, both arms serve from
/// their own factors, per-model metrics land in the Prometheus
/// exposition, and promote/rollback retarget routing without rebuilding
/// the engine.
#[test]
fn two_model_canary_splits_promotes_and_rolls_back() {
    let (data, x, theta) = trained();
    // The challenger: same geometry, retrained-looking factors (scaled),
    // so both arms rank — identically here, which is fine; what we check
    // is routing, isolation, and observability.
    let mut theta_b = theta.clone();
    cumf_numeric::dense::scale(0.5, theta_b.as_mut_slice());
    let engine = ServeEngine::builder()
        .config(ServeConfig::default().with_k(10))
        .model("champion", x.clone(), ModelSnapshot::new(0, theta, vec![]))
        .model(
            "challenger",
            x.clone(),
            ModelSnapshot::new(0, theta_b, vec![]),
        )
        .canary("challenger", 0.25)
        .build()
        .unwrap();

    // Replay every user once; count which arm answered.
    let n_users = data.m() as u32;
    let reqs: Vec<Request> = (0..n_users).map(|u| Request::known(u as u64, u)).collect();
    let out = engine.recommend_batch(&reqs, &NOOP);
    let canaried = out
        .iter()
        .filter(|r| r.as_ref().unwrap().model.as_str() == "challenger")
        .count();
    let frac = canaried as f64 / n_users as f64;
    assert!(
        (frac - 0.25).abs() < 0.1,
        "canary share {frac:.3} far from the configured 0.25 over {n_users} users"
    );
    assert!(
        canaried > 0 && canaried < n_users as usize,
        "both arms must serve"
    );

    // Explicit model ids override the canary split.
    let pinned = engine
        .recommend_batch(&[Request::known(0, 0).for_model("challenger")], &NOOP)
        .pop()
        .unwrap()
        .unwrap();
    assert_eq!(pinned.model.as_str(), "challenger");

    // Per-model series are in the exposition, labelled.
    let prom = engine.obs().metrics().registry().render_prometheus();
    assert!(prom.contains("serve_model_requests_total{model=\"champion\"}"));
    assert!(prom.contains("serve_model_requests_total{model=\"challenger\"}"));
    assert!(prom.contains("serve_model_epoch_current{model=\"challenger\"}"));

    // Promote: the challenger becomes the default for all traffic, the
    // canary clears — no engine restart, next batch sees it.
    engine.registry().promote().unwrap();
    assert_eq!(engine.registry().default_model().as_str(), "challenger");
    assert!(engine.registry().canary().is_none());
    let all = engine.recommend_batch(&reqs, &NOOP);
    assert!(all
        .iter()
        .all(|r| r.as_ref().unwrap().model.as_str() == "challenger"));

    // Roll back to the champion and restart a smaller canary: routing
    // follows immediately.
    engine.registry().set_default(&"champion".into()).unwrap();
    engine
        .registry()
        .set_canary(CanaryPolicy::new("challenger", 0.0))
        .unwrap();
    let back = engine.recommend_batch(&reqs, &NOOP);
    assert!(back
        .iter()
        .all(|r| r.as_ref().unwrap().model.as_str() == "champion"));
}
