//! End-to-end serving: train with cumf-als, publish into cumf-serve,
//! replay sampled traffic, and check the rankings, the cold-start path,
//! the snapshot swap, and the telemetry stream all line up.

use cumf_als::{AlsConfig, AlsTrainer};
use cumf_datasets::{MfDataset, RequestSampler, SizeClass};
use cumf_gpu_sim::GpuSpec;
use cumf_numeric::dense::DenseMatrix;
use cumf_serve::{ModelSnapshot, Request, ScoreConfig, ServeConfig, ServeEngine, UserRef};
use cumf_telemetry::{to_jsonl, MemoryRecorder, NOOP};

fn trained() -> (MfDataset, DenseMatrix, DenseMatrix) {
    let data = MfDataset::netflix(SizeClass::Tiny, 4242);
    let cfg = AlsConfig {
        f: 8,
        iterations: 6,
        rmse_target: None,
        ..AlsConfig::for_profile(&data.profile)
    };
    let mut t = AlsTrainer::new(&data, cfg, GpuSpec::maxwell_titan_x(), 1);
    t.train();
    let (x, theta) = (t.x.clone(), t.theta.clone());
    drop(t);
    (data, x, theta)
}

fn engine_from(x: &DenseMatrix, theta: &DenseMatrix, fp16: bool) -> ServeEngine {
    let mut snapshot = ModelSnapshot::new(0, theta.clone(), vec![]);
    if fp16 {
        snapshot = snapshot.with_fp16();
    }
    ServeEngine::new(
        x.clone(),
        snapshot,
        ServeConfig {
            k: 10,
            score: ScoreConfig {
                use_fp16: fp16,
                ..ScoreConfig::default()
            },
            ..ServeConfig::default()
        },
    )
}

#[test]
fn trained_model_serves_sampled_traffic() {
    let (data, x, theta) = trained();
    let engine = engine_from(&x, &theta, false);
    let mut sampler = RequestSampler::from_dataset(&data, 7);
    let stream = sampler.sample(300, 1000.0);

    let rec = MemoryRecorder::new();
    let mut served = 0;
    for chunk in stream.chunks(32) {
        let reqs: Vec<Request> = chunk
            .iter()
            .enumerate()
            .map(|(i, s)| Request {
                id: i as u64,
                user: UserRef::Known(s.user),
            })
            .collect();
        let out = engine.recommend_batch(&reqs, &rec);
        assert_eq!(out.len(), reqs.len());
        for r in &out {
            assert_eq!(r.items.len(), 10);
            // Rankings are strictly ordered.
            for w in r.items.windows(2) {
                assert!(w[0].ranks_before(&w[1]));
            }
        }
        served += out.len();
    }
    assert_eq!(served, 300);

    // Skewed traffic over a Tiny population must produce repeat users,
    // hence cache hits.
    let stats = engine.cache_stats();
    assert!(stats.hits > 0, "no cache hits over 300 skewed requests");
    assert_eq!(stats.hits + stats.misses, 300);

    // The event stream carries the batch phase spans, and the engine's
    // typed registry carries the live totals (bridgeable into JSONL).
    let jsonl = to_jsonl(&rec.events());
    assert!(jsonl.contains("serve.batch"));
    assert!(jsonl.contains("serve.shard0.score"));
    let m = engine.obs().metrics();
    assert_eq!(m.requests.get(), 300);
    assert_eq!(m.cache_hits.get(), stats.hits);
    let bridged = to_jsonl(
        &m.registry()
            .to_counter_samples(engine.now())
            .into_iter()
            .map(|c| cumf_telemetry::Event::Counter { sample: c })
            .collect::<Vec<_>>(),
    );
    assert!(bridged.contains("serve_requests_total"));
    assert!(bridged.contains("serve_cache_hits_total"));
}

#[test]
fn cold_start_reconstructs_a_known_users_taste() {
    let (data, x, theta) = trained();
    let engine = engine_from(&x, &theta, false);
    // The heaviest rater: their fold-in solve is best-conditioned.
    let user = (0..data.m()).max_by_key(|&u| data.r.row_nnz(u)).unwrap() as u32;
    let known = engine.recommend_user(user, &NOOP);
    let cold = engine.recommend_batch(
        &[Request {
            id: 0,
            user: UserRef::Cold(data.r.row_iter(user as usize).collect()),
        }],
        &NOOP,
    );
    // Folding the user's own history must land on essentially the same
    // recommendations the trained factors produce.
    let known_items: Vec<u32> = known.items.iter().map(|s| s.item).collect();
    let overlap = cold[0]
        .items
        .iter()
        .filter(|s| known_items.contains(&s.item))
        .count();
    assert!(
        overlap >= 7,
        "cold-start top-10 shares only {overlap}/10 items with the trained ranking"
    );
}

#[test]
fn publishing_a_new_epoch_rolls_the_cache_over() {
    let (_, x, theta) = trained();
    let engine = engine_from(&x, &theta, false);
    let first = engine.recommend_user(3, &NOOP);
    assert!(!first.from_cache);
    assert!(engine.recommend_user(3, &NOOP).from_cache);

    // "Retrain" (identity republish is enough for the swap semantics).
    engine
        .store()
        .publish(ModelSnapshot::new(1, theta.clone(), vec![]));
    let after = engine.recommend_user(3, &NOOP);
    assert_eq!(after.epoch, 1);
    assert!(!after.from_cache, "old epoch's entry must not answer");
    // Identical factors ⇒ identical ranking, fresh epoch tag.
    assert_eq!(after.items, first.items);
}

#[test]
fn fp16_engine_serves_nearly_the_same_items() {
    let (data, x, theta) = trained();
    let exact = engine_from(&x, &theta, false);
    let quant = engine_from(&x, &theta, true);
    let mut agree = 0usize;
    let mut total = 0usize;
    for user in (0..data.m() as u32).step_by(37) {
        let a = exact.recommend_user(user, &NOOP);
        let b = quant.recommend_user(user, &NOOP);
        let a_items: Vec<u32> = a.items.iter().map(|s| s.item).collect();
        agree += b.items.iter().filter(|s| a_items.contains(&s.item)).count();
        total += a.items.len();
    }
    let frac = agree as f64 / total as f64;
    assert!(
        frac > 0.95,
        "FP16 top-10 agreement with FP32 only {frac:.3}"
    );
}
