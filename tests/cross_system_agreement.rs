//! Cross-system agreement: every MF implementation in the workspace must
//! find factors of equivalent quality on the same data — the differences
//! the paper studies are *speed*, never correctness.

use cumf_als::{AlsConfig, AlsTrainer};
use cumf_baselines::bidmach::BidMach;
use cumf_baselines::ccd::{CcdConfig, CcdTrainer};
use cumf_baselines::sgd::{blocked_epoch, sgd_test_rmse, SgdConfig, SgdModel};
use cumf_baselines::{GpuAlsBaseline, GpuSgd};
use cumf_datasets::{MfDataset, SizeClass};
use cumf_gpu_sim::host::CpuSpec;
use cumf_gpu_sim::GpuSpec;
use cumf_numeric::dense::DenseMatrix;
use cumf_sparse::blocking::BlockGrid;

const F: usize = 8;

fn data() -> MfDataset {
    MfDataset::netflix(SizeClass::Tiny, 42)
}

fn als_rmse(data: &MfDataset) -> f64 {
    let cfg = AlsConfig {
        f: F,
        iterations: 8,
        rmse_target: None,
        ..AlsConfig::for_profile(&data.profile)
    };
    let mut t = AlsTrainer::new(data, cfg, GpuSpec::maxwell_titan_x(), 1);
    t.train().final_rmse()
}

#[test]
fn every_system_reaches_comparable_quality() {
    let data = data();
    let reference = als_rmse(&data);

    // GPU-ALS baseline (exact solver) — must match cuMF_ALS closely.
    let gpu_als = GpuAlsBaseline {
        spec: GpuSpec::maxwell_titan_x(),
        gpus: 1,
    }
    .train_with_f(&data, 8, F)
    .curve
    .best_rmse()
    .unwrap();
    assert!(
        (gpu_als - reference).abs() < 0.03,
        "GPU-ALS {gpu_als} vs cuMF {reference}"
    );

    // Blocked SGD.
    let sgd_cfg = SgdConfig::new(F, 0.05);
    let grid = BlockGrid::partition(&data.train_coo, sgd_cfg.grid);
    let mut model = SgdModel::init(data.m(), data.n(), &sgd_cfg, 3.6);
    for k in 0..30 {
        blocked_epoch(&grid, &mut model, &sgd_cfg, k);
    }
    let sgd = sgd_test_rmse(&model, &data.test);
    assert!(
        (sgd - reference).abs() < 0.12,
        "SGD {sgd} vs ALS {reference}"
    );

    // Hogwild GPU-SGD.
    let mut gsgd = GpuSgd::paper_setup(GpuSpec::maxwell_titan_x(), 1, F, &data.profile);
    gsgd.config = SgdConfig::new(F, 0.05);
    let hog = gsgd.train(&data, 30).curve.best_rmse().unwrap();
    assert!(
        (hog - reference).abs() < 0.12,
        "Hogwild {hog} vs ALS {reference}"
    );

    // CCD++.
    let mut ccd = CcdTrainer::new(
        &data,
        CcdConfig {
            f: F,
            lambda: 0.05,
            inner: 1,
            seed: 1,
        },
        CpuSpec::power8(),
    );
    let ccd_rmse = ccd.train(12).best_rmse().unwrap();
    assert!(
        (ccd_rmse - reference).abs() < 0.12,
        "CCD++ {ccd_rmse} vs ALS {reference}"
    );
}

#[test]
fn bidmach_generic_kernels_agree_with_fused_everywhere() {
    let data = data();
    let bid = BidMach {
        spec: GpuSpec::maxwell_titan_x(),
        f: F,
        lambda: 0.05,
    };
    let mut rng = cumf_numeric::stats::XorShift64::new(9);
    let mut features = DenseMatrix::zeros(data.n(), F);
    features.fill_with(|| rng.next_f32() - 0.5);
    for row in 0..data.m().min(200) {
        assert!(
            bid.matches_fused(&data.r, &features, row),
            "row {row} disagrees"
        );
    }
}

#[test]
fn als_trainer_factors_solve_their_own_normal_equations() {
    // Near convergence, each x_u approximately satisfies its row's
    // regularized normal equations against the final Θ (the ALS fixed-point
    // property; exact equality would need X re-solved after the last Θ
    // sweep, so a small drift tolerance remains).
    let data = data();
    let cfg = AlsConfig {
        f: F,
        iterations: 10,
        rmse_target: None,
        solver: cumf_als::SolverKind::BatchCholesky,
        ..AlsConfig::for_profile(&data.profile)
    };
    let mut t = AlsTrainer::new(&data, cfg, GpuSpec::maxwell_titan_x(), 1);
    t.train();
    for u in (0..data.m()).step_by(41) {
        let cols = data.r.row_cols(u);
        if cols.is_empty() {
            continue;
        }
        let a = cumf_als::kernels::hermitian::hermitian_row_reference(cols, &t.theta, 0.05, F);
        let mut b = vec![0.0f32; F];
        cumf_als::kernels::bias::bias_row(cols, data.r.row_values(u), &t.theta, &mut b);
        let mut ax = vec![0.0f32; F];
        a.matvec(t.x.row(u), &mut ax);
        for i in 0..F {
            let tol = 5e-2f32.max(0.02 * b[i].abs());
            assert!(
                (ax[i] - b[i]).abs() < tol,
                "row {u} dim {i}: {} vs {}",
                ax[i],
                b[i]
            );
        }
    }
}
