//! Edge cases and failure injection: degenerate datasets, extreme
//! configurations, and pathological inputs must not panic or corrupt
//! results.

use cumf_als::{AlsConfig, AlsTrainer, Precision, SolverKind};
use cumf_datasets::{DatasetProfile, MfDataset};
use cumf_gpu_sim::GpuSpec;
use cumf_sparse::coo::CooMatrix;
use cumf_sparse::csr::CsrMatrix;

/// Build an MfDataset from explicit entries (bypassing the generator).
fn dataset_from(m: usize, n: usize, entries: &[(u32, u32, f32)]) -> MfDataset {
    let mut coo = CooMatrix::new(m, n);
    for &(u, v, r) in entries {
        coo.push(u, v, r);
    }
    let r = CsrMatrix::from_coo(&coo);
    let rt = r.transpose();
    MfDataset {
        profile: DatasetProfile::netflix(),
        rt,
        test: CooMatrix::new(m, n),
        train_coo: coo.clone(),
        r,
        noise_floor: 0.0,
    }
}

fn tiny_cfg(f: usize) -> AlsConfig {
    AlsConfig {
        f,
        iterations: 3,
        rmse_target: None,
        ..AlsConfig::for_profile(&DatasetProfile::netflix())
    }
}

#[test]
fn trains_on_single_rating() {
    let data = dataset_from(2, 2, &[(0, 0, 4.0)]);
    let mut t = AlsTrainer::new(&data, tiny_cfg(4), GpuSpec::maxwell_titan_x(), 1);
    let report = t.train();
    assert_eq!(report.epochs.len(), 3);
    // The single observation should be approximately reproduced.
    let pred = cumf_als::metrics::predict(t.x.row(0), t.theta.row(0));
    assert!((pred - 4.0).abs() < 1.0, "pred {pred}");
    // Unobserved rows/cols carry zero factors (regularized optimum).
    assert!(t.x.row(1).iter().all(|&v| v == 0.0));
    assert!(t.theta.row(1).iter().all(|&v| v == 0.0));
}

#[test]
fn trains_on_fully_empty_matrix() {
    let data = dataset_from(3, 3, &[]);
    let mut t = AlsTrainer::new(&data, tiny_cfg(4), GpuSpec::maxwell_titan_x(), 1);
    let report = t.train();
    assert!(report.final_rmse() == 0.0, "empty test set → RMSE 0");
    assert!(t.x.as_slice().iter().all(|&v| v == 0.0));
}

#[test]
fn handles_rank_deficient_rows() {
    // A user with many ratings of one single item: A_u is rank-1 + λI.
    let entries: Vec<(u32, u32, f32)> = vec![(0, 0, 5.0), (1, 0, 3.0), (2, 0, 1.0), (0, 1, 2.0)];
    let data = dataset_from(3, 2, &entries);
    for solver in [
        SolverKind::BatchLu,
        SolverKind::BatchCholesky,
        SolverKind::Cg {
            fs: 8,
            tolerance: 1e-6,
            precision: Precision::Fp32,
        },
    ] {
        let mut cfg = tiny_cfg(4);
        cfg.solver = solver;
        let mut t = AlsTrainer::new(&data, cfg, GpuSpec::maxwell_titan_x(), 1);
        t.train();
        assert!(
            t.x.as_slice().iter().all(|v| v.is_finite()),
            "{solver:?} produced non-finite factors"
        );
    }
}

#[test]
fn extreme_ratings_stay_finite_under_fp16() {
    // Values near f16's max: narrowing A_u must not produce infinities that
    // reach the factors.
    let entries: Vec<(u32, u32, f32)> = (0..20).map(|i| (i % 4, i % 3, 3.0e4)).collect();
    let data = dataset_from(4, 3, &entries);
    let mut cfg = tiny_cfg(4);
    cfg.solver = SolverKind::Cg {
        fs: 8,
        tolerance: 1e-4,
        precision: Precision::Fp16,
    };
    let mut t = AlsTrainer::new(&data, cfg, GpuSpec::pascal_p100(), 1);
    t.train();
    assert!(t.x.as_slice().iter().all(|v| v.is_finite()));
    assert!(t.theta.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn f_larger_than_dimensions_is_fine() {
    // f = 16 latent dimensions on a 5×4 matrix: heavily overparameterized
    // but regularized — must stay finite and fit the data.
    let entries: Vec<(u32, u32, f32)> = vec![
        (0, 0, 1.0),
        (1, 1, 2.0),
        (2, 2, 3.0),
        (3, 3, 4.0),
        (4, 0, 5.0),
        (0, 1, 2.5),
    ];
    let data = dataset_from(5, 4, &entries);
    let mut t = AlsTrainer::new(&data, tiny_cfg(16), GpuSpec::maxwell_titan_x(), 1);
    t.train();
    let obj = cumf_als::metrics::training_objective(&data.r, &t.x, &t.theta, 0.05);
    assert!(obj.is_finite() && obj < 30.0, "objective {obj}");
}

#[test]
fn more_gpus_than_rows_is_safe() {
    let data = dataset_from(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]);
    let mut t = AlsTrainer::new(&data, tiny_cfg(4), GpuSpec::pascal_p100(), 4);
    let report = t.train();
    assert!(report.total_sim_time() > 0.0);
}

#[test]
fn duplicate_ratings_are_merged_not_double_counted() {
    // CSR construction sums duplicates; the trainer must see one entry.
    let data = dataset_from(2, 2, &[(0, 0, 2.0), (0, 0, 2.0)]);
    assert_eq!(data.r.nnz(), 1);
    assert_eq!(data.r.get(0, 0), Some(4.0), "duplicates sum (COO contract)");
}

#[test]
fn negative_ratings_work() {
    // MF over mean-centered data produces negative values routinely.
    let entries: Vec<(u32, u32, f32)> = vec![(0, 0, -1.5), (0, 1, 1.5), (1, 0, 1.5), (1, 1, -1.5)];
    let data = dataset_from(2, 2, &entries);
    let mut t = AlsTrainer::new(&data, tiny_cfg(4), GpuSpec::maxwell_titan_x(), 1);
    t.train();
    let pred = cumf_als::metrics::predict(t.x.row(0), t.theta.row(0));
    assert!(pred < 0.0, "must fit the negative observation, got {pred}");
}

#[test]
fn loader_rejects_malformed_then_recovers() {
    use cumf_datasets::loader::{parse_ratings, LoadError};
    use std::io::Cursor;
    let bad = parse_ratings(Cursor::new("1 2 3\n4 five 6\n"));
    assert!(matches!(bad, Err(LoadError::Parse { line: 2, .. })));
    // The same reader logic accepts the fixed file.
    let good = parse_ratings(Cursor::new("1 2 3\n4 5 6\n")).unwrap();
    assert_eq!(good.nnz(), 2);
}

#[test]
fn zero_iterations_returns_empty_report() {
    let data = dataset_from(2, 2, &[(0, 0, 1.0)]);
    let mut cfg = tiny_cfg(4);
    cfg.iterations = 0;
    let mut t = AlsTrainer::new(&data, cfg, GpuSpec::maxwell_titan_x(), 1);
    let report = t.train();
    assert!(report.epochs.is_empty());
    assert_eq!(report.total_sim_time(), 0.0);
    assert!(report.final_rmse().is_infinite());
}
