//! Property-based tests for the sparse substrate.

use cumf_sparse::blocking::BlockGrid;
use cumf_sparse::coo::{CooMatrix, Entry};
use cumf_sparse::csr::CsrMatrix;
use cumf_sparse::split::random_split;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_coo(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    (1..max_dim, 1..max_dim).prop_flat_map(move |(rows, cols)| {
        prop::collection::vec((0..rows as u32, 0..cols as u32, -10.0f32..10.0), 0..max_nnz)
            .prop_map(move |trips| {
                let entries = trips
                    .into_iter()
                    .map(|(row, col, value)| Entry { row, col, value })
                    .collect();
                CooMatrix::from_entries(rows, cols, entries)
            })
    })
}

/// Multiset of (row, col, summed value) — the canonical content of a matrix.
fn canonical(m: &CsrMatrix) -> BTreeMap<(u32, u32), f32> {
    let mut map = BTreeMap::new();
    for r in 0..m.rows() {
        for (c, v) in m.row_iter(r) {
            *map.entry((r as u32, c)).or_insert(0.0) += v;
        }
    }
    map
}

proptest! {
    /// COO→CSR→COO→CSR is a fixed point, and duplicate coordinates merge
    /// into a single summed entry.
    #[test]
    fn csr_conversion_is_lossless(coo in arb_coo(40, 200)) {
        let csr = CsrMatrix::from_coo(&coo);
        let again = CsrMatrix::from_coo(&csr.to_coo());
        prop_assert_eq!(&csr, &again);

        // Content matches the source after duplicate-merging.
        let mut expect: BTreeMap<(u32, u32), f32> = BTreeMap::new();
        for e in coo.entries() {
            *expect.entry((e.row, e.col)).or_insert(0.0) += e.value;
        }
        let got = canonical(&csr);
        prop_assert_eq!(expect.len(), got.len());
        for (k, v) in &expect {
            let g = got[k];
            prop_assert!((g - v).abs() < 1e-3, "({},{}) {} vs {}", k.0, k.1, g, v);
        }
    }

    /// Transpose preserves content with swapped coordinates.
    #[test]
    fn transpose_preserves_content(coo in arb_coo(30, 150)) {
        let csr = CsrMatrix::from_coo(&coo);
        let t = csr.transpose();
        prop_assert_eq!(csr.nnz(), t.nnz());
        let orig = canonical(&csr);
        let flipped: BTreeMap<(u32, u32), f32> =
            canonical(&t).into_iter().map(|((r, c), v)| ((c, r), v)).collect();
        prop_assert_eq!(orig, flipped);
    }

    /// Rows stay sorted by column after conversion.
    #[test]
    fn csr_rows_sorted(coo in arb_coo(30, 150)) {
        let csr = CsrMatrix::from_coo(&coo);
        for r in 0..csr.rows() {
            let cols = csr.row_cols(r);
            prop_assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {} not strictly sorted", r);
        }
    }

    /// Block partitioning conserves the entry multiset and the waves tile
    /// the grid exactly once.
    #[test]
    fn block_partition_conserves(coo in arb_coo(50, 300), grid in 1usize..8) {
        let g = BlockGrid::partition(&coo, grid);
        prop_assert_eq!(g.total_nnz(), coo.nnz());
        let mut count = 0usize;
        for br in 0..grid {
            for bc in 0..grid {
                let (rs, re) = g.row_range(br);
                let (cs, ce) = g.col_range(bc);
                for e in g.block(br, bc) {
                    prop_assert!((e.row as usize) >= rs && (e.row as usize) < re);
                    prop_assert!((e.col as usize) >= cs && (e.col as usize) < ce);
                    count += 1;
                }
            }
        }
        prop_assert_eq!(count, coo.nnz());
    }

    /// Splits partition the data: no entry lost, no entry duplicated.
    #[test]
    fn split_partitions_data(coo in arb_coo(40, 200), frac in 0.0f64..0.9, seed in 1u64..1000) {
        let s = random_split(&coo, frac, seed);
        prop_assert_eq!(s.train.nnz() + s.test.nnz(), coo.nnz());
        prop_assert_eq!(s.train.rows(), coo.rows());
        prop_assert_eq!(s.test.cols(), coo.cols());
    }

    /// spmv distributes over vector addition: R(x+y) = Rx + Ry.
    #[test]
    fn spmv_linear(coo in arb_coo(20, 100)) {
        let csr = CsrMatrix::from_coo(&coo);
        let n = csr.cols();
        let x: Vec<f32> = (0..n).map(|i| (i % 7) as f32 - 3.0).collect();
        let y: Vec<f32> = (0..n).map(|i| (i % 5) as f32 * 0.5).collect();
        let xy: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let mut rx = vec![0.0; csr.rows()];
        let mut ry = vec![0.0; csr.rows()];
        let mut rxy = vec![0.0; csr.rows()];
        csr.spmv(&x, &mut rx);
        csr.spmv(&y, &mut ry);
        csr.spmv(&xy, &mut rxy);
        for r in 0..csr.rows() {
            prop_assert!((rxy[r] - (rx[r] + ry[r])).abs() < 1e-2);
        }
    }
}
