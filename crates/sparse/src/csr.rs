//! Compressed sparse row matrices — the working format of every solver here.
//!
//! `row_ptr` has `rows+1` entries; the non-zeros of row `u` live at
//! `col_idx[row_ptr[u]..row_ptr[u+1]]` / `values[...]`, sorted by column.
//! This is exactly the device-memory layout cuMF_ALS keeps `R` in: the
//! `get_hermitian` kernel for row `u` walks this slice to find which `θ_v`
//! columns to stage into shared memory.

use crate::coo::{CooMatrix, Entry};

/// A sparse matrix in CSR format with column indices sorted within each row.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u64>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Convert from COO with a counting sort on rows (O(Nz + m)), then sort
    /// each row's entries by column. Duplicate coordinates are summed.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let rows = coo.rows();
        let cols = coo.cols();
        let entries = coo.entries();

        // Counting sort by row.
        let mut row_ptr = vec![0u64; rows + 1];
        for e in entries {
            row_ptr[e.row as usize + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0u32; entries.len()];
        let mut values = vec![0f32; entries.len()];
        let mut cursor = row_ptr.clone();
        for e in entries {
            let p = cursor[e.row as usize] as usize;
            col_idx[p] = e.col;
            values[p] = e.value;
            cursor[e.row as usize] += 1;
        }

        // Sort within each row by column, then merge duplicates.
        let mut merged_col: Vec<u32> = Vec::with_capacity(col_idx.len());
        let mut merged_val: Vec<f32> = Vec::with_capacity(values.len());
        let mut merged_ptr = vec![0u64; rows + 1];
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for r in 0..rows {
            let (s, e) = (row_ptr[r] as usize, row_ptr[r + 1] as usize);
            scratch.clear();
            scratch.extend(
                col_idx[s..e]
                    .iter()
                    .copied()
                    .zip(values[s..e].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                merged_col.push(c);
                merged_val.push(v);
                i = j;
            }
            merged_ptr[r + 1] = merged_col.len() as u64;
        }

        CsrMatrix {
            rows,
            cols,
            row_ptr: merged_ptr,
            col_idx: merged_col,
            values: merged_val,
        }
    }

    /// Build directly from raw CSR arrays (validated).
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u64>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(
            *row_ptr.last().unwrap() as usize,
            col_idx.len(),
            "row_ptr end"
        );
        assert_eq!(col_idx.len(), values.len(), "col/val length");
        for w in row_ptr.windows(2) {
            assert!(w[0] <= w[1], "row_ptr must be nondecreasing");
        }
        for &c in &col_idx {
            assert!((c as usize) < cols, "column index {c} out of bounds");
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Non-zero count of row `r` — the paper's `n_{x_u}`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// Column indices of row `r`.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize]
    }

    /// Values of row `r`.
    #[inline]
    pub fn row_values(&self, r: usize) -> &[f32] {
        &self.values[self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize]
    }

    /// Iterate `(col, value)` over row `r`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.row_cols(r)
            .iter()
            .copied()
            .zip(self.row_values(r).iter().copied())
    }

    /// The raw row-pointer array.
    #[inline]
    pub fn row_ptr(&self) -> &[u64] {
        &self.row_ptr
    }

    /// The raw column-index array.
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The raw value array.
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Look up `self[r][c]` (binary search within the row).
    pub fn get(&self, r: usize, c: u32) -> Option<f32> {
        let cols = self.row_cols(r);
        cols.binary_search(&c).ok().map(|i| self.row_values(r)[i])
    }

    /// Transpose into a new CSR matrix (i.e. CSC of the original) using a
    /// counting sort over columns; columns of the result stay sorted.
    pub fn transpose(&self) -> CsrMatrix {
        let mut row_ptr = vec![0u64; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        let mut cursor = row_ptr.clone();
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                let p = cursor[c as usize] as usize;
                col_idx[p] = r as u32;
                values[p] = v;
                cursor[c as usize] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Sparse matrix–dense vector product `y = R·x`.
    pub fn spmv(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "spmv: x length");
        assert_eq!(y.len(), self.rows, "spmv: y length");
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (c, v) in self.row_iter(r) {
                acc += v * x[c as usize];
            }
            *yr = acc;
        }
    }

    /// Convert back to COO (row-major ordered).
    pub fn to_coo(&self) -> CooMatrix {
        let mut entries = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                entries.push(Entry {
                    row: r as u32,
                    col: c,
                    value: v,
                });
            }
        }
        CooMatrix::from_entries(self.rows, self.cols, entries)
    }

    /// Histogram of row lengths, for dataset-shape diagnostics.
    pub fn row_length_histogram(&self, buckets: &[usize]) -> Vec<usize> {
        let mut hist = vec![0usize; buckets.len() + 1];
        for r in 0..self.rows {
            let n = self.row_nnz(r);
            let b = buckets
                .iter()
                .position(|&ub| n <= ub)
                .unwrap_or(buckets.len());
            hist[b] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[0,5,0,4],[3,0,0,0],[0,0,0,1]]
        let mut m = CooMatrix::new(3, 4);
        m.push(0, 3, 4.0);
        m.push(0, 1, 5.0);
        m.push(1, 0, 3.0);
        m.push(2, 3, 1.0);
        CsrMatrix::from_coo(&m)
    }

    #[test]
    fn rows_are_sorted_by_column() {
        let m = sample();
        assert_eq!(m.row_cols(0), &[1, 3]);
        assert_eq!(m.row_values(0), &[5.0, 4.0]);
        assert_eq!(m.row_nnz(1), 1);
        assert_eq!(m.get(0, 3), Some(4.0));
        assert_eq!(m.get(0, 2), None);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(0, 0, 2.5);
        let csr = CsrMatrix::from_coo(&m);
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 0), Some(3.5));
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_moves_entries() {
        let t = sample().transpose();
        assert_eq!((t.rows(), t.cols()), (4, 3));
        assert_eq!(t.get(3, 0), Some(4.0));
        assert_eq!(t.get(3, 2), Some(1.0));
        assert_eq!(t.get(0, 1), Some(3.0));
    }

    #[test]
    fn spmv_reference() {
        let m = sample();
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 3];
        m.spmv(&x, &mut y);
        assert_eq!(y, [5.0 * 2.0 + 4.0 * 4.0, 3.0, 4.0]);
    }

    #[test]
    fn coo_round_trip_preserves_everything() {
        let m = sample();
        assert_eq!(CsrMatrix::from_coo(&m.to_coo()), m);
    }

    #[test]
    fn empty_rows_are_fine() {
        let coo = CooMatrix::new(4, 4); // all rows empty
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.nnz(), 0);
        for r in 0..4 {
            assert_eq!(m.row_nnz(r), 0);
        }
    }

    #[test]
    fn histogram_buckets() {
        let m = sample(); // row lengths 2,1,1
        assert_eq!(m.row_length_histogram(&[1, 2]), vec![2, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "row_ptr must be nondecreasing")]
    fn from_raw_validates_monotonicity() {
        CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0], vec![1.0]);
    }
}
