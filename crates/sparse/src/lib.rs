//! Sparse-matrix substrate for the cuMF_ALS reproduction.
//!
//! The rating matrix `R ∈ R^{m×n}` (Nz non-zeros) is consumed in two
//! orientations by ALS: by rows when updating `X` (each `x_u` needs column
//! indices + values of `R_{u*}`) and by columns when updating `Θ` (each
//! `θ_v` needs `R_{*v}`). We therefore keep both a [`csr::CsrMatrix`] and its
//! transpose; [`coo::CooMatrix`] is the interchange/builder format.
//!
//! [`blocking`] implements the 2-D grid partitioning used by the SGD family
//! (LIBMF, GPU-SGD): blocks sharing no rows or columns may be updated in
//! parallel without conflicts. [`split`] implements the experiment protocol's
//! train/test splits.

#![deny(missing_docs)]

pub mod blocking;
pub mod coo;
pub mod csr;
pub mod split;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
