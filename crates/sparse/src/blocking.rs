//! 2-D grid partitioning for parallel SGD (the "blocking" scheme of §VI-A).
//!
//! LIBMF, DSGD, NOMAD and GPU-SGD all rely on the same structural fact: two
//! SGD updates conflict only if they touch the same row of `X` or the same
//! row of `Θ`, i.e. only if the two ratings share a row or a column of `R`.
//! Partition `R` into a `gb × gb` grid of blocks; any set of blocks forming a
//! (generalized) diagonal is conflict-free and can be updated by `gb` workers
//! in parallel. A full pass over the grid is `gb` such *waves*.

use crate::coo::CooMatrix;

/// A `grid × grid` partition of a COO matrix into rectangular blocks.
///
/// Entry `(r, c)` belongs to block `(r / row_stride, c / col_stride)`.
/// Each block stores its entries contiguously so a worker streams them.
#[derive(Clone, Debug)]
pub struct BlockGrid {
    grid: usize,
    rows: usize,
    cols: usize,
    row_stride: usize,
    col_stride: usize,
    /// Entry index ranges per block, row-major over the grid.
    block_ptr: Vec<usize>,
    /// Entries grouped by block.
    entries: Vec<crate::coo::Entry>,
}

impl BlockGrid {
    /// Partition `coo` into a `grid × grid` block grid (counting sort, O(Nz)).
    pub fn partition(coo: &CooMatrix, grid: usize) -> Self {
        assert!(grid >= 1, "grid must be at least 1");
        let rows = coo.rows();
        let cols = coo.cols();
        let row_stride = rows.div_ceil(grid).max(1);
        let col_stride = cols.div_ceil(grid).max(1);
        let nblocks = grid * grid;

        let block_of = |e: &crate::coo::Entry| {
            let br = (e.row as usize / row_stride).min(grid - 1);
            let bc = (e.col as usize / col_stride).min(grid - 1);
            br * grid + bc
        };

        let mut counts = vec![0usize; nblocks + 1];
        for e in coo.entries() {
            counts[block_of(e) + 1] += 1;
        }
        for i in 0..nblocks {
            counts[i + 1] += counts[i];
        }
        let block_ptr = counts.clone();
        let mut entries = vec![
            crate::coo::Entry {
                row: 0,
                col: 0,
                value: 0.0
            };
            coo.nnz()
        ];
        let mut cursor = counts;
        for e in coo.entries() {
            let b = block_of(e);
            entries[cursor[b]] = *e;
            cursor[b] += 1;
        }

        BlockGrid {
            grid,
            rows,
            cols,
            row_stride,
            col_stride,
            block_ptr,
            entries,
        }
    }

    /// Grid dimension `gb`.
    #[inline]
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Shape of the underlying matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Entries of block `(br, bc)`.
    pub fn block(&self, br: usize, bc: usize) -> &[crate::coo::Entry] {
        assert!(br < self.grid && bc < self.grid, "block index out of range");
        let b = br * self.grid + bc;
        &self.entries[self.block_ptr[b]..self.block_ptr[b + 1]]
    }

    /// Non-zero count of block `(br, bc)`.
    pub fn block_nnz(&self, br: usize, bc: usize) -> usize {
        let b = br * self.grid + bc;
        self.block_ptr[b + 1] - self.block_ptr[b]
    }

    /// The `w`-th conflict-free wave: blocks `(i, (i + w) mod gb)` for all
    /// `i`. Over `w = 0..gb` every block is visited exactly once.
    pub fn wave(&self, w: usize) -> Vec<(usize, usize)> {
        (0..self.grid).map(|i| (i, (i + w) % self.grid)).collect()
    }

    /// Row range `[start, end)` covered by block row `br`.
    pub fn row_range(&self, br: usize) -> (usize, usize) {
        let s = br * self.row_stride;
        (
            s.min(self.rows),
            ((br + 1) * self.row_stride).min(self.rows),
        )
    }

    /// Column range `[start, end)` covered by block column `bc`.
    pub fn col_range(&self, bc: usize) -> (usize, usize) {
        let s = bc * self.col_stride;
        (
            s.min(self.cols),
            ((bc + 1) * self.col_stride).min(self.cols),
        )
    }

    /// Total entries across all blocks (must equal the source Nz).
    pub fn total_nnz(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_numeric::stats::XorShift64;

    fn random_coo(rows: usize, cols: usize, nnz: usize, seed: u64) -> CooMatrix {
        let mut rng = XorShift64::new(seed);
        let mut m = CooMatrix::new(rows, cols);
        for _ in 0..nnz {
            m.push(
                rng.next_below(rows) as u32,
                rng.next_below(cols) as u32,
                rng.next_f32(),
            );
        }
        m
    }

    #[test]
    fn partition_conserves_entries() {
        let coo = random_coo(100, 80, 1000, 1);
        let g = BlockGrid::partition(&coo, 4);
        assert_eq!(g.total_nnz(), 1000);
        let sum: usize = (0..4)
            .flat_map(|r| (0..4).map(move |c| (r, c)))
            .map(|(r, c)| g.block_nnz(r, c))
            .sum();
        assert_eq!(sum, 1000);
    }

    #[test]
    fn entries_land_in_their_block() {
        let coo = random_coo(64, 64, 500, 2);
        let g = BlockGrid::partition(&coo, 8);
        for br in 0..8 {
            for bc in 0..8 {
                let (rs, re) = g.row_range(br);
                let (cs, ce) = g.col_range(bc);
                for e in g.block(br, bc) {
                    assert!((e.row as usize) >= rs && (e.row as usize) < re);
                    assert!((e.col as usize) >= cs && (e.col as usize) < ce);
                }
            }
        }
    }

    #[test]
    fn waves_are_conflict_free_and_exhaustive() {
        let g = BlockGrid::partition(&random_coo(32, 32, 100, 3), 5);
        let mut seen = [false; 25];
        for w in 0..5 {
            let wave = g.wave(w);
            // No two blocks in one wave share a row or a column of the grid.
            for i in 0..wave.len() {
                for j in i + 1..wave.len() {
                    assert_ne!(wave[i].0, wave[j].0, "wave {w} shares block-row");
                    assert_ne!(wave[i].1, wave[j].1, "wave {w} shares block-col");
                }
            }
            for (r, c) in wave {
                assert!(!seen[r * 5 + c], "block visited twice");
                seen[r * 5 + c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every block visited");
    }

    #[test]
    fn grid_one_is_single_block() {
        let coo = random_coo(10, 10, 30, 4);
        let g = BlockGrid::partition(&coo, 1);
        assert_eq!(g.block_nnz(0, 0), 30);
        assert_eq!(g.wave(0), vec![(0, 0)]);
    }

    #[test]
    fn uneven_dimensions_cover_all_rows() {
        // 10 rows, grid 3 → stride 4: block rows cover 0..4, 4..8, 8..10.
        let coo = random_coo(10, 7, 50, 5);
        let g = BlockGrid::partition(&coo, 3);
        assert_eq!(g.row_range(2), (8, 10));
        assert_eq!(g.col_range(2), (6, 7));
        assert_eq!(g.total_nnz(), 50);
    }
}
