//! Coordinate-format sparse matrices: the builder/interchange format.
//!
//! Datasets arrive as `(user, item, rating)` triplets; [`CooMatrix`] holds
//! them with explicit dimensions and converts to [`crate::csr::CsrMatrix`]
//! via a counting sort (no comparison sort needed).

/// A single observation `r_{uv}`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry {
    /// Row index (user).
    pub row: u32,
    /// Column index (item).
    pub col: u32,
    /// Observed value (rating).
    pub value: f32,
}

/// A sparse matrix as an unordered list of entries.
#[derive(Clone, Debug)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<Entry>,
}

impl CooMatrix {
    /// An empty matrix of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Build from parts, validating every index against the shape.
    pub fn from_entries(rows: usize, cols: usize, entries: Vec<Entry>) -> Self {
        for e in &entries {
            assert!(
                (e.row as usize) < rows && (e.col as usize) < cols,
                "entry ({}, {}) out of bounds for {}×{}",
                e.row,
                e.col,
                rows,
                cols
            );
        }
        CooMatrix {
            rows,
            cols,
            entries,
        }
    }

    /// Append one observation.
    #[inline]
    pub fn push(&mut self, row: u32, col: u32, value: f32) {
        debug_assert!((row as usize) < self.rows && (col as usize) < self.cols);
        self.entries.push(Entry { row, col, value });
    }

    /// Reserve capacity for `additional` more entries.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Number of rows (m).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (n).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (Nz).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Borrow the entries.
    #[inline]
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Consume into the entry list.
    pub fn into_entries(self) -> Vec<Entry> {
        self.entries
    }

    /// Density `Nz / (m·n)`.
    pub fn density(&self) -> f64 {
        self.entries.len() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// Transposed copy (rows and columns swapped).
    pub fn transpose(&self) -> CooMatrix {
        CooMatrix {
            rows: self.cols,
            cols: self.rows,
            entries: self
                .entries
                .iter()
                .map(|e| Entry {
                    row: e.col,
                    col: e.row,
                    value: e.value,
                })
                .collect(),
        }
    }

    /// Mean of the stored values (0 if empty); datasets use this for
    /// mean-centering checks.
    pub fn mean_value(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().map(|e| e.value as f64).sum::<f64>() / self.entries.len() as f64
    }

    /// Per-row non-zero counts (`n_{x_u}` in the paper's notation).
    pub fn row_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.rows];
        for e in &self.entries {
            counts[e.row as usize] += 1;
        }
        counts
    }

    /// Per-column non-zero counts (`n_{θ_v}`).
    pub fn col_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.cols];
        for e in &self.entries {
            counts[e.col as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        let mut m = CooMatrix::new(3, 4);
        m.push(0, 1, 5.0);
        m.push(2, 3, 1.0);
        m.push(1, 0, 3.0);
        m.push(0, 3, 4.0);
        m
    }

    #[test]
    fn shape_and_counts() {
        let m = sample();
        assert_eq!((m.rows(), m.cols(), m.nnz()), (3, 4, 4));
        assert_eq!(m.row_counts(), vec![2, 1, 1]);
        assert_eq!(m.col_counts(), vec![1, 1, 0, 2]);
    }

    #[test]
    fn density_and_mean() {
        let m = sample();
        assert!((m.density() - 4.0 / 12.0).abs() < 1e-12);
        assert!((m.mean_value() - 3.25).abs() < 1e-12);
    }

    #[test]
    fn transpose_swaps_indices() {
        let t = sample().transpose();
        assert_eq!((t.rows(), t.cols()), (4, 3));
        assert_eq!(t.row_counts(), vec![1, 1, 0, 2]);
        assert!(t.entries().contains(&Entry {
            row: 1,
            col: 0,
            value: 5.0
        }));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_entries_validates() {
        CooMatrix::from_entries(
            2,
            2,
            vec![Entry {
                row: 2,
                col: 0,
                value: 1.0,
            }],
        );
    }

    #[test]
    fn empty_matrix_mean_is_zero() {
        assert_eq!(CooMatrix::new(5, 5).mean_value(), 0.0);
    }
}
