//! Train/test splitting, following the paper's protocol (§V-B): use the
//! provider split when one exists, otherwise hold out a random 10% of the
//! observations (what the paper does for Hugewiki).

use crate::coo::{CooMatrix, Entry};
use cumf_numeric::stats::XorShift64;

/// A dataset split into training and test observation sets over the same
/// `m × n` index space.
#[derive(Clone, Debug)]
pub struct TrainTestSplit {
    /// Training observations.
    pub train: CooMatrix,
    /// Held-out test observations.
    pub test: CooMatrix,
}

/// Randomly hold out a fraction `test_fraction` of the entries.
///
/// Deterministic given `seed`. Every entry lands in exactly one side.
pub fn random_split(data: &CooMatrix, test_fraction: f64, seed: u64) -> TrainTestSplit {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test_fraction must be in [0, 1)"
    );
    let mut rng = XorShift64::new(seed);
    let mut train = CooMatrix::new(data.rows(), data.cols());
    let mut test = CooMatrix::new(data.rows(), data.cols());
    let threshold = test_fraction as f32;
    for e in data.entries() {
        if rng.next_f32() < threshold {
            test.push(e.row, e.col, e.value);
        } else {
            train.push(e.row, e.col, e.value);
        }
    }
    TrainTestSplit { train, test }
}

/// Hold out up to `per_row` entries from every row that has more than
/// `min_keep` entries — a leave-k-out protocol that guarantees every user
/// keeps training signal (used by the recommender example).
pub fn leave_k_out_split(
    data: &CooMatrix,
    per_row: usize,
    min_keep: usize,
    seed: u64,
) -> TrainTestSplit {
    let mut rng = XorShift64::new(seed);
    // Bucket entries by row first.
    let mut by_row: Vec<Vec<Entry>> = vec![Vec::new(); data.rows()];
    for e in data.entries() {
        by_row[e.row as usize].push(*e);
    }
    let mut train = CooMatrix::new(data.rows(), data.cols());
    let mut test = CooMatrix::new(data.rows(), data.cols());
    for row in &mut by_row {
        // Fisher–Yates to pick the held-out entries uniformly.
        let k = if row.len() > min_keep {
            per_row.min(row.len() - min_keep)
        } else {
            0
        };
        let len = row.len();
        for i in 0..k {
            let j = i + rng.next_below(len - i);
            row.swap(i, j);
        }
        for (i, e) in row.iter().enumerate() {
            if i < k {
                test.push(e.row, e.col, e.value);
            } else {
                train.push(e.row, e.col, e.value);
            }
        }
    }
    TrainTestSplit { train, test }
}

impl TrainTestSplit {
    /// Fraction of all observations that were held out.
    pub fn test_fraction(&self) -> f64 {
        let total = self.train.nnz() + self.test.nnz();
        if total == 0 {
            0.0
        } else {
            self.test.nnz() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(rows: usize, cols: usize, nnz: usize) -> CooMatrix {
        let mut rng = XorShift64::new(99);
        let mut m = CooMatrix::new(rows, cols);
        for _ in 0..nnz {
            m.push(
                rng.next_below(rows) as u32,
                rng.next_below(cols) as u32,
                1.0 + rng.next_f32() * 4.0,
            );
        }
        m
    }

    #[test]
    fn random_split_conserves_entries() {
        let data = dataset(200, 100, 5000);
        let s = random_split(&data, 0.1, 7);
        assert_eq!(s.train.nnz() + s.test.nnz(), 5000);
        let f = s.test_fraction();
        assert!((f - 0.1).abs() < 0.02, "held-out fraction {f}");
    }

    #[test]
    fn random_split_is_deterministic() {
        let data = dataset(50, 50, 500);
        let a = random_split(&data, 0.2, 42);
        let b = random_split(&data, 0.2, 42);
        assert_eq!(a.train.nnz(), b.train.nnz());
        assert_eq!(a.test.entries(), b.test.entries());
    }

    #[test]
    fn different_seeds_differ() {
        let data = dataset(50, 50, 500);
        let a = random_split(&data, 0.2, 1);
        let b = random_split(&data, 0.2, 2);
        assert_ne!(a.test.entries(), b.test.entries());
    }

    #[test]
    fn zero_fraction_keeps_everything() {
        let data = dataset(20, 20, 100);
        let s = random_split(&data, 0.0, 3);
        assert_eq!(s.train.nnz(), 100);
        assert_eq!(s.test.nnz(), 0);
    }

    #[test]
    fn leave_k_out_respects_min_keep() {
        let data = dataset(100, 40, 2000);
        let s = leave_k_out_split(&data, 2, 3, 5);
        assert_eq!(s.train.nnz() + s.test.nnz(), 2000);
        let train_counts = s.train.row_counts();
        let orig_counts = data.row_counts();
        let test_counts = s.test.row_counts();
        for r in 0..100 {
            if orig_counts[r] > 3 {
                assert!(train_counts[r] as usize >= 3, "row {r} kept too little");
                assert!(test_counts[r] <= 2, "row {r} held out too much");
            } else {
                assert_eq!(test_counts[r], 0, "small row {r} must not lose entries");
            }
        }
    }
}
