//! Property-based tests on the GPU performance model: monotonicity and
//! invariants the pricing must satisfy for the paper's comparisons to be
//! trustworthy.

use cumf_gpu_sim::cache::CacheSim;
use cumf_gpu_sim::interconnect::Interconnect;
use cumf_gpu_sim::kernel::{launch_time, KernelCost};
use cumf_gpu_sim::memory::{load_time, staged_dram_bytes, LoadPattern, StagedLoad};
use cumf_gpu_sim::occupancy::{occupancy, KernelResources};
use cumf_gpu_sim::GpuSpec;
use proptest::prelude::*;

fn resources() -> impl Strategy<Value = KernelResources> {
    (
        8u32..=128,
        prop::sample::select(vec![32u32, 64, 128, 256]),
        0u32..32_768,
    )
        .prop_map(|(regs, threads, smem)| KernelResources {
            regs_per_thread: regs,
            threads_per_block: threads,
            shared_mem_per_block: smem,
        })
}

proptest! {
    /// More registers per thread never increases resident blocks.
    #[test]
    fn occupancy_monotone_in_registers(threads in prop::sample::select(vec![32u32, 64, 128])) {
        let spec = GpuSpec::maxwell_titan_x();
        let mut prev = u32::MAX;
        for regs in [16u32, 32, 64, 128, 255] {
            if regs * threads > spec.registers_per_sm {
                break;
            }
            let occ = occupancy(&spec, &KernelResources {
                regs_per_thread: regs, threads_per_block: threads, shared_mem_per_block: 0,
            });
            prop_assert!(occ.blocks_per_sm <= prev);
            prev = occ.blocks_per_sm;
        }
    }

    /// Occupancy never exceeds any of the four hardware limits.
    #[test]
    fn occupancy_respects_all_limits(res in resources()) {
        let spec = GpuSpec::maxwell_titan_x();
        if res.regs_per_thread * res.threads_per_block > spec.registers_per_sm
            || res.shared_mem_per_block > spec.shared_mem_per_sm {
            return Ok(());
        }
        let occ = occupancy(&spec, &res);
        prop_assert!(occ.blocks_per_sm >= 1);
        prop_assert!(occ.blocks_per_sm <= spec.max_blocks_per_sm);
        prop_assert!(occ.blocks_per_sm * res.threads_per_block <= spec.max_threads_per_sm);
        prop_assert!(occ.blocks_per_sm * res.regs_per_thread * res.threads_per_block <= spec.registers_per_sm);
        if res.shared_mem_per_block > 0 {
            prop_assert!(occ.blocks_per_sm * res.shared_mem_per_block <= spec.shared_mem_per_sm);
        }
        prop_assert!(occ.fraction <= 1.0);
    }

    /// DRAM traffic estimate is bounded by [unique, total] and monotone in
    /// the total.
    #[test]
    fn staged_dram_bytes_bounded(
        unique_kb in 1u64..100_000,
        extra_kb in 0u64..1_000_000,
    ) {
        let spec = GpuSpec::maxwell_titan_x();
        let load = StagedLoad { total_bytes: (unique_kb + extra_kb) << 10, unique_bytes: unique_kb << 10 };
        let d = staged_dram_bytes(&spec, &load);
        prop_assert!(d >= load.unique_bytes as f64 * 0.999);
        prop_assert!(d <= load.total_bytes as f64 * 1.001);
    }

    /// Under identical occupancy and load, nonCoal-L1 is never slower than
    /// the other two schemes (the Solution-2 claim, for any workload).
    #[test]
    fn noncoal_l1_dominates(
        total_mb in 1u64..4_000,
        unique_kb in 64u64..500_000,
    ) {
        let spec = GpuSpec::maxwell_titan_x();
        let occ = occupancy(&spec, &KernelResources {
            regs_per_thread: 168, threads_per_block: 64, shared_mem_per_block: 12_800,
        });
        let load = StagedLoad {
            total_bytes: (total_mb << 20).max(unique_kb << 10),
            unique_bytes: unique_kb << 10,
        };
        let l1 = load_time(&spec, &occ, LoadPattern::NonCoalescedL1, &load).time;
        let no_l1 = load_time(&spec, &occ, LoadPattern::NonCoalescedNoL1, &load).time;
        let coal = load_time(&spec, &occ, LoadPattern::Coalesced, &load).time;
        prop_assert!(l1 <= no_l1 * 1.0001);
        prop_assert!(l1 <= coal * 1.0001);
    }

    /// Kernel pricing is monotone: adding flops or bytes never makes a
    /// launch faster.
    #[test]
    fn launch_time_monotone(
        flops in 1e6f64..1e13,
        bytes in 1e3f64..1e11,
        extra_flops in 0f64..1e12,
        extra_bytes in 0f64..1e10,
    ) {
        let spec = GpuSpec::pascal_p100();
        let occ = occupancy(&spec, &KernelResources {
            regs_per_thread: 32, threads_per_block: 128, shared_mem_per_block: 0,
        });
        let mk = |fl: f64, by: f64| KernelCost {
            flops_fp32: fl,
            dram_read_bytes: by,
            l2_wire_bytes: by,
            transactions: by / 128.0,
            mlp: 16.0,
            pipe_efficiency: 0.5,
            ..Default::default()
        };
        let t1 = launch_time(&spec, &occ, &mk(flops, bytes)).time;
        let t2 = launch_time(&spec, &occ, &mk(flops + extra_flops, bytes + extra_bytes)).time;
        prop_assert!(t2 >= t1 * 0.9999);
    }

    /// A faster device never prices the same cost slower.
    #[test]
    fn newer_devices_dominate(flops in 1e9f64..1e13, bytes in 1e6f64..1e11) {
        let res = KernelResources { regs_per_thread: 32, threads_per_block: 128, shared_mem_per_block: 0 };
        let cost = KernelCost {
            flops_fp32: flops,
            dram_read_bytes: bytes,
            l2_wire_bytes: bytes,
            transactions: bytes / 128.0,
            mlp: 16.0,
            pipe_efficiency: 0.5,
            ..Default::default()
        };
        let cat = GpuSpec::paper_catalog();
        let mut prev = f64::INFINITY;
        for spec in &cat {
            let t = launch_time(spec, &occupancy(spec, &res), &cost).time;
            prop_assert!(t <= prev * 1.0001, "{} got slower", spec.name);
            prev = t;
        }
    }

    /// All-gather time grows with payload and with GPU count but stays
    /// sublinear in GPUs (the (G−1)/G payload form).
    #[test]
    fn allgather_scaling(bytes_mb in 1u64..10_000) {
        let bytes = bytes_mb << 20;
        for ic in [Interconnect::nvlink(), Interconnect::pcie3()] {
            let t2 = ic.allgather_time(bytes, 2);
            let t4 = ic.allgather_time(bytes, 4);
            prop_assert!(t4 >= t2);
            prop_assert!(ic.allgather_time(2 * bytes, 4) > t4);
        }
    }

    /// Cache hit ratio is bounded and total accesses are conserved.
    #[test]
    fn cache_accounting(addrs in prop::collection::vec(0u64..100_000, 1..2_000)) {
        let mut sim = CacheSim::new(8 << 10, 128, 4);
        for &a in &addrs {
            sim.access(a);
        }
        prop_assert_eq!(sim.hits() + sim.misses(), addrs.len() as u64);
        prop_assert!(sim.hit_ratio() >= 0.0 && sim.hit_ratio() <= 1.0);
        prop_assert_eq!(sim.fill_bytes(), sim.misses() * 128);
    }

    /// LRU inclusion property: a larger fully-associative cache never has
    /// fewer hits on the same trace.
    #[test]
    fn lru_inclusion(addrs in prop::collection::vec(0u64..50_000, 1..1_500)) {
        let mut small = CacheSim::fully_associative(4 << 10, 128);
        let mut large = CacheSim::fully_associative(16 << 10, 128);
        for &a in &addrs {
            small.access(a);
            large.access(a);
        }
        prop_assert!(large.hits() >= small.hits());
    }
}
