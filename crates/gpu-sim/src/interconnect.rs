//! Multi-GPU interconnect model: PCIe 3.0 and NVLink.
//!
//! cuMF_ALS parallelizes across GPUs model-parallel: GPU `g` of `G` updates
//! a `1/G` slice of the rows of `X` (then of `Θ`), after which the slices
//! are all-gathered so every GPU holds the full updated factor for the next
//! half-iteration. The paper's Pascal server links its four P100s with
//! NVLink (40 GB/s per link, four links per GPU); the Kepler/Maxwell servers
//! use PCIe 3.0 x16.

/// A GPU-to-GPU interconnect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interconnect {
    /// Human-readable name.
    pub name: &'static str,
    /// Per-direction bandwidth between a GPU pair, bytes/s.
    pub link_bandwidth: f64,
    /// Per-transfer latency, seconds.
    pub latency: f64,
    /// Whether all pairs are directly connected (NVLink mesh on 4 GPUs) or
    /// share a host bridge (PCIe through the root complex).
    pub all_to_all: bool,
}

impl Interconnect {
    /// PCIe 3.0 x16: ~12.8 GB/s effective per direction, shared bridge.
    pub fn pcie3() -> Interconnect {
        Interconnect {
            name: "PCIe 3.0 x16",
            link_bandwidth: 12.8e9,
            latency: 10e-6,
            all_to_all: false,
        }
    }

    /// NVLink 1.0 as on the P100 server: 4 links × 40 GB/s per GPU
    /// (the paper quotes 40 GB/s per link with four links per GPU).
    pub fn nvlink() -> Interconnect {
        Interconnect {
            name: "NVLink",
            link_bandwidth: 40e9,
            latency: 5e-6,
            all_to_all: true,
        }
    }

    /// Time for a ring all-gather where each of `gpus` devices contributes
    /// `bytes_total / gpus` and ends holding all `bytes_total` bytes.
    ///
    /// Ring all-gather moves `(G−1)/G × bytes_total` over each link in
    /// `G−1` latency-bounded steps. On a shared PCIe bridge the steps
    /// serialize (bandwidth divided by concurrent transfers).
    pub fn allgather_time(&self, bytes_total: u64, gpus: u32) -> f64 {
        if gpus <= 1 {
            return 0.0;
        }
        let g = gpus as f64;
        let payload = bytes_total as f64 * (g - 1.0) / g;
        let effective_bw = if self.all_to_all {
            self.link_bandwidth // each ring link independent
        } else {
            self.link_bandwidth / (g / 2.0) // bridge shared by concurrent transfers
        };
        payload / effective_bw + (g - 1.0) * self.latency
    }

    /// Time to broadcast `bytes` from one GPU to all others (tree on
    /// all-to-all fabrics, serialized on a bridge).
    pub fn broadcast_time(&self, bytes: u64, gpus: u32) -> f64 {
        if gpus <= 1 {
            return 0.0;
        }
        let g = gpus as f64;
        if self.all_to_all {
            let steps = (g).log2().ceil();
            steps * (bytes as f64 / self.link_bandwidth + self.latency)
        } else {
            (g - 1.0) * (bytes as f64 / self.link_bandwidth + self.latency)
        }
    }

    /// Host-to-device transfer time of `bytes` (initial data upload).
    pub fn h2d_time(&self, bytes: u64) -> f64 {
        // H2D goes over PCIe even on NVLink GPUs (P100 NVLink-to-host exists
        // only on POWER systems — which the Pascal server is; use the link).
        bytes as f64 / self.link_bandwidth + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allgather_zero_for_single_gpu() {
        assert_eq!(Interconnect::nvlink().allgather_time(1 << 30, 1), 0.0);
    }

    #[test]
    fn nvlink_beats_pcie() {
        let bytes = 1u64 << 30;
        for g in [2u32, 4] {
            let nv = Interconnect::nvlink().allgather_time(bytes, g);
            let pcie = Interconnect::pcie3().allgather_time(bytes, g);
            assert!(nv < pcie, "g={g}: nvlink {nv} vs pcie {pcie}");
        }
    }

    #[test]
    fn allgather_payload_scales_with_gpu_fraction() {
        // (G−1)/G of the data moves: 2 GPUs → 1/2, 4 GPUs → 3/4.
        let ic = Interconnect::nvlink();
        let t2 = ic.allgather_time(1 << 30, 2);
        let t4 = ic.allgather_time(1 << 30, 4);
        assert!(t4 > t2);
        assert!(t4 < t2 * 2.0, "sub-linear growth");
    }

    #[test]
    fn pcie_bridge_contention_grows_with_gpus() {
        let ic = Interconnect::pcie3();
        let t2 = ic.allgather_time(1 << 28, 2);
        let t4 = ic.allgather_time(1 << 28, 4);
        // 4 GPUs: 1.5× payload at half effective bandwidth → 3× time.
        assert!(t4 / t2 > 2.5 && t4 / t2 < 3.5, "ratio {}", t4 / t2);
    }

    #[test]
    fn broadcast_log_steps_on_nvlink() {
        let ic = Interconnect::nvlink();
        let t4 = ic.broadcast_time(1 << 30, 4);
        let one_hop = (1u64 << 30) as f64 / ic.link_bandwidth;
        assert!(
            (t4 - 2.0 * (one_hop + ic.latency)).abs() < 1e-9,
            "log2(4)=2 steps"
        );
    }

    #[test]
    fn paper_quoted_nvlink_bandwidth() {
        assert_eq!(Interconnect::nvlink().link_bandwidth, 40e9);
    }
}
