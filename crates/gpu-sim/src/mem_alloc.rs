//! Device memory arena: capacity accounting and transfer pricing.
//!
//! cuMF_ALS's multi-GPU design exists because the factor matrices do not
//! fit one device (Hugewiki's `X` alone is 20 GB against a 12–16 GB card).
//! [`DeviceMemory`] tracks named allocations against a [`GpuSpec`]'s
//! capacity so trainers and harnesses can *prove* a configuration fits —
//! or fail the same way `cudaMalloc` would.

use crate::device::GpuSpec;
use std::collections::BTreeMap;

/// Error returned when an allocation exceeds remaining device memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// What the caller tried to allocate.
    pub label: String,
    /// Bytes requested.
    pub requested: u64,
    /// Bytes still free.
    pub available: u64,
}

impl core::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "device out of memory: {} needs {} bytes, {} free",
            self.label, self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A named-allocation tracker for one device.
#[derive(Clone, Debug)]
pub struct DeviceMemory {
    capacity: u64,
    allocations: BTreeMap<String, u64>,
}

impl DeviceMemory {
    /// An empty arena with the device's full capacity.
    pub fn new(spec: &GpuSpec) -> Self {
        DeviceMemory {
            capacity: spec.dram_capacity,
            allocations: BTreeMap::new(),
        }
    }

    /// An arena with explicit capacity (tests, reserved-memory scenarios).
    pub fn with_capacity(capacity: u64) -> Self {
        DeviceMemory {
            capacity,
            allocations: BTreeMap::new(),
        }
    }

    /// Allocate `bytes` under `label`; labels must be unique while live.
    pub fn alloc(&mut self, label: &str, bytes: u64) -> Result<(), OutOfMemory> {
        assert!(
            !self.allocations.contains_key(label),
            "allocation {label:?} already live"
        );
        let available = self.available();
        if bytes > available {
            return Err(OutOfMemory {
                label: label.to_string(),
                requested: bytes,
                available,
            });
        }
        self.allocations.insert(label.to_string(), bytes);
        Ok(())
    }

    /// Free a live allocation; returns its size.
    pub fn free(&mut self, label: &str) -> u64 {
        self.allocations
            .remove(label)
            .unwrap_or_else(|| panic!("allocation {label:?} not live"))
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.allocations.values().sum()
    }

    /// Bytes still free.
    pub fn available(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Live allocations, alphabetical by label.
    pub fn allocations(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.allocations.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

/// The standard device-resident footprint of an ALS problem slice:
/// `rows/gpus` rows of X, all of Θ, the rating slice in CSR, and a solver
/// staging window. Mirrors what cuMF_ALS keeps resident per GPU.
pub fn als_footprint(
    mem: &mut DeviceMemory,
    m: u64,
    n: u64,
    nz: u64,
    f: u64,
    gpus: u64,
) -> Result<(), OutOfMemory> {
    mem.alloc("x_slice", m.div_ceil(gpus) * f * 4)?;
    mem.alloc("theta_full", n * f * 4)?;
    mem.alloc("csr_slice", nz / gpus * 8 + (m.div_ceil(gpus) + 1) * 8)?;
    mem.alloc("solver_staging", 4096 * f * f * 4)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut mem = DeviceMemory::with_capacity(1000);
        mem.alloc("a", 600).unwrap();
        assert_eq!(mem.used(), 600);
        assert_eq!(mem.available(), 400);
        assert_eq!(mem.free("a"), 600);
        assert_eq!(mem.used(), 0);
    }

    #[test]
    fn oom_reports_shortfall() {
        let mut mem = DeviceMemory::with_capacity(100);
        mem.alloc("a", 80).unwrap();
        let err = mem.alloc("b", 30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.available, 20);
        // Failed allocation leaves state unchanged.
        assert_eq!(mem.used(), 80);
    }

    #[test]
    #[should_panic(expected = "already live")]
    fn duplicate_labels_rejected() {
        let mut mem = DeviceMemory::with_capacity(100);
        mem.alloc("a", 10).unwrap();
        let _ = mem.alloc("a", 10);
    }

    #[test]
    fn hugewiki_fits_only_when_partitioned() {
        // 50M × 100 × 4B = 20 GB of X: more than a Titan X.
        let spec = GpuSpec::maxwell_titan_x();
        let (m, n, nz, f) = (50_082_603u64, 39_780u64, 3_100_000_000u64, 100u64);
        let mut one = DeviceMemory::new(&spec);
        assert!(als_footprint(&mut one, m, n, nz, f, 1).is_err());
        let mut four = DeviceMemory::new(&spec);
        als_footprint(&mut four, m, n, nz, f, 4).expect("4-way partition must fit");
        assert!(four.used() < spec.dram_capacity);
    }

    #[test]
    fn netflix_fits_one_gpu() {
        let spec = GpuSpec::kepler_k40();
        let mut mem = DeviceMemory::new(&spec);
        als_footprint(&mut mem, 480_189, 17_770, 99_072_112, 100, 1).expect("Netflix fits one K40");
    }

    #[test]
    fn allocations_iterator_sorted() {
        let mut mem = DeviceMemory::with_capacity(100);
        mem.alloc("zeta", 1).unwrap();
        mem.alloc("alpha", 2).unwrap();
        let labels: Vec<&str> = mem.allocations().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["alpha", "zeta"]);
    }
}
