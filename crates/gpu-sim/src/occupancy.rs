//! The occupancy calculator — Observation 2 of the paper.
//!
//! A kernel's resident blocks per SM is the minimum of four limits: register
//! file, shared memory, thread count, and the hardware block cap. The
//! paper's worked example: at `f = 100`, `get_hermitian` uses 168 registers
//! per thread and 64-thread blocks, so an SM holds
//! `65536 / (168 × 64) ≈ 6` blocks — far below the 32-block capacity, hence
//! low occupancy, hence latency-bound loads (and hence Solution 2).
//!
//! # Example
//!
//! The paper's worked example, verbatim:
//!
//! ```
//! use cumf_gpu_sim::device::GpuSpec;
//! use cumf_gpu_sim::occupancy::{occupancy, KernelResources, OccupancyLimit};
//!
//! let occ = occupancy(
//!     &GpuSpec::maxwell_titan_x(),
//!     &KernelResources {
//!         regs_per_thread: 168,     // get_hermitian at f = 100, T = 10
//!         threads_per_block: 64,
//!         shared_mem_per_block: 4 * 1024,
//!     },
//! );
//! assert_eq!(occ.blocks_per_sm, 6); // 65536 / (168 × 64) = 6
//! assert_eq!(occ.limited_by, OccupancyLimit::Registers);
//! ```

use crate::device::GpuSpec;
use serde::Serialize;

/// Per-launch resource requirements of a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelResources {
    /// 32-bit registers per thread.
    pub regs_per_thread: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Shared memory per block, bytes.
    pub shared_mem_per_block: u32,
}

/// Which resource capped the resident block count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum OccupancyLimit {
    /// Register file exhausted first (the paper's `get_hermitian` case).
    Registers,
    /// Shared memory exhausted first.
    SharedMemory,
    /// Thread slots exhausted first.
    Threads,
    /// The hardware cap on resident blocks.
    BlockSlots,
}

/// Result of the occupancy calculation for one kernel on one device.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM (blocks × threads / 32).
    pub warps_per_sm: u32,
    /// Fraction of the SM's maximum resident threads in use.
    pub fraction: f64,
    /// The binding resource.
    pub limited_by: OccupancyLimit,
}

impl Occupancy {
    /// Warps in flight across the whole device — the denominator of the
    /// latency-hiding term in the kernel timing model.
    pub fn device_warps(&self, spec: &GpuSpec) -> u32 {
        self.warps_per_sm * spec.num_sms
    }
}

/// Compute occupancy of a kernel on a device.
///
/// Panics if a single block can never fit (more registers/smem/threads than
/// one SM has) — that launch would fail on real hardware too.
pub fn occupancy(spec: &GpuSpec, res: &KernelResources) -> Occupancy {
    assert!(res.threads_per_block > 0, "empty block");
    let regs_per_block = (res.regs_per_thread * res.threads_per_block).max(1);
    assert!(
        regs_per_block <= spec.registers_per_sm,
        "block needs {} registers, SM has {}",
        regs_per_block,
        spec.registers_per_sm
    );
    assert!(
        res.shared_mem_per_block <= spec.shared_mem_per_sm,
        "block needs {} B shared memory, SM has {}",
        res.shared_mem_per_block,
        spec.shared_mem_per_sm
    );
    assert!(
        res.threads_per_block <= spec.max_threads_per_sm,
        "block has {} threads, SM cap {}",
        res.threads_per_block,
        spec.max_threads_per_sm
    );

    let by_regs = spec.registers_per_sm / regs_per_block;
    let by_smem = spec
        .shared_mem_per_sm
        .checked_div(res.shared_mem_per_block)
        .unwrap_or(u32::MAX);
    let by_threads = spec.max_threads_per_sm / res.threads_per_block;
    let by_slots = spec.max_blocks_per_sm;

    let (blocks, limited_by) = [
        (by_regs, OccupancyLimit::Registers),
        (by_smem, OccupancyLimit::SharedMemory),
        (by_threads, OccupancyLimit::Threads),
        (by_slots, OccupancyLimit::BlockSlots),
    ]
    .into_iter()
    .min_by_key(|&(b, _)| b)
    .unwrap();

    let warps_per_sm = blocks * res.threads_per_block.div_ceil(32);
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm,
        fraction: (blocks * res.threads_per_block) as f64 / spec.max_threads_per_sm as f64,
        limited_by,
    }
}

/// Register demand of the paper's `get_hermitian` at feature dimension `f`
/// with tile size `T`: each thread keeps its share of the packed `A_u` tile
/// grid in registers plus staging/addressing temporaries. Calibrated so that
/// `f = 100, T = 10, 64-thread blocks → 168 regs/thread`, the figure the
/// paper reports.
pub fn hermitian_regs_per_thread(f: u32, tile: u32, threads_per_block: u32) -> u32 {
    // Lower-triangle tile grid: g = f/T columns of tiles, g(g+1)/2 tiles of
    // T×T accumulators, spread across the block's threads.
    let g = f.div_ceil(tile);
    let acc_regs = (g * (g + 1) / 2 * tile * tile).div_ceil(threads_per_block);
    // Addressing, loop counters, staged operands: fixed overhead measured
    // from the open-source kernel's compilation (≈ 82 at T = 10).
    acc_regs + 82
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::GpuSpec;

    #[test]
    fn paper_worked_example() {
        // f=100: 168 regs/thread, 64-thread blocks → 6 blocks/SM on Maxwell,
        // register-limited (Observation 2).
        let spec = GpuSpec::maxwell_titan_x();
        let regs = hermitian_regs_per_thread(100, 10, 64);
        assert_eq!(regs, 168, "paper quotes 168 registers per thread");
        let occ = occupancy(
            &spec,
            &KernelResources {
                regs_per_thread: regs,
                threads_per_block: 64,
                shared_mem_per_block: 32 * 100 * 4,
            },
        );
        assert_eq!(occ.blocks_per_sm, 6);
        assert_eq!(occ.limited_by, OccupancyLimit::Registers);
        assert!(occ.fraction < 0.25, "low occupancy: {}", occ.fraction);
    }

    #[test]
    fn light_kernel_hits_block_slot_cap() {
        let spec = GpuSpec::maxwell_titan_x();
        let occ = occupancy(
            &spec,
            &KernelResources {
                regs_per_thread: 16,
                threads_per_block: 32,
                shared_mem_per_block: 0,
            },
        );
        assert_eq!(occ.limited_by, OccupancyLimit::BlockSlots);
        assert_eq!(occ.blocks_per_sm, 32);
    }

    #[test]
    fn thread_limited_kernel() {
        let spec = GpuSpec::maxwell_titan_x();
        let occ = occupancy(
            &spec,
            &KernelResources {
                regs_per_thread: 16,
                threads_per_block: 1024,
                shared_mem_per_block: 0,
            },
        );
        assert_eq!(occ.limited_by, OccupancyLimit::Threads);
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.fraction, 1.0);
    }

    #[test]
    fn smem_limited_kernel() {
        let spec = GpuSpec::maxwell_titan_x(); // 96 KB smem per SM
        let occ = occupancy(
            &spec,
            &KernelResources {
                regs_per_thread: 16,
                threads_per_block: 64,
                shared_mem_per_block: 40 << 10,
            },
        );
        assert_eq!(occ.limited_by, OccupancyLimit::SharedMemory);
        assert_eq!(occ.blocks_per_sm, 2);
    }

    #[test]
    fn device_warps_scale_with_sms() {
        let m = GpuSpec::maxwell_titan_x();
        let p = GpuSpec::pascal_p100();
        let res = KernelResources {
            regs_per_thread: 64,
            threads_per_block: 128,
            shared_mem_per_block: 0,
        };
        let om = occupancy(&m, &res);
        let op = occupancy(&p, &res);
        assert!(op.device_warps(&p) > om.device_warps(&m));
    }

    #[test]
    #[should_panic(expected = "registers")]
    fn impossible_launch_panics() {
        occupancy(
            &GpuSpec::maxwell_titan_x(),
            &KernelResources {
                regs_per_thread: 255,
                threads_per_block: 1024,
                shared_mem_per_block: 0,
            },
        );
    }

    #[test]
    fn register_demand_grows_with_f() {
        assert!(hermitian_regs_per_thread(140, 10, 64) > hermitian_regs_per_thread(100, 10, 64));
        // Bigger blocks spread the accumulators thinner.
        assert!(hermitian_regs_per_thread(100, 10, 128) < hermitian_regs_per_thread(100, 10, 64));
    }
}
