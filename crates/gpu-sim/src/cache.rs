//! A trace-driven set-associative LRU cache model.
//!
//! Used in two roles:
//!
//! 1. **Validation** — unit and property tests replay small synthetic warp
//!    traces through [`CacheSim`] to check the closed-form hit-rate
//!    estimates the kernel cost model uses (see [`crate::memory`]).
//! 2. **Microbenchmark experiments** — the Figure-4 harness replays a
//!    sampled slice of the real `get_hermitian` access stream to measure
//!    L1/L2 behaviour of coalesced vs. non-coalesced staging directly.
//!
//! # Example
//!
//! ```
//! use cumf_gpu_sim::cache::{Access, CacheSim};
//!
//! // A Maxwell-shaped L1: 24 KiB of 128-byte lines, 4-way.
//! let mut l1 = CacheSim::new(24 * 1024, 128, 4);
//! assert_eq!(l1.access(0x1000), Access::Miss); // cold line
//! assert_eq!(l1.access(0x1004), Access::Hit);  // same 128-byte line
//! assert_eq!(l1.hit_ratio(), 0.5);
//! ```

use serde::Serialize;

/// Result of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// The line was resident.
    Hit,
    /// The line was fetched (and possibly evicted another).
    Miss,
}

/// A set-associative cache with LRU replacement over 64-bit byte addresses.
#[derive(Clone, Debug)]
pub struct CacheSim {
    line_size: u64,
    num_sets: u64,
    ways: usize,
    /// `sets[s]` holds up to `ways` line tags, most recently used last.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Build a cache of `capacity_bytes` with the given line size and
    /// associativity. Capacity must be a multiple of `line_size × ways`.
    pub fn new(capacity_bytes: u64, line_size: u64, ways: usize) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1);
        let lines = capacity_bytes / line_size;
        assert!(lines >= ways as u64, "capacity too small for associativity");
        let num_sets = lines / ways as u64;
        assert!(num_sets >= 1, "capacity must cover at least one set");
        CacheSim {
            line_size,
            num_sets,
            ways,
            sets: vec![Vec::with_capacity(ways); num_sets as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// A fully-associative cache (single set).
    pub fn fully_associative(capacity_bytes: u64, line_size: u64) -> Self {
        let ways = (capacity_bytes / line_size) as usize;
        CacheSim {
            line_size,
            num_sets: 1,
            ways,
            sets: vec![Vec::with_capacity(ways)],
            hits: 0,
            misses: 0,
        }
    }

    /// Touch one byte address; returns whether its line was resident.
    pub fn access(&mut self, addr: u64) -> Access {
        let line = addr / self.line_size;
        let set = (line % self.num_sets) as usize;
        let ways = self.ways;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&t| t == line) {
            let tag = entries.remove(pos);
            entries.push(tag); // move to MRU
            self.hits += 1;
            Access::Hit
        } else {
            if entries.len() == ways {
                entries.remove(0); // evict LRU
            }
            entries.push(line);
            self.misses += 1;
            Access::Miss
        }
    }

    /// Touch a run of `bytes` starting at `addr`, one access per element of
    /// `elem_size` bytes (how a thread walks a feature vector).
    pub fn access_run(&mut self, addr: u64, bytes: u64, elem_size: u64) {
        let mut a = addr;
        let end = addr + bytes;
        while a < end {
            self.access(a);
            a += elem_size;
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio over all accesses so far (0 if none).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Bytes fetched from the next level (misses × line size).
    pub fn fill_bytes(&self) -> u64 {
        self.misses * self.line_size
    }

    /// Snapshot all counters at once, so a recorder sees a consistent view
    /// (hits, misses, ratio, and fill traffic from the same instant).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            hit_ratio: self.hit_ratio(),
            fill_bytes: self.fill_bytes(),
        }
    }

    /// Reset counters but keep cache contents.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }
}

/// An atomic snapshot of a [`CacheSim`]'s counters (see [`CacheSim::stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct CacheStats {
    /// Accesses that found their line resident.
    pub hits: u64,
    /// Accesses that fetched from the next level.
    pub misses: u64,
    /// `hits / (hits + misses)`, or 0 when no accesses were made.
    pub hit_ratio: f64,
    /// Bytes fetched from the next level (misses × line size).
    pub fill_bytes: u64,
}

/// Maxwell's per-SM L1: 48 KB, 128-byte lines, modeled 4-way.
pub fn maxwell_l1() -> CacheSim {
    CacheSim::new(48 << 10, 128, 4)
}

/// Maxwell's device L2: 3 MB, 128-byte lines, modeled 16-way.
pub fn maxwell_l2() -> CacheSim {
    CacheSim::new(3 << 20, 128, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits_after_cold_miss() {
        let mut c = CacheSim::new(1024, 64, 2);
        assert_eq!(c.access(0), Access::Miss);
        assert_eq!(c.access(32), Access::Hit); // same 64B line
        assert_eq!(c.access(0), Access::Hit);
        assert_eq!(c.hit_ratio(), 2.0 / 3.0);
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut c = CacheSim::fully_associative(4096, 64);
        // 4 KB working set == capacity: after one pass everything resides.
        for pass in 0..3 {
            c.reset_counters();
            c.access_run(0, 4096, 4);
            if pass > 0 {
                assert_eq!(c.misses(), 0, "pass {pass} should be all hits");
            }
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_lru() {
        // Sequential sweep over 2× capacity with LRU: every line misses,
        // every pass (the classic LRU worst case).
        let mut c = CacheSim::fully_associative(1024, 64);
        for _ in 0..3 {
            c.access_run(0, 2048, 64);
        }
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 3 * 32);
    }

    #[test]
    fn hit_ratio_monotone_in_capacity_for_looped_sweep() {
        let trace: Vec<u64> = (0..4u64)
            .flat_map(|_| (0..64u64).map(|i| i * 128))
            .collect();
        let mut prev = -1.0f64;
        for cap_kb in [1u64, 2, 4, 8, 16] {
            let mut c = CacheSim::fully_associative(cap_kb << 10, 128);
            for &a in &trace {
                c.access(a);
            }
            let r = c.hit_ratio();
            assert!(r >= prev, "cap {cap_kb}KB: {r} < {prev}");
            prev = r;
        }
        assert!(prev > 0.7, "largest cache should mostly hit");
    }

    #[test]
    fn set_conflicts_evict_even_below_capacity() {
        // Two lines mapping to the same set of a direct-mapped cache
        // alternate: all misses despite tiny working set.
        let mut c = CacheSim::new(1024, 64, 1); // 16 sets, direct-mapped
        for _ in 0..10 {
            c.access(0);
            c.access(1024); // same set (16 lines apart)
        }
        assert_eq!(c.hits(), 0);
        // A 2-way cache of the same size keeps both.
        let mut c2 = CacheSim::new(1024, 64, 2);
        for _ in 0..10 {
            c2.access(0);
            c2.access(1024);
        }
        assert_eq!(c2.misses(), 2);
        assert_eq!(c2.hits(), 18);
    }

    #[test]
    fn fill_bytes_counts_lines() {
        let mut c = CacheSim::new(1 << 20, 128, 8);
        c.access_run(0, 1024, 4); // 8 lines
        assert_eq!(c.fill_bytes(), 8 * 128);
    }

    #[test]
    fn presets_have_paper_capacities() {
        let l1 = maxwell_l1();
        let l2 = maxwell_l2();
        assert_eq!(l1.line_size(), 128);
        // 48 KB / 128 B = 384 lines; 3 MB / 128 B = 24576 lines.
        let mut l1m = l1;
        l1m.access_run(0, 48 << 10, 128);
        assert_eq!(l1m.misses(), 384);
        let mut l2m = l2;
        l2m.access_run(0, 3 << 20, 128);
        assert_eq!(l2m.misses(), 24576);
    }
}
