//! Warp-level load modeling: coalescing, cache-assisted staging, DRAM.
//!
//! This module prices the *load phase* of `get_hermitian` (Figure 3 of the
//! paper) under the three schemes Figure 4 measures:
//!
//! * **Coalesced** (`coal`): all 32 threads of a warp cooperatively read one
//!   feature column before moving to the next. Few memory instructions, all
//!   128-byte transactions, L1 bypassed (the CUDA default for global loads).
//!   Under *low occupancy* the warp cannot keep enough requests in flight —
//!   the phase becomes latency-bound (Observation 2).
//! * **Non-coalesced + L1** (`nonCoal-L1`): each thread reads a *different*
//!   column. 32× more requests in flight per warp, and because each thread
//!   walks consecutive addresses, every 128-byte line it pulls serves its
//!   next 31 reads from L1 — the cache acts as the coalescer (Solution 2).
//! * **Non-coalesced, L1 bypassed** (`nonCoal-noL1`): same pattern but
//!   every request goes to L2 at 32-byte sector granularity, paying extra
//!   wire traffic on the L2 crossbar.
//!
//! The DRAM side is common to all three: traffic below the L2 is what the
//! cache does not absorb. Cross-block reuse of staged feature columns is
//! estimated with a residency model validated against [`crate::cache`]'s
//! trace simulation in this module's tests.

use crate::device::GpuSpec;
use crate::occupancy::Occupancy;

/// How a staging loop reads feature columns from global memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LoadPattern {
    /// Warp-cooperative column-after-column read (Figure 3a).
    Coalesced,
    /// Thread-per-column concurrent read with L1 enabled (Figure 3b).
    NonCoalescedL1,
    /// Thread-per-column concurrent read with L1 bypassed.
    NonCoalescedNoL1,
}

/// Memory-level parallelism per warp: how many independent outstanding
/// requests one warp sustains. A coalesced staging loop issues one (wide)
/// request per column step with little overlap; a thread-per-column loop has
/// every lane running an independent stream.
const MLP_COALESCED: f64 = 2.0;
/// See [`MLP_COALESCED`]; the non-coalesced loop keeps all 32 lanes busy.
const MLP_NON_COALESCED: f64 = 32.0;
/// Wire amplification on the L2 crossbar when L1 is bypassed: requests are
/// 32-byte sectors instead of reused 128-byte lines. Calibrated to the
/// nonCoal-noL1 / nonCoal-L1 load-time ratio of Figure 4 (≈ 1.7×).
const NO_L1_WIRE_AMPLIFICATION: f64 = 2.0;

/// A staging workload: how many bytes a kernel pulls through the caches.
#[derive(Clone, Copy, Debug)]
pub struct StagedLoad {
    /// Total bytes requested by all threads (with reuse), e.g. `Nz × f × 4`
    /// for `get_hermitian` staging.
    pub total_bytes: u64,
    /// Distinct bytes underlying those requests, e.g. `n × f × 4` (the whole
    /// `Θᵀ` matrix) — an upper bound on compulsory DRAM traffic.
    pub unique_bytes: u64,
}

/// Time breakdown of a modeled load phase.
#[derive(Clone, Copy, Debug)]
pub struct LoadBreakdown {
    /// DRAM-traffic-bound time (bytes after cache absorption / bandwidth).
    pub dram_time: f64,
    /// L2-crossbar-bound time (wire bytes / L2 bandwidth).
    pub l2_time: f64,
    /// Latency-bound time (transactions × latency / parallelism).
    pub latency_time: f64,
    /// Modeled DRAM traffic in bytes.
    pub dram_bytes: f64,
    /// The phase time: max of the three bounds.
    pub time: f64,
}

/// Estimate the DRAM traffic of a staged load: every *reused* byte hits in
/// L2 with probability equal to the fraction of the unique working set that
/// is L2-resident.
///
/// For Netflix update-X the unique set is `Θᵀ` (7.1 MB at f=100) against
/// Maxwell's 3 MB L2: residency ≈ 0.42, so ~58% of reuse traffic still goes
/// to DRAM — which is what makes the load phase DRAM-visible at all.
pub fn staged_dram_bytes(spec: &GpuSpec, load: &StagedLoad) -> f64 {
    let unique = load.unique_bytes.max(1) as f64;
    let residency = (spec.l2_bytes as f64 / unique).min(1.0);
    let reuse_bytes = load.total_bytes.saturating_sub(load.unique_bytes) as f64;
    load.unique_bytes as f64 + reuse_bytes * (1.0 - residency)
}

/// Request-level profile of a staged load under a [`LoadPattern`]: bytes
/// crossing the L2 wire, memory transactions issued, and per-warp MLP —
/// the inputs both [`load_time`] and telemetry's per-launch
/// `KernelCost` records need.
pub fn load_wire_profile(pattern: LoadPattern, load: &StagedLoad) -> (f64, f64, f64) {
    match pattern {
        LoadPattern::Coalesced => {
            // 128B transactions; L1 bypassed but each transaction is fully
            // used, so wire bytes = requested bytes.
            (
                load.total_bytes as f64,
                load.total_bytes as f64 / 128.0,
                MLP_COALESCED,
            )
        }
        LoadPattern::NonCoalescedL1 => {
            // L1 turns each thread's 32 sequential reads into one 128B line
            // fill: wire bytes = requested bytes, at line granularity.
            (
                load.total_bytes as f64,
                load.total_bytes as f64 / 128.0,
                MLP_NON_COALESCED,
            )
        }
        LoadPattern::NonCoalescedNoL1 => {
            // Every request is its own 32B sector on the crossbar.
            (
                load.total_bytes as f64 * NO_L1_WIRE_AMPLIFICATION,
                load.total_bytes as f64 / 32.0,
                MLP_NON_COALESCED,
            )
        }
    }
}

/// Modeled L1 hit ratio of a staging loop: with L1 acting as the coalescer
/// each 128-byte line fill serves the thread's next 31 reads (31/32 hits);
/// the other two patterns bypass L1 entirely.
pub fn load_l1_hit_ratio(pattern: LoadPattern) -> f64 {
    match pattern {
        LoadPattern::NonCoalescedL1 => 31.0 / 32.0,
        LoadPattern::Coalesced | LoadPattern::NonCoalescedNoL1 => 0.0,
    }
}

/// Price a staging load phase on `spec` at the given achieved occupancy.
pub fn load_time(
    spec: &GpuSpec,
    occ: &Occupancy,
    pattern: LoadPattern,
    load: &StagedLoad,
) -> LoadBreakdown {
    let dram_bytes = staged_dram_bytes(spec, load);
    let dram_time = dram_bytes / spec.dram_bandwidth;
    let l2_bw = spec.dram_bandwidth * spec.l2_bandwidth_ratio;

    // Wire bytes on the L2 crossbar: everything the SMs request that L1
    // does not absorb.
    let (wire_bytes, transactions, mlp) = load_wire_profile(pattern, load);
    let l2_time = wire_bytes / l2_bw;
    let parallelism = mlp * occ.device_warps(spec) as f64;
    let latency_time =
        transactions * spec.dram_latency_cycles / (parallelism.max(1.0) * spec.clock_hz);

    LoadBreakdown {
        dram_time,
        l2_time,
        latency_time,
        dram_bytes,
        time: dram_time.max(l2_time).max(latency_time),
    }
}

/// Streaming-write time: `bytes` written to DRAM at streaming efficiency
/// (write path is store-buffered and coalesced; 0.85 of peak is typical for
/// full-line streaming stores).
pub fn streaming_write_time(spec: &GpuSpec, bytes: u64) -> f64 {
    bytes as f64 / (spec.dram_bandwidth * 0.85)
}

/// Streaming-read efficiency of a high-occupancy, fully-coalesced reader —
/// the batch CG solver's `A·p` loads. Higher than `cudaMemcpy` (read-only,
/// no write stream competing), which is exactly the Figure 7(b) comparison.
pub const STREAM_READ_EFFICIENCY: f64 = 0.86;

/// Time for a high-occupancy streaming read of `bytes` (the CG solve path).
pub fn streaming_read_time(spec: &GpuSpec, bytes: u64) -> f64 {
    bytes as f64 / (spec.dram_bandwidth * STREAM_READ_EFFICIENCY)
}

impl core::fmt::Display for LoadPattern {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LoadPattern::Coalesced => write!(f, "coal"),
            LoadPattern::NonCoalescedL1 => write!(f, "nonCoal-L1"),
            LoadPattern::NonCoalescedNoL1 => write!(f, "nonCoal-noL1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheSim;
    use crate::device::GpuSpec;
    use crate::occupancy::{occupancy, KernelResources};

    fn netflix_update_x_load() -> StagedLoad {
        // Full-scale Netflix, f = 100: total = Nz × f × 4, unique = n × f × 4.
        StagedLoad {
            total_bytes: 99_072_112 * 100 * 4,
            unique_bytes: 17_770 * 100 * 4,
        }
    }

    fn low_occupancy() -> Occupancy {
        occupancy(
            &GpuSpec::maxwell_titan_x(),
            &KernelResources {
                regs_per_thread: 168,
                threads_per_block: 64,
                shared_mem_per_block: 12800,
            },
        )
    }

    #[test]
    fn figure4_ordering_noncoal_l1_fastest_coal_slowest() {
        let spec = GpuSpec::maxwell_titan_x();
        let occ = low_occupancy();
        let load = netflix_update_x_load();
        let coal = load_time(&spec, &occ, LoadPattern::Coalesced, &load);
        let no_l1 = load_time(&spec, &occ, LoadPattern::NonCoalescedNoL1, &load);
        let l1 = load_time(&spec, &occ, LoadPattern::NonCoalescedL1, &load);
        assert!(
            l1.time < no_l1.time,
            "nonCoal-L1 {} !< nonCoal-noL1 {}",
            l1.time,
            no_l1.time
        );
        assert!(
            no_l1.time < coal.time,
            "nonCoal-noL1 {} !< coal {}",
            no_l1.time,
            coal.time
        );
        // Magnitudes in the Figure-4 ballpark (tens to ~200 ms per update).
        assert!(l1.time > 0.02 && l1.time < 0.15, "l1 time {}", l1.time);
        assert!(
            coal.time > 0.10 && coal.time < 0.45,
            "coal time {}",
            coal.time
        );
    }

    #[test]
    fn coalesced_is_latency_bound_at_low_occupancy() {
        let spec = GpuSpec::maxwell_titan_x();
        let occ = low_occupancy();
        let b = load_time(
            &spec,
            &occ,
            LoadPattern::Coalesced,
            &netflix_update_x_load(),
        );
        assert!(b.latency_time > b.dram_time, "Observation 2: latency-bound");
        assert_eq!(b.time, b.latency_time);
    }

    #[test]
    fn high_occupancy_makes_coalesced_bandwidth_bound() {
        let spec = GpuSpec::maxwell_titan_x();
        let occ = occupancy(
            &spec,
            &KernelResources {
                regs_per_thread: 32,
                threads_per_block: 256,
                shared_mem_per_block: 0,
            },
        );
        let b = load_time(
            &spec,
            &occ,
            LoadPattern::Coalesced,
            &netflix_update_x_load(),
        );
        assert!(b.time <= b.dram_time * 1.01, "high occupancy hides latency");
    }

    #[test]
    fn dram_traffic_respects_compulsory_floor_and_total_ceiling() {
        let spec = GpuSpec::maxwell_titan_x();
        let load = netflix_update_x_load();
        let d = staged_dram_bytes(&spec, &load);
        assert!(d >= load.unique_bytes as f64);
        assert!(d <= load.total_bytes as f64);
    }

    #[test]
    fn tiny_working_set_is_fully_cached() {
        let spec = GpuSpec::maxwell_titan_x();
        // Unique set of 1 MB < 3 MB L2 → only compulsory traffic.
        let load = StagedLoad {
            total_bytes: 1 << 30,
            unique_bytes: 1 << 20,
        };
        let d = staged_dram_bytes(&spec, &load);
        assert_eq!(d, (1u64 << 20) as f64);
    }

    /// Validate the residency closed form against the trace-driven cache on
    /// a downscaled workload: unique set 2× the cache, uniform reuse.
    #[test]
    fn residency_model_matches_trace_sim() {
        let cache_bytes = 64 << 10;
        let unique_bytes: u64 = 128 << 10; // residency 0.5
        let line = 128u64;
        let mut sim = CacheSim::fully_associative(cache_bytes, line);
        // Random-order reuse stream over the unique set (LRU on a uniform
        // random stream ≈ residency-probability hits, unlike a sequential
        // sweep which thrashes).
        let mut state = 0x2545F4914F6CDD1Du64;
        let accesses = 200_000u64;
        for _ in 0..accesses {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let addr = (state % (unique_bytes / line)) * line;
            sim.access(addr);
        }
        let measured_hit = sim.hit_ratio();
        let predicted = (cache_bytes as f64) / unique_bytes as f64; // 0.5
        assert!(
            (measured_hit - predicted).abs() < 0.05,
            "trace hit {measured_hit} vs residency model {predicted}"
        );
    }

    #[test]
    fn streaming_read_beats_memcpy() {
        // Figure 7(b): the CG solver's achieved bandwidth exceeds memcpy's.
        for spec in GpuSpec::paper_catalog() {
            let bytes = 1u64 << 30;
            let cg = bytes as f64 / streaming_read_time(&spec, bytes);
            assert!(cg > spec.memcpy_effective_bandwidth(), "{}", spec.name);
            assert!(cg < spec.dram_bandwidth);
        }
    }

    #[test]
    fn pattern_display_matches_figure_labels() {
        assert_eq!(LoadPattern::Coalesced.to_string(), "coal");
        assert_eq!(LoadPattern::NonCoalescedL1.to_string(), "nonCoal-L1");
        assert_eq!(LoadPattern::NonCoalescedNoL1.to_string(), "nonCoal-noL1");
    }
}
