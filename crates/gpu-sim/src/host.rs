//! Host CPU and cluster network models for the paper's CPU baselines.
//!
//! LIBMF runs 40 threads on one machine; NOMAD runs on 32–64 MPI nodes.
//! Their simulated timing uses the same roofline discipline as the GPU
//! model: `max(compute, memory)` plus, for multi-threaded SGD, a lock/
//! synchronization contention term (the reason LIBMF "stops scaling when
//! using few dozen cores", §VI-A), and for distributed SGD a network term.

/// A host CPU socket-pair description (the machines of Table III).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuSpec {
    /// Model name.
    pub name: &'static str,
    /// Physical cores across sockets.
    pub cores: u32,
    /// Clock in Hz.
    pub clock_hz: f64,
    /// FP32 FLOPs per core per cycle (SIMD width × FMA ports × 2).
    pub flops_per_core_cycle: f64,
    /// Aggregate memory bandwidth, bytes/s.
    pub mem_bandwidth: f64,
}

impl CpuSpec {
    /// 2 × 8-core Xeon E5-2667 v2 (Kepler server host).
    pub fn xeon_e5_2667() -> CpuSpec {
        CpuSpec {
            name: "2x Xeon E5-2667",
            cores: 16,
            clock_hz: 3.3e9,
            flops_per_core_cycle: 16.0, // AVX 8-wide FMA
            mem_bandwidth: 100e9,
        }
    }

    /// 2 × 12-core Xeon E5-2670 v3 (Maxwell server host).
    pub fn xeon_e5_2670() -> CpuSpec {
        CpuSpec {
            name: "2x Xeon E5-2670",
            cores: 24,
            clock_hz: 2.3e9,
            flops_per_core_cycle: 32.0, // AVX2 FMA
            mem_bandwidth: 130e9,
        }
    }

    /// 2 × 10-core POWER8 with SMT8 (Pascal server host; LIBMF's 40 threads
    /// run here).
    pub fn power8() -> CpuSpec {
        CpuSpec {
            name: "2x POWER8",
            cores: 20,
            clock_hz: 3.5e9,
            flops_per_core_cycle: 16.0, // VSX 4-wide dual-issue FMA
            mem_bandwidth: 230e9,
        }
    }

    /// Peak FP32 FLOP/s of the whole machine.
    pub fn peak_flops(&self) -> f64 {
        self.cores as f64 * self.clock_hz * self.flops_per_core_cycle
    }

    /// Roofline time of a host workload with a scalar-efficiency factor and
    /// a synchronization model.
    ///
    /// `threads` may exceed `cores` (SMT) but compute throughput caps at the
    /// core count. `sync` models shared-structure locking: the fraction of
    /// each thread's time spent serialized (LIBMF's scheduler lock), which
    /// Amdahl-style limits scaling.
    pub fn workload_time(&self, w: &HostWorkload, threads: u32, sync: SyncModel) -> f64 {
        let usable_cores = (threads.min(self.cores)) as f64;
        let compute =
            w.flops / (self.peak_flops() * w.efficiency * usable_cores / self.cores as f64);
        let memory = w.bytes / self.mem_bandwidth;
        let base = compute.max(memory);
        match sync {
            SyncModel::None => base,
            SyncModel::SharedLock { serial_fraction } => {
                // Amdahl with a serialized slice that does not shrink with
                // thread count.
                let parallel = base * (1.0 - serial_fraction);
                let serial = base * serial_fraction * usable_cores; // lock convoy
                parallel + serial
            }
        }
    }
}

/// A host workload in roofline terms.
#[derive(Clone, Copy, Debug)]
pub struct HostWorkload {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved to/from DRAM.
    pub bytes: f64,
    /// Fraction of SIMD peak the scalar-ish inner loops reach.
    pub efficiency: f64,
}

/// Synchronization behaviour of a multi-threaded host algorithm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SyncModel {
    /// Embarrassingly parallel (ALS-style independent rows).
    None,
    /// A shared data structure serializes a slice of the work (LIBMF's
    /// block scheduler; §VI-A "stops scaling ... because of the locking in
    /// a shared data structure").
    SharedLock {
        /// Fraction of per-thread work that holds the lock.
        serial_fraction: f64,
    },
}

/// An MPI cluster interconnect for the NOMAD baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterNetwork {
    /// Per-node bidirectional bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Per-message latency, seconds.
    pub latency: f64,
}

impl ClusterNetwork {
    /// 10 GbE (commodity cluster the NOMAD paper used).
    pub fn ten_gbe() -> ClusterNetwork {
        ClusterNetwork {
            bandwidth: 1.25e9,
            latency: 50e-6,
        }
    }

    /// Time for each node to exchange `bytes_per_node` with peers,
    /// `messages` messages each — NOMAD's column-rotation traffic.
    pub fn exchange_time(&self, bytes_per_node: f64, messages: f64) -> f64 {
        bytes_per_node / self.bandwidth + messages * self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_flops_sane() {
        // POWER8 pair: 20 × 3.5e9 × 16 = 1.12 TFLOPS.
        assert!((CpuSpec::power8().peak_flops() - 1.12e12).abs() < 1e9);
    }

    #[test]
    fn gpu_dwarfs_cpu() {
        // The premise of the paper: one P100 ≈ 10× the FLOPS of the host.
        let cpu = CpuSpec::power8();
        assert!(11.0e12 / cpu.peak_flops() > 9.0);
    }

    #[test]
    fn compute_bound_workload_scales_until_core_count() {
        let cpu = CpuSpec::power8();
        let w = HostWorkload {
            flops: 1e12,
            bytes: 1e6,
            efficiency: 0.5,
        };
        let t10 = cpu.workload_time(&w, 10, SyncModel::None);
        let t20 = cpu.workload_time(&w, 20, SyncModel::None);
        let t40 = cpu.workload_time(&w, 40, SyncModel::None);
        assert!(t20 < t10);
        assert_eq!(t20, t40, "SMT threads beyond physical cores add nothing");
    }

    #[test]
    fn memory_bound_workload_ignores_threads() {
        let cpu = CpuSpec::power8();
        let w = HostWorkload {
            flops: 1e6,
            bytes: 230e9,
            efficiency: 0.5,
        };
        let t = cpu.workload_time(&w, 40, SyncModel::None);
        assert!((t - 1.0).abs() < 1e-6);
    }

    #[test]
    fn shared_lock_hurts_at_scale() {
        let cpu = CpuSpec::xeon_e5_2670();
        let w = HostWorkload {
            flops: 1e12,
            bytes: 1e9,
            efficiency: 0.5,
        };
        let t8 = cpu.workload_time(
            &w,
            8,
            SyncModel::SharedLock {
                serial_fraction: 0.05,
            },
        );
        let t24 = cpu.workload_time(
            &w,
            24,
            SyncModel::SharedLock {
                serial_fraction: 0.05,
            },
        );
        let t8_free = cpu.workload_time(&w, 8, SyncModel::None);
        assert!(t8 > t8_free, "lock adds overhead");
        // Scaling efficiency decays: tripling threads gives < 2× speedup here.
        assert!(t8 / t24 < 2.0, "speedup {}", t8 / t24);
    }

    #[test]
    fn network_exchange_time_components() {
        let net = ClusterNetwork::ten_gbe();
        let t = net.exchange_time(1.25e9, 1000.0);
        assert!((t - (1.0 + 0.05)).abs() < 1e-9);
    }
}
