//! Kernel launch pricing: the roofline-plus-latency timing model.
//!
//! A launch is described by a [`KernelCost`] — flop counts, memory traffic,
//! and request-level behaviour — plus the [`Occupancy`] it achieves. Its
//! simulated time is
//!
//! ```text
//! T = max(T_compute, T_dram, T_l2, T_latency)
//! ```
//!
//! * `T_compute = flops / (peak × pipe_efficiency)`, with FP16 flops priced
//!   at the device's FP16 rate;
//! * `T_dram = dram bytes / DRAM bandwidth`;
//! * `T_l2 = L2 wire bytes / (DRAM bandwidth × L2 ratio)`;
//! * `T_latency = transactions × latency / (MLP × resident warps × clock)` —
//!   the regime Observation 2 identifies for low-occupancy kernels.
//!
//! The same struct doubles as the **operation counter** the Table-I harness
//! reads: its additive monoid structure ([`KernelCost::accumulate`]) sums
//! per-launch costs into per-epoch compute/memory totals.
//!
//! # Example
//!
//! A launch that streams 34 GB through DRAM on the Titan X (340 GB/s) is
//! memory-bound and prices at 0.1 simulated seconds:
//!
//! ```
//! use cumf_gpu_sim::device::GpuSpec;
//! use cumf_gpu_sim::kernel::{launch_time, KernelCost};
//! use cumf_gpu_sim::occupancy::{occupancy, KernelResources};
//!
//! let spec = GpuSpec::maxwell_titan_x();
//! let occ = occupancy(
//!     &spec,
//!     &KernelResources { regs_per_thread: 32, threads_per_block: 256, shared_mem_per_block: 0 },
//! );
//! let cost = KernelCost {
//!     flops_fp32: 1e9,
//!     dram_read_bytes: 34e9,
//!     mlp: 4.0,
//!     pipe_efficiency: 1.0,
//!     ..KernelCost::default()
//! };
//! let t = launch_time(&spec, &occ, &cost);
//! assert_eq!(t.bound(), "dram");
//! assert!((t.time - 0.1).abs() < 1e-12);
//! ```

use crate::device::GpuSpec;
use crate::occupancy::Occupancy;
use serde::Serialize;

/// Cost description of one kernel launch (or an accumulation of many).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct KernelCost {
    /// FP32 floating-point operations (FMA = 2).
    pub flops_fp32: f64,
    /// FP16-typed floating-point operations (only Pascal runs them faster;
    /// elsewhere they price like FP32).
    pub flops_fp16: f64,
    /// Bytes read from DRAM (after cache absorption).
    pub dram_read_bytes: f64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: f64,
    /// Bytes crossing the L2 crossbar (≥ DRAM bytes when caches are hot).
    pub l2_wire_bytes: f64,
    /// Memory transactions issued (for the latency bound).
    pub transactions: f64,
    /// Memory-level parallelism per warp for those transactions.
    pub mlp: f64,
    /// Fraction of device peak the arithmetic pipes reach when compute-bound
    /// (instruction mix, bank conflicts, tail effects). 1.0 = ideal.
    pub pipe_efficiency: f64,
}

impl KernelCost {
    /// A pure-compute cost (no memory term) at a given efficiency.
    pub fn compute_only(flops_fp32: f64, pipe_efficiency: f64) -> Self {
        KernelCost {
            flops_fp32,
            pipe_efficiency,
            mlp: 1.0,
            ..Default::default()
        }
    }

    /// Fold another cost into this one (costs of sequential launches add;
    /// the slowest-efficiency pipe and the weakest MLP dominate a sum only
    /// approximately, so we keep the traffic-weighted pessimum).
    pub fn accumulate(&mut self, other: &KernelCost) {
        // Weighted-min on efficiency: keep the one covering more flops.
        if other.flops_fp32 + other.flops_fp16 > self.flops_fp32 + self.flops_fp16 {
            self.pipe_efficiency = if self.pipe_efficiency == 0.0 {
                other.pipe_efficiency
            } else {
                self.pipe_efficiency.min(other.pipe_efficiency)
            };
        } else if self.pipe_efficiency == 0.0 {
            self.pipe_efficiency = other.pipe_efficiency;
        }
        if self.mlp == 0.0 {
            self.mlp = other.mlp;
        } else if other.mlp != 0.0 {
            self.mlp = self.mlp.min(other.mlp);
        }
        self.flops_fp32 += other.flops_fp32;
        self.flops_fp16 += other.flops_fp16;
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.l2_wire_bytes += other.l2_wire_bytes;
        self.transactions += other.transactions;
    }

    /// Total floating-point operations regardless of precision.
    pub fn total_flops(&self) -> f64 {
        self.flops_fp32 + self.flops_fp16
    }

    /// Total DRAM traffic (reads + writes).
    pub fn total_dram_bytes(&self) -> f64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Arithmetic intensity: flops per DRAM byte — the roofline abscissa and
    /// the `C/M` column of the paper's Table I.
    pub fn arithmetic_intensity(&self) -> f64 {
        let m = self.total_dram_bytes();
        if m == 0.0 {
            f64::INFINITY
        } else {
            self.total_flops() / m
        }
    }
}

/// Priced timing of one launch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct LaunchTiming {
    /// Compute-bound time.
    pub compute_time: f64,
    /// DRAM-traffic-bound time.
    pub dram_time: f64,
    /// L2-crossbar-bound time.
    pub l2_time: f64,
    /// Latency-bound time.
    pub latency_time: f64,
    /// The launch time: max of the four bounds.
    pub time: f64,
}

impl LaunchTiming {
    /// Which bound won (for diagnostics): one of `"compute"`, `"dram"`,
    /// `"l2"`, `"latency"`.
    pub fn bound(&self) -> &'static str {
        if self.time == self.compute_time {
            "compute"
        } else if self.time == self.dram_time {
            "dram"
        } else if self.time == self.l2_time {
            "l2"
        } else {
            "latency"
        }
    }

    /// Achieved FLOP/s of a launch with `flops` total operations.
    pub fn achieved_flops(&self, flops: f64) -> f64 {
        if self.time == 0.0 {
            0.0
        } else {
            flops / self.time
        }
    }

    /// Achieved DRAM bandwidth of a launch moving `bytes`.
    pub fn achieved_bandwidth(&self, bytes: f64) -> f64 {
        if self.time == 0.0 {
            0.0
        } else {
            bytes / self.time
        }
    }
}

/// Price a kernel cost on a device at a given occupancy.
pub fn launch_time(spec: &GpuSpec, occ: &Occupancy, cost: &KernelCost) -> LaunchTiming {
    let eff = if cost.pipe_efficiency > 0.0 {
        cost.pipe_efficiency
    } else {
        1.0
    };
    let fp32_time = cost.flops_fp32 / (spec.peak_fp32_flops * eff);
    let fp16_time = cost.flops_fp16 / (spec.peak_fp16_flops() * eff);
    let compute_time = fp32_time + fp16_time;

    let dram_time = cost.total_dram_bytes() / spec.dram_bandwidth;
    let l2_time = cost.l2_wire_bytes / (spec.dram_bandwidth * spec.l2_bandwidth_ratio);

    let mlp = if cost.mlp > 0.0 { cost.mlp } else { 1.0 };
    let parallelism = (mlp * occ.device_warps(spec) as f64).max(1.0);
    let latency_time = cost.transactions * spec.dram_latency_cycles / (parallelism * spec.clock_hz);

    let time = compute_time.max(dram_time).max(l2_time).max(latency_time);
    LaunchTiming {
        compute_time,
        dram_time,
        l2_time,
        latency_time,
        time,
    }
}

/// Pipe efficiency of the register-tiled `get_hermitian` kernel per
/// generation. The paper's Figure 7(a) shows FLOPS efficiency *rising* with
/// newer architectures (more registers per core); these values reproduce its
/// bars (≈1.3/4, ≈2.9/7, ≈6.2/11 TFLOPS achieved/peak).
pub fn hermitian_pipe_efficiency(spec: &GpuSpec) -> f64 {
    match spec.generation {
        crate::device::GpuGeneration::Kepler => 0.33,
        crate::device::GpuGeneration::Maxwell => 0.42,
        crate::device::GpuGeneration::Pascal => 0.57,
        crate::device::GpuGeneration::Volta => 0.62,
    }
}

/// Pipe efficiency of cuBLAS `gemmBatched` on many small (f × nnz) × (nnz ×
/// f) problems. Small batched GEMMs run far below peak (launch overhead,
/// tile quantization); calibrated to sit *below* `get_hermitian` in Figure
/// 7(a) on every generation.
pub fn gemm_batched_pipe_efficiency(spec: &GpuSpec) -> f64 {
    match spec.generation {
        crate::device::GpuGeneration::Kepler => 0.18,
        crate::device::GpuGeneration::Maxwell => 0.24,
        crate::device::GpuGeneration::Pascal => 0.30,
        crate::device::GpuGeneration::Volta => 0.36,
    }
}

/// Pipe efficiency of the batched LU solver (cuBLAS `getrfBatched` +
/// `getrsBatched`): heavily divergent pivoting code, calibrated to the
/// Figure-5 LU-FP32 bar (solver ≈ 2× `get_hermitian` time at f = 100 on
/// Netflix).
pub const LU_BATCHED_PIPE_EFFICIENCY: f64 = 0.05;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::{occupancy, KernelResources};

    fn full_occ(spec: &GpuSpec) -> Occupancy {
        occupancy(
            spec,
            &KernelResources {
                regs_per_thread: 32,
                threads_per_block: 256,
                shared_mem_per_block: 0,
            },
        )
    }

    #[test]
    fn compute_bound_kernel_times_by_flops() {
        let spec = GpuSpec::maxwell_titan_x();
        let occ = full_occ(&spec);
        let cost = KernelCost::compute_only(7.0e12, 1.0); // 1 second at peak
        let t = launch_time(&spec, &occ, &cost);
        assert!((t.time - 1.0).abs() < 1e-9);
        assert_eq!(t.bound(), "compute");
    }

    #[test]
    fn efficiency_scales_compute_time() {
        let spec = GpuSpec::maxwell_titan_x();
        let occ = full_occ(&spec);
        let t_half = launch_time(&spec, &occ, &KernelCost::compute_only(7.0e12, 0.5));
        assert!((t_half.time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fp16_runs_double_rate_only_on_pascal() {
        let occ_p = full_occ(&GpuSpec::pascal_p100());
        let occ_m = full_occ(&GpuSpec::maxwell_titan_x());
        let mut cost = KernelCost::compute_only(0.0, 1.0);
        cost.flops_fp16 = 11.0e12;
        let tp = launch_time(&GpuSpec::pascal_p100(), &occ_p, &cost);
        assert!((tp.time - 0.5).abs() < 1e-9, "P100 runs fp16 at 22 TFLOPS");
        let tm = launch_time(&GpuSpec::maxwell_titan_x(), &occ_m, &cost);
        assert!(tm.time > 1.0, "Maxwell gets no fp16 compute speedup");
    }

    #[test]
    fn memory_bound_kernel_times_by_bytes() {
        let spec = GpuSpec::maxwell_titan_x();
        let occ = full_occ(&spec);
        let cost = KernelCost {
            dram_read_bytes: 340e9, // 1 second at peak bw
            mlp: 32.0,
            pipe_efficiency: 1.0,
            ..Default::default()
        };
        let t = launch_time(&spec, &occ, &cost);
        assert!((t.time - 1.0).abs() < 1e-9);
        assert_eq!(t.bound(), "dram");
    }

    #[test]
    fn latency_bound_at_low_occupancy() {
        let spec = GpuSpec::maxwell_titan_x();
        let occ = occupancy(
            &spec,
            &KernelResources {
                regs_per_thread: 168,
                threads_per_block: 64,
                shared_mem_per_block: 12800,
            },
        );
        let cost = KernelCost {
            dram_read_bytes: 1e9,
            l2_wire_bytes: 1e9,
            transactions: 1e9 / 128.0,
            mlp: 2.0,
            pipe_efficiency: 1.0,
            ..Default::default()
        };
        let t = launch_time(&spec, &occ, &cost);
        assert_eq!(t.bound(), "latency");
        assert!(t.latency_time > t.dram_time);
    }

    #[test]
    fn accumulate_adds_traffic_and_flops() {
        let mut a = KernelCost::compute_only(10.0, 0.5);
        let b = KernelCost {
            flops_fp32: 5.0,
            flops_fp16: 0.0,
            dram_read_bytes: 100.0,
            dram_write_bytes: 50.0,
            l2_wire_bytes: 100.0,
            transactions: 2.0,
            mlp: 8.0,
            pipe_efficiency: 0.9,
        };
        a.accumulate(&b);
        assert_eq!(a.flops_fp32, 15.0);
        assert_eq!(a.total_dram_bytes(), 150.0);
        assert_eq!(a.transactions, 2.0);
        assert_eq!(
            a.pipe_efficiency, 0.5,
            "the dominant (larger-flops) side keeps its efficiency floor"
        );
    }

    #[test]
    fn arithmetic_intensity_matches_table1_shape() {
        // get_hermitian: C = Nz f², M = Nz f (plus lower-order) → C/M ≈ f.
        let f = 100.0;
        let nz = 1e8;
        let cost = KernelCost {
            flops_fp32: nz * f * f,
            dram_read_bytes: nz * f * 4.0,
            pipe_efficiency: 1.0,
            mlp: 1.0,
            ..Default::default()
        };
        let intensity_per_float = cost.arithmetic_intensity() * 4.0; // flops per float
        assert!((intensity_per_float - f).abs() / f < 0.01);
    }

    #[test]
    fn achieved_flops_and_bandwidth() {
        let t = LaunchTiming {
            compute_time: 2.0,
            dram_time: 1.0,
            l2_time: 0.0,
            latency_time: 0.0,
            time: 2.0,
        };
        assert_eq!(t.achieved_flops(4.0e12), 2.0e12);
        assert_eq!(t.achieved_bandwidth(2.0e9), 1.0e9);
    }

    #[test]
    fn pipe_efficiencies_rise_by_generation_and_beat_gemm() {
        let cat = GpuSpec::paper_catalog();
        let mut prev = 0.0;
        for spec in &cat {
            let h = hermitian_pipe_efficiency(spec);
            assert!(h > prev, "{}", spec.name);
            assert!(h > gemm_batched_pipe_efficiency(spec), "{}", spec.name);
            prev = h;
        }
    }
}
