//! Simulated clocks and convergence-curve recording.
//!
//! Every experiment harness reports **simulated seconds** accumulated on a
//! [`SimClock`], broken down by named phase (load / compute / write / solve
//! / communicate). Convergence experiments (Figures 6 and 8) additionally
//! record `(sim_time, test RMSE)` points on a [`ConvergenceCurve`].

use serde::Serialize;
use std::borrow::Cow;
use std::collections::BTreeMap;

/// A simulated clock with per-phase attribution. Phase keys are
/// `Cow<'static, str>` so dynamically named phases (per-dataset, per-GPU,
/// telemetry-invented) can be attributed without leaking interned strings.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now: f64,
    phases: BTreeMap<Cow<'static, str>, f64>,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance by `seconds`, attributing them to `phase` (a `&'static str`
    /// or an owned `String`).
    pub fn advance(&mut self, phase: impl Into<Cow<'static, str>>, seconds: f64) {
        let phase = phase.into();
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "bad time increment {seconds} in {phase}"
        );
        self.now += seconds;
        *self.phases.entry(phase).or_insert(0.0) += seconds;
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Time attributed to one phase so far.
    pub fn phase_time(&self, phase: &str) -> f64 {
        self.phases.get(phase).copied().unwrap_or(0.0)
    }

    /// All phases and their accumulated times, alphabetical.
    pub fn phases(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.phases.iter().map(|(k, &v)| (k.as_ref(), v))
    }

    /// Reset to t = 0, clearing attribution.
    pub fn reset(&mut self) {
        self.now = 0.0;
        self.phases.clear();
    }
}

/// One observation on a convergence curve.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct ConvergencePoint {
    /// Simulated training time at which the metric was evaluated.
    pub sim_time: f64,
    /// Epochs completed.
    pub epoch: u32,
    /// Test RMSE at that point.
    pub test_rmse: f64,
}

/// A named series of `(time, RMSE)` points — one line of Figure 6 / 8.
#[derive(Clone, Debug, Serialize)]
pub struct ConvergenceCurve {
    /// Legend label (e.g. "cuMFALS@P").
    pub label: String,
    points: Vec<ConvergencePoint>,
}

impl ConvergenceCurve {
    /// An empty curve with a legend label.
    pub fn new(label: impl Into<String>) -> Self {
        ConvergenceCurve {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point; time must be nondecreasing.
    pub fn push(&mut self, sim_time: f64, epoch: u32, test_rmse: f64) {
        if let Some(last) = self.points.last() {
            assert!(sim_time >= last.sim_time, "time must be nondecreasing");
        }
        self.points.push(ConvergencePoint {
            sim_time,
            epoch,
            test_rmse,
        });
    }

    /// The recorded points.
    pub fn points(&self) -> &[ConvergencePoint] {
        &self.points
    }

    /// First simulated time at which RMSE ≤ `target` (the paper's
    /// "training time when converging to acceptable RMSE", Table IV).
    pub fn time_to_rmse(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.test_rmse <= target)
            .map(|p| p.sim_time)
    }

    /// Best (lowest) RMSE reached.
    pub fn best_rmse(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.test_rmse)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Render as `time\trmse` rows for plotting (gnuplot-style, like the
    /// paper's figures).
    pub fn to_tsv(&self) -> String {
        let mut s = String::with_capacity(self.points.len() * 24);
        for p in &self.points {
            s.push_str(&format!("{:.3}\t{:.5}\n", p.sim_time, p.test_rmse));
        }
        s
    }

    /// Render as a JSON document `{"label": …, "points": [{…}, …]}` for
    /// machine consumption (plotting scripts, trace attachments).
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates_by_phase() {
        let mut c = SimClock::new();
        c.advance("load", 0.1);
        c.advance("compute", 0.3);
        c.advance("load", 0.2);
        assert!((c.now() - 0.6).abs() < 1e-12);
        assert!((c.phase_time("load") - 0.3).abs() < 1e-12);
        assert_eq!(c.phase_time("write"), 0.0);
        assert_eq!(c.phases().count(), 2);
    }

    #[test]
    #[should_panic(expected = "bad time increment")]
    fn clock_rejects_negative_time() {
        SimClock::new().advance("x", -1.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = SimClock::new();
        c.advance("a", 1.0);
        c.reset();
        assert_eq!(c.now(), 0.0);
        assert_eq!(c.phases().count(), 0);
    }

    #[test]
    fn time_to_rmse_finds_first_crossing() {
        let mut curve = ConvergenceCurve::new("test");
        curve.push(1.0, 1, 1.10);
        curve.push(2.0, 2, 0.95);
        curve.push(3.0, 3, 0.91);
        curve.push(4.0, 4, 0.905);
        assert_eq!(curve.time_to_rmse(0.92), Some(3.0));
        assert_eq!(curve.time_to_rmse(0.5), None);
        assert_eq!(curve.best_rmse(), Some(0.905));
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn curve_rejects_time_travel() {
        let mut curve = ConvergenceCurve::new("t");
        curve.push(2.0, 1, 1.0);
        curve.push(1.0, 2, 0.9);
    }

    #[test]
    fn tsv_renders_rows() {
        let mut curve = ConvergenceCurve::new("t");
        curve.push(1.5, 1, 0.95);
        assert_eq!(curve.to_tsv(), "1.500\t0.95000\n");
    }

    #[test]
    fn dynamic_phase_keys_accumulate() {
        let mut c = SimClock::new();
        for gpu in 0..3 {
            c.advance(format!("h2d-gpu{gpu}"), 0.5);
        }
        c.advance("solve", 1.0);
        assert_eq!(c.phases().count(), 4);
        assert!((c.phase_time("h2d-gpu1") - 0.5).abs() < 1e-12);
        assert!((c.now() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn curve_to_json_parses_back() {
        let mut curve = ConvergenceCurve::new("cuMFALS@1xM");
        curve.push(1.5, 1, 0.95);
        curve.push(3.0, 2, 0.91);
        let v = serde::Value::parse(&curve.to_json()).unwrap();
        assert_eq!(v.get("label").unwrap().as_str(), Some("cuMFALS@1xM"));
        let pts = v.get("points").unwrap().as_array().unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].get("epoch").unwrap().as_f64(), Some(2.0));
    }
}
