//! A performance-model GPU simulator for the cuMF_ALS reproduction.
//!
//! The paper's contributions are *memory-hierarchy* and *arithmetic-
//! complexity* effects on NVIDIA GPUs: register tiling, shared-memory
//! staging, cache-assisted non-coalesced loads under low occupancy, an
//! `O(f³) → O(fs·f²)` solver substitution, and FP16 halving the bytes the
//! memory-bound solver moves. None of that requires executing SASS — it
//! requires a faithful model of
//!
//! * the **occupancy** rules that decide how many thread blocks fit on a
//!   streaming multiprocessor ([`occupancy`]),
//! * **coalescing** and the **L1/L2 cache** path that turn warp access
//!   patterns into DRAM transactions ([`memory`], [`cache`]),
//! * the **roofline + latency** timing of a kernel launch ([`kernel`]),
//! * device **memcpy** and **multi-GPU interconnect** transfers
//!   ([`memory`], [`interconnect`]),
//! * and, for the CPU/distributed baselines the paper compares against, an
//!   analogous **host roofline** and **network** model ([`host`]).
//!
//! Kernels in `cumf-als` execute *functionally* on the host (real `f32`
//! arithmetic — convergence results are genuine); each launch additionally
//! produces a [`kernel::KernelCost`] that this crate prices into simulated
//! seconds on a chosen [`device::GpuSpec`]. All experiment harnesses report
//! those simulated seconds, which is what makes ratios comparable to the
//! paper's measurements regardless of the machine running the simulation.
//!
//! Calibrated constants (latency cycles, pipe efficiencies, memcpy
//! efficiency) are documented where they are defined; each traces back to
//! either a vendor datasheet figure or a measurement reported in the paper
//! itself.

#![deny(missing_docs)]

pub mod cache;
pub mod device;
pub mod host;
pub mod interconnect;
pub mod kernel;
pub mod mem_alloc;
pub mod memory;
pub mod occupancy;
pub mod timeline;

pub use device::{GpuGeneration, GpuSpec};
pub use kernel::{KernelCost, LaunchTiming};
pub use occupancy::{KernelResources, Occupancy};
pub use timeline::{ConvergenceCurve, SimClock};
