//! The device catalog: the three GPU generations of the paper's Table III.
//!
//! | server  | GPU            | peak FP32 | DRAM bw  | DRAM |
//! |---------|----------------|-----------|----------|------|
//! | Kepler  | Tesla K40      | 4 TFLOPS  | 288 GB/s | 12 GB|
//! | Maxwell | GTX Titan X    | 7 TFLOPS  | 340 GB/s | 12 GB|
//! | Pascal  | Tesla P100     | 11 TFLOPS | 740 GB/s | 16 GB|
//!
//! The peak numbers are the ones the paper quotes; microarchitectural
//! parameters (SM counts, register files, cache sizes) come from the vendor
//! whitepapers for those parts.
//!
//! # Example
//!
//! ```
//! use cumf_gpu_sim::device::{GpuGeneration, GpuSpec};
//!
//! let titan = GpuSpec::maxwell_titan_x();
//! assert_eq!(titan.generation, GpuGeneration::Maxwell);
//! assert_eq!(titan.peak_fp32_flops, 7.0e12); // Table III: 7 TFLOPS
//!
//! // Pascal runs FP16 arithmetic at twice the FP32 rate; on Maxwell FP16
//! // only saves memory bandwidth, not compute.
//! assert_eq!(GpuSpec::pascal_p100().fp16_rate_ratio, 2.0);
//! assert_eq!(titan.fp16_rate_ratio, 1.0);
//! ```

/// The GPU microarchitecture generations modeled: the three the paper
/// evaluates, plus Volta — the Tensor-Core part its future work targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GpuGeneration {
    /// Kepler (GK110B — Tesla K40).
    Kepler,
    /// Maxwell (GM200 — GTX Titan X).
    Maxwell,
    /// Pascal (GP100 — Tesla P100).
    Pascal,
    /// Volta (GV100 — Tesla V100), with Tensor Cores.
    Volta,
}

impl core::fmt::Display for GpuGeneration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GpuGeneration::Kepler => write!(f, "Kepler"),
            GpuGeneration::Maxwell => write!(f, "Maxwell"),
            GpuGeneration::Pascal => write!(f, "Pascal"),
            GpuGeneration::Volta => write!(f, "Volta"),
        }
    }
}

/// Static description of one GPU device — everything the cost model needs.
#[derive(Clone, Debug)]
pub struct GpuSpec {
    /// Marketing name (e.g. "Tesla P100").
    pub name: &'static str,
    /// Microarchitecture generation.
    pub generation: GpuGeneration,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Core clock in Hz (boost clock, since sustained kernels run there).
    pub clock_hz: f64,
    /// Peak FP32 throughput in FLOP/s (2 × FMA rate), as quoted in Table III.
    pub peak_fp32_flops: f64,
    /// FP16 arithmetic rate relative to FP32: 2.0 on Pascal P100 (native
    /// double-rate half), 1.0 on Kepler/Maxwell where FP16 only saves
    /// *memory* bandwidth, not compute.
    pub fp16_rate_ratio: f64,
    /// FP16 matrix-multiply throughput of the Tensor Cores in FLOP/s, if
    /// the part has them (the paper's §VII: "exploit the new Nvidia Tensor
    /// Cores hardware that natively supports half-precision arithmetic").
    pub tensor_core_fp16_flops: Option<f64>,
    /// DRAM bandwidth in bytes/s.
    pub dram_bandwidth: f64,
    /// Device memory capacity in bytes.
    pub dram_capacity: u64,
    /// Average DRAM access latency in cycles. ~400–600 on these parts
    /// (Wong et al. microbenchmarks); we use one representative value per
    /// generation.
    pub dram_latency_cycles: f64,
    /// 32-bit registers per SM (64 Ki on all three generations).
    pub registers_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM (what the paper's Observation 2
    /// compares the achieved 6 blocks against: 32 on Maxwell/Pascal).
    pub max_blocks_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// L1 cache per SM in bytes (unified with texture path on Maxwell+).
    pub l1_bytes_per_sm: u32,
    /// L2 cache (device-wide) in bytes.
    pub l2_bytes: u32,
    /// L2-to-SM aggregate bandwidth relative to DRAM bandwidth. ~2× on these
    /// generations (whitepaper crossbar figures).
    pub l2_bandwidth_ratio: f64,
    /// Fraction of peak DRAM bandwidth `cudaMemcpy` device-to-device
    /// achieves. The paper's Figure 7(b) shows memcpy well below peak on all
    /// three parts; 0.72–0.78 reproduces those bars.
    pub memcpy_efficiency: f64,
}

impl GpuSpec {
    /// Tesla K40 (Kepler) — the paper's Kepler server GPU.
    pub fn kepler_k40() -> GpuSpec {
        GpuSpec {
            name: "Tesla K40",
            generation: GpuGeneration::Kepler,
            num_sms: 15,
            clock_hz: 875e6,
            peak_fp32_flops: 4.0e12,
            fp16_rate_ratio: 1.0,
            tensor_core_fp16_flops: None,
            dram_bandwidth: 288e9,
            dram_capacity: 12 << 30,
            dram_latency_cycles: 600.0,
            registers_per_sm: 65_536,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            shared_mem_per_sm: 48 << 10,
            l1_bytes_per_sm: 16 << 10,
            l2_bytes: 1536 << 10,
            l2_bandwidth_ratio: 2.0,
            memcpy_efficiency: 0.72,
        }
    }

    /// GTX Titan X (Maxwell) — the paper's Maxwell server GPU and the device
    /// used for Figures 4 and 5.
    pub fn maxwell_titan_x() -> GpuSpec {
        GpuSpec {
            name: "GTX Titan X",
            generation: GpuGeneration::Maxwell,
            num_sms: 24,
            clock_hz: 1.075e9,
            peak_fp32_flops: 7.0e12,
            fp16_rate_ratio: 1.0,
            tensor_core_fp16_flops: None,
            dram_bandwidth: 340e9,
            dram_capacity: 12 << 30,
            dram_latency_cycles: 450.0,
            registers_per_sm: 65_536,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 96 << 10,
            // The paper's §III quotes Maxwell's 48 KB L1 and a 3 MB L2
            // shared by 24 SMs (it quotes a 128 KB per-SM slice).
            l1_bytes_per_sm: 48 << 10,
            l2_bytes: 3 << 20,
            l2_bandwidth_ratio: 2.0,
            memcpy_efficiency: 0.75,
        }
    }

    /// Tesla P100 (Pascal) — the paper's Pascal server GPU.
    pub fn pascal_p100() -> GpuSpec {
        GpuSpec {
            name: "Tesla P100",
            generation: GpuGeneration::Pascal,
            num_sms: 56,
            clock_hz: 1.38e9,
            peak_fp32_flops: 11.0e12,
            fp16_rate_ratio: 2.0, // GP100 runs FP16 at double rate
            tensor_core_fp16_flops: None,
            dram_bandwidth: 740e9,
            dram_capacity: 16 << 30,
            dram_latency_cycles: 450.0,
            registers_per_sm: 65_536,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 64 << 10,
            l1_bytes_per_sm: 24 << 10,
            l2_bytes: 4 << 20,
            l2_bandwidth_ratio: 2.2,
            memcpy_efficiency: 0.78,
        }
    }

    /// Tesla V100 (Volta) — the Tensor-Core part the paper's future work
    /// targets; not part of its evaluation, modeled for the ablation bench.
    pub fn volta_v100() -> GpuSpec {
        GpuSpec {
            name: "Tesla V100",
            generation: GpuGeneration::Volta,
            num_sms: 80,
            clock_hz: 1.53e9,
            peak_fp32_flops: 15.7e12,
            fp16_rate_ratio: 2.0,
            tensor_core_fp16_flops: Some(125e12),
            dram_bandwidth: 900e9,
            dram_capacity: 16 << 30,
            dram_latency_cycles: 400.0,
            registers_per_sm: 65_536,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 96 << 10,
            l1_bytes_per_sm: 128 << 10,
            l2_bytes: 6 << 20,
            l2_bandwidth_ratio: 2.2,
            memcpy_efficiency: 0.80,
        }
    }

    /// The three paper GPUs, oldest first — handy for generation sweeps.
    pub fn paper_catalog() -> Vec<GpuSpec> {
        vec![
            Self::kepler_k40(),
            Self::maxwell_titan_x(),
            Self::pascal_p100(),
        ]
    }

    /// Peak FP16 FLOP/s (= FP32 peak × rate ratio).
    pub fn peak_fp16_flops(&self) -> f64 {
        self.peak_fp32_flops * self.fp16_rate_ratio
    }

    /// Total 32-bit registers across the device.
    pub fn total_registers(&self) -> u64 {
        self.registers_per_sm as u64 * self.num_sms as u64
    }

    /// L2 slice nominally backing one SM (the paper's "128 KB" framing of
    /// Maxwell's 3 MB / 24 SMs).
    pub fn l2_bytes_per_sm(&self) -> u32 {
        self.l2_bytes / self.num_sms
    }

    /// Time to move `bytes` with `cudaMemcpy` device-to-device: both a read
    /// and a write cross DRAM, at memcpy efficiency.
    pub fn memcpy_time(&self, bytes: u64) -> f64 {
        (2 * bytes) as f64 / (self.dram_bandwidth * self.memcpy_efficiency)
    }

    /// The bandwidth figure `cudaMemcpy` *reports* for a D2D copy of any
    /// size (bytes copied / time, counting each byte once as the CUDA
    /// samples do... the paper's Fig 7(b) baseline).
    pub fn memcpy_effective_bandwidth(&self) -> f64 {
        self.dram_bandwidth * self.memcpy_efficiency
    }
}

/// A multi-GPU server from Table III.
#[derive(Clone, Debug)]
pub struct ServerSpec {
    /// Server name as the paper labels it.
    pub name: &'static str,
    /// The GPUs installed.
    pub gpu: GpuSpec,
    /// How many of them.
    pub gpu_count: u32,
    /// Host CPU model (used only when a baseline runs on the host).
    pub cpu: crate::host::CpuSpec,
}

impl ServerSpec {
    /// The Kepler server: 2 × K40, 2 × 8-core Xeon E5-2667.
    pub fn kepler() -> ServerSpec {
        ServerSpec {
            name: "Kepler",
            gpu: GpuSpec::kepler_k40(),
            gpu_count: 2,
            cpu: crate::host::CpuSpec::xeon_e5_2667(),
        }
    }

    /// The Maxwell server: 4 × Titan X, 2 × 12-core Xeon E5-2670.
    pub fn maxwell() -> ServerSpec {
        ServerSpec {
            name: "Maxwell",
            gpu: GpuSpec::maxwell_titan_x(),
            gpu_count: 4,
            cpu: crate::host::CpuSpec::xeon_e5_2670(),
        }
    }

    /// The Pascal server: 4 × P100, 2 × 10-core POWER8.
    pub fn pascal() -> ServerSpec {
        ServerSpec {
            name: "Pascal",
            gpu: GpuSpec::pascal_p100(),
            gpu_count: 4,
            cpu: crate::host::CpuSpec::power8(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_ordered_by_capability() {
        let cat = GpuSpec::paper_catalog();
        assert_eq!(cat.len(), 3);
        for w in cat.windows(2) {
            assert!(w[0].peak_fp32_flops < w[1].peak_fp32_flops);
            assert!(w[0].dram_bandwidth < w[1].dram_bandwidth);
        }
    }

    #[test]
    fn paper_quoted_numbers() {
        let k = GpuSpec::kepler_k40();
        let m = GpuSpec::maxwell_titan_x();
        let p = GpuSpec::pascal_p100();
        assert_eq!(k.peak_fp32_flops, 4.0e12);
        assert_eq!(m.peak_fp32_flops, 7.0e12);
        assert_eq!(p.peak_fp32_flops, 11.0e12);
        assert_eq!(k.dram_bandwidth, 288e9);
        assert_eq!(m.dram_bandwidth, 340e9);
        assert_eq!(p.dram_bandwidth, 740e9);
        assert_eq!(p.dram_capacity, 16 << 30);
    }

    #[test]
    fn maxwell_l2_slice_matches_paper_framing() {
        // §III: "L2 cache of 128 KB (3 MB shared by 24 SMs)".
        assert_eq!(GpuSpec::maxwell_titan_x().l2_bytes_per_sm(), 128 << 10);
    }

    #[test]
    fn only_pascal_accelerates_fp16_compute() {
        assert_eq!(GpuSpec::kepler_k40().peak_fp16_flops(), 4.0e12);
        assert_eq!(GpuSpec::pascal_p100().peak_fp16_flops(), 22.0e12);
    }

    #[test]
    fn volta_has_tensor_cores_the_paper_parts_lack() {
        for spec in GpuSpec::paper_catalog() {
            assert!(spec.tensor_core_fp16_flops.is_none(), "{}", spec.name);
        }
        let v = GpuSpec::volta_v100();
        assert_eq!(v.tensor_core_fp16_flops, Some(125e12));
        assert!(v.peak_fp32_flops > GpuSpec::pascal_p100().peak_fp32_flops);
    }

    #[test]
    fn memcpy_below_peak() {
        for spec in GpuSpec::paper_catalog() {
            assert!(spec.memcpy_effective_bandwidth() < spec.dram_bandwidth);
            let t = spec.memcpy_time(1 << 30);
            assert!(t > 0.0 && t < 0.1, "{}: {t}", spec.name);
        }
    }

    #[test]
    fn servers_match_table_iii() {
        assert_eq!(ServerSpec::kepler().gpu_count, 2);
        assert_eq!(ServerSpec::maxwell().gpu_count, 4);
        assert_eq!(ServerSpec::pascal().gpu_count, 4);
        assert_eq!(ServerSpec::pascal().gpu.name, "Tesla P100");
    }
}
