//! Log-bucketed latency histogram with quantile estimation.
//!
//! Serving benchmarks need p50/p95/p99 over millions of request latencies
//! without keeping every sample. [`LatencyHistogram`] is the standard
//! HDR-style answer scaled down: geometric buckets spanning 1 µs – ~100 s
//! at a fixed ~5% relative resolution, O(1) record, O(buckets) quantiles,
//! and mergeability so per-worker histograms can be combined.

use serde::Serialize;

/// Lowest representable latency, seconds (1 µs).
const FLOOR: f64 = 1e-6;
/// Geometric bucket growth factor: ~5% relative quantile error.
const GROWTH: f64 = 1.05;
/// Bucket count: FLOOR · GROWTH^379 ≈ 108 s of range.
const BUCKETS: usize = 380;

/// A fixed-memory histogram of latencies in seconds.
///
/// ```
/// use cumf_telemetry::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for i in 1..=100 {
///     h.record_secs(i as f64 * 1e-3); // 1ms..100ms, uniform
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.quantile(0.50);
/// assert!((p50 - 0.050).abs() < 0.005, "p50 {p50}");
/// assert!(h.quantile(0.99) > h.quantile(0.50));
/// ```
#[derive(Clone, Debug, Serialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    /// Bucket index of a latency: geometric above the 1 µs floor, clamped
    /// at both ends. Buckets are half-open `[lower_edge, upper_edge)`;
    /// because the index comes from a floating-point logarithm, samples
    /// landing *exactly* on an edge can truncate one bucket low (or, more
    /// rarely, round one high), so the index is re-checked against the
    /// edge contract after truncation.
    fn bucket(secs: f64) -> usize {
        if secs <= FLOOR {
            return 0;
        }
        let idx = (secs / FLOOR).ln() / GROWTH.ln();
        let mut i = (idx as usize).min(BUCKETS - 1);
        if i + 1 < BUCKETS && secs >= Self::upper_edge(i) {
            i += 1;
        } else if i > 0 && secs < Self::lower_edge(i) {
            i -= 1;
        }
        i
    }

    /// Lower edge of bucket `i`, seconds. Bucket 0 absorbs everything at
    /// or below the floor, so its lower edge is 0.
    fn lower_edge(i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            FLOOR * GROWTH.powi(i as i32)
        }
    }

    /// Upper edge of bucket `i`, seconds (exclusive).
    fn upper_edge(i: usize) -> f64 {
        FLOOR * GROWTH.powi(i as i32 + 1)
    }

    /// Record one latency in seconds. Non-finite or negative samples are
    /// counted in the lowest bucket (they indicate a measurement bug, not
    /// a fast request, but dropping them would skew the count).
    pub fn record_secs(&mut self, secs: f64) {
        let s = if secs.is_finite() && secs >= 0.0 {
            secs
        } else {
            0.0
        };
        self.counts[Self::bucket(s)] += 1;
        self.count += 1;
        self.sum += s;
        self.min = self.min.min(s);
        self.max = self.max.max(s);
    }

    /// Record one latency given as a [`std::time::Duration`] — convenience
    /// for call sites timing with `Instant::elapsed()`.
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record_secs(d.as_secs_f64());
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean latency in seconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded latency (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded latency (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `q`-quantile latency in seconds (`q` in `[0, 1]`), within ~5%
    /// relative error; 0 when empty. The rank is located in a bucket, then
    /// interpolated *within* the bucket (geometrically, matching the
    /// geometric bucket widths) by how far through the bucket's occupancy
    /// the rank falls — reporting the upper edge outright would bias every
    /// quantile high by up to one bucket width. Clamped to the observed
    /// min/max so bucket edges never report a value outside the recorded
    /// range.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                let into = (rank - (seen - c)) as f64 / c as f64;
                let lo = Self::lower_edge(i);
                let hi = Self::upper_edge(i);
                // Bucket 0's range starts at 0, where geometric
                // interpolation degenerates; interpolate linearly there.
                let v = if i == 0 {
                    hi * into
                } else {
                    lo * (hi / lo).powf(into)
                };
                return v.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Sum of all recorded latencies, seconds.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Occupied buckets as `(upper_edge_secs, count)` pairs in ascending
    /// edge order — the raw material for Prometheus-style cumulative
    /// `le`-bucket exposition (the exporter cumulates and appends `+Inf`).
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::upper_edge(i), c))
            .collect()
    }

    /// Merge another histogram into this one (per-worker → global).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The standard percentile triple (p50, p95, p99), seconds.
    pub fn percentiles(&self) -> (f64, f64, f64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }

    /// Export the summary as [`CounterSample`](crate::CounterSample) events
    /// named `{prefix}.p50` / `.p95` / `.p99` / `.mean` / `.count`, stamped
    /// at `time` — the JSONL exporter then carries serving latencies in the
    /// same stream as everything else.
    pub fn to_counters(&self, prefix: &str, time: f64) -> Vec<crate::CounterSample> {
        let (p50, p95, p99) = self.percentiles();
        [
            ("p50", p50),
            ("p95", p95),
            ("p99", p99),
            ("mean", self.mean()),
            ("count", self.count as f64),
        ]
        .into_iter()
        .map(|(suffix, value)| crate::CounterSample::new(format!("{prefix}.{suffix}"), time, value))
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000 {
            h.record_secs(i as f64 * 1e-4); // 0.1ms .. 100ms
        }
        assert_eq!(h.count(), 1000);
        let (p50, p95, p99) = h.percentiles();
        assert!((p50 - 0.050).abs() < 0.050 * 0.08, "p50 {p50}");
        assert!((p95 - 0.095).abs() < 0.095 * 0.08, "p95 {p95}");
        assert!((p99 - 0.099).abs() < 0.099 * 0.08, "p99 {p99}");
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn single_sample_reports_itself_everywhere() {
        let mut h = LatencyHistogram::new();
        h.record_secs(0.0123);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!((v - 0.0123).abs() < 0.0123 * 0.06, "q={q}: {v}");
        }
        assert_eq!(h.min(), 0.0123);
        assert_eq!(h.max(), 0.0123);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for i in 0..500 {
            let s = 1e-5 * (1.0 + i as f64);
            if i % 2 == 0 {
                a.record_secs(s);
            } else {
                b.record_secs(s);
            }
            both.record_secs(s);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.quantile(0.5), both.quantile(0.5));
        assert_eq!(a.quantile(0.99), both.quantile(0.99));
        assert!((a.mean() - both.mean()).abs() < 1e-12);
    }

    #[test]
    fn record_duration_matches_record_secs() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_duration(std::time::Duration::from_micros(1500));
        b.record_secs(1.5e-3);
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn out_of_range_samples_clamp() {
        let mut h = LatencyHistogram::new();
        h.record_secs(1e-9); // below floor
        h.record_secs(1e6); // above ceiling
        h.record_secs(f64::NAN); // measurement bug
        assert_eq!(h.count(), 3);
        assert!(h.quantile(1.0) >= 100.0, "ceiling bucket");
    }

    #[test]
    fn samples_on_exact_bucket_edges_stay_in_their_bucket() {
        // A sample exactly on an edge must land in the bucket whose
        // half-open range contains it, despite log-computation jitter —
        // recording the edge value and asking for the 1.0-quantile has to
        // return the sample itself (clamping makes this observable).
        for i in [1usize, 10, 100, 250, 378] {
            let edge = FLOOR * GROWTH.powi(i as i32);
            let b = LatencyHistogram::bucket(edge);
            assert!(
                edge >= LatencyHistogram::lower_edge(b) && edge < LatencyHistogram::upper_edge(b),
                "edge {edge} (index {i}) filed into bucket {b} \
                 [{}, {})",
                LatencyHistogram::lower_edge(b),
                LatencyHistogram::upper_edge(b),
            );
        }
    }

    #[test]
    fn nonzero_buckets_partition_the_count() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100 {
            h.record_secs(i as f64 * 1e-3);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), 100);
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0), "ascending");
        assert!((h.sum() - (1..=100).map(|i| i as f64 * 1e-3).sum::<f64>()).abs() < 1e-9);
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(40))]

        /// For arbitrary sample sets, every reported quantile must sit
        /// within one geometric bucket (~5% relative) of the exact
        /// order-statistic the same rank convention picks from the sorted
        /// samples — the bound the histogram's docs promise.
        #[test]
        fn quantile_error_is_bounded(
            lo in 2e-6f64..1e-3,
            spread in 1.5f64..200.0,
            raw in proptest::prop::collection::vec(0.0f64..1.0, 64..256),
        ) {
            let mut h = LatencyHistogram::new();
            // Skewed (squared-uniform) samples over [lo, lo*spread]: covers
            // tight and wide, head-heavy distributions.
            let samples: Vec<f64> = raw.iter().map(|u| lo * spread.powf(u * u)).collect();
            for &s in &samples {
                h.record_secs(s);
            }
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for q in [0.5, 0.9, 0.99] {
                let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
                let exact = sorted[rank - 1];
                let got = h.quantile(q);
                let rel = (got - exact).abs() / exact;
                proptest::prop_assert!(
                    rel <= GROWTH - 1.0 + 1e-9,
                    "q={} exact={} got={} rel={}", q, exact, got, rel
                );
            }
        }
    }

    #[test]
    fn counter_export_carries_the_percentiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..10 {
            h.record_secs(2e-3);
        }
        let counters = h.to_counters("serve.latency", 1.5);
        assert_eq!(counters.len(), 5);
        assert!(counters.iter().all(|c| c.time == 1.5));
        let count = counters
            .iter()
            .find(|c| c.name == "serve.latency.count")
            .unwrap();
        assert_eq!(count.value, 10.0);
        let p50 = counters
            .iter()
            .find(|c| c.name == "serve.latency.p50")
            .unwrap();
        assert!((p50.value - 2e-3).abs() < 2e-4);
    }
}
