//! JSONL metrics exporter: one self-describing JSON object per line.
//!
//! Each line is one [`Event`], serialized with its `"type"` tag
//! (`Kernel` / `Phase` / `Solver` / `Counter`), so a downstream script can
//! stream-filter with nothing but a JSON parser — e.g. pull every `Solver`
//! line to regenerate the Figure-5 comparison.

use crate::event::Event;
use serde::Serialize;

/// Serialize events as JSON Lines (one event per line, `\n`-terminated).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.to_value().to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CounterSample, PhaseSpan};
    use serde::Value;

    #[test]
    fn one_tagged_object_per_line() {
        let events = vec![
            Event::Phase {
                span: PhaseSpan::new("solve-X", 0.0, 1.5),
            },
            Event::Counter {
                sample: CounterSample::new("mem", 1.5, 4096.0),
            },
        ];
        let jsonl = to_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Value::parse(lines[0]).unwrap();
        assert_eq!(first.get("type").unwrap().as_str(), Some("Phase"));
        assert_eq!(
            first.get("span").unwrap().get("name").unwrap().as_str(),
            Some("solve-X")
        );
        let second = Value::parse(lines[1]).unwrap();
        assert_eq!(second.get("type").unwrap().as_str(), Some("Counter"));
        assert_eq!(
            second.get("sample").unwrap().get("value").unwrap().as_f64(),
            Some(4096.0)
        );
    }
}
