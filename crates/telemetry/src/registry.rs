//! A metrics registry: typed, labeled counters, gauges, and latency
//! histograms with Prometheus text exposition and JSON snapshots.
//!
//! The recorder pipeline ([`crate::recorder`]) moves *events* — good for
//! traces and offline analysis, wrong for live operational state: serving
//! code wants `cache_hits.inc()` on a hot path, and an operator wants
//! `GET /metrics` to show the current totals. This module is that layer:
//!
//! * **Handles are cheap and `Sync`.** A [`Counter`] is a set of
//!   cache-line-padded atomics striped by thread (so shard threads
//!   incrementing the same logical counter don't bounce one cache line);
//!   a [`Gauge`] is one atomic `f64`; a [`Histogram`] wraps the
//!   log-bucketed [`LatencyHistogram`] behind a mutex. All are `Clone`
//!   (shared state behind an `Arc`) and registered once by
//!   `(name, labels)` — re-registering returns the same underlying metric.
//! * **Exposition is pull-based.** [`MetricsRegistry::render_prometheus`]
//!   emits the standard text format (`# HELP` / `# TYPE` / samples, with
//!   histograms as cumulative `le` buckets plus `_sum`/`_count`);
//!   [`MetricsRegistry::snapshot`] returns the same data as a JSON value;
//!   [`MetricsRegistry::to_counter_samples`] bridges current values into
//!   the event stream so a JSONL dump carries the final aggregates.
//!
//! ```
//! use cumf_telemetry::registry::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! let hits = reg.counter("serve_cache_hits_total", "Result-cache hits");
//! let lat = reg.histogram("serve_request_latency_seconds", "End-to-end latency");
//! hits.inc();
//! lat.observe_secs(0.002);
//! let text = reg.render_prometheus();
//! assert!(text.contains("serve_cache_hits_total 1"));
//! assert!(text.contains("serve_request_latency_seconds_count 1"));
//! ```

use crate::event::CounterSample;
use crate::hist::LatencyHistogram;
use parking_lot::Mutex;
use serde::Value;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Stripes per counter: enough that the handful of threads a serving host
/// runs rarely share one, small enough that reading stays trivial.
const COUNTER_STRIPES: usize = 8;

/// One cache line per stripe so concurrent increments on different
/// stripes never contend on the same line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedAtomic(AtomicU64);

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread is assigned a stripe round-robin on first use.
    static THREAD_STRIPE: usize =
        NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % COUNTER_STRIPES;
}

/// A monotonically increasing counter, striped across padded atomics.
/// Cloning shares the underlying metric.
#[derive(Clone)]
pub struct Counter {
    stripes: Arc<[PaddedAtomic; COUNTER_STRIPES]>,
}

impl Counter {
    fn new() -> Counter {
        Counter {
            stripes: Arc::new(Default::default()),
        }
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` (relaxed; totals are exact, ordering across counters is
    /// not guaranteed).
    pub fn add(&self, n: u64) {
        THREAD_STRIPE.with(|&s| self.stripes[s].0.fetch_add(n, Ordering::Relaxed));
    }

    /// Current total, summed over stripes.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A settable scalar (an `f64` stored as atomic bits). Cloning shares the
/// underlying metric.
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// A latency distribution: the log-bucketed [`LatencyHistogram`] behind a
/// mutex. Cloning shares the underlying metric.
#[derive(Clone)]
pub struct Histogram {
    hist: Arc<Mutex<LatencyHistogram>>,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            hist: Arc::new(Mutex::new(LatencyHistogram::new())),
        }
    }

    /// Record one observation in seconds.
    pub fn observe_secs(&self, secs: f64) {
        self.hist.lock().record_secs(secs);
    }

    /// Record one observation from a [`std::time::Duration`].
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.hist.lock().record_duration(d);
    }

    /// Merge a locally accumulated histogram in (per-worker → global).
    pub fn merge(&self, other: &LatencyHistogram) {
        self.hist.lock().merge(other);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.hist.lock().clone()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count={})", self.hist.lock().count())
    }
}

/// Any registered metric handle.
#[derive(Clone, Debug)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

/// One labeled instance within a family.
struct Metric {
    labels: Vec<(String, String)>,
    handle: Handle,
}

/// All instances sharing one metric name.
struct Family {
    name: String,
    help: String,
    kind: &'static str,
    metrics: Vec<Metric>,
}

/// The registry: named metric families, each holding one handle per label
/// set. All methods take `&self`; registration is idempotent by
/// `(name, labels)`.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fams = self.families.lock();
        write!(f, "MetricsRegistry({} families)", fams.len())
    }
}

/// Valid Prometheus metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| {
                assert!(valid_name(k), "invalid label name {k:?}");
                (k.to_string(), v.to_string())
            })
            .collect();
        let mut families = self.families.lock();
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            // Later registrations may carry better documentation (e.g. a
            // help-less internal fetch followed by the documented public
            // one); adopt the first non-empty help so `# HELP` survives
            // registration order.
            if family.help.is_empty() && !help.is_empty() {
                family.help = help.to_string();
            }
            if let Some(m) = family.metrics.iter().find(|m| m.labels == labels) {
                return m.handle.clone();
            }
            let handle = make();
            assert_eq!(
                family.kind,
                handle.kind(),
                "metric {name} already registered as a {}",
                family.kind
            );
            family.metrics.push(Metric {
                labels,
                handle: handle.clone(),
            });
            return handle;
        }
        let handle = make();
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind: handle.kind(),
            metrics: vec![Metric {
                labels,
                handle: handle.clone(),
            }],
        });
        handle
    }

    /// Register (or fetch) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a labeled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, || Handle::Counter(Counter::new())) {
            Handle::Counter(c) => c,
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    /// Register (or fetch) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch) a labeled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, || Handle::Gauge(Gauge::new())) {
            Handle::Gauge(g) => g,
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Register (or fetch) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Register (or fetch) a labeled histogram.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, labels, || Handle::Histogram(Histogram::new())) {
            Handle::Histogram(h) => h,
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Render the registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` per family, one sample line
    /// per label set, histograms as cumulative `le` buckets plus
    /// `_sum` / `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock();
        for family in families.iter() {
            if !family.help.is_empty() {
                out.push_str(&format!(
                    "# HELP {} {}\n",
                    family.name,
                    family.help.replace('\\', "\\\\").replace('\n', "\\n")
                ));
            }
            out.push_str(&format!("# TYPE {} {}\n", family.name, family.kind));
            for metric in &family.metrics {
                match &metric.handle {
                    Handle::Counter(c) => out.push_str(&format!(
                        "{}{} {}\n",
                        family.name,
                        label_block(&metric.labels, None),
                        c.get()
                    )),
                    Handle::Gauge(g) => out.push_str(&format!(
                        "{}{} {}\n",
                        family.name,
                        label_block(&metric.labels, None),
                        fmt_value(g.get())
                    )),
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for (le, c) in snap.nonzero_buckets() {
                            cum += c;
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                family.name,
                                label_block(&metric.labels, Some(&fmt_value(le))),
                                cum
                            ));
                        }
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            family.name,
                            label_block(&metric.labels, Some("+Inf")),
                            snap.count()
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            family.name,
                            label_block(&metric.labels, None),
                            fmt_value(snap.sum())
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            family.name,
                            label_block(&metric.labels, None),
                            snap.count()
                        ));
                    }
                }
            }
        }
        out
    }

    /// A JSON snapshot: one member per family, each an array of
    /// `{labels, value}` objects (histograms report
    /// `{count, sum, mean, p50, p95, p99, max}`).
    pub fn snapshot(&self) -> Value {
        let families = self.families.lock();
        let mut members = Vec::new();
        for family in families.iter() {
            let mut entries = Vec::new();
            for metric in &family.metrics {
                let labels = Value::Object(
                    metric
                        .labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                );
                let value = match &metric.handle {
                    Handle::Counter(c) => Value::Num(c.get() as f64),
                    Handle::Gauge(g) => Value::Num(g.get()),
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        let (p50, p95, p99) = snap.percentiles();
                        Value::Object(vec![
                            ("count".into(), Value::Num(snap.count() as f64)),
                            ("sum".into(), Value::Num(snap.sum())),
                            ("mean".into(), Value::Num(snap.mean())),
                            ("p50".into(), Value::Num(p50)),
                            ("p95".into(), Value::Num(p95)),
                            ("p99".into(), Value::Num(p99)),
                            ("max".into(), Value::Num(snap.max())),
                        ])
                    }
                };
                entries.push(Value::Object(vec![
                    ("labels".into(), labels),
                    ("value".into(), value),
                ]));
            }
            members.push((family.name.clone(), Value::Array(entries)));
        }
        Value::Object(members)
    }

    /// Bridge current values into the event stream as [`CounterSample`]s
    /// stamped at `time`, so a JSONL dump carries the final aggregates.
    /// Labels are folded into the name (`name{k="v"}`); histograms expand
    /// through [`LatencyHistogram::to_counters`].
    pub fn to_counter_samples(&self, time: f64) -> Vec<CounterSample> {
        let families = self.families.lock();
        let mut out = Vec::new();
        for family in families.iter() {
            for metric in &family.metrics {
                let name = format!("{}{}", family.name, label_block(&metric.labels, None));
                match &metric.handle {
                    Handle::Counter(c) => {
                        out.push(CounterSample::new(name, time, c.get() as f64));
                    }
                    Handle::Gauge(g) => out.push(CounterSample::new(name, time, g.get())),
                    Handle::Histogram(h) => out.extend(h.snapshot().to_counters(&name, time)),
                }
            }
        }
        out
    }

    /// Lint every family against exposition conventions and return one
    /// message per violation (empty = conformant). Checked:
    ///
    /// * every family has a non-empty `# HELP` string,
    /// * counter names end in `_total`,
    /// * histogram names end in `_seconds` (this codebase only records
    ///   latencies),
    /// * metric and label names match `[a-zA-Z_:][a-zA-Z0-9_:]*` (also
    ///   asserted at registration; re-checked here so the lint is
    ///   self-contained).
    ///
    /// Wire this into a conformance test so a typo'd metric name fails CI
    /// instead of silently breaking a scrape config.
    pub fn lint(&self) -> Vec<String> {
        let families = self.families.lock();
        let mut problems = Vec::new();
        for family in families.iter() {
            let name = &family.name;
            if family.help.is_empty() {
                problems.push(format!("{name}: missing HELP text"));
            }
            if family.kind == "counter" && !name.ends_with("_total") {
                problems.push(format!("{name}: counter should end in _total"));
            }
            if family.kind == "histogram" && !name.ends_with("_seconds") {
                problems.push(format!("{name}: histogram should end in _seconds"));
            }
            if !valid_name(name) {
                problems.push(format!("{name}: invalid metric name"));
            }
            for metric in &family.metrics {
                for (k, _) in &metric.labels {
                    if !valid_name(k) {
                        problems.push(format!("{name}: invalid label name {k:?}"));
                    }
                }
            }
        }
        problems
    }
}

/// Render a `{k="v",...}` label block; `le` appends the histogram bucket
/// label. Empty label sets render as nothing (bare metric name).
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Escape a label value per the exposition format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Format a float sample the way Prometheus expects (no exponent games
/// needed; Rust's shortest-round-trip `{}` is valid).
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_stripe_and_sum() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("requests_total", "served requests");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        // Re-registration returns the same underlying metric.
        assert_eq!(reg.counter("requests_total", "served requests").get(), 4000);
    }

    #[test]
    fn gauge_sets_and_reads() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("epoch", "model epoch");
        g.set(7.5);
        assert_eq!(g.get(), 7.5);
        assert_eq!(reg.gauge("epoch", "").get(), 7.5);
    }

    #[test]
    fn labeled_metrics_are_distinct() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("shard_scored_total", "scores", &[("shard", "0")]);
        let b = reg.counter_with("shard_scored_total", "scores", &[("shard", "1")]);
        a.add(3);
        b.add(5);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 5);
        let text = reg.render_prometheus();
        assert!(text.contains("shard_scored_total{shard=\"0\"} 3"));
        assert!(text.contains("shard_scored_total{shard=\"1\"} 5"));
        // One family header for both children.
        assert_eq!(text.matches("# TYPE shard_scored_total counter").count(), 1);
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency_seconds", "request latency");
        h.observe_secs(0.001);
        h.observe_secs(0.001);
        h.observe_secs(0.100);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE latency_seconds histogram"));
        assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("latency_seconds_count 3"));
        // Cumulative counts never decrease along the bucket lines.
        let cums: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("latency_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(cums.windows(2).all(|w| w[0] <= w[1]), "{cums:?}");
        assert_eq!(*cums.last().unwrap(), 3);
    }

    #[test]
    fn snapshot_and_counter_bridge_agree() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "").add(2);
        reg.gauge("b", "").set(1.5);
        reg.histogram("lat_seconds", "").observe_secs(0.01);
        let snap = reg.snapshot();
        let a = snap.get("a_total").unwrap().as_array().unwrap();
        assert_eq!(a[0].get("value").unwrap().as_f64(), Some(2.0));
        let samples = reg.to_counter_samples(9.0);
        assert!(samples
            .iter()
            .any(|c| c.name == "a_total" && c.value == 2.0));
        assert!(samples.iter().any(|c| c.name == "b" && c.value == 1.5));
        assert!(samples.iter().any(|c| c.name == "lat_seconds.p99"));
        assert!(samples.iter().all(|c| c.time == 9.0));
    }

    #[test]
    fn first_nonempty_help_wins() {
        let reg = MetricsRegistry::new();
        reg.counter("hits_total", "");
        reg.counter("hits_total", "result-cache hits");
        reg.counter("hits_total", "a different string arrives too late");
        let text = reg.render_prometheus();
        assert!(
            text.contains("# HELP hits_total result-cache hits"),
            "{text}"
        );
    }

    #[test]
    fn lint_flags_convention_violations() {
        let reg = MetricsRegistry::new();
        reg.counter("requests_total", "served requests");
        reg.gauge("mem_bytes", "resident bytes");
        reg.histogram("latency_seconds", "request latency");
        assert_eq!(reg.lint(), Vec::<String>::new());

        reg.counter("undocumented_total", "");
        reg.counter("shed", "sheds without the _total suffix");
        reg.histogram("latency_ms", "histogram without _seconds");
        let problems = reg.lint();
        assert_eq!(problems.len(), 3, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("missing HELP")));
        assert!(problems.iter().any(|p| p.contains("_total")));
        assert!(problems.iter().any(|p| p.contains("_seconds")));
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn dotted_names_are_rejected() {
        MetricsRegistry::new().counter("serve.bad.name", "");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_are_rejected() {
        let reg = MetricsRegistry::new();
        reg.counter_with("m", "", &[("a", "0")]);
        reg.gauge_with("m", "", &[("a", "1")]);
    }
}
