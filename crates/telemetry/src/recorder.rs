//! The recorder abstraction: instrumentation sites hold a `&dyn Recorder`
//! and stay on the zero-cost path unless a real sink is attached.
//!
//! The contract instrumented code follows:
//!
//! 1. check [`Recorder::enabled`] **before** building an event (building a
//!    [`KernelLaunchRecord`] allocates);
//! 2. never branch *simulation* logic on the recorder — simulated times and
//!    model outputs must be bit-identical whether or not anyone is
//!    listening.

use crate::event::{CounterSample, Event, KernelLaunchRecord, PhaseSpan, SolverRecord};
use parking_lot::Mutex;

/// A sink for telemetry events.
pub trait Recorder: Sync {
    /// Whether events will be kept. Instrumentation sites must check this
    /// before constructing events, so a disabled recorder costs one virtual
    /// call and a branch per site.
    fn enabled(&self) -> bool;

    /// Accept one event. May be called from parallel workers; implementors
    /// must synchronize internally.
    fn record(&self, event: Event);

    /// Record a kernel launch (convenience).
    fn kernel(&self, record: KernelLaunchRecord) {
        self.record(Event::Kernel { record });
    }

    /// Record a phase span (convenience).
    fn phase(&self, span: PhaseSpan) {
        self.record(Event::Phase { span });
    }

    /// Record a solver batch (convenience).
    fn solver(&self, record: SolverRecord) {
        self.record(Event::Solver { record });
    }

    /// Record a counter sample (convenience).
    fn counter(&self, sample: CounterSample) {
        self.record(Event::Counter { sample });
    }
}

/// The do-nothing recorder: `enabled()` is `false`, events are dropped.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

/// A shared static no-op recorder, for APIs that default to "not profiling"
/// without forcing callers to own a sink.
pub static NOOP: NoopRecorder = NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}
}

/// An in-memory recorder: appends every event to a mutex-guarded vector,
/// in arrival order. The exporters ([`crate::chrome`], [`crate::jsonl`],
/// [`crate::summary`]) consume its snapshot.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<Event>>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all events recorded so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Drain all events, leaving the recorder empty.
    pub fn take_events(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All kernel launch records, in arrival order.
    pub fn kernel_records(&self) -> Vec<KernelLaunchRecord> {
        self.events
            .lock()
            .iter()
            .filter_map(|e| e.as_kernel().cloned())
            .collect()
    }

    /// All phase spans, in arrival order.
    pub fn phase_spans(&self) -> Vec<PhaseSpan> {
        self.events
            .lock()
            .iter()
            .filter_map(|e| e.as_phase().cloned())
            .collect()
    }

    /// All solver records, in arrival order.
    pub fn solver_records(&self) -> Vec<SolverRecord> {
        self.events
            .lock()
            .iter()
            .filter_map(|e| e.as_solver().cloned())
            .collect()
    }

    /// All counter samples, in arrival order.
    pub fn counter_samples(&self) -> Vec<CounterSample> {
        self.events
            .lock()
            .iter()
            .filter_map(|e| e.as_counter().cloned())
            .collect()
    }
}

impl Recorder for MemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        self.events.lock().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_drops_everything() {
        assert!(!NOOP.enabled());
        NOOP.counter(CounterSample::new("x", 0.0, 1.0));
    }

    #[test]
    fn memory_recorder_keeps_order_and_filters() {
        let rec = MemoryRecorder::new();
        assert!(rec.is_empty());
        rec.counter(CounterSample::new("mem", 0.0, 42.0));
        rec.phase(PhaseSpan::new("solve-X", 0.0, 1.0));
        rec.counter(CounterSample::new("mem", 1.0, 84.0));
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.counter_samples().len(), 2);
        assert_eq!(rec.phase_spans()[0].name, "solve-X");
        assert_eq!(rec.events()[0].timestamp(), 0.0);
        assert_eq!(rec.take_events().len(), 3);
        assert!(rec.is_empty());
    }

    #[test]
    fn recorder_is_object_safe() {
        let mem = MemoryRecorder::new();
        let as_dyn: &dyn Recorder = &mem;
        as_dyn.counter(CounterSample::new("c", 0.5, 1.0));
        assert_eq!(mem.len(), 1);
        let noop_dyn: &dyn Recorder = &NOOP;
        assert!(!noop_dyn.enabled());
    }
}
