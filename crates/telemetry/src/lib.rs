//! # cumf-telemetry — an nvprof-style profiler for the simulated GPU stack
//!
//! The simulation crates price every kernel launch through a roofline-plus-
//! latency model but, before this crate, only surfaced aggregate phase
//! times. `cumf-telemetry` adds the observability layer nvprof/Nsight give
//! you on real hardware:
//!
//! * **Typed events** ([`event`]): [`KernelLaunchRecord`] (full cost-model
//!   input/output plus roofline context), [`PhaseSpan`], [`SolverRecord`]
//!   (CG step counts, residual trajectories, FP16 round-trip error), and
//!   [`CounterSample`] — all stamped with *simulated* time.
//! * **Recorders** ([`recorder`]): a [`Recorder`] trait with a zero-overhead
//!   [`NoopRecorder`] default and an in-memory [`MemoryRecorder`] sink.
//!   Instrumented code checks `enabled()` first and never branches
//!   simulation logic on the recorder, so disabling it is bit-identical.
//! * **Exporters**: Chrome trace-event JSON ([`chrome`]), JSON-Lines metric
//!   streams ([`jsonl`]), and an nvprof-style per-kernel summary table
//!   ([`summary`]).
//! * **Latency aggregation** ([`hist`]): a log-bucketed
//!   [`LatencyHistogram`] (p50/p95/p99, mergeable) for the *wall-clock*
//!   serving path, exportable into the same counter stream.
//! * **Byte accounting** ([`footprint`]): a [`MemoryFootprint`] trait
//!   returning [`FootprintReport`] component trees whose interior nodes
//!   provably sum to their children — the *space* counterpart to the
//!   time-oriented spans above, feeding `serve_mem_bytes`-style gauges.
//! * **Live metrics** ([`registry`]): a [`MetricsRegistry`] of typed,
//!   labeled handles — thread-striped atomic [`Counter`]s, [`Gauge`]s,
//!   [`Histogram`]s — with Prometheus text exposition and JSON snapshots,
//!   for operational state that events are the wrong shape for.
//!
//! Typical harness wiring:
//!
//! ```
//! use cumf_telemetry::{chrome_trace, to_jsonl, MemoryRecorder, Recorder};
//! use cumf_telemetry::{CounterSample, PhaseSpan};
//!
//! let rec = MemoryRecorder::new();
//! if rec.enabled() {
//!     rec.phase(PhaseSpan::new("get_hermitian-X", 0.0, 0.4));
//!     rec.counter(CounterSample::new("device_mem_bytes", 0.4, 1.5e9));
//! }
//! let trace_json = chrome_trace(&rec.events());
//! let metrics = to_jsonl(&rec.events());
//! assert!(trace_json.contains("traceEvents") && metrics.lines().count() == 2);
//! ```

#![deny(missing_docs)]

pub mod chrome;
pub mod event;
pub mod footprint;
pub mod hist;
pub mod jsonl;
pub mod recorder;
pub mod registry;
pub mod summary;

pub use chrome::chrome_trace;
pub use event::{CounterSample, Event, KernelLaunchRecord, PhaseSpan, SolverExit, SolverRecord};
pub use footprint::{FootprintReport, MemoryFootprint};
pub use hist::LatencyHistogram;
pub use jsonl::to_jsonl;
pub use recorder::{MemoryRecorder, NoopRecorder, Recorder, NOOP};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use summary::{kernel_summary, render_summary, summarize_events, KernelSummaryRow};

/// Write a Chrome trace-event JSON document for `events` to `path`.
pub fn write_chrome_trace(path: &str, events: &[Event]) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace(events))
}

/// Write a JSONL metrics stream for `events` to `path`.
pub fn write_jsonl(path: &str, events: &[Event]) -> std::io::Result<()> {
    std::fs::write(path, to_jsonl(events))
}
