//! Typed telemetry events, all stamped with **simulated** time.
//!
//! Every event carries enough context to be analyzed standalone from a
//! JSONL stream: a [`KernelLaunchRecord`] embeds the full cost model inputs
//! and outputs (so roofline plots can be re-derived), a [`SolverRecord`]
//! carries per-batch CG statistics (so Figure 5's solver comparison can be
//! regenerated), and a [`CounterSample`] tracks scalar gauges like
//! device-memory high-water marks.

use cumf_gpu_sim::device::GpuSpec;
use cumf_gpu_sim::kernel::{KernelCost, LaunchTiming};
use cumf_gpu_sim::occupancy::Occupancy;
use serde::Serialize;
use std::borrow::Cow;

/// One priced kernel launch: identity, geometry, the full cost-model input
/// and output, and roofline context (achieved vs. peak rates).
#[derive(Clone, Debug, Serialize)]
pub struct KernelLaunchRecord {
    /// Kernel name (e.g. `get_hermitian`, `solve_cg_fp16`).
    pub kernel: Cow<'static, str>,
    /// Device the launch was priced on (marketing name from [`GpuSpec`]).
    pub device: String,
    /// Blocks in the grid.
    pub grid_blocks: u64,
    /// Threads per block.
    pub block_threads: u32,
    /// Simulated start time, seconds.
    pub start: f64,
    /// Achieved occupancy (blocks/warps per SM, limiting resource).
    pub occupancy: Occupancy,
    /// The launch's cost description: flops, traffic, transactions, MLP.
    pub cost: KernelCost,
    /// All four timing bounds plus the winning time.
    pub timing: LaunchTiming,
    /// Which bound won: `"compute"`, `"dram"`, `"l2"`, or `"latency"`.
    pub bound: Cow<'static, str>,
    /// Modeled L1 hit ratio of the launch's load stream (0 when unknown).
    pub l1_hit_ratio: f64,
    /// Modeled L2 hit ratio of the launch's load stream (0 when unknown).
    pub l2_hit_ratio: f64,
    /// Achieved FLOP/s over the launch (`total_flops / time`).
    pub achieved_flops: f64,
    /// Device peak FLOP/s for the launch's precision mix.
    pub peak_flops: f64,
    /// Achieved DRAM bandwidth over the launch, bytes/s.
    pub achieved_bandwidth: f64,
    /// Device peak DRAM bandwidth, bytes/s.
    pub peak_bandwidth: f64,
}

impl KernelLaunchRecord {
    /// Build a record from a priced launch, deriving the roofline context
    /// (bound, achieved and peak rates) from the cost, timing, and device.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kernel: impl Into<Cow<'static, str>>,
        spec: &GpuSpec,
        occ: Occupancy,
        cost: KernelCost,
        timing: LaunchTiming,
        start: f64,
        grid_blocks: u64,
        block_threads: u32,
    ) -> Self {
        // Peak for the launch's precision mix: fp16 flops count against the
        // device's fp16 rate, fp32 against the fp32 rate.
        let total = cost.total_flops();
        let peak_flops = if total > 0.0 {
            let w16 = cost.flops_fp16 / total;
            spec.peak_fp32_flops * (1.0 - w16) + spec.peak_fp16_flops() * w16
        } else {
            spec.peak_fp32_flops
        };
        KernelLaunchRecord {
            kernel: kernel.into(),
            device: spec.name.to_string(),
            grid_blocks,
            block_threads,
            start,
            occupancy: occ,
            cost,
            timing,
            bound: Cow::Borrowed(timing.bound()),
            l1_hit_ratio: 0.0,
            l2_hit_ratio: 0.0,
            achieved_flops: timing.achieved_flops(total),
            peak_flops,
            achieved_bandwidth: timing.achieved_bandwidth(cost.total_dram_bytes()),
            peak_bandwidth: spec.dram_bandwidth,
        }
    }

    /// Attach modeled L1/L2 hit ratios (builder-style).
    pub fn with_cache_hit_ratios(mut self, l1: f64, l2: f64) -> Self {
        self.l1_hit_ratio = l1;
        self.l2_hit_ratio = l2;
        self
    }

    /// Simulated duration of the launch, seconds.
    pub fn duration(&self) -> f64 {
        self.timing.time
    }

    /// Simulated end time, seconds.
    pub fn end(&self) -> f64 {
        self.start + self.timing.time
    }

    /// Achieved fraction of peak FLOP/s (0 when the launch does no flops).
    pub fn flops_fraction_of_peak(&self) -> f64 {
        if self.peak_flops > 0.0 {
            self.achieved_flops / self.peak_flops
        } else {
            0.0
        }
    }

    /// Achieved fraction of peak DRAM bandwidth.
    pub fn bandwidth_fraction_of_peak(&self) -> f64 {
        if self.peak_bandwidth > 0.0 {
            self.achieved_bandwidth / self.peak_bandwidth
        } else {
            0.0
        }
    }
}

/// A named span of simulated time: one ALS phase on one side
/// (`get_hermitian-X`, `solve-Θ`, `rmse-eval`, …).
#[derive(Clone, Debug, Serialize)]
pub struct PhaseSpan {
    /// Phase name.
    pub name: Cow<'static, str>,
    /// Simulated start time, seconds.
    pub start: f64,
    /// Simulated end time, seconds.
    pub end: f64,
}

impl PhaseSpan {
    /// A span `[start, end]` named `name`.
    pub fn new(name: impl Into<Cow<'static, str>>, start: f64, end: f64) -> Self {
        let (name, start) = (name.into(), start);
        assert!(end >= start, "span {name} ends before it starts");
        PhaseSpan { name, start, end }
    }

    /// Span length in simulated seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Why a batched iterative solve stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum SolverExit {
    /// Residual dropped below tolerance before the iteration cap.
    Converged,
    /// The iteration cap was reached (the paper's fixed-iteration regime).
    IterationCap,
    /// Direct solver — no iteration at all.
    Direct,
}

/// Per-batch statistics of one solver invocation (one side of one epoch):
/// CG step counts, a sampled residual trajectory, early-exit accounting,
/// and FP16 round-trip error statistics — enough to regenerate the
/// Figure-5 solver comparison from a JSONL stream alone.
#[derive(Clone, Debug, Serialize)]
pub struct SolverRecord {
    /// Solver name (`cg-fp32`, `cg-fp16`, `lu-fp32`, …).
    pub solver: Cow<'static, str>,
    /// Which side was solved (`X` or `Theta`).
    pub side: Cow<'static, str>,
    /// Epoch index (0-based).
    pub epoch: u32,
    /// Rows (users or items) in the batch.
    pub rows: u64,
    /// Total CG iterations summed over the batch (0 for direct solvers).
    pub total_cg_iters: u64,
    /// Mean CG iterations per row.
    pub mean_cg_iters: f64,
    /// Maximum CG iterations any row took.
    pub max_cg_iters: u32,
    /// Rows that exited early on the residual tolerance.
    pub rows_converged: u64,
    /// Rows that ran to the iteration cap.
    pub rows_iteration_capped: u64,
    /// How this batch predominantly exited.
    pub exit: SolverExit,
    /// Residual norms per CG step of a representative (first) row.
    pub residual_trajectory: Vec<f64>,
    /// RMS of the FP16 round-trip error over sampled matrix entries
    /// (0 for FP32 solvers).
    pub fp16_roundtrip_rms: f64,
    /// Largest absolute FP16 round-trip error over sampled entries.
    pub fp16_roundtrip_max: f64,
    /// Simulated time at which the batch solve completed.
    pub sim_time: f64,
}

/// A scalar gauge sample (device-memory high-water, cumulative interconnect
/// bytes, cache hit ratios, …) at one simulated instant.
#[derive(Clone, Debug, Serialize)]
pub struct CounterSample {
    /// Counter name (e.g. `device_mem_bytes`, `interconnect_bytes`).
    pub name: Cow<'static, str>,
    /// Simulated time of the sample, seconds.
    pub time: f64,
    /// The sampled value.
    pub value: f64,
}

impl CounterSample {
    /// A sample of `name` = `value` at simulated `time`.
    pub fn new(name: impl Into<Cow<'static, str>>, time: f64, value: f64) -> Self {
        CounterSample {
            name: name.into(),
            time,
            value,
        }
    }
}

/// Any telemetry event — the unit the recorder pipeline moves around.
#[derive(Clone, Debug, Serialize)]
pub enum Event {
    /// A priced kernel launch.
    Kernel {
        /// The launch record.
        record: KernelLaunchRecord,
    },
    /// A phase span.
    Phase {
        /// The span.
        span: PhaseSpan,
    },
    /// A batched solver invocation.
    Solver {
        /// The solver statistics.
        record: SolverRecord,
    },
    /// A scalar gauge sample.
    Counter {
        /// The sample.
        sample: CounterSample,
    },
}

impl Event {
    /// The kernel record, if this is a kernel event.
    pub fn as_kernel(&self) -> Option<&KernelLaunchRecord> {
        match self {
            Event::Kernel { record } => Some(record),
            _ => None,
        }
    }

    /// The phase span, if this is a phase event.
    pub fn as_phase(&self) -> Option<&PhaseSpan> {
        match self {
            Event::Phase { span } => Some(span),
            _ => None,
        }
    }

    /// The solver record, if this is a solver event.
    pub fn as_solver(&self) -> Option<&SolverRecord> {
        match self {
            Event::Solver { record } => Some(record),
            _ => None,
        }
    }

    /// The counter sample, if this is a counter event.
    pub fn as_counter(&self) -> Option<&CounterSample> {
        match self {
            Event::Counter { sample } => Some(sample),
            _ => None,
        }
    }

    /// Simulated timestamp of the event (start time for spans/kernels).
    pub fn timestamp(&self) -> f64 {
        match self {
            Event::Kernel { record } => record.start,
            Event::Phase { span } => span.start,
            Event::Solver { record } => record.sim_time,
            Event::Counter { sample } => sample.time,
        }
    }
}
