//! Chrome trace-event exporter (`chrome://tracing` / Perfetto JSON).
//!
//! Spans (phases and kernel launches) become paired `B`/`E` duration
//! events; counters become `C` events; solver batches become `i` instants.
//! Timestamps are **simulated** seconds converted to microseconds, the
//! unit the trace-event format expects.

use crate::event::Event;
use serde::{Serialize, Value};

/// One interval to lay out as a `B`/`E` pair.
struct Interval {
    name: String,
    cat: &'static str,
    start: f64,
    end: f64,
    seq: usize,
    args: Value,
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn us(seconds: f64) -> f64 {
    seconds * 1e6
}

/// Convert an event stream into a Chrome trace-event JSON document.
///
/// All spans go on one pid/tid (the simulation is a single timeline);
/// properly nested input intervals (kernels inside phases) produce properly
/// nested `B`/`E` pairs, enforced by a stack-based sweep.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut intervals: Vec<Interval> = Vec::new();
    let mut out: Vec<Value> = Vec::new();

    // Process metadata so the trace viewer shows a meaningful lane name.
    out.push(obj(vec![
        ("name", Value::Str("process_name".into())),
        ("ph", Value::Str("M".into())),
        ("pid", Value::Num(0.0)),
        ("tid", Value::Num(0.0)),
        ("args", obj(vec![("name", Value::Str("cumf-sim".into()))])),
    ]));

    for (seq, event) in events.iter().enumerate() {
        match event {
            Event::Phase { span } => intervals.push(Interval {
                name: span.name.to_string(),
                cat: "phase",
                start: span.start,
                end: span.end,
                seq,
                args: obj(vec![("duration_s", Value::Num(span.duration()))]),
            }),
            Event::Kernel { record } => intervals.push(Interval {
                name: record.kernel.to_string(),
                cat: "kernel",
                start: record.start,
                end: record.end(),
                seq,
                args: obj(vec![
                    ("device", Value::Str(record.device.clone())),
                    ("bound", Value::Str(record.bound.to_string())),
                    ("grid_blocks", Value::Num(record.grid_blocks as f64)),
                    ("block_threads", Value::Num(record.block_threads as f64)),
                    ("occupancy", Value::Num(record.occupancy.fraction)),
                    ("l1_hit_ratio", Value::Num(record.l1_hit_ratio)),
                    ("l2_hit_ratio", Value::Num(record.l2_hit_ratio)),
                    ("achieved_gflops", Value::Num(record.achieved_flops / 1e9)),
                    (
                        "pct_of_peak_flops",
                        Value::Num(100.0 * record.flops_fraction_of_peak()),
                    ),
                    ("achieved_gbps", Value::Num(record.achieved_bandwidth / 1e9)),
                    (
                        "pct_of_peak_bw",
                        Value::Num(100.0 * record.bandwidth_fraction_of_peak()),
                    ),
                ]),
            }),
            Event::Counter { sample } => out.push(obj(vec![
                ("name", Value::Str(sample.name.to_string())),
                ("ph", Value::Str("C".into())),
                ("ts", Value::Num(us(sample.time))),
                ("pid", Value::Num(0.0)),
                ("tid", Value::Num(0.0)),
                ("args", obj(vec![("value", Value::Num(sample.value))])),
            ])),
            Event::Solver { record } => out.push(obj(vec![
                (
                    "name",
                    Value::Str(format!("{}[{}]", record.solver, record.side)),
                ),
                ("ph", Value::Str("i".into())),
                ("ts", Value::Num(us(record.sim_time))),
                ("pid", Value::Num(0.0)),
                ("tid", Value::Num(0.0)),
                ("s", Value::Str("t".into())),
                ("args", record.to_value()),
            ])),
        }
    }

    // Outer spans first at equal starts, so the sweep opens the enclosing
    // phase before the kernel it contains.
    intervals.sort_by(|a, b| {
        a.start
            .partial_cmp(&b.start)
            .unwrap()
            .then(b.end.partial_cmp(&a.end).unwrap())
            .then(a.seq.cmp(&b.seq))
    });

    // Stack-based sweep: close every open interval that ends at or before
    // the next one starts, then open the next. Remaining opens close LIFO,
    // so B/E pairs nest properly even with floating-point edge jitter.
    let mut stack: Vec<(String, f64)> = Vec::new();
    const EPS: f64 = 1e-12;
    for iv in &intervals {
        while let Some((name, end)) = stack.last() {
            if *end <= iv.start + EPS {
                out.push(close_event(name, *end));
                stack.pop();
            } else {
                break;
            }
        }
        out.push(obj(vec![
            ("name", Value::Str(iv.name.clone())),
            ("cat", Value::Str(iv.cat.into())),
            ("ph", Value::Str("B".into())),
            ("ts", Value::Num(us(iv.start))),
            ("pid", Value::Num(0.0)),
            ("tid", Value::Num(0.0)),
            ("args", iv.args.clone()),
        ]));
        stack.push((iv.name.clone(), iv.end));
    }
    while let Some((name, end)) = stack.pop() {
        out.push(close_event(&name, end));
    }

    obj(vec![
        ("traceEvents", Value::Array(out)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ])
    .to_json()
}

fn close_event(name: &str, end: f64) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_string())),
        ("ph", Value::Str("E".into())),
        ("ts", Value::Num(us(end))),
        ("pid", Value::Num(0.0)),
        ("tid", Value::Num(0.0)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CounterSample, PhaseSpan};

    fn span(name: &'static str, start: f64, end: f64) -> Event {
        Event::Phase {
            span: PhaseSpan::new(name, start, end),
        }
    }

    #[test]
    fn trace_is_valid_json_with_paired_events() {
        let events = vec![
            span("epoch", 0.0, 2.0),
            span("get_hermitian-X", 0.0, 1.0),
            span("solve-X", 1.0, 2.0),
            Event::Counter {
                sample: CounterSample::new("mem", 0.5, 1024.0),
            },
        ];
        let json = chrome_trace(&events);
        let v = Value::parse(&json).expect("valid JSON");
        let trace = v.get("traceEvents").unwrap().as_array().unwrap();
        // Every B has a matching E and nesting is proper.
        let mut depth = 0i64;
        for e in trace {
            match e.get("ph").unwrap().as_str().unwrap() {
                "B" => depth += 1,
                "E" => {
                    depth -= 1;
                    assert!(depth >= 0, "E without open B");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unclosed B events");
        assert_eq!(
            trace
                .iter()
                .filter(|e| e.get("ph").unwrap().as_str() == Some("C"))
                .count(),
            1
        );
    }

    #[test]
    fn sequential_spans_close_before_next_opens() {
        let json = chrome_trace(&[span("a", 0.0, 1.0), span("b", 1.0, 2.0)]);
        let v = Value::parse(&json).unwrap();
        let names: Vec<(String, String)> = v
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| matches!(e.get("ph").unwrap().as_str(), Some("B") | Some("E")))
            .map(|e| {
                (
                    e.get("ph").unwrap().as_str().unwrap().to_string(),
                    e.get("name").unwrap().as_str().unwrap().to_string(),
                )
            })
            .collect();
        let expect: Vec<(String, String)> = [("B", "a"), ("E", "a"), ("B", "b"), ("E", "b")]
            .iter()
            .map(|(p, n)| (p.to_string(), n.to_string()))
            .collect();
        assert_eq!(names, expect);
    }
}
