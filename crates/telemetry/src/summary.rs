//! The nvprof-style per-kernel summary table.
//!
//! Aggregates [`KernelLaunchRecord`]s by kernel name into call counts,
//! total/average simulated time, share of the profiled run, the dominant
//! bound classification, aggregate arithmetic intensity, cache hit ratios,
//! and achieved-vs-peak fractions — the columns `nvprof --print-gpu-summary`
//! and a roofline analysis would give you on real hardware.

use crate::event::{Event, KernelLaunchRecord};
use serde::Serialize;
use std::collections::BTreeMap;

/// Aggregated statistics for one kernel across all its launches.
#[derive(Clone, Debug, Serialize)]
pub struct KernelSummaryRow {
    /// Kernel name.
    pub kernel: String,
    /// Number of launches.
    pub calls: u64,
    /// Total simulated time, seconds.
    pub total_time: f64,
    /// Average simulated time per launch, seconds.
    pub avg_time: f64,
    /// Share of summed kernel time across the whole profile, in \[0, 1\].
    pub time_fraction: f64,
    /// Dominant bound over the launches, weighted by time:
    /// `"compute"`, `"dram"`, `"l2"`, or `"latency"`.
    pub bound: String,
    /// Aggregate arithmetic intensity: total flops / total DRAM bytes.
    pub arithmetic_intensity: f64,
    /// Time-weighted mean L1 hit ratio.
    pub l1_hit_ratio: f64,
    /// Time-weighted mean L2 hit ratio.
    pub l2_hit_ratio: f64,
    /// Time-weighted mean achieved fraction of peak FLOP/s.
    pub flops_fraction_of_peak: f64,
    /// Time-weighted mean achieved fraction of peak DRAM bandwidth.
    pub bandwidth_fraction_of_peak: f64,
}

/// Aggregate kernel launch records into per-kernel summary rows, sorted by
/// descending total time (nvprof's default ordering).
pub fn kernel_summary(records: &[KernelLaunchRecord]) -> Vec<KernelSummaryRow> {
    struct Acc {
        calls: u64,
        total_time: f64,
        flops: f64,
        dram_bytes: f64,
        bound_time: BTreeMap<&'static str, f64>,
        l1_weighted: f64,
        l2_weighted: f64,
        flops_frac_weighted: f64,
        bw_frac_weighted: f64,
    }
    let mut by_kernel: BTreeMap<String, Acc> = BTreeMap::new();
    for r in records {
        let acc = by_kernel.entry(r.kernel.to_string()).or_insert(Acc {
            calls: 0,
            total_time: 0.0,
            flops: 0.0,
            dram_bytes: 0.0,
            bound_time: BTreeMap::new(),
            l1_weighted: 0.0,
            l2_weighted: 0.0,
            flops_frac_weighted: 0.0,
            bw_frac_weighted: 0.0,
        });
        let t = r.duration();
        acc.calls += 1;
        acc.total_time += t;
        acc.flops += r.cost.total_flops();
        acc.dram_bytes += r.cost.total_dram_bytes();
        *acc.bound_time.entry(r.timing.bound()).or_insert(0.0) += t;
        acc.l1_weighted += r.l1_hit_ratio * t;
        acc.l2_weighted += r.l2_hit_ratio * t;
        acc.flops_frac_weighted += r.flops_fraction_of_peak() * t;
        acc.bw_frac_weighted += r.bandwidth_fraction_of_peak() * t;
    }

    let grand_total: f64 = by_kernel.values().map(|a| a.total_time).sum();
    let mut rows: Vec<KernelSummaryRow> = by_kernel
        .into_iter()
        .map(|(kernel, acc)| {
            let t = acc.total_time;
            let norm = if t > 0.0 { t } else { 1.0 };
            let bound = acc
                .bound_time
                .iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(b, _)| b.to_string())
                .unwrap_or_else(|| "latency".to_string());
            KernelSummaryRow {
                kernel,
                calls: acc.calls,
                total_time: t,
                avg_time: t / acc.calls as f64,
                time_fraction: if grand_total > 0.0 {
                    t / grand_total
                } else {
                    0.0
                },
                bound,
                arithmetic_intensity: if acc.dram_bytes > 0.0 {
                    acc.flops / acc.dram_bytes
                } else {
                    f64::INFINITY
                },
                l1_hit_ratio: acc.l1_weighted / norm,
                l2_hit_ratio: acc.l2_weighted / norm,
                flops_fraction_of_peak: acc.flops_frac_weighted / norm,
                bandwidth_fraction_of_peak: acc.bw_frac_weighted / norm,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.total_time.partial_cmp(&a.total_time).unwrap());
    rows
}

/// Aggregate the kernel events of a full event stream (convenience).
pub fn summarize_events(events: &[Event]) -> Vec<KernelSummaryRow> {
    let records: Vec<KernelLaunchRecord> = events
        .iter()
        .filter_map(|e| e.as_kernel().cloned())
        .collect();
    kernel_summary(&records)
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3}s")
    } else if seconds >= 1e-3 {
        format!("{:.3}ms", seconds * 1e3)
    } else {
        format!("{:.3}us", seconds * 1e6)
    }
}

/// Render summary rows as an aligned, nvprof-flavoured text table.
pub fn render_summary(rows: &[KernelSummaryRow]) -> String {
    let mut out = String::new();
    out.push_str("==PROF== Simulated GPU kernel summary\n");
    out.push_str(&format!(
        "{:>8} {:>10} {:>6} {:>10} {:>8} {:>8} {:>7} {:>7} {:>8} {:>8}  {}\n",
        "Time(%)",
        "Total",
        "Calls",
        "Avg",
        "Bound",
        "AI",
        "L1hit",
        "L2hit",
        "%peakF",
        "%peakBW",
        "Name"
    ));
    for r in rows {
        let ai = if r.arithmetic_intensity.is_finite() {
            format!("{:.1}", r.arithmetic_intensity)
        } else {
            "inf".to_string()
        };
        out.push_str(&format!(
            "{:>7.2}% {:>10} {:>6} {:>10} {:>8} {:>8} {:>6.1}% {:>6.1}% {:>7.1}% {:>7.1}%  {}\n",
            100.0 * r.time_fraction,
            fmt_time(r.total_time),
            r.calls,
            fmt_time(r.avg_time),
            r.bound,
            ai,
            100.0 * r.l1_hit_ratio,
            100.0 * r.l2_hit_ratio,
            100.0 * r.flops_fraction_of_peak,
            100.0 * r.bandwidth_fraction_of_peak,
            r.kernel,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_gpu_sim::device::GpuSpec;
    use cumf_gpu_sim::kernel::{launch_time, KernelCost};
    use cumf_gpu_sim::occupancy::{occupancy, KernelResources};

    fn record(kernel: &'static str, flops: f64, start: f64) -> KernelLaunchRecord {
        let spec = GpuSpec::maxwell_titan_x();
        let occ = occupancy(
            &spec,
            &KernelResources {
                regs_per_thread: 32,
                threads_per_block: 256,
                shared_mem_per_block: 0,
            },
        );
        let cost = KernelCost {
            flops_fp32: flops,
            dram_read_bytes: 1e9,
            mlp: 8.0,
            pipe_efficiency: 0.5,
            ..Default::default()
        };
        let timing = launch_time(&spec, &occ, &cost);
        KernelLaunchRecord::new(kernel, &spec, occ, cost, timing, start, 1024, 256)
            .with_cache_hit_ratios(0.8, 0.5)
    }

    #[test]
    fn summary_aggregates_by_kernel_and_sorts_by_time() {
        let records = vec![
            record("get_hermitian", 2e12, 0.0),
            record("solve_cg", 1e10, 1.0),
            record("get_hermitian", 2e12, 2.0),
        ];
        let rows = kernel_summary(&records);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].kernel, "get_hermitian");
        assert_eq!(rows[0].calls, 2);
        assert!(rows[0].total_time > rows[1].total_time);
        let total: f64 = rows.iter().map(|r| r.time_fraction).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((rows[0].l1_hit_ratio - 0.8).abs() < 1e-12);
        assert_eq!(rows[0].bound, "compute");
    }

    #[test]
    fn render_mentions_every_kernel_and_classification() {
        let rows = kernel_summary(&[record("get_hermitian", 2e12, 0.0)]);
        let table = render_summary(&rows);
        assert!(table.contains("get_hermitian"));
        assert!(table.contains("compute"));
        assert!(table.contains("Time(%)"));
        assert!(table.contains("L1hit"));
    }
}
