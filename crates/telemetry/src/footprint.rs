//! Byte accounting: named component trees of resident memory.
//!
//! The serving stack's observability (spans, histograms, SLO burn) is all
//! about *time*; this module is the *space* counterpart. A component that
//! owns memory implements [`MemoryFootprint`] and returns a
//! [`FootprintReport`] — a named tree of byte counts whose interior nodes
//! are, **by construction**, exactly the sum of their children. That
//! invariant is what makes the tree trustworthy: a dashboard reading
//! `serve_mem_bytes{component="cache"}` knows the number was not estimated
//! independently of its parts.
//!
//! ```
//! use cumf_telemetry::{FootprintReport, MemoryFootprint};
//!
//! struct Buffers { a: Vec<f32>, b: Vec<u8> }
//! impl MemoryFootprint for Buffers {
//!     fn footprint(&self) -> FootprintReport {
//!         FootprintReport::branch("buffers", vec![
//!             FootprintReport::leaf("a", (self.a.len() * 4) as u64),
//!             FootprintReport::leaf("b", self.b.len() as u64),
//!         ])
//!     }
//! }
//!
//! let r = Buffers { a: vec![0.0; 8], b: vec![0; 3] }.footprint();
//! assert_eq!(r.total_bytes(), 35);
//! assert!(r.verify());
//! assert_eq!(r.flatten()[0], ("buffers".to_string(), 35));
//! ```

use serde::Value;

/// A named tree of byte counts. Interior nodes ([`FootprintReport::branch`])
/// always total exactly the sum of their children; leaves
/// ([`FootprintReport::leaf`]) carry a measured or estimated byte count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FootprintReport {
    name: String,
    bytes: u64,
    children: Vec<FootprintReport>,
}

impl FootprintReport {
    /// A leaf component: `bytes` measured (or estimated) directly.
    pub fn leaf(name: impl Into<String>, bytes: u64) -> FootprintReport {
        FootprintReport {
            name: name.into(),
            bytes,
            children: Vec::new(),
        }
    }

    /// An interior component whose total is the sum of `children` — the
    /// children-sum-to-total invariant cannot be violated through this
    /// constructor.
    pub fn branch(name: impl Into<String>, children: Vec<FootprintReport>) -> FootprintReport {
        let bytes = children.iter().map(|c| c.bytes).sum();
        FootprintReport {
            name: name.into(),
            bytes,
            children,
        }
    }

    /// The component name of this node (one path segment, no `/`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total bytes of this node (for a branch: the sum of its children).
    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    /// Child components (empty for a leaf).
    pub fn children(&self) -> &[FootprintReport] {
        &self.children
    }

    /// Same tree under a different root name — lets a parent relabel a
    /// component's self-chosen name ("snapshot" → "current") when nesting.
    pub fn renamed(self, name: impl Into<String>) -> FootprintReport {
        FootprintReport {
            name: name.into(),
            ..self
        }
    }

    /// Recursively check the children-sum-to-total invariant. Always true
    /// for trees built from [`leaf`](FootprintReport::leaf) /
    /// [`branch`](FootprintReport::branch); exists so tests can assert it
    /// on reports produced by arbitrary `MemoryFootprint` impls.
    pub fn verify(&self) -> bool {
        self.children.is_empty()
            || (self.bytes == self.children.iter().map(|c| c.bytes).sum::<u64>()
                && self.children.iter().all(FootprintReport::verify))
    }

    /// Every node as a `(path, bytes)` pair, root first, depth-first in
    /// child order. Paths join names with `/`: `"engine/cache"`.
    pub fn flatten(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        self.flatten_into("", &mut out);
        out
    }

    fn flatten_into(&self, prefix: &str, out: &mut Vec<(String, u64)>) {
        let path = if prefix.is_empty() {
            self.name.clone()
        } else {
            format!("{prefix}/{}", self.name)
        };
        out.push((path.clone(), self.bytes));
        for c in &self.children {
            c.flatten_into(&path, out);
        }
    }

    /// The heaviest leaf as a `(path, bytes)` pair — the "offending
    /// component" to name when a budget is exceeded. Ties break toward the
    /// first leaf in depth-first order; a leaf-only root returns itself.
    pub fn largest_leaf(&self) -> (String, u64) {
        self.flatten_leaves()
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1))
            .expect("a footprint tree has at least its root node")
    }

    fn flatten_leaves(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        self.leaves_into("", &mut out);
        out
    }

    fn leaves_into(&self, prefix: &str, out: &mut Vec<(String, u64)>) {
        let path = if prefix.is_empty() {
            self.name.clone()
        } else {
            format!("{prefix}/{}", self.name)
        };
        if self.children.is_empty() {
            out.push((path, self.bytes));
        } else {
            for c in &self.children {
                c.leaves_into(&path, out);
            }
        }
    }

    /// Render as an indented tree, sizes in human units:
    ///
    /// ```text
    /// engine                 12.4 MiB
    ///   cache                 1.2 MiB
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{}", self.name);
        out.push_str(&format!("{label:<40} {:>12}\n", human_bytes(self.bytes)));
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }

    /// The tree as a JSON value: `{"name":…,"bytes":…,"children":[…]}`.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("bytes".into(), Value::Num(self.bytes as f64)),
            (
                "children".into(),
                Value::Array(
                    self.children
                        .iter()
                        .map(FootprintReport::to_value)
                        .collect(),
                ),
            ),
        ])
    }
}

/// Format a byte count with binary-prefix units (`1.5 MiB`).
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

/// Implemented by anything that owns accountable memory. Reports are
/// expected to be cheap (walk a few fields, no allocation proportional to
/// the data itself) so callers can refresh gauges on demand.
pub trait MemoryFootprint {
    /// The component tree of bytes currently resident in this object.
    fn footprint(&self) -> FootprintReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> FootprintReport {
        FootprintReport::branch(
            "root",
            vec![
                FootprintReport::branch(
                    "store",
                    vec![
                        FootprintReport::leaf("fp32", 400),
                        FootprintReport::leaf("fp16", 200),
                    ],
                ),
                FootprintReport::leaf("cache", 64),
            ],
        )
    }

    #[test]
    fn branch_totals_are_child_sums() {
        let t = tree();
        assert_eq!(t.total_bytes(), 664);
        assert!(t.verify());
    }

    #[test]
    fn flatten_paths_are_slash_joined_depth_first() {
        let got = tree().flatten();
        assert_eq!(
            got,
            vec![
                ("root".to_string(), 664),
                ("root/store".to_string(), 600),
                ("root/store/fp32".to_string(), 400),
                ("root/store/fp16".to_string(), 200),
                ("root/cache".to_string(), 64),
            ]
        );
    }

    #[test]
    fn largest_leaf_names_the_offending_path() {
        assert_eq!(tree().largest_leaf(), ("root/store/fp32".to_string(), 400));
        let single = FootprintReport::leaf("only", 7);
        assert_eq!(single.largest_leaf(), ("only".to_string(), 7));
    }

    #[test]
    fn renamed_keeps_bytes_and_children() {
        let t = tree().renamed("engine");
        assert_eq!(t.name(), "engine");
        assert_eq!(t.total_bytes(), 664);
        assert_eq!(t.children().len(), 2);
    }

    #[test]
    fn human_bytes_picks_binary_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(1536), "1.5 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn to_value_round_trips_the_shape() {
        let json = tree().to_value().to_json();
        assert!(json.contains("\"name\":\"root\""));
        assert!(json.contains("\"bytes\":664"));
        assert!(json.contains("\"fp16\""));
    }
}
