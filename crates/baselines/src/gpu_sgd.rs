//! GPU-SGD baseline: the cuMF_SGD system \[35\] — batch Hogwild! SGD on one
//! or more GPUs, with warp-shuffle update kernels and half-precision
//! factor storage.
//!
//! Functional: the Hogwild epoch of [`crate::sgd`] (lock-free atomics stand
//! in for the GPU's racy warp updates). Timing: SGD is *memory-bound*
//! (Table I: C/M = O(1)), so an epoch prices at its factor traffic over the
//! device bandwidth; half-precision storage halves those bytes exactly as
//! in cuMF_SGD. Multi-GPU runs partition `R` by rows and exchange the
//! column-factor matrix every epoch.

use crate::libmf::SystemReport;
use crate::sgd::{hogwild_epoch, sgd_test_rmse, SgdConfig, SgdModel};
use cumf_datasets::MfDataset;
use cumf_gpu_sim::interconnect::Interconnect;
use cumf_gpu_sim::kernel::{KernelCost, LaunchTiming};
use cumf_gpu_sim::occupancy::{occupancy, KernelResources};
use cumf_gpu_sim::timeline::ConvergenceCurve;
use cumf_gpu_sim::{GpuGeneration, GpuSpec};
use cumf_telemetry::{KernelLaunchRecord, PhaseSpan, Recorder, NOOP};

/// Achieved fraction of peak bandwidth of cuMF_SGD's scattered update
/// kernel (random row/column access, half-width transactions).
const SGD_BANDWIDTH_EFFICIENCY: f64 = 0.55;

/// The cuMF_SGD baseline runner.
pub struct GpuSgd {
    /// Device model.
    pub spec: GpuSpec,
    /// Number of GPUs (1 or 4 in the paper's Figure 8).
    pub gpus: u32,
    /// Whether factors are stored in half precision (cuMF_SGD's default).
    pub half_precision: bool,
    /// SGD hyper-parameters.
    pub config: SgdConfig,
}

impl GpuSgd {
    /// cuMF_SGD as Figure 8 runs it.
    pub fn paper_setup(
        spec: GpuSpec,
        gpus: u32,
        f: usize,
        profile: &cumf_datasets::DatasetProfile,
    ) -> GpuSgd {
        GpuSgd {
            spec,
            gpus,
            half_precision: true,
            config: SgdConfig::for_profile(f, profile),
        }
    }

    /// Simulated time of one epoch at full scale.
    pub fn epoch_time(&self, data: &MfDataset) -> f64 {
        let nz = data.profile.nz as f64 / self.gpus as f64;
        let f = self.config.f as f64;
        let elem = if self.half_precision { 2.0 } else { 4.0 };
        // Each update reads and writes x_u and θ_v (4 f-vectors) plus the
        // rating stream.
        let bytes = nz * (4.0 * f * elem + 12.0);
        let mem_time = bytes / (self.spec.dram_bandwidth * SGD_BANDWIDTH_EFFICIENCY);
        let flop_time = nz * 8.0 * f / (self.spec.peak_fp32_flops * 0.5);
        let compute = mem_time.max(flop_time);
        let comm = if self.gpus > 1 {
            let ic = match self.spec.generation {
                GpuGeneration::Pascal => Interconnect::nvlink(),
                _ => Interconnect::pcie3(),
            };
            // Exchange the column factors once per epoch.
            ic.allgather_time(
                data.profile.n * self.config.f as u64 * elem as u64,
                self.gpus,
            )
        } else {
            0.0
        };
        compute + comm
    }

    /// Train until `max_epochs` or the profile's RMSE target.
    pub fn train(&self, data: &MfDataset, max_epochs: u32) -> SystemReport {
        self.train_with_recorder(data, max_epochs, &NOOP)
    }

    /// [`GpuSgd::train`] with a telemetry recorder: each epoch emits one
    /// `sgd_hogwild_update` kernel record (memory-bound, as Table I
    /// predicts), a communication record on multi-GPU runs, and an
    /// `epoch-sgd` phase span. Recording never changes the epoch pricing.
    pub fn train_with_recorder(
        &self,
        data: &MfDataset,
        max_epochs: u32,
        recorder: &dyn Recorder,
    ) -> SystemReport {
        let mut model = SgdModel::init(data.m(), data.n(), &self.config, data.profile.value_mean);
        let epoch_time = self.epoch_time(data);
        let target = data.profile.rmse_target;
        let mut curve = ConvergenceCurve::new(format!("sgd@{}", self.gpus));
        let mut time_to_target = None;
        let mut epochs_run = 0;
        for k in 0..max_epochs {
            hogwild_epoch(&data.train_coo, &mut model, &self.config, k as usize);
            epochs_run = k + 1;
            let rmse = sgd_test_rmse(&model, &data.test);
            let t = epoch_time * epochs_run as f64;
            curve.push(t, epochs_run, rmse);
            if recorder.enabled() {
                self.emit_epoch_telemetry(recorder, data, t - epoch_time);
            }
            if rmse <= target {
                time_to_target = Some(t);
                break;
            }
        }
        SystemReport {
            curve,
            epoch_time,
            time_to_target,
            epochs_run,
        }
    }

    /// One epoch's telemetry, starting at simulated `t0`: the Hogwild update
    /// kernel (costs recomputed exactly as [`GpuSgd::epoch_time`] prices
    /// them) and, on multi-GPU runs, the column-factor exchange.
    fn emit_epoch_telemetry(&self, recorder: &dyn Recorder, data: &MfDataset, t0: f64) {
        let nz = data.profile.nz as f64 / self.gpus as f64;
        let f = self.config.f as f64;
        let elem = if self.half_precision { 2.0 } else { 4.0 };
        let bytes = nz * (4.0 * f * elem + 12.0);
        let mem_time = bytes / (self.spec.dram_bandwidth * SGD_BANDWIDTH_EFFICIENCY);
        let flop_time = nz * 8.0 * f / (self.spec.peak_fp32_flops * 0.5);
        let compute = mem_time.max(flop_time);
        let occ = occupancy(
            &self.spec,
            &KernelResources {
                regs_per_thread: 48,
                threads_per_block: 128,
                shared_mem_per_block: 0,
            },
        );
        let cost = KernelCost {
            flops_fp32: nz * 8.0 * f,
            flops_fp16: 0.0,
            dram_read_bytes: bytes / 2.0,
            dram_write_bytes: bytes / 2.0,
            l2_wire_bytes: bytes,
            transactions: bytes / 32.0,
            mlp: 4.0,
            pipe_efficiency: 0.5,
        };
        let timing = LaunchTiming {
            compute_time: flop_time,
            dram_time: mem_time,
            l2_time: 0.0,
            latency_time: 0.0,
            time: compute,
        };
        recorder.kernel(KernelLaunchRecord::new(
            "sgd_hogwild_update",
            &self.spec,
            occ,
            cost,
            timing,
            t0,
            data.profile.nz / 256 / self.gpus as u64,
            128,
        ));
        let mut t_end = t0 + compute;
        if self.gpus > 1 {
            let ic = match self.spec.generation {
                GpuGeneration::Pascal => Interconnect::nvlink(),
                _ => Interconnect::pcie3(),
            };
            let comm_bytes = data.profile.n * self.config.f as u64 * elem as u64;
            let comm = ic.allgather_time(comm_bytes, self.gpus);
            let comm_cost = KernelCost {
                flops_fp32: 0.0,
                flops_fp16: 0.0,
                dram_read_bytes: comm_bytes as f64,
                dram_write_bytes: 0.0,
                l2_wire_bytes: 0.0,
                transactions: 0.0,
                mlp: 1.0,
                pipe_efficiency: 1.0,
            };
            let comm_timing = LaunchTiming {
                compute_time: 0.0,
                dram_time: comm,
                l2_time: 0.0,
                latency_time: 0.0,
                time: comm,
            };
            recorder.kernel(KernelLaunchRecord::new(
                "nccl_allgather",
                &self.spec,
                occ,
                comm_cost,
                comm_timing,
                t_end,
                self.gpus as u64,
                1,
            ));
            t_end += comm;
        }
        recorder.phase(PhaseSpan::new("epoch-sgd", t0, t_end));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_datasets::SizeClass;

    #[test]
    fn sgd_epoch_is_much_cheaper_than_als_epoch() {
        // §V-E: "SGD runs faster per iteration but requires more iterations."
        let data = MfDataset::netflix(SizeClass::Tiny, 1);
        let sgd = GpuSgd::paper_setup(GpuSpec::maxwell_titan_x(), 1, 100, &data.profile);
        let t_sgd = sgd.epoch_time(&data);
        // ALS epoch on the same data/device (priced in cumf-als tests at
        // ≈1–2 s); SGD should be several times cheaper per epoch.
        assert!(t_sgd < 0.5, "SGD epoch {t_sgd}");
    }

    #[test]
    fn half_precision_halves_traffic_time() {
        let data = MfDataset::netflix(SizeClass::Tiny, 1);
        let half = GpuSgd::paper_setup(GpuSpec::maxwell_titan_x(), 1, 100, &data.profile);
        let full = GpuSgd {
            half_precision: false,
            ..GpuSgd::paper_setup(GpuSpec::maxwell_titan_x(), 1, 100, &data.profile)
        };
        let ratio = full.epoch_time(&data) / half.epoch_time(&data);
        assert!(ratio > 1.7 && ratio < 2.1, "fp32/fp16 epoch ratio {ratio}");
    }

    #[test]
    fn multi_gpu_scales_with_comm_overhead() {
        let data = MfDataset::hugewiki(SizeClass::Tiny, 1);
        let one = GpuSgd::paper_setup(GpuSpec::maxwell_titan_x(), 1, 100, &data.profile)
            .epoch_time(&data);
        let four = GpuSgd::paper_setup(GpuSpec::maxwell_titan_x(), 4, 100, &data.profile)
            .epoch_time(&data);
        assert!(four < one, "4 GPUs should beat 1");
        assert!(four > one / 4.0, "but not perfectly (comm)");
    }

    #[test]
    fn converges_functionally() {
        let data = MfDataset::netflix(SizeClass::Tiny, 13);
        let mut sgd = GpuSgd::paper_setup(GpuSpec::maxwell_titan_x(), 1, 8, &data.profile);
        sgd.config = SgdConfig::new(8, 0.05);
        let report = sgd.train(&data, 25);
        assert!(
            report.curve.best_rmse().unwrap() < 1.2,
            "best {:?}",
            report.curve.best_rmse()
        );
    }
}
