//! CPU implicit-MF baselines for §V-F: the `implicit` library's iALS and
//! Quora's QMF.
//!
//! Both implement the same Hu–Koren–Volinsky math as
//! `cumf_als::implicit`; what differs is the execution substrate. The
//! paper reports per-iteration times of **2.2 s (cuMF_ALS), 90 s (implicit),
//! 360 s (QMF)** on Netflix-scale implicit input. The cost models here
//! reproduce those ratios: `implicit` runs multi-threaded vectorized C
//! through Python bindings (good but CPU-bound); QMF's solver at the time
//! used a denser per-row path, ~4× slower again.

use cumf_datasets::MfDataset;
use cumf_gpu_sim::host::{CpuSpec, HostWorkload, SyncModel};
use cumf_numeric::sym::packed_len;

/// Which CPU implicit library is being modeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImplicitLibrary {
    /// benfred/implicit: multi-threaded SIMD iALS with the Gram trick.
    Implicit,
    /// quora/qmf at the paper's timeframe: row-parallel but with a dense
    /// normal-equation build per row (no Gram-delta shortcut).
    Qmf,
}

/// A CPU implicit-ALS baseline.
pub struct CpuImplicitAls {
    /// Which library's execution profile to model.
    pub library: ImplicitLibrary,
    /// Host machine.
    pub cpu: CpuSpec,
    /// Latent dimension.
    pub f: usize,
}

impl CpuImplicitAls {
    /// Per-iteration simulated time on the full-scale profile.
    pub fn iteration_time(&self, data: &MfDataset) -> f64 {
        let p = &data.profile;
        let f = self.f as f64;
        let packed = packed_len(self.f) as f64;
        match self.library {
            ImplicitLibrary::Implicit => {
                // Gram precompute + per-nonzero rank-1 updates + solves,
                // SIMD efficiency typical of its C kernels.
                let flops = 2.0 * (p.m + p.n) as f64 * packed // grams
                    + 4.0 * p.nz as f64 * packed // confidence updates (both sides)
                    + (p.m + p.n) as f64 * f * f * f / 3.0; // Cholesky solves
                                                            // Efficiency calibrated to the paper's measured 90 s per
                                                            // Netflix-implicit iteration (Python dispatch + gather-bound
                                                            // inner loops keep it far from SIMD peak).
                let w = HostWorkload {
                    flops,
                    bytes: p.nz as f64 * f * 8.0,
                    efficiency: 0.025,
                };
                self.cpu.workload_time(&w, self.cpu.cores, SyncModel::None)
            }
            ImplicitLibrary::Qmf => {
                // QMF (at the paper's comparison point) rebuilds each row's
                // f×f system without exploiting symmetry deltas and runs a
                // full per-row factorization — ≈4× the implicit library.
                let flops = 8.0 * p.nz as f64 * packed + (p.m + p.n) as f64 * 2.0 * f * f * f / 3.0;
                // Calibrated to the paper's measured 360 s per iteration.
                let w = HostWorkload {
                    flops,
                    bytes: p.nz as f64 * f * 16.0,
                    efficiency: 0.0125,
                };
                self.cpu.workload_time(&w, self.cpu.cores, SyncModel::None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_als::{ImplicitAlsConfig, ImplicitAlsTrainer};
    use cumf_datasets::SizeClass;
    use cumf_gpu_sim::GpuSpec;

    #[test]
    fn section_vf_per_iteration_ordering() {
        // cuMF (2.2 s) ≪ implicit (90 s) < QMF (360 s) on Netflix implicit.
        let data = MfDataset::netflix(SizeClass::Tiny, 1);
        let gpu = ImplicitAlsTrainer::new(
            &data,
            ImplicitAlsConfig::default(),
            GpuSpec::maxwell_titan_x(),
        )
        .epoch_sim_time();
        let imp = CpuImplicitAls {
            library: ImplicitLibrary::Implicit,
            cpu: CpuSpec::power8(),
            f: 100,
        }
        .iteration_time(&data);
        let qmf = CpuImplicitAls {
            library: ImplicitLibrary::Qmf,
            cpu: CpuSpec::power8(),
            f: 100,
        }
        .iteration_time(&data);
        assert!(gpu < imp && imp < qmf, "gpu {gpu} imp {imp} qmf {qmf}");
        let gpu_ratio = imp / gpu;
        assert!(
            gpu_ratio > 15.0 && gpu_ratio < 120.0,
            "implicit/cuMF ratio {gpu_ratio} (paper ≈ 41)"
        );
        let qmf_ratio = qmf / imp;
        assert!(
            qmf_ratio > 2.0 && qmf_ratio < 8.0,
            "QMF/implicit ratio {qmf_ratio} (paper = 4)"
        );
    }

    #[test]
    fn iteration_time_scales_with_nz() {
        let nf = MfDataset::netflix(SizeClass::Tiny, 1);
        let hw = MfDataset::hugewiki(SizeClass::Tiny, 1);
        let lib = CpuImplicitAls {
            library: ImplicitLibrary::Implicit,
            cpu: CpuSpec::power8(),
            f: 100,
        };
        assert!(lib.iteration_time(&hw) > 10.0 * lib.iteration_time(&nf));
    }
}
