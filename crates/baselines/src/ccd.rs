//! CCD++ baseline \[36\]: cyclic coordinate descent for matrix factorization.
//!
//! CCD++ updates one latent dimension at a time: for rank `k`, with the
//! rank-k residual matrix maintained per non-zero, the closed-form scalar
//! updates are
//!
//! ```text
//! x_uk ← Σ_v (r̂_uv + x_uk θ_vk)·θ_vk / (λ·n_u + Σ_v θ_vk²)
//! θ_vk ← Σ_u (r̂_uv + x_uk θ_vk)·x_uk / (λ·n_v + Σ_u x_uk²)
//! ```
//!
//! One outer iteration costs `O(Nz·f)` — lower than ALS's `O(Nz·f²)` — but
//! "makes less progress per iteration" (§VI-B), which our functional runs
//! reproduce directly.

use cumf_datasets::MfDataset;
use cumf_gpu_sim::host::{CpuSpec, HostWorkload, SyncModel};
use cumf_gpu_sim::timeline::ConvergenceCurve;
use cumf_numeric::dense::DenseMatrix;
use cumf_numeric::stats::XorShift64;

/// CCD++ configuration.
#[derive(Clone, Copy, Debug)]
pub struct CcdConfig {
    /// Latent dimension.
    pub f: usize,
    /// Regularization λ.
    pub lambda: f32,
    /// Inner sweeps per rank per outer iteration (CCD++ uses 1).
    pub inner: usize,
    /// Seed.
    pub seed: u64,
}

/// The CCD++ trainer (CPU; the GPU variant \[20\] shares the math).
pub struct CcdTrainer<'a> {
    data: &'a MfDataset,
    config: CcdConfig,
    cpu: CpuSpec,
    /// Row factors, `m × f`.
    pub x: DenseMatrix,
    /// Column factors, `n × f`.
    pub theta: DenseMatrix,
    /// Residuals `r̂_uv = r_uv − x_uᵀθ_v`, aligned with `data.r`'s values.
    residual: Vec<f32>,
}

impl<'a> CcdTrainer<'a> {
    /// Build a trainer with CCD++'s init convention (Yu et al., Alg. 2):
    /// `X = 0` so the residuals start as the ratings themselves, `Θ` warm —
    /// each rank's X-update then sees a non-zero θ column to work against.
    pub fn new(data: &'a MfDataset, config: CcdConfig, cpu: CpuSpec) -> Self {
        let mut rng = XorShift64::new(config.seed);
        let x = DenseMatrix::zeros(data.m(), config.f);
        let mut theta = DenseMatrix::zeros(data.n(), config.f);
        let center = (data.profile.value_mean.max(0.01) / config.f as f32).sqrt();
        theta.fill_with(|| center + (rng.next_f32() - 0.5) * center * 0.5);
        let residual = data.r.values().to_vec();
        CcdTrainer {
            data,
            config,
            cpu,
            x,
            theta,
            residual,
        }
    }

    /// One outer iteration: cycle through all `f` ranks, updating X's and
    /// Θ's column `k` with residual maintenance.
    pub fn run_epoch(&mut self) {
        for k in 0..self.config.f {
            for _ in 0..self.config.inner.max(1) {
                self.update_rank_x(k);
                self.update_rank_theta(k);
            }
        }
    }

    fn update_rank_x(&mut self, k: usize) {
        let r = &self.data.r;
        for u in 0..r.rows() {
            let nnz = r.row_nnz(u);
            if nnz == 0 {
                continue;
            }
            let xuk = self.x.get(u, k);
            let base = r.row_ptr()[u] as usize;
            let mut num = 0.0f64;
            let mut den = self.config.lambda as f64 * nnz as f64;
            for (i, &v) in r.row_cols(u).iter().enumerate() {
                let tvk = self.theta.get(v as usize, k);
                num += (self.residual[base + i] + xuk * tvk) as f64 * tvk as f64;
                den += (tvk * tvk) as f64;
            }
            let new = (num / den) as f32;
            // Maintain residuals for this row.
            for (i, &v) in r.row_cols(u).iter().enumerate() {
                let tvk = self.theta.get(v as usize, k);
                self.residual[base + i] += (xuk - new) * tvk;
            }
            self.x.set(u, k, new);
        }
    }

    fn update_rank_theta(&mut self, k: usize) {
        // Walk columns via the transpose structure but maintain the
        // row-oriented residual array through an index map.
        let r = &self.data.r;
        let rt = &self.data.rt;
        // Column sums need residuals; build per-column position lookup once.
        for v in 0..rt.rows() {
            let nnz = rt.row_nnz(v);
            if nnz == 0 {
                continue;
            }
            let tvk = self.theta.get(v, k);
            let mut num = 0.0f64;
            let mut den = self.config.lambda as f64 * nnz as f64;
            for &u in rt.row_cols(v) {
                let xuk = self.x.get(u as usize, k);
                let idx = self.residual_index(u as usize, v as u32);
                num += (self.residual[idx] + xuk * tvk) as f64 * xuk as f64;
                den += (xuk * xuk) as f64;
            }
            let new = (num / den) as f32;
            for &u in rt.row_cols(v) {
                let xuk = self.x.get(u as usize, k);
                let idx = self.residual_index(u as usize, v as u32);
                self.residual[idx] += (tvk - new) * xuk;
            }
            self.theta.set(v, k, new);
        }
        let _ = r;
    }

    /// Position of `(u, v)` in the row-oriented residual array.
    fn residual_index(&self, u: usize, v: u32) -> usize {
        let r = &self.data.r;
        let base = r.row_ptr()[u] as usize;
        let pos = r.row_cols(u).binary_search(&v).expect("entry must exist");
        base + pos
    }

    /// Simulated time of one outer iteration on the host: `O(Nz·f)` compute,
    /// `O(Nz·f)` memory (residuals re-touched per rank).
    pub fn epoch_time(&self) -> f64 {
        let nz = self.data.profile.nz as f64;
        let f = self.config.f as f64;
        let w = HostWorkload {
            flops: nz * f * 8.0,
            bytes: nz * f * 12.0, // residual + index + factor per rank pass
            efficiency: 0.3,
        };
        self.cpu.workload_time(&w, self.cpu.cores, SyncModel::None)
    }

    /// Train `epochs` outer iterations, recording the convergence curve.
    pub fn train(&mut self, epochs: u32) -> ConvergenceCurve {
        let mut curve = ConvergenceCurve::new("CCD++");
        let per_epoch = self.epoch_time();
        for e in 1..=epochs {
            self.run_epoch();
            let rmse = cumf_als::metrics::test_rmse(&self.x, &self.theta, &self.data.test);
            curve.push(per_epoch * e as f64, e, rmse);
        }
        curve
    }

    /// Training RMSE implied by the maintained residuals — must stay
    /// consistent with recomputing from scratch (invariant test).
    pub fn residual_rmse(&self) -> f64 {
        let ss: f64 = self.residual.iter().map(|&r| r as f64 * r as f64).sum();
        (ss / self.residual.len().max(1) as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_datasets::SizeClass;

    fn setup() -> MfDataset {
        MfDataset::netflix(SizeClass::Tiny, 31)
    }

    #[test]
    fn ccd_converges() {
        let data = setup();
        let mut t = CcdTrainer::new(
            &data,
            CcdConfig {
                f: 8,
                lambda: 0.05,
                inner: 1,
                seed: 2,
            },
            CpuSpec::power8(),
        );
        let curve = t.train(10);
        let best = curve.best_rmse().unwrap();
        assert!(best < 1.1, "CCD++ best RMSE {best}");
    }

    #[test]
    fn residuals_stay_consistent() {
        let data = setup();
        let mut t = CcdTrainer::new(
            &data,
            CcdConfig {
                f: 4,
                lambda: 0.1,
                inner: 1,
                seed: 3,
            },
            CpuSpec::power8(),
        );
        for _ in 0..3 {
            t.run_epoch();
        }
        // Recompute residuals from scratch and compare.
        let mut max_err = 0.0f32;
        for u in 0..data.m() {
            let base = data.r.row_ptr()[u] as usize;
            for (i, (v, val)) in data.r.row_iter(u).enumerate() {
                let pred = cumf_als::metrics::predict(t.x.row(u), t.theta.row(v as usize));
                let expect = val - pred;
                max_err = max_err.max((t.residual[base + i] - expect).abs());
            }
        }
        assert!(max_err < 1e-3, "residual drift {max_err}");
    }

    #[test]
    fn makes_less_progress_per_iteration_than_als() {
        // §VI-B: CCD++ has lower per-iteration cost but less progress.
        let data = setup();
        let mut ccd = CcdTrainer::new(
            &data,
            CcdConfig {
                f: 8,
                lambda: 0.05,
                inner: 1,
                seed: 2,
            },
            CpuSpec::power8(),
        );
        ccd.run_epoch();
        let ccd_rmse_1 = cumf_als::metrics::test_rmse(&ccd.x, &ccd.theta, &data.test);

        let mut cfg = cumf_als::AlsConfig::for_profile(&data.profile);
        cfg.f = 8;
        cfg.iterations = 1;
        cfg.rmse_target = None;
        let mut als =
            cumf_als::AlsTrainer::new(&data, cfg, cumf_gpu_sim::GpuSpec::maxwell_titan_x(), 1);
        let rep = als.train();
        assert!(
            rep.final_rmse() < ccd_rmse_1 + 0.05,
            "ALS one iter {} should be at least competitive with CCD++ one iter {}",
            rep.final_rmse(),
            ccd_rmse_1
        );
    }

    #[test]
    fn epoch_cost_linear_in_f() {
        let data = setup();
        let t8 = CcdTrainer::new(
            &data,
            CcdConfig {
                f: 8,
                lambda: 0.05,
                inner: 1,
                seed: 2,
            },
            CpuSpec::power8(),
        )
        .epoch_time();
        let t16 = CcdTrainer::new(
            &data,
            CcdConfig {
                f: 16,
                lambda: 0.05,
                inner: 1,
                seed: 2,
            },
            CpuSpec::power8(),
        )
        .epoch_time();
        assert!((t16 / t8 - 2.0).abs() < 0.1);
    }
}
