//! GPU-ALS baseline: the paper's own predecessor (HPDC'16, \[31\]) — ALS on
//! GPUs with register/shared-memory tiling but **without** the two ICPP'18
//! contributions: loads are conventionally coalesced and the solver is exact
//! batched LU in FP32.
//!
//! This is the most important comparison in the paper (Figure 1's "2x-4x
//! speedup" anchor), and it is a pure configuration of the core trainer:
//! same kernels, optimizations switched off.

use crate::libmf::SystemReport;
use cumf_als::{AlsConfig, AlsTrainer};
use cumf_datasets::MfDataset;
use cumf_gpu_sim::GpuSpec;

/// The GPU-ALS baseline runner.
pub struct GpuAlsBaseline {
    /// Device model.
    pub spec: GpuSpec,
    /// Number of GPUs.
    pub gpus: u32,
}

impl GpuAlsBaseline {
    /// Run GPU-ALS (coalesced + batched LU) to the profile's RMSE target.
    pub fn train(&self, data: &MfDataset, max_epochs: u32) -> SystemReport {
        self.run(data, max_epochs, None, &cumf_telemetry::NOOP)
    }

    /// [`GpuAlsBaseline::train`] with a telemetry recorder attached to the
    /// underlying ALS trainer (its kernel launches carry the baseline's
    /// coalesced-load / LU-solve cost profile).
    pub fn train_with_recorder(
        &self,
        data: &MfDataset,
        max_epochs: u32,
        recorder: &dyn cumf_telemetry::Recorder,
    ) -> SystemReport {
        self.run(data, max_epochs, None, recorder)
    }

    /// Run with an explicit `f` override (for fast tests).
    pub fn train_with_f(&self, data: &MfDataset, max_epochs: u32, f: usize) -> SystemReport {
        self.run(data, max_epochs, Some(f), &cumf_telemetry::NOOP)
    }

    fn run(
        &self,
        data: &MfDataset,
        max_epochs: u32,
        f: Option<usize>,
        recorder: &dyn cumf_telemetry::Recorder,
    ) -> SystemReport {
        let mut config = AlsConfig::gpu_als_baseline(&data.profile);
        config.iterations = max_epochs as usize;
        if let Some(f) = f {
            config.f = f;
        }
        let mut trainer =
            AlsTrainer::with_recorder(data, config, self.spec.clone(), self.gpus, recorder);
        let report = trainer.train();
        let epochs_run = report.epochs.len() as u32;
        let epoch_time = if epochs_run > 0 {
            report.total_sim_time() / epochs_run as f64
        } else {
            0.0
        };
        let mut curve = report.curve.clone();
        curve.label = "GPU-ALS".to_string();
        SystemReport {
            curve,
            epoch_time,
            time_to_target: report.time_to_target,
            epochs_run,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_als::SolverKind;
    use cumf_datasets::SizeClass;
    use cumf_gpu_sim::memory::LoadPattern;

    #[test]
    fn figure1_speedup_band() {
        // cuMF_ALS (nonCoal + CG-FP16) must be 2–4× faster per epoch than
        // GPU-ALS (coal + LU-FP32) on the same device, Netflix shape.
        let data = MfDataset::netflix(SizeClass::Tiny, 1);
        let spec = GpuSpec::maxwell_titan_x();

        let mut fast_cfg = AlsConfig::for_profile(&data.profile);
        fast_cfg.iterations = 1;
        fast_cfg.rmse_target = None;
        let mut fast = AlsTrainer::new(&data, fast_cfg, spec.clone(), 1);
        let (fast_phases, _) = fast.run_epoch();

        let mut slow_cfg = AlsConfig::gpu_als_baseline(&data.profile);
        slow_cfg.iterations = 1;
        slow_cfg.rmse_target = None;
        assert_eq!(slow_cfg.solver, SolverKind::BatchLu);
        assert_eq!(slow_cfg.load_pattern, LoadPattern::Coalesced);
        let mut slow = AlsTrainer::new(&data, slow_cfg, spec, 1);
        let (slow_phases, _) = slow.run_epoch();

        let speedup = slow_phases.total() / fast_phases.total();
        assert!(
            speedup > 2.0 && speedup < 4.5,
            "Figure 1 band: speedup {speedup}"
        );
    }

    #[test]
    fn baseline_still_converges() {
        // GPU-ALS is exact ALS — convergence quality matches cuMF_ALS; only
        // time differs.
        let data = MfDataset::netflix(SizeClass::Tiny, 2);
        let baseline = GpuAlsBaseline {
            spec: GpuSpec::maxwell_titan_x(),
            gpus: 1,
        };
        let report = baseline.train_with_f(&data, 5, 8);
        assert!(report.curve.best_rmse().unwrap() < 1.3);
        assert!(report.epoch_time > 0.0);
    }
}
