//! The shared SGD substrate: blocked conflict-free parallel epochs and
//! lock-free Hogwild epochs, used by LIBMF, NOMAD and GPU-SGD wrappers.
//!
//! The SGD update for one observation `r_uv` (equation (5)):
//!
//! ```text
//! e    = r_uv − x_uᵀθ_v
//! x_u += α (e·θ_v − λ·x_u)
//! θ_v += α (e·x_u − λ·θ_v)
//! ```
//!
//! Two observations conflict iff they share a row or a column, which yields
//! the two classic parallelization schemes (§VI-A): **blocking** (grid the
//! matrix; blocks on a generalized diagonal are conflict-free) and
//! **Hogwild** (update racily and rely on sparsity). Both are implemented —
//! blocking with provably disjoint mutable slices, Hogwild with relaxed
//! atomics.

use cumf_numeric::dense::DenseMatrix;
use cumf_numeric::stats::XorShift64;
use cumf_sparse::blocking::BlockGrid;
use cumf_sparse::coo::CooMatrix;
use std::sync::atomic::{AtomicU32, Ordering};

/// SGD hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct SgdConfig {
    /// Latent dimension.
    pub f: usize,
    /// L2 regularization λ.
    pub lambda: f32,
    /// Initial learning rate α₀.
    pub lr0: f32,
    /// Decay: α_k = α₀ / (1 + decay·k) per epoch k (the bold-driver-free
    /// schedule LIBMF's learning-rate paper \[3\] reduces to).
    pub decay: f32,
    /// Block-grid dimension for the blocking scheme (≥ worker count).
    pub grid: usize,
    /// Seed for factor init and shuffles.
    pub seed: u64,
}

impl SgdConfig {
    /// Reasonable defaults at dimension `f` for 1–5-star rating data.
    pub fn new(f: usize, lambda: f32) -> SgdConfig {
        SgdConfig {
            f,
            lambda,
            lr0: 0.05,
            decay: 0.3,
            grid: 8,
            seed: 17,
        }
    }

    /// Benchmark-tuned configuration for a dataset profile: λ from
    /// Table II, and the learning rate scaled inversely with the value
    /// magnitude (SGD's gradient scale grows with the rating scale, so a
    /// 1–100-range dataset needs a ~25× smaller step than a 1–5 one).
    pub fn for_profile(f: usize, profile: &cumf_datasets::DatasetProfile) -> SgdConfig {
        let lr0 = 0.029 / profile.value_mean.max(0.1);
        SgdConfig {
            f,
            lambda: profile.lambda,
            lr0,
            decay: 0.35,
            grid: 8,
            seed: 17,
        }
    }

    /// Learning rate at epoch `k` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.lr0 / (1.0 + self.decay * epoch as f32)
    }
}

/// Mutable SGD state: the two factor matrices.
pub struct SgdModel {
    /// Row factors, `m × f`.
    pub x: DenseMatrix,
    /// Column factors, `n × f`.
    pub theta: DenseMatrix,
}

impl SgdModel {
    /// Initialize factors so `x·θ` starts near `value_mean`.
    pub fn init(m: usize, n: usize, config: &SgdConfig, value_mean: f32) -> SgdModel {
        let f = config.f;
        let mut rng = XorShift64::new(config.seed);
        let center = (value_mean.max(0.01) / f as f32).sqrt();
        let mut x = DenseMatrix::zeros(m, f);
        let mut theta = DenseMatrix::zeros(n, f);
        x.fill_with(|| center + (rng.next_f32() - 0.5) * center * 0.5);
        theta.fill_with(|| center + (rng.next_f32() - 0.5) * center * 0.5);
        SgdModel { x, theta }
    }
}

/// Apply the SGD update for one entry to raw factor slices.
#[inline]
fn update_one(x: &mut [f32], theta: &mut [f32], r: f32, lr: f32, lambda: f32) {
    let mut e = r;
    for i in 0..x.len() {
        e -= x[i] * theta[i];
    }
    for i in 0..x.len() {
        let xi = x[i];
        let ti = theta[i];
        x[i] = xi + lr * (e * ti - lambda * xi);
        theta[i] = ti + lr * (e * xi - lambda * ti);
    }
}

/// One **blocked** parallel epoch: the grid's `gb` waves run in sequence,
/// the `gb` blocks of each wave in parallel. Within a wave, block `(i, c_i)`
/// owns row range `i` and column range `c_i` exclusively, so the factor
/// matrices are partitioned into disjoint mutable chunks — Rust's aliasing
/// rules prove what LIBMF's scheduler enforces dynamically.
pub fn blocked_epoch(grid: &BlockGrid, model: &mut SgdModel, config: &SgdConfig, epoch: usize) {
    let lr = config.lr_at(epoch);
    let f = config.f;
    let gb = grid.grid();
    for w in 0..gb {
        let wave = grid.wave(w);
        // Split X by block-row ranges and Θ by block-column ranges.
        let x_chunks = split_by_ranges(
            model.x.as_mut_slice(),
            (0..gb).map(|i| grid.row_range(i)),
            f,
        );
        let t_chunks = split_by_ranges(
            model.theta.as_mut_slice(),
            (0..gb).map(|i| grid.col_range(i)),
            f,
        );
        // Pair each block with its chunks; waves have distinct rows & cols.
        let mut tasks: Vec<(usize, usize, &mut [f32], &mut [f32])> = Vec::with_capacity(gb);
        let mut x_iter: Vec<Option<&mut [f32]>> = x_chunks.into_iter().map(Some).collect();
        let mut t_iter: Vec<Option<&mut [f32]>> = t_chunks.into_iter().map(Some).collect();
        for &(br, bc) in &wave {
            let xc = x_iter[br].take().expect("block-row reused within wave");
            let tc = t_iter[bc].take().expect("block-col reused within wave");
            tasks.push((br, bc, xc, tc));
        }
        rayon::scope(|s| {
            for (br, bc, xc, tc) in tasks {
                let (rs, _) = grid.row_range(br);
                let (cs, _) = grid.col_range(bc);
                s.spawn(move |_| {
                    for e in grid.block(br, bc) {
                        let u = e.row as usize - rs;
                        let v = e.col as usize - cs;
                        update_one(
                            &mut xc[u * f..(u + 1) * f],
                            &mut tc[v * f..(v + 1) * f],
                            e.value,
                            lr,
                            config.lambda,
                        );
                    }
                });
            }
        });
    }
}

/// Slice a factor buffer into per-range chunks (ranges are contiguous,
/// non-overlapping, and ordered — exactly what [`BlockGrid`] provides).
fn split_by_ranges(
    mut buf: &mut [f32],
    ranges: impl Iterator<Item = (usize, usize)>,
    f: usize,
) -> Vec<&mut [f32]> {
    let mut out = Vec::new();
    let mut consumed = 0usize;
    for (start, end) in ranges {
        debug_assert_eq!(start, consumed, "ranges must tile the buffer");
        let (chunk, rest) = buf.split_at_mut((end - start) * f);
        out.push(chunk);
        buf = rest;
        consumed = end;
    }
    out
}

/// One **Hogwild** epoch: entries updated in parallel with relaxed atomic
/// read-modify-writes and no coordination — the lock-free scheme of \[22\].
/// Updates may interleave mid-vector; with sparse data conflicts are rare
/// and convergence survives, which is the scheme's entire point.
pub fn hogwild_epoch(data: &CooMatrix, model: &mut SgdModel, config: &SgdConfig, epoch: usize) {
    use rayon::prelude::*;
    let lr = config.lr_at(epoch);
    let f = config.f;
    assert!(f <= 512, "hogwild_epoch supports f up to 512");
    let lambda = config.lambda;
    let x_atomic = as_atomic(model.x.as_mut_slice());
    let t_atomic = as_atomic(model.theta.as_mut_slice());

    data.entries().par_iter().for_each(|e| {
        let xs = &x_atomic[e.row as usize * f..(e.row as usize + 1) * f];
        let ts = &t_atomic[e.col as usize * f..(e.col as usize + 1) * f];
        // Racy read of both vectors (Hogwild semantics).
        let mut err = e.value;
        let mut xv = [0.0f32; 512];
        let mut tv = [0.0f32; 512];
        for i in 0..f {
            xv[i] = f32::from_bits(xs[i].load(Ordering::Relaxed));
            tv[i] = f32::from_bits(ts[i].load(Ordering::Relaxed));
            err -= xv[i] * tv[i];
        }
        for i in 0..f {
            let nx = xv[i] + lr * (err * tv[i] - lambda * xv[i]);
            let nt = tv[i] + lr * (err * xv[i] - lambda * tv[i]);
            xs[i].store(nx.to_bits(), Ordering::Relaxed);
            ts[i].store(nt.to_bits(), Ordering::Relaxed);
        }
    });
}

/// Reinterpret a `&mut [f32]` as atomics for Hogwild's racy updates.
/// Sound: `AtomicU32` has the same layout as `u32`/`f32`, the exclusive
/// borrow guarantees no non-atomic aliasing during the epoch, and every
/// access goes through atomic loads/stores.
fn as_atomic(buf: &mut [f32]) -> &[AtomicU32] {
    unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const AtomicU32, buf.len()) }
}

/// Test RMSE of an SGD model.
pub fn sgd_test_rmse(model: &SgdModel, test: &CooMatrix) -> f64 {
    cumf_als::metrics::test_rmse(&model.x, &model.theta, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_datasets::{MfDataset, SizeClass};

    fn setup() -> (MfDataset, SgdConfig) {
        let data = MfDataset::netflix(SizeClass::Tiny, 21);
        let config = SgdConfig {
            f: 8,
            ..SgdConfig::new(8, 0.05)
        }; // hogwild buffer cap is 512
        (data, config)
    }

    #[test]
    fn blocked_sgd_reduces_rmse() {
        let (data, config) = setup();
        let grid = BlockGrid::partition(&data.train_coo, config.grid);
        let mut model = SgdModel::init(data.m(), data.n(), &config, 3.6);
        let before = sgd_test_rmse(&model, &data.test);
        for k in 0..15 {
            blocked_epoch(&grid, &mut model, &config, k);
        }
        let after = sgd_test_rmse(&model, &data.test);
        assert!(after < before, "RMSE {before} → {after}");
        assert!(after < 1.15, "blocked SGD should fit: {after}");
    }

    #[test]
    fn hogwild_sgd_reduces_rmse() {
        let (data, config) = setup();
        let mut model = SgdModel::init(data.m(), data.n(), &config, 3.6);
        let before = sgd_test_rmse(&model, &data.test);
        for k in 0..15 {
            hogwild_epoch(&data.train_coo, &mut model, &config, k);
        }
        let after = sgd_test_rmse(&model, &data.test);
        assert!(after < before);
        assert!(
            after < 1.2,
            "hogwild should converge despite races: {after}"
        );
    }

    #[test]
    fn blocked_and_hogwild_reach_similar_quality() {
        let (data, config) = setup();
        let grid = BlockGrid::partition(&data.train_coo, config.grid);
        let mut blocked = SgdModel::init(data.m(), data.n(), &config, 3.6);
        let mut hog = SgdModel::init(data.m(), data.n(), &config, 3.6);
        for k in 0..20 {
            blocked_epoch(&grid, &mut blocked, &config, k);
            hogwild_epoch(&data.train_coo, &mut hog, &config, k);
        }
        let rb = sgd_test_rmse(&blocked, &data.test);
        let rh = sgd_test_rmse(&hog, &data.test);
        assert!((rb - rh).abs() < 0.1, "blocked {rb} vs hogwild {rh}");
    }

    #[test]
    fn learning_rate_decays() {
        let c = SgdConfig::new(16, 0.05);
        assert!(c.lr_at(0) > c.lr_at(5));
        assert_eq!(c.lr_at(0), c.lr0);
    }

    #[test]
    fn single_update_moves_toward_observation() {
        let mut x = vec![0.5f32; 4];
        let mut t = vec![0.5f32; 4];
        // prediction 1.0, observation 3.0 → error positive, factors grow.
        update_one(&mut x, &mut t, 3.0, 0.1, 0.0);
        assert!(x.iter().all(|&v| v > 0.5));
        assert!(t.iter().all(|&v| v > 0.5));
        let pred: f32 = x.iter().zip(&t).map(|(a, b)| a * b).sum();
        assert!(pred > 1.0 && pred < 3.0);
    }

    #[test]
    fn update_is_symmetric_in_factors() {
        // x and θ receive mirror-image updates when they start equal.
        let mut x = vec![0.3f32, 0.7];
        let mut t = vec![0.3f32, 0.7];
        update_one(&mut x, &mut t, 2.0, 0.05, 0.1);
        assert_eq!(x, t);
    }
}
