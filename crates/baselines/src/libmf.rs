//! LIBMF-style baseline: multi-threaded blocked SGD on one machine \[39\]\[3\].
//!
//! Functional: the [`crate::sgd`] blocked scheme with a grid larger than the
//! thread count (LIBMF's work-stealing grid). Timing: the host roofline of
//! the machine it runs on, with the shared-scheduler lock term that makes
//! LIBMF "stop scaling when using few dozen cores" (§VI-A). The paper runs
//! it with 40 threads on the Pascal server's POWER8 host, "which achieves
//! the best performance".

use crate::sgd::{blocked_epoch, sgd_test_rmse, SgdConfig, SgdModel};
use cumf_datasets::MfDataset;
use cumf_gpu_sim::host::{CpuSpec, HostWorkload, SyncModel};
use cumf_gpu_sim::timeline::ConvergenceCurve;
use cumf_sparse::blocking::BlockGrid;

/// Fraction of per-thread work spent in LIBMF's shared block scheduler.
/// Calibrated so 40 threads on the POWER8 host give the ≈30× best-case
/// speedup LIBMF reports before its scaling flattens.
const SCHEDULER_SERIAL_FRACTION: f64 = 0.004;
/// SIMD efficiency of LIBMF's hand-vectorized inner loop.
const SGD_SIMD_EFFICIENCY: f64 = 0.25;

/// The LIBMF baseline runner.
pub struct LibMf {
    /// Host machine.
    pub cpu: CpuSpec,
    /// Worker threads (40 in the paper's runs).
    pub threads: u32,
    /// SGD hyper-parameters.
    pub config: SgdConfig,
}

/// A baseline training run's outcome (shared shape across baseline systems).
#[derive(Clone, Debug)]
pub struct SystemReport {
    /// `(sim time, test RMSE)` convergence curve.
    pub curve: ConvergenceCurve,
    /// Simulated seconds per epoch.
    pub epoch_time: f64,
    /// First simulated time at which the target RMSE was reached.
    pub time_to_target: Option<f64>,
    /// Epochs actually run.
    pub epochs_run: u32,
}

impl LibMf {
    /// LIBMF as the paper benchmarks it: 40 threads on the POWER8 host,
    /// learning rate tuned to the dataset's value scale.
    pub fn paper_setup(f: usize, profile: &cumf_datasets::DatasetProfile) -> LibMf {
        LibMf {
            cpu: CpuSpec::power8(),
            threads: 40,
            config: SgdConfig {
                grid: 16,
                ..SgdConfig::for_profile(f, profile)
            },
        }
    }

    /// Simulated time of one SGD epoch over the full-scale dataset.
    ///
    /// Per observation: read+write of `x_u` and `θ_v` (4·f·4 bytes) plus the
    /// rating stream; `8f` flops (two length-f passes of FMA pairs).
    pub fn epoch_time(&self, data: &MfDataset) -> f64 {
        let nz = data.profile.nz as f64;
        let f = self.config.f as f64;
        let w = HostWorkload {
            flops: nz * 8.0 * f,
            bytes: nz * (4.0 * f * 4.0 + 12.0),
            efficiency: SGD_SIMD_EFFICIENCY,
        };
        self.cpu.workload_time(
            &w,
            self.threads,
            SyncModel::SharedLock {
                serial_fraction: SCHEDULER_SERIAL_FRACTION,
            },
        )
    }

    /// Train until `max_epochs` or the profile's RMSE target.
    pub fn train(&self, data: &MfDataset, max_epochs: u32) -> SystemReport {
        let grid = BlockGrid::partition(&data.train_coo, self.config.grid);
        let mut model = SgdModel::init(data.m(), data.n(), &self.config, data.profile.value_mean);
        let epoch_time = self.epoch_time(data);
        let target = data.profile.rmse_target;
        let mut curve = ConvergenceCurve::new("LIBMF");
        let mut time_to_target = None;
        let mut epochs_run = 0;
        for k in 0..max_epochs {
            blocked_epoch(&grid, &mut model, &self.config, k as usize);
            epochs_run = k + 1;
            let rmse = sgd_test_rmse(&model, &data.test);
            let t = epoch_time * epochs_run as f64;
            curve.push(t, epochs_run, rmse);
            if rmse <= target {
                time_to_target = Some(t);
                break;
            }
        }
        SystemReport {
            curve,
            epoch_time,
            time_to_target,
            epochs_run,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_datasets::SizeClass;

    #[test]
    fn netflix_epoch_time_in_table4_ballpark() {
        // Table IV: LIBMF reaches 0.92 on Netflix in 23 s; SGD needs a few
        // dozen epochs, so one epoch should cost a few hundred ms to ~1 s.
        let data = MfDataset::netflix(SizeClass::Tiny, 1);
        let t = LibMf::paper_setup(100, &data.profile).epoch_time(&data);
        assert!(t > 0.2 && t < 2.5, "epoch time {t}");
    }

    #[test]
    fn more_threads_help_until_they_dont() {
        let data = MfDataset::netflix(SizeClass::Tiny, 1);
        let mk = |threads| {
            LibMf {
                threads,
                ..LibMf::paper_setup(100, &data.profile)
            }
            .epoch_time(&data)
        };
        let t4 = mk(4);
        let t16 = mk(16);
        let t40 = mk(40);
        assert!(t16 < t4);
        // Beyond physical cores the lock keeps it flat-ish, not faster.
        assert!(t40 >= t16 * 0.9);
    }

    #[test]
    fn converges_on_tiny_data() {
        let data = MfDataset::netflix(SizeClass::Tiny, 3);
        let libmf = LibMf {
            config: SgdConfig {
                f: 8,
                grid: 8,
                ..SgdConfig::new(8, 0.05)
            },
            ..LibMf::paper_setup(8, &data.profile)
        };
        let report = libmf.train(&data, 20);
        assert!(report.curve.best_rmse().unwrap() < 1.2);
        assert_eq!(report.curve.points().len() as u32, report.epochs_run);
    }

    #[test]
    fn hugewiki_epoch_is_much_slower() {
        let nf = MfDataset::netflix(SizeClass::Tiny, 1);
        let hw = MfDataset::hugewiki(SizeClass::Tiny, 1);
        let libmf = LibMf::paper_setup(100, &nf.profile);
        // 3.1B vs 99M non-zeros → ≈ 31× the per-epoch work.
        let ratio = libmf.epoch_time(&hw) / libmf.epoch_time(&nf);
        assert!(ratio > 20.0 && ratio < 45.0, "ratio {ratio}");
    }
}
