//! BIDMach-style baseline \[2\]: ALS expressed over *generic* sparse matrix
//! kernels rather than an MF-specialized fused kernel.
//!
//! BIDMach builds ALS from its general-purpose sparse primitives; the paper
//! observes its ALS kernel runs at ≈40 GFLOPS (consistent with BIDMach's own
//! reported numbers) and that it "does not converge to the acceptance
//! level" under the benchmark protocol. We reproduce both: the functional
//! path computes the same Gram matrices through an *unfused* generic
//! pipeline (materialized gather + generic rank-k update), and the cost
//! model pins throughput at the measured generic-kernel rate.

use cumf_datasets::MfDataset;
use cumf_gpu_sim::GpuSpec;
use cumf_numeric::dense::DenseMatrix;
use cumf_numeric::sym::{packed_len, SymPacked};
use cumf_sparse::CsrMatrix;

/// Throughput of BIDMach's generic sparse ALS kernel (§V-C: "the ALS kernel
/// of BIDMach runs at 40 GFLOPS").
pub const BIDMACH_GFLOPS: f64 = 40.0;

/// The BIDMach-style runner.
pub struct BidMach {
    /// Device (BIDMach is single-GPU).
    pub spec: GpuSpec,
    /// Latent dimension.
    pub f: usize,
    /// Regularization.
    pub lambda: f32,
}

impl BidMach {
    /// Build the Gram matrix for one row through the generic (unfused)
    /// pipeline: materialize the gathered feature block, then run a generic
    /// symmetric rank-k update — semantically identical to `get_hermitian`,
    /// structured the way a general matrix library would do it.
    pub fn hermitian_generic(&self, cols: &[u32], features: &DenseMatrix) -> SymPacked {
        let f = self.f;
        // Step 1: gather (materializes an nnz×f dense block — the extra
        // memory traffic that caps generic-kernel throughput).
        let mut gathered = DenseMatrix::zeros(cols.len(), f);
        for (i, &v) in cols.iter().enumerate() {
            gathered
                .row_mut(i)
                .copy_from_slice(features.row(v as usize));
        }
        // Step 2: generic syrk over the gathered block.
        let mut a = SymPacked::zeros(f);
        for i in 0..gathered.rows() {
            a.syr(gathered.row(i));
        }
        a.add_diagonal(self.lambda * cols.len() as f32);
        a
    }

    /// Simulated time of one ALS epoch at full scale: the same `Nz·f²` FMA
    /// work as cuMF_ALS, but at the generic kernel's 40 GFLOPS.
    pub fn epoch_time(&self, data: &MfDataset) -> f64 {
        let flops = 2.0 * data.profile.nz as f64 * packed_len(self.f) as f64 * 2.0; // both sides
        flops / (BIDMACH_GFLOPS * 1e9)
    }

    /// Achieved GFLOPS (constant by construction; reported for Table-V/§V-C
    /// harness output).
    pub fn achieved_gflops(&self) -> f64 {
        BIDMACH_GFLOPS
    }

    /// Sanity: the generic pipeline computes the same Gram matrix as the
    /// fused kernel (used by tests and the cross-system agreement suite).
    pub fn matches_fused(&self, r: &CsrMatrix, features: &DenseMatrix, row: usize) -> bool {
        let generic = self.hermitian_generic(r.row_cols(row), features);
        let fused = cumf_als::kernels::hermitian::hermitian_row_reference(
            r.row_cols(row),
            features,
            self.lambda,
            self.f,
        );
        generic
            .as_slice()
            .iter()
            .zip(fused.as_slice())
            .all(|(a, b)| (a - b).abs() <= 1e-5 * b.abs().max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_datasets::SizeClass;
    use cumf_numeric::stats::XorShift64;

    #[test]
    fn generic_pipeline_matches_fused_kernel() {
        let data = MfDataset::netflix(SizeClass::Tiny, 3);
        let bid = BidMach {
            spec: GpuSpec::maxwell_titan_x(),
            f: 8,
            lambda: 0.05,
        };
        let mut rng = XorShift64::new(4);
        let mut features = DenseMatrix::zeros(data.n(), 8);
        features.fill_with(|| rng.next_f32() - 0.5);
        for row in (0..data.m()).step_by(53) {
            assert!(bid.matches_fused(&data.r, &features, row), "row {row}");
        }
    }

    #[test]
    fn epoch_time_is_dominated_by_generic_kernel_rate() {
        // Netflix at f=100: 2·Nz·f² ≈ 2e12 flops ≈ 50 s at 40 GFLOPS — vs
        // ≈1 s for cuMF_ALS. This is why BIDMach misses the time budget.
        let data = MfDataset::netflix(SizeClass::Tiny, 1);
        let bid = BidMach {
            spec: GpuSpec::maxwell_titan_x(),
            f: 100,
            lambda: 0.05,
        };
        let t = bid.epoch_time(&data);
        assert!(t > 20.0 && t < 80.0, "BIDMach epoch {t}s");
    }

    #[test]
    fn forty_gflops_is_far_below_cumf() {
        // Figure 7(a): cuMF_ALS achieves 2–3 TFLOPS on Maxwell.
        let bid = BidMach {
            spec: GpuSpec::maxwell_titan_x(),
            f: 100,
            lambda: 0.05,
        };
        let cumf_flops = GpuSpec::maxwell_titan_x().peak_fp32_flops
            * cumf_gpu_sim::kernel::hermitian_pipe_efficiency(&GpuSpec::maxwell_titan_x());
        assert!(cumf_flops / (bid.achieved_gflops() * 1e9) > 50.0);
    }
}
