//! Competing matrix-factorization systems, reimplemented.
//!
//! The paper's evaluation compares cuMF_ALS against six systems. Each is
//! rebuilt here as *algorithm + parallelization strategy + cost model*, so
//! the comparisons exercise the same design axes the paper varies:
//!
//! | module | system | strategy |
//! |---|---|---|
//! | [`sgd`] | (shared SGD substrate) | blocked waves + Hogwild atomics |
//! | [`libmf`] | LIBMF \[39\], \[3\] | multi-threaded blocked SGD, one box |
//! | [`nomad`] | NOMAD \[37\] | asynchronous distributed SGD over MPI |
//! | [`gpu_sgd`] | cuMF_SGD \[35\] | batch Hogwild SGD on GPUs |
//! | [`gpu_als`] | GPU-ALS \[31\] (HPDC'16) | ALS, coalesced loads + batch LU |
//! | [`bidmach`] | BIDMach \[2\] | ALS over generic sparse kernels |
//! | [`ccd`] | CCD++ \[36\] | cyclic coordinate descent |
//! | [`implicit_cpu`] | implicit / QMF | CPU iALS for one-class inputs |
//! | [`gemm_batched`] | cuBLAS `gemmBatched` | Figure 7(a) FLOPS baseline |
//!
//! Functional execution is real (each system genuinely factorizes the
//! synthetic datasets and its epochs-to-target is measured); wall-clock is
//! simulated on the hardware models in `cumf-gpu-sim`, with per-system
//! calibration constants documented in each module.

#![deny(missing_docs)]

pub mod bidmach;
pub mod ccd;
pub mod gemm_batched;
pub mod gpu_als;
pub mod gpu_sgd;
pub mod implicit_cpu;
pub mod libmf;
pub mod nomad;
pub mod sgd;

pub use gpu_als::GpuAlsBaseline;
pub use gpu_sgd::GpuSgd;
pub use libmf::LibMf;
pub use nomad::Nomad;
