//! NOMAD-style baseline: asynchronous decentralized SGD over an MPI
//! cluster \[37\].
//!
//! NOMAD partitions rows across machines and circulates *column* factor
//! vectors between them: whichever machine holds column `v`'s token updates
//! `θ_v` against its local rows, then passes it on. Functionally that
//! trajectory is an asynchronous SGD pass, which we execute with the
//! blocked substrate (same update math, conflict-free schedule); the
//! distinguishing system behaviour — network-bound column circulation — is
//! priced by the cluster model.
//!
//! The paper uses NOMAD's best settings: 32 machines for Netflix and
//! YahooMusic, 64 for Hugewiki.

use crate::libmf::SystemReport;
use crate::sgd::{blocked_epoch, sgd_test_rmse, SgdConfig, SgdModel};
use cumf_datasets::MfDataset;
use cumf_gpu_sim::host::{ClusterNetwork, CpuSpec, HostWorkload, SyncModel};
use cumf_gpu_sim::timeline::ConvergenceCurve;
use cumf_sparse::blocking::BlockGrid;

/// How many times each column's token circulates the ring per epoch.
/// NOMAD keeps tokens moving continuously; ~8 visits per machine per epoch
/// reproduces its reported Netflix throughput.
const CIRCULATIONS_PER_EPOCH: f64 = 8.0;
/// SIMD efficiency of NOMAD's inner update loop.
const SGD_SIMD_EFFICIENCY: f64 = 0.25;

/// The NOMAD baseline runner.
pub struct Nomad {
    /// Per-machine CPU (NOMAD's HPC nodes: 8-core Xeons).
    pub node_cpu: CpuSpec,
    /// Machines in the cluster.
    pub machines: u32,
    /// Cluster interconnect.
    pub network: ClusterNetwork,
    /// SGD hyper-parameters.
    pub config: SgdConfig,
}

impl Nomad {
    /// NOMAD at the paper's best setting for a dataset (32 machines; 64 for
    /// Hugewiki).
    pub fn paper_setup(profile: &cumf_datasets::DatasetProfile, f: usize) -> Nomad {
        let machines = if profile.name == "Hugewiki" { 64 } else { 32 };
        Nomad {
            node_cpu: CpuSpec::xeon_e5_2667(),
            machines,
            network: ClusterNetwork::ten_gbe(),
            config: SgdConfig {
                grid: 16,
                ..SgdConfig::for_profile(f, profile)
            },
        }
    }

    /// Convergence-degradation factor of asynchronous SGD: stale tokens make
    /// each pass over the data worth less than a synchronous epoch, and the
    /// staleness grows with the machine count. The functional run executes
    /// synchronous epochs, so their simulated cost is inflated by this
    /// factor (calibrated to NOMAD's reported scaling).
    pub fn staleness_factor(&self) -> f64 {
        1.0 + self.machines as f64 / 24.0
    }

    /// Simulated time of one *effective* (synchronous-equivalent) epoch:
    /// per-node SGD compute (Nz/machines observations) overlapped with the
    /// column-circulation network traffic (each of the n column vectors
    /// crosses each node `CIRCULATIONS_PER_EPOCH` times), inflated by the
    /// async staleness factor.
    pub fn epoch_time(&self, data: &MfDataset) -> f64 {
        let nz = data.profile.nz as f64 / self.machines as f64;
        let f = self.config.f as f64;
        let w = HostWorkload {
            flops: nz * 8.0 * f,
            bytes: nz * (4.0 * f * 4.0 + 12.0),
            efficiency: SGD_SIMD_EFFICIENCY,
        };
        let compute = self
            .node_cpu
            .workload_time(&w, self.node_cpu.cores, SyncModel::None);
        let col_bytes = data.profile.n as f64 * f * 4.0 * CIRCULATIONS_PER_EPOCH;
        let messages = data.profile.n as f64 * CIRCULATIONS_PER_EPOCH / 64.0; // batched tokens
        let comm = self.network.exchange_time(col_bytes, messages);
        // Async design overlaps compute and communication; the slower one
        // gates progress.
        compute.max(comm) * self.staleness_factor()
    }

    /// Train until `max_epochs` or the profile's RMSE target.
    pub fn train(&self, data: &MfDataset, max_epochs: u32) -> SystemReport {
        let grid = BlockGrid::partition(&data.train_coo, self.config.grid);
        let mut model = SgdModel::init(data.m(), data.n(), &self.config, data.profile.value_mean);
        let epoch_time = self.epoch_time(data);
        let target = data.profile.rmse_target;
        let mut curve = ConvergenceCurve::new("NOMAD");
        let mut time_to_target = None;
        let mut epochs_run = 0;
        for k in 0..max_epochs {
            blocked_epoch(&grid, &mut model, &self.config, k as usize);
            epochs_run = k + 1;
            let rmse = sgd_test_rmse(&model, &data.test);
            let t = epoch_time * epochs_run as f64;
            curve.push(t, epochs_run, rmse);
            if rmse <= target {
                time_to_target = Some(t);
                break;
            }
        }
        SystemReport {
            curve,
            epoch_time,
            time_to_target,
            epochs_run,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libmf::LibMf;
    use cumf_datasets::SizeClass;

    #[test]
    fn paper_setup_machine_counts() {
        assert_eq!(
            Nomad::paper_setup(&cumf_datasets::DatasetProfile::netflix(), 100).machines,
            32
        );
        assert_eq!(
            Nomad::paper_setup(&cumf_datasets::DatasetProfile::yahoo_music(), 100).machines,
            32
        );
        assert_eq!(
            Nomad::paper_setup(&cumf_datasets::DatasetProfile::hugewiki(), 100).machines,
            64
        );
    }

    #[test]
    fn nomad_beats_libmf_per_epoch_on_netflix() {
        // Table IV: NOMAD 9.6 s vs LIBMF 23 s on Netflix — the cluster wins
        // when the column dimension is small enough for the network.
        let data = MfDataset::netflix(SizeClass::Tiny, 1);
        let nomad = Nomad::paper_setup(&data.profile, 100).epoch_time(&data);
        let libmf = LibMf::paper_setup(100, &data.profile).epoch_time(&data);
        assert!(nomad < libmf, "nomad {nomad} vs libmf {libmf}");
    }

    #[test]
    fn network_gates_yahoo() {
        // Table IV inversion: NOMAD (109 s) loses to LIBMF (38 s) on
        // YahooMusic because n = 625k column tokens swamp the wire.
        let nf = MfDataset::netflix(SizeClass::Tiny, 1);
        let ym = MfDataset::yahoo_music(SizeClass::Tiny, 1);
        let nomad = Nomad::paper_setup(&ym.profile, 100);
        let t_nf = nomad.epoch_time(&nf);
        let t_ym = nomad.epoch_time(&ym);
        // Yahoo's epoch is comm-bound and far slower despite only 2.5× Nz.
        assert!(
            t_ym / t_nf > 5.0,
            "yahoo/netflix epoch ratio {}",
            t_ym / t_nf
        );
        let libmf = LibMf::paper_setup(100, &ym.profile);
        let libmf_ratio = libmf.epoch_time(&ym) / libmf.epoch_time(&nf);
        assert!(
            libmf_ratio < 4.0,
            "LIBMF scales with Nz only: {libmf_ratio}"
        );
    }

    #[test]
    fn converges_on_tiny_data() {
        let data = MfDataset::netflix(SizeClass::Tiny, 9);
        let nomad = Nomad {
            config: SgdConfig {
                f: 8,
                grid: 8,
                ..SgdConfig::new(8, 0.05)
            },
            ..Nomad::paper_setup(&data.profile, 8)
        };
        let report = nomad.train(&data, 20);
        assert!(report.curve.best_rmse().unwrap() < 1.2);
    }
}
