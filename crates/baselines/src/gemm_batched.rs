//! The cuBLAS `gemmBatched` baseline of Figure 7(a).
//!
//! `get_hermitian` has no library equivalent (variable-size batched
//! `AᵀA`-with-gather), so the paper compares against the closest routine:
//! fixed-size batched GEMM, with every multiplication set to the same
//! dimensions so the two are "fairly compared". We implement the functional
//! batched multiply and the corresponding cost model (dense inputs, no
//! sparse-reference chasing, fixed-size batch efficiency).

use cumf_gpu_sim::kernel::{gemm_batched_pipe_efficiency, launch_time, KernelCost, LaunchTiming};
use cumf_gpu_sim::occupancy::{occupancy, KernelResources};
use cumf_gpu_sim::GpuSpec;
use cumf_numeric::dense::DenseMatrix;

/// A batch of equal-size multiplications `C_i = A_i · B_iᵀ` with
/// `A_i, B_i ∈ R^{f×k}` row-major (so `C_i ∈ R^{f×f}` — the Gram shape).
pub struct GemmBatch {
    /// Shared inner dimension `k` (the fixed per-row nnz of the paper's
    /// fair-comparison setting).
    pub k: usize,
    /// Output dimension `f`.
    pub f: usize,
}

impl GemmBatch {
    /// Run the batch functionally. `a[i]`/`b[i]` are `f×k`; returns the
    /// `f×f` products.
    pub fn run(&self, a: &[DenseMatrix], b: &[DenseMatrix]) -> Vec<DenseMatrix> {
        assert_eq!(a.len(), b.len(), "batch sides must match");
        a.iter()
            .zip(b)
            .map(|(ai, bi)| {
                assert_eq!((ai.rows(), ai.cols()), (self.f, self.k));
                assert_eq!((bi.rows(), bi.cols()), (self.f, self.k));
                ai.gemm_nt(bi)
            })
            .collect()
    }

    /// Cost of the batch on a device.
    pub fn cost(&self, spec: &GpuSpec, batch: u64) -> KernelCost {
        let (f, k) = (self.f as f64, self.k as f64);
        KernelCost {
            flops_fp32: batch as f64 * 2.0 * f * f * k,
            flops_fp16: 0.0,
            dram_read_bytes: batch as f64 * 2.0 * f * k * 4.0,
            dram_write_bytes: batch as f64 * f * f * 4.0,
            l2_wire_bytes: batch as f64 * 2.0 * f * k * 4.0,
            transactions: batch as f64 * 2.0 * f * k * 4.0 / 128.0,
            mlp: 16.0,
            pipe_efficiency: gemm_batched_pipe_efficiency(spec),
        }
    }

    /// Price the batch: time and achieved FLOPS (Figure 7(a)'s cuBLAS bars).
    pub fn timing(&self, spec: &GpuSpec, batch: u64) -> (LaunchTiming, f64) {
        let occ = occupancy(
            spec,
            &KernelResources {
                regs_per_thread: 64,
                threads_per_block: 256,
                shared_mem_per_block: 16 << 10,
            },
        );
        let cost = self.cost(spec, batch);
        let t = launch_time(spec, &occ, &cost);
        let achieved = t.achieved_flops(cost.flops_fp32);
        (t, achieved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_gpu_sim::kernel::hermitian_pipe_efficiency;
    use cumf_numeric::stats::XorShift64;

    #[test]
    fn functional_product_matches_reference() {
        let g = GemmBatch { k: 3, f: 4 };
        let mut rng = XorShift64::new(1);
        let mk = |rng: &mut XorShift64| {
            let mut m = DenseMatrix::zeros(4, 3);
            m.fill_with(|| rng.next_f32() - 0.5);
            m
        };
        let a = vec![mk(&mut rng), mk(&mut rng)];
        let b = vec![mk(&mut rng), mk(&mut rng)];
        let c = g.run(&a, &b);
        assert_eq!(c.len(), 2);
        for i in 0..2 {
            for r in 0..4 {
                for s in 0..4 {
                    let expect: f32 = (0..3).map(|t| a[i].get(r, t) * b[i].get(s, t)).sum();
                    assert!((c[i].get(r, s) - expect).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn symmetric_inputs_give_symmetric_gram() {
        // When A_i == B_i the result is A·Aᵀ — the Gram matrix.
        let g = GemmBatch { k: 5, f: 3 };
        let mut rng = XorShift64::new(9);
        let mut m = DenseMatrix::zeros(3, 5);
        m.fill_with(|| rng.next_f32());
        let c = g.run(std::slice::from_ref(&m), std::slice::from_ref(&m));
        for r in 0..3 {
            for s in 0..3 {
                assert_eq!(c[0].get(r, s), c[0].get(s, r));
            }
        }
    }

    #[test]
    fn figure7a_cumf_beats_cublas_on_every_generation() {
        for spec in GpuSpec::paper_catalog() {
            let g = GemmBatch { k: 206, f: 100 }; // Netflix mean row degree
            let (_, cublas_flops) = g.timing(&spec, 480_189);
            let cumf_flops = spec.peak_fp32_flops * hermitian_pipe_efficiency(&spec);
            assert!(
                cumf_flops > cublas_flops,
                "{}: cuMF {cumf_flops:.2e} vs cuBLAS {cublas_flops:.2e}",
                spec.name
            );
            // Efficiency below 70% of peak for both (sanity).
            assert!(cublas_flops / spec.peak_fp32_flops < 0.7);
        }
    }

    #[test]
    fn batch_cost_scales_linearly() {
        let g = GemmBatch { k: 100, f: 100 };
        let spec = GpuSpec::maxwell_titan_x();
        let c1 = g.cost(&spec, 1000);
        let c2 = g.cost(&spec, 2000);
        assert_eq!(c2.flops_fp32, 2.0 * c1.flops_fp32);
    }
}
