//! Property-based tests on the SGD substrate.

use cumf_baselines::sgd::{blocked_epoch, hogwild_epoch, SgdConfig, SgdModel};
use cumf_datasets::DatasetProfile;
use cumf_numeric::stats::XorShift64;
use cumf_sparse::blocking::BlockGrid;
use cumf_sparse::coo::CooMatrix;
use proptest::prelude::*;

fn random_data(m: usize, n: usize, nz: usize, seed: u64) -> CooMatrix {
    let mut rng = XorShift64::new(seed);
    let mut coo = CooMatrix::new(m, n);
    for _ in 0..nz {
        coo.push(
            rng.next_below(m) as u32,
            rng.next_below(n) as u32,
            2.0 + rng.next_f32() * 2.0,
        );
    }
    coo
}

fn train_sse(data: &CooMatrix, model: &SgdModel) -> f64 {
    data.entries()
        .iter()
        .map(|e| {
            let p = cumf_numeric::dense::dot(
                model.x.row(e.row as usize),
                model.theta.row(e.col as usize),
            );
            ((p - e.value) as f64).powi(2)
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A blocked epoch with any grid size performs every update exactly
    /// once: the resulting model is independent of the grid only up to
    /// update order, but the training SSE must drop for all grids.
    #[test]
    fn blocked_epoch_improves_fit_for_any_grid(grid in 1usize..7, seed in 0u64..500) {
        let data = random_data(60, 40, 600, seed);
        let config = SgdConfig { grid, f: 6, ..SgdConfig::new(6, 0.02) };
        let bg = BlockGrid::partition(&data, grid);
        let mut model = SgdModel::init(60, 40, &config, 3.0);
        let before = train_sse(&data, &model);
        for k in 0..4 {
            blocked_epoch(&bg, &mut model, &config, k);
        }
        let after = train_sse(&data, &model);
        prop_assert!(after < before, "grid {}: SSE {} → {}", grid, before, after);
    }

    /// Hogwild and blocked epochs reach similar quality from the same init.
    #[test]
    fn hogwild_matches_blocked_quality(seed in 0u64..500) {
        let data = random_data(80, 50, 900, seed);
        let config = SgdConfig { f: 6, grid: 4, ..SgdConfig::new(6, 0.02) };
        let bg = BlockGrid::partition(&data, config.grid);
        let mut blocked = SgdModel::init(80, 50, &config, 3.0);
        let mut hog = SgdModel::init(80, 50, &config, 3.0);
        for k in 0..8 {
            blocked_epoch(&bg, &mut blocked, &config, k);
            hogwild_epoch(&data, &mut hog, &config, k);
        }
        let sb = (train_sse(&data, &blocked) / data.nnz() as f64).sqrt();
        let sh = (train_sse(&data, &hog) / data.nnz() as f64).sqrt();
        prop_assert!((sb - sh).abs() < 0.25, "blocked {} vs hogwild {}", sb, sh);
    }

    /// Factors stay finite under the profile-tuned learning rates for every
    /// benchmark value scale.
    #[test]
    fn profile_tuned_rates_are_stable(seed in 0u64..200) {
        for profile in DatasetProfile::table2() {
            let config = SgdConfig { grid: 4, ..SgdConfig::for_profile(6, &profile) };
            let mut rng = XorShift64::new(seed | 1);
            let mut data = CooMatrix::new(50, 30);
            for _ in 0..400 {
                let v = profile.value_mean + (rng.next_f32() - 0.5) * profile.value_mean;
                data.push(rng.next_below(50) as u32, rng.next_below(30) as u32, v);
            }
            let bg = BlockGrid::partition(&data, config.grid);
            let mut model = SgdModel::init(50, 30, &config, profile.value_mean);
            for k in 0..6 {
                blocked_epoch(&bg, &mut model, &config, k);
            }
            prop_assert!(
                model.x.as_slice().iter().all(|v| v.is_finite()),
                "{} diverged",
                profile.name
            );
        }
    }

    /// Zero learning rate leaves the model bitwise unchanged.
    #[test]
    fn zero_lr_is_identity(seed in 0u64..500) {
        let data = random_data(30, 20, 200, seed);
        let config = SgdConfig { lr0: 0.0, f: 4, grid: 3, ..SgdConfig::new(4, 0.1) };
        let bg = BlockGrid::partition(&data, config.grid);
        let mut model = SgdModel::init(30, 20, &config, 3.0);
        let snapshot = model.x.as_slice().to_vec();
        blocked_epoch(&bg, &mut model, &config, 0);
        prop_assert_eq!(model.x.as_slice(), &snapshot[..]);
    }
}
