//! Serving-traffic synthesis: who asks for recommendations, and when.
//!
//! The generators in this crate shape *training* data; this module shapes
//! the *request stream* a serving benchmark replays against the trained
//! model. Two empirical properties matter for cache and batching behavior:
//!
//! * **Skew** — active users request far more often than inactive ones.
//!   We reuse each user's planted activity (training-row non-zero count)
//!   as their request weight, so the same log-normal skew that shaped the
//!   rating matrix shapes the traffic, and cache hit ratios are meaningful.
//! * **Burstiness** — arrivals are a Poisson process at a target QPS
//!   (exponential inter-arrival gaps), not a metronome.
//!
//! Everything is deterministic from the seed, like the rest of the crate.

use crate::generator::MfDataset;
use rand::prelude::*;

/// One synthetic request: a user asking at an arrival time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampledRequest {
    /// Requesting user (row of the training matrix).
    pub user: u32,
    /// Arrival time in seconds from stream start.
    pub arrival: f64,
}

/// Weighted sampler of recommendation requests.
#[derive(Clone, Debug)]
pub struct RequestSampler {
    /// Cumulative weights over users; `cdf[m-1]` is the total weight.
    cdf: Vec<f64>,
    rng: StdRng,
}

impl RequestSampler {
    /// Traffic shaped like `data`'s planted user activity: user `u`'s
    /// request weight is `1 + row_nnz(u)`, so heavy raters dominate the
    /// stream the way they dominated the rating matrix (the `+1` keeps
    /// holdout-emptied users reachable).
    pub fn from_dataset(data: &MfDataset, seed: u64) -> RequestSampler {
        Self::from_weights((0..data.m()).map(|u| 1.0 + data.r.row_nnz(u) as f64), seed)
    }

    /// Uniform traffic over `m` users (the cache-hostile worst case).
    pub fn uniform(m: usize, seed: u64) -> RequestSampler {
        Self::from_weights(std::iter::repeat_n(1.0, m), seed)
    }

    /// Arbitrary non-negative per-user weights (at least one must be
    /// positive).
    pub fn from_weights(weights: impl IntoIterator<Item = f64>, seed: u64) -> RequestSampler {
        let mut cdf = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and ≥ 0");
            total += w;
            cdf.push(total);
        }
        assert!(total > 0.0, "at least one user needs positive weight");
        RequestSampler {
            cdf,
            rng: StdRng::seed_from_u64(seed ^ 0x5E57_1CE5),
        }
    }

    /// Number of users in the population.
    pub fn n_users(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one requesting user (weighted, with replacement).
    pub fn next_user(&mut self) -> u32 {
        let total = *self.cdf.last().unwrap();
        let x = self.rng.gen_f64() * total;
        // First index whose cumulative weight exceeds x.
        self.cdf.partition_point(|&c| c <= x) as u32
    }

    /// Draw `count` requests arriving as a Poisson process at `qps`
    /// requests/second (arrival times strictly increase from ~0).
    pub fn sample(&mut self, count: usize, qps: f64) -> Vec<SampledRequest> {
        assert!(qps > 0.0, "target QPS must be positive");
        let mut t = 0.0f64;
        (0..count)
            .map(|_| {
                // Exponential inter-arrival: -ln(1-u)/λ, u ∈ [0,1).
                let u = self.rng.gen_f64();
                t += -(1.0 - u).ln() / qps;
                SampledRequest {
                    user: self.next_user(),
                    arrival: t,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SizeClass;

    #[test]
    fn deterministic_for_same_seed() {
        let d = MfDataset::netflix(SizeClass::Tiny, 11);
        let a = RequestSampler::from_dataset(&d, 5).sample(200, 100.0);
        let b = RequestSampler::from_dataset(&d, 5).sample(200, 100.0);
        assert_eq!(a, b);
        let c = RequestSampler::from_dataset(&d, 6).sample(200, 100.0);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_increase_at_roughly_target_qps() {
        let mut s = RequestSampler::uniform(10, 1);
        let reqs = s.sample(2000, 500.0);
        for w in reqs.windows(2) {
            assert!(w[1].arrival > w[0].arrival);
        }
        let span = reqs.last().unwrap().arrival;
        let rate = 2000.0 / span;
        assert!((rate - 500.0).abs() < 50.0, "achieved rate {rate}");
    }

    #[test]
    fn activity_weighting_skews_traffic() {
        let d = MfDataset::netflix(SizeClass::Tiny, 12);
        let mut s = RequestSampler::from_dataset(&d, 2);
        let mut counts = vec![0u32; d.m()];
        for _ in 0..20_000 {
            counts[s.next_user() as usize] += 1;
        }
        // The most active decile should receive well over its uniform
        // share (10%) of requests.
        let mut users: Vec<usize> = (0..d.m()).collect();
        users.sort_unstable_by_key(|&u| std::cmp::Reverse(d.r.row_nnz(u)));
        let top: u32 = users[..d.m() / 10].iter().map(|&u| counts[u]).sum();
        let share = top as f64 / 20_000.0;
        assert!(share > 0.2, "top-decile share {share}");
    }

    #[test]
    fn uniform_covers_all_users() {
        let mut s = RequestSampler::uniform(8, 3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[s.next_user() as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn weighted_sampling_respects_zero_weights() {
        let mut s = RequestSampler::from_weights([0.0, 1.0, 0.0, 3.0], 4);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[s.next_user() as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        assert!(counts[3] > counts[1]);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn all_zero_weights_rejected() {
        let _ = RequestSampler::from_weights([0.0, 0.0], 1);
    }
}
