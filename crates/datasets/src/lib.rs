//! Dataset substrate: synthetic generators matching the shapes of the
//! paper's three benchmark datasets (Table II), plus a text loader for
//! real MovieLens-format data.
//!
//! The paper evaluates on Netflix (480,189 × 17,770, 99 M ratings),
//! YahooMusic (1,000,990 × 624,961, 252.8 M) and Hugewiki (50 M × 39,780,
//! 3.1 B). Those datasets are not redistributable (Netflix was withdrawn,
//! KDD-Cup terms lapsed, Hugewiki's snapshot is unhosted), so this crate
//! *plants* rank-structured ground truth inside synthetic matrices whose
//! shape statistics — dimensions ratio, density, degree skew, rating scale,
//! noise floor — match each dataset, at a configurable scale.
//!
//! Two numbers per dataset matter downstream:
//!
//! * the **synthetic instance** (scaled) is what solvers actually factorize
//!   — convergence trajectories (epochs to reach the RMSE target) are real;
//! * the **full-scale profile** ([`profile::DatasetProfile`]) carries the
//!   paper's m, n, Nz into the simulator's cost model, so simulated
//!   per-epoch times refer to the paper-scale problem.
//!
//! See DESIGN.md §1 for why this substitution preserves the evaluation's
//! comparisons.

#![deny(missing_docs)]

pub mod generator;
pub mod loader;
pub mod profile;
pub mod requests;

pub use generator::{MfDataset, SizeClass};
pub use profile::DatasetProfile;
pub use requests::{RequestSampler, SampledRequest};
