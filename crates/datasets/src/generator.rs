//! Synthetic rating-matrix generation with planted low-rank structure.
//!
//! Each generated dataset is a scaled-down shape-replica of one Table II
//! dataset: power-law item popularity (Zipf), log-normal user activity,
//! the original's rating mean/spread, and a planted rank-`k` signal plus
//! Gaussian noise whose σ sits just below the paper's RMSE stopping
//! threshold — so "training until acceptable RMSE" is a meaningful, reachable
//! criterion exactly as in the paper's protocol.

use crate::profile::DatasetProfile;
use cumf_sparse::coo::CooMatrix;
use cumf_sparse::csr::CsrMatrix;
use cumf_sparse::split::random_split;
use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Distribution, LogNormal, Normal, Zipf};
use std::collections::HashSet;

/// How large a synthetic instance to generate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SizeClass {
    /// A few hundred rows — integration-test sized.
    Tiny,
    /// A few thousand rows — fast experiment iteration.
    Small,
    /// The default experiment scale (hundreds of thousands of ratings to a
    /// few million).
    Default,
    /// Explicit dimensions.
    Custom {
        /// Rows of the synthetic instance.
        m: usize,
        /// Columns of the synthetic instance.
        n: usize,
        /// Target non-zero count.
        nz: usize,
    },
}

/// Generation knobs beyond the profile defaults.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Rank of the planted signal.
    pub true_rank: usize,
    /// Standard deviation of the planted signal component.
    pub signal_sigma: f32,
    /// Standard deviation of the additive observation noise — the
    /// irreducible test-RMSE floor.
    pub noise_sigma: f32,
    /// Zipf exponent of item popularity (larger = more skewed).
    pub popularity_exponent: f64,
    /// σ of the log-normal user-activity multiplier.
    pub activity_sigma: f64,
    /// Fraction of observations held out for testing.
    pub test_fraction: f64,
}

impl GeneratorConfig {
    /// Per-dataset defaults: noise σ ≈ target RMSE / 1.045, signal spread
    /// matched to each dataset's rating variance.
    pub fn for_profile(profile: &DatasetProfile) -> GeneratorConfig {
        // noise σ sits ~35% below the RMSE target: at the scaled instance
        // sizes the estimation-variance inflation over the noise floor is
        // ≈1.15–1.3× (measured; see EXPERIMENTS.md "calibration"), leaving
        // the paper's targets reachable in the same ~10-epoch regime.
        let (signal_sigma, noise_sigma) = match profile.name {
            "Netflix" => (0.65, 0.74),
            "YahooMusic" => (15.0, 18.0),
            "Hugewiki" => (0.90, 0.37),
            _ => {
                let spread = (profile.value_range.1 - profile.value_range.0) / 6.0;
                (spread, profile.rmse_target as f32 / 1.35)
            }
        };
        GeneratorConfig {
            true_rank: 8,
            signal_sigma,
            noise_sigma,
            popularity_exponent: 0.8,
            activity_sigma: 0.8,
            test_fraction: 0.1,
        }
    }
}

/// A ready-to-train matrix-factorization dataset.
#[derive(Clone, Debug)]
pub struct MfDataset {
    /// The full-scale profile whose shape this instance replicates — the
    /// simulator prices epochs at *these* dimensions.
    pub profile: DatasetProfile,
    /// Training ratings, CSR by rows (update-X orientation).
    pub r: CsrMatrix,
    /// Training ratings transposed, CSR by columns of `R` (update-Θ
    /// orientation).
    pub rt: CsrMatrix,
    /// Held-out test ratings.
    pub test: CooMatrix,
    /// Training ratings as COO (the SGD baselines sample from this).
    pub train_coo: CooMatrix,
    /// The noise floor σ used at generation — no solver can beat this test
    /// RMSE, mirroring how the paper's thresholds sit near each dataset's
    /// achievable floor.
    pub noise_floor: f64,
}

impl MfDataset {
    /// Generate a scaled synthetic replica of `profile`.
    pub fn synthesize(profile: DatasetProfile, size: SizeClass, seed: u64) -> MfDataset {
        let config = GeneratorConfig::for_profile(&profile);
        Self::synthesize_with(profile, size, config, seed)
    }

    /// Generate with explicit configuration.
    pub fn synthesize_with(
        profile: DatasetProfile,
        size: SizeClass,
        config: GeneratorConfig,
        seed: u64,
    ) -> MfDataset {
        let (m, n, nz) = scaled_dims(&profile, size);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);

        // Planted factors: N(0,1) entries; the observed signal is
        // mean + (x·θ) × signal_sigma / √k + ε.
        let k = config.true_rank;
        let x_true: Vec<f32> = Normal::new(0.0f32, 1.0)
            .unwrap()
            .sample_iter(&mut rng)
            .take(m * k)
            .collect();
        let t_true: Vec<f32> = Normal::new(0.0f32, 1.0)
            .unwrap()
            .sample_iter(&mut rng)
            .take(n * k)
            .collect();
        let signal_scale = config.signal_sigma / (k as f32).sqrt();
        let noise = Normal::new(0.0f32, config.noise_sigma).unwrap();

        // User activity: log-normal multiplier around the mean degree.
        let mean_degree = (nz as f64 / m as f64).max(1.0);
        let activity = LogNormal::new(
            mean_degree.ln() - config.activity_sigma * config.activity_sigma / 2.0,
            config.activity_sigma,
        )
        .unwrap();
        // Item popularity: Zipf over n items.
        let popularity = Zipf::new(n as u64, config.popularity_exponent).unwrap();

        let mut coo = CooMatrix::new(m, n);
        coo.reserve(nz);
        let mut chosen: HashSet<u32> = HashSet::new();
        for u in 0..m {
            let degree = (activity.sample(&mut rng).round() as usize).clamp(1, n / 2);
            chosen.clear();
            let mut attempts = 0;
            while chosen.len() < degree && attempts < degree * 8 {
                attempts += 1;
                let v = popularity.sample(&mut rng) as u32 - 1; // Zipf is 1-based
                if !chosen.insert(v) {
                    continue;
                }
                let xu = &x_true[u * k..(u + 1) * k];
                let tv = &t_true[v as usize * k..(v as usize + 1) * k];
                let dot: f32 = xu.iter().zip(tv).map(|(a, b)| a * b).sum();
                let value = profile.value_mean + dot * signal_scale + noise.sample(&mut rng);
                coo.push(u as u32, v, value);
            }
        }

        let split = random_split(&coo, config.test_fraction, seed ^ 0x5EED);
        let r = CsrMatrix::from_coo(&split.train);
        let rt = r.transpose();
        MfDataset {
            profile,
            r,
            rt,
            test: split.test,
            train_coo: split.train,
            noise_floor: config.noise_sigma as f64,
        }
    }

    /// Scaled Netflix replica at the default experiment size.
    pub fn netflix(size: SizeClass, seed: u64) -> MfDataset {
        Self::synthesize(DatasetProfile::netflix(), size, seed)
    }

    /// Scaled YahooMusic replica.
    pub fn yahoo_music(size: SizeClass, seed: u64) -> MfDataset {
        Self::synthesize(DatasetProfile::yahoo_music(), size, seed)
    }

    /// Scaled Hugewiki replica.
    pub fn hugewiki(size: SizeClass, seed: u64) -> MfDataset {
        Self::synthesize(DatasetProfile::hugewiki(), size, seed)
    }

    /// MovieLens-100k replica at its *full* published scale (943 × 1,682,
    /// ~100 k ratings) — small enough that no size class is needed. Pair
    /// with [`crate::loader::write_movielens`] to produce a real
    /// MovieLens-format text file for the loader round-trip.
    pub fn movielens_100k(seed: u64) -> MfDataset {
        let profile = DatasetProfile::movielens_100k();
        let size = SizeClass::Custom {
            m: profile.m as usize,
            n: profile.n as usize,
            nz: profile.nz as usize,
        };
        Self::synthesize(profile, size, seed)
    }

    /// Build a dataset from externally loaded ratings — the bridge from
    /// [`crate::loader::load_ratings_file`] to the training/serving stack.
    /// Random-splits a `test_fraction` holdout and builds both CSR
    /// orientations. `noise_floor` is 0: real data's irreducible floor is
    /// unknown, so RMSE targets must come from the profile.
    pub fn from_ratings(
        profile: DatasetProfile,
        ratings: &CooMatrix,
        test_fraction: f64,
        seed: u64,
    ) -> MfDataset {
        let split = random_split(ratings, test_fraction, seed ^ 0x5EED);
        let r = CsrMatrix::from_coo(&split.train);
        let rt = r.transpose();
        MfDataset {
            profile,
            r,
            rt,
            test: split.test,
            train_coo: split.train,
            noise_floor: 0.0,
        }
    }

    /// Rows of the synthetic instance.
    pub fn m(&self) -> usize {
        self.r.rows()
    }

    /// Columns of the synthetic instance.
    pub fn n(&self) -> usize {
        self.r.cols()
    }

    /// Training non-zeros of the synthetic instance.
    pub fn train_nnz(&self) -> usize {
        self.r.nnz()
    }

    /// The linear factor by which simulated-time cost models must scale
    /// synthetic-instance work to full-scale work, based on Nz (the quantity
    /// both `get_hermitian` and SGD are linear in).
    pub fn nz_scale_factor(&self) -> f64 {
        self.profile.nz as f64 / self.train_nnz().max(1) as f64
    }
}

/// The synthetic dimensions for each size class, preserving each profile's
/// m:n ratio character (Netflix row-heavy, Yahoo balanced-tall, Hugewiki
/// extremely row-dominated) at tractable sizes.
fn scaled_dims(profile: &DatasetProfile, size: SizeClass) -> (usize, usize, usize) {
    match size {
        SizeClass::Custom { m, n, nz } => (m, n, nz),
        SizeClass::Tiny => match profile.name {
            "YahooMusic" => (500, 350, 20_000),
            "Hugewiki" => (800, 120, 24_000),
            _ => (600, 200, 24_000),
        },
        SizeClass::Small => match profile.name {
            "YahooMusic" => (2_000, 1_300, 220_000),
            "Hugewiki" => (3_500, 450, 240_000),
            _ => (3_000, 500, 230_000),
        },
        SizeClass::Default => match profile.name {
            "YahooMusic" => (1_500, 950, 380_000),
            "Hugewiki" => (2_800, 420, 430_000),
            _ => (2_400, 600, 450_000),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = MfDataset::netflix(SizeClass::Tiny, 7);
        let b = MfDataset::netflix(SizeClass::Tiny, 7);
        assert_eq!(a.r.nnz(), b.r.nnz());
        assert_eq!(a.r.values()[..50], b.r.values()[..50]);
        let c = MfDataset::netflix(SizeClass::Tiny, 8);
        assert_ne!(a.r.nnz(), 0);
        assert!(a.r.nnz() != c.r.nnz() || a.r.values() != c.r.values());
    }

    #[test]
    fn shape_matches_size_class() {
        let d = MfDataset::netflix(SizeClass::Tiny, 1);
        assert_eq!(d.m(), 600);
        assert_eq!(d.n(), 200);
        // nz target is approximate (log-normal degrees, dedup) but close.
        let total = d.train_nnz() + d.test.nnz();
        assert!(total > 14_000 && total < 30_000, "nz {total}");
    }

    #[test]
    fn transpose_is_consistent() {
        let d = MfDataset::netflix(SizeClass::Tiny, 2);
        assert_eq!(d.rt.rows(), d.n());
        assert_eq!(d.rt.nnz(), d.r.nnz());
        // Spot-check a few entries.
        for r in (0..d.m()).step_by(97) {
            for (c, v) in d.r.row_iter(r) {
                assert_eq!(d.rt.get(c as usize, r as u32), Some(v));
            }
        }
    }

    #[test]
    fn values_center_near_profile_mean() {
        let d = MfDataset::netflix(SizeClass::Small, 3);
        let mean = d.train_coo.mean_value();
        assert!((mean - 3.6).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn item_popularity_is_skewed() {
        let d = MfDataset::netflix(SizeClass::Small, 4);
        let mut counts = d.train_coo.col_counts();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        let top10: u64 = counts[..counts.len() / 10].iter().map(|&c| c as u64).sum();
        // Zipf 0.8: top-10% of items should hold well over 25% of ratings.
        assert!(
            top10 as f64 / total as f64 > 0.25,
            "top-10% share {}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn every_user_has_training_signal() {
        let d = MfDataset::netflix(SizeClass::Tiny, 5);
        let zero_rows = (0..d.m()).filter(|&r| d.r.row_nnz(r) == 0).count();
        // Random 10% holdout can empty a 1-rating user, but only rarely.
        assert!(zero_rows < d.m() / 10, "{zero_rows} empty rows");
    }

    #[test]
    fn test_split_fraction_close_to_config() {
        let d = MfDataset::yahoo_music(SizeClass::Small, 6);
        let frac = d.test.nnz() as f64 / (d.test.nnz() + d.train_nnz()) as f64;
        assert!((frac - 0.1).abs() < 0.02, "test fraction {frac}");
    }

    #[test]
    fn nz_scale_factor_reflects_profile() {
        let d = MfDataset::netflix(SizeClass::Tiny, 9);
        let s = d.nz_scale_factor();
        assert!(s > 3000.0, "Netflix at tiny scale is >3000× smaller: {s}");
    }

    #[test]
    fn hugewiki_keeps_row_dominance() {
        let d = MfDataset::hugewiki(SizeClass::Tiny, 10);
        assert!(d.m() > 5 * d.n());
    }

    #[test]
    fn noise_floor_below_target() {
        for p in DatasetProfile::table2() {
            let cfg = GeneratorConfig::for_profile(&p);
            assert!(
                (cfg.noise_sigma as f64) < p.rmse_target,
                "{}: floor {} vs target {}",
                p.name,
                cfg.noise_sigma,
                p.rmse_target
            );
        }
    }
}
