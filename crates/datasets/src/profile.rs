//! Full-scale dataset profiles — the rows of the paper's Table II.

/// The paper-scale description of a benchmark dataset, used by the
//  simulator's cost models so that reported times refer to the full-size
/// problem the paper ran.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetProfile {
    /// Dataset name as Table II labels it.
    pub name: &'static str,
    /// Rows of `R` (users / documents).
    pub m: u64,
    /// Columns of `R` (items / terms).
    pub n: u64,
    /// Non-zero observations.
    pub nz: u64,
    /// Latent feature dimension the paper trains with.
    pub f: u32,
    /// Regularization λ the paper uses.
    pub lambda: f32,
    /// The "acceptable RMSE" stopping threshold (Table II's RSME column).
    pub rmse_target: f64,
    /// Rating value range (for reporting; generation uses mean/spread).
    pub value_range: (f32, f32),
    /// Mean observed value (Netflix ≈ 3.6 stars, etc.).
    pub value_mean: f32,
}

impl DatasetProfile {
    /// Netflix Prize: 480,189 users × 17,770 movies, 99 M ratings in 1–5.
    pub fn netflix() -> Self {
        DatasetProfile {
            name: "Netflix",
            m: 480_189,
            n: 17_770,
            nz: 99_072_112,
            f: 100,
            lambda: 0.05,
            rmse_target: 0.92,
            value_range: (1.0, 5.0),
            value_mean: 3.6,
        }
    }

    /// YahooMusic (KDD-Cup '11): 1,000,990 × 624,961, 252.8 M ratings 1–100.
    pub fn yahoo_music() -> Self {
        DatasetProfile {
            name: "YahooMusic",
            m: 1_000_990,
            n: 624_961,
            nz: 252_800_000,
            f: 100,
            lambda: 1.4,
            rmse_target: 22.0,
            value_range: (1.0, 100.0),
            value_mean: 49.0,
        }
    }

    /// Hugewiki: 50,082,603 documents × 39,780 terms, 3.1 B counts.
    pub fn hugewiki() -> Self {
        DatasetProfile {
            name: "Hugewiki",
            m: 50_082_603,
            n: 39_780,
            nz: 3_100_000_000,
            f: 100,
            lambda: 0.05,
            rmse_target: 0.52,
            value_range: (0.0, 10.0),
            value_mean: 1.8,
        }
    }

    /// All three Table II rows, in the paper's order.
    pub fn table2() -> Vec<DatasetProfile> {
        vec![Self::netflix(), Self::yahoo_music(), Self::hugewiki()]
    }

    /// MovieLens-100k: 943 users × 1,682 movies, 100,000 ratings in 1–5.
    /// Not a Table II row — the classic public benchmark in the text
    /// format [`crate::loader`] parses, and small enough to train at its
    /// *full* scale (no size-class downscaling needed).
    pub fn movielens_100k() -> Self {
        DatasetProfile {
            name: "MovieLens-100k",
            m: 943,
            n: 1_682,
            nz: 100_000,
            f: 100,
            lambda: 0.05,
            rmse_target: 0.95,
            value_range: (1.0, 5.0),
            value_mean: 3.53,
        }
    }

    /// Density `Nz / (m·n)`.
    pub fn density(&self) -> f64 {
        self.nz as f64 / (self.m as f64 * self.n as f64)
    }

    /// Mean number of ratings per row (`Nz/m` — the paper's average
    /// `n_{x_u}`, which drives `A_u` reuse in `get_hermitian`).
    pub fn mean_row_degree(&self) -> f64 {
        self.nz as f64 / self.m as f64
    }

    /// Mean number of ratings per column (`Nz/n`).
    pub fn mean_col_degree(&self) -> f64 {
        self.nz as f64 / self.n as f64
    }

    /// Bytes of one factor matrix at this profile's `f` in FP32
    /// (`rows × f × 4`) — what multi-GPU all-gathers move.
    pub fn factor_bytes(&self, rows: u64) -> u64 {
        rows * self.f as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_numbers_match_paper() {
        let n = DatasetProfile::netflix();
        assert_eq!((n.m, n.n), (480_189, 17_770));
        assert_eq!(n.f, 100);
        assert_eq!(n.lambda, 0.05);
        assert_eq!(n.rmse_target, 0.92);
        let y = DatasetProfile::yahoo_music();
        assert_eq!(y.lambda, 1.4);
        assert_eq!(y.rmse_target, 22.0);
        let h = DatasetProfile::hugewiki();
        assert_eq!(h.m, 50_082_603);
        assert_eq!(h.rmse_target, 0.52);
        assert_eq!(DatasetProfile::table2().len(), 3);
    }

    #[test]
    fn degree_statistics() {
        let n = DatasetProfile::netflix();
        // Netflix: ~206 ratings per user, ~5576 per movie.
        assert!((n.mean_row_degree() - 206.3).abs() < 1.0);
        assert!((n.mean_col_degree() - 5575.0).abs() < 5.0);
        assert!(n.density() < 0.012 && n.density() > 0.011);
    }

    #[test]
    fn hugewiki_is_row_dominated() {
        // m ≫ n: the regime where solve time (m × f³) dominates — the
        // motivation for the approximate solver.
        let h = DatasetProfile::hugewiki();
        assert!(h.m > 1000 * h.n);
    }

    #[test]
    fn factor_bytes_for_allgather() {
        let n = DatasetProfile::netflix();
        assert_eq!(n.factor_bytes(n.m), 480_189 * 400);
    }
}
