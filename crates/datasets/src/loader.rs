//! Text loader for real rating data in the common `user item rating`
//! line format (MovieLens `::`/tab/space-separated, Netflix probe exports,
//! LIBMF input files).

use cumf_sparse::coo::CooMatrix;
use std::io::BufRead;
use std::path::Path;

/// Errors from parsing a ratings file.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that could not be parsed, with its 1-based number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
}

impl core::fmt::Display for LoadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "I/O error: {e}"),
            LoadError::Parse { line, text } => write!(f, "parse error at line {line}: {text:?}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parse `user item rating` triplets from a reader. Separators may be
/// whitespace or `::`; lines starting with `#` or `%` are comments. User
/// and item ids may be arbitrary (possibly sparse) non-negative integers;
/// they are densified to `0..m`, `0..n` in first-seen order.
pub fn parse_ratings<R: BufRead>(reader: R) -> Result<CooMatrix, LoadError> {
    let mut triplets: Vec<(u64, u64, f32)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let cleaned = trimmed.replace("::", " ");
        let mut parts = cleaned.split_whitespace();
        let parsed = (|| {
            let u: u64 = parts.next()?.parse().ok()?;
            let v: u64 = parts.next()?.parse().ok()?;
            let r: f32 = parts.next()?.parse().ok()?;
            Some((u, v, r))
        })();
        match parsed {
            Some(t) => triplets.push(t),
            None => {
                return Err(LoadError::Parse {
                    line: idx + 1,
                    text: trimmed.to_string(),
                })
            }
        }
    }

    // Densify ids in first-seen order.
    let mut user_map = std::collections::HashMap::new();
    let mut item_map = std::collections::HashMap::new();
    let mut coo_entries = Vec::with_capacity(triplets.len());
    for (u, v, r) in triplets {
        let next_u = user_map.len() as u32;
        let uu = *user_map.entry(u).or_insert(next_u);
        let next_v = item_map.len() as u32;
        let vv = *item_map.entry(v).or_insert(next_v);
        coo_entries.push(cumf_sparse::coo::Entry {
            row: uu,
            col: vv,
            value: r,
        });
    }
    Ok(CooMatrix::from_entries(
        user_map.len().max(1),
        item_map.len().max(1),
        coo_entries,
    ))
}

/// Load a ratings file from disk.
pub fn load_ratings_file(path: impl AsRef<Path>) -> Result<CooMatrix, LoadError> {
    let file = std::fs::File::open(path)?;
    parse_ratings(std::io::BufReader::new(file))
}

/// Write ratings in the MovieLens `user::item::rating` text format — the
/// round-trip partner of [`parse_ratings`]. Entries are written in stored
/// order with their raw (dense, 0-based) ids. Values round-trip exactly
/// (Rust's float `Display` is shortest-round-trip); ids round-trip up to
/// the parser's first-seen densification — identity when entries appear
/// in id order, a consistent relabeling otherwise.
pub fn write_movielens<W: std::io::Write>(ratings: &CooMatrix, mut w: W) -> std::io::Result<()> {
    for e in ratings.entries() {
        writeln!(w, "{}::{}::{}", e.row, e.col, e.value)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_whitespace_format() {
        let input = "1 10 4.5\n2 10 3.0\n1 20 5\n";
        let m = parse_ratings(Cursor::new(input)).unwrap();
        assert_eq!((m.rows(), m.cols(), m.nnz()), (2, 2, 3));
        assert_eq!(m.entries()[0].value, 4.5);
    }

    #[test]
    fn parses_movielens_double_colon() {
        let input = "1::1193::5\n1::661::3\n2::1193::4\n";
        let m = parse_ratings(Cursor::new(input)).unwrap();
        assert_eq!((m.rows(), m.cols(), m.nnz()), (2, 2, 3));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let input = "# header\n\n% matrix-market style\n5 7 1.0\n";
        let m = parse_ratings(Cursor::new(input)).unwrap();
        assert_eq!(m.nnz(), 1);
        // Sparse ids densified to 0.
        assert_eq!(m.entries()[0].row, 0);
        assert_eq!(m.entries()[0].col, 0);
    }

    #[test]
    fn densifies_in_first_seen_order() {
        let input = "100 7 1\n3 7 2\n100 9 3\n";
        let m = parse_ratings(Cursor::new(input)).unwrap();
        assert_eq!(m.entries()[0].row, 0); // user 100 → 0
        assert_eq!(m.entries()[1].row, 1); // user 3 → 1
        assert_eq!(m.entries()[2].col, 1); // item 9 → 1
    }

    #[test]
    fn reports_parse_error_with_line_number() {
        let input = "1 2 3\nnot a rating\n";
        match parse_ratings(Cursor::new(input)) {
            Err(LoadError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_fields_are_errors() {
        assert!(parse_ratings(Cursor::new("1 2\n")).is_err());
    }

    #[test]
    fn empty_input_yields_empty_matrix() {
        let m = parse_ratings(Cursor::new("")).unwrap();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn write_then_parse_round_trips_dense_ratings() {
        let mut coo = CooMatrix::new(3, 2);
        coo.push(0, 0, 4.5);
        coo.push(0, 1, 3.0);
        coo.push(1, 0, 5.0);
        coo.push(2, 1, 1.25);
        let mut text = Vec::new();
        write_movielens(&coo, &mut text).unwrap();
        assert_eq!(
            String::from_utf8(text.clone()).unwrap(),
            "0::0::4.5\n0::1::3\n1::0::5\n2::1::1.25\n"
        );
        let back = parse_ratings(Cursor::new(text)).unwrap();
        assert_eq!((back.rows(), back.cols(), back.nnz()), (3, 2, 4));
        for (a, b) in coo.entries().iter().zip(back.entries()) {
            assert_eq!((a.row, a.col, a.value), (b.row, b.col, b.value));
        }
    }
}
