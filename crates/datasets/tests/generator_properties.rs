//! Property-based tests on the synthetic dataset generators.

use cumf_datasets::generator::GeneratorConfig;
use cumf_datasets::{DatasetProfile, MfDataset, SizeClass};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generation is a pure function of (profile, size, seed).
    #[test]
    fn deterministic(seed in 0u64..10_000) {
        let a = MfDataset::netflix(SizeClass::Tiny, seed);
        let b = MfDataset::netflix(SizeClass::Tiny, seed);
        prop_assert_eq!(a.r.nnz(), b.r.nnz());
        prop_assert_eq!(a.r.values(), b.r.values());
        prop_assert_eq!(a.test.nnz(), b.test.nnz());
    }

    /// No (row, col) appears in both train and test, and none repeats
    /// within train (the generator dedups per user).
    #[test]
    fn train_test_disjoint(seed in 0u64..10_000) {
        let d = MfDataset::netflix(SizeClass::Tiny, seed);
        use std::collections::HashSet;
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        for u in 0..d.m() {
            for (v, _) in d.r.row_iter(u) {
                prop_assert!(seen.insert((u as u32, v)), "duplicate train entry ({u},{v})");
            }
        }
        for e in d.test.entries() {
            prop_assert!(!seen.contains(&(e.row, e.col)), "test entry ({}, {}) also in train", e.row, e.col);
        }
    }

    /// The transpose really is the transpose (full content check).
    #[test]
    fn rt_is_transpose(seed in 0u64..10_000) {
        let d = MfDataset::yahoo_music(SizeClass::Tiny, seed);
        prop_assert_eq!(d.rt.nnz(), d.r.nnz());
        for v in 0..d.n() {
            for (u, val) in d.rt.row_iter(v) {
                prop_assert_eq!(d.r.get(u as usize, v as u32), Some(val));
            }
        }
    }

    /// Values center near the profile mean with spread bounded by
    /// signal + noise.
    #[test]
    fn value_distribution_sane(seed in 0u64..10_000) {
        let profile = DatasetProfile::netflix();
        let cfg = GeneratorConfig::for_profile(&profile);
        let d = MfDataset::synthesize_with(profile.clone(), SizeClass::Tiny, cfg.clone(), seed);
        let mean = d.train_coo.mean_value();
        prop_assert!((mean - profile.value_mean as f64).abs() < 0.3, "mean {mean}");
        let expected_std = ((cfg.signal_sigma.powi(2) + cfg.noise_sigma.powi(2)) as f64).sqrt();
        let mut w = cumf_numeric::stats::Welford::new();
        for e in d.train_coo.entries() {
            w.push(e.value as f64);
        }
        let std = w.variance().sqrt();
        prop_assert!((std - expected_std).abs() < 0.35 * expected_std, "std {std} vs {expected_std}");
    }

    /// Custom sizes are honored exactly in dimensions and approximately in
    /// non-zero count.
    #[test]
    fn custom_dims(m in 50usize..300, n in 50usize..200) {
        let nz = m * 20;
        let d = MfDataset::synthesize(
            DatasetProfile::netflix(),
            SizeClass::Custom { m, n, nz },
            9,
        );
        prop_assert_eq!(d.m(), m);
        prop_assert_eq!(d.n(), n);
        let total = d.train_nnz() + d.test.nnz();
        prop_assert!(total > nz / 2 && total < nz * 2, "nz {total} target {nz}");
    }

    /// All column indices are in range for every dataset shape.
    #[test]
    fn indices_in_range(seed in 0u64..10_000) {
        for d in [
            MfDataset::netflix(SizeClass::Tiny, seed),
            MfDataset::hugewiki(SizeClass::Tiny, seed),
        ] {
            for u in 0..d.m() {
                for &c in d.r.row_cols(u) {
                    prop_assert!((c as usize) < d.n());
                }
            }
            for e in d.test.entries() {
                prop_assert!((e.row as usize) < d.m() && (e.col as usize) < d.n());
            }
        }
    }
}
