//! The self-describing JSON value model: construction, strict rendering,
//! and a strict recursive-descent parser (used by tests to validate traces
//! the telemetry exporters emit).

/// A JSON value. Objects preserve insertion order (field order matters for
/// readable traces).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (rendered as an integer when exactly integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse strict JSON text.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not combined — traces never emit them.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("get_hermitian".into())),
            ("ts".into(), Value::Num(1234.5)),
            ("calls".into(), Value::Num(7.0)),
            (
                "tags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = v.to_json();
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Num(5.0).to_json(), "5");
        assert_eq!(Value::Num(-0.25).to_json(), "-0.25");
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te".into());
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Value::parse("{} x").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\":}").is_err());
    }
}
