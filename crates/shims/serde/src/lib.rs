//! Vendored work-alike shim for the slice of `serde` this workspace uses:
//! a [`Serialize`] trait rendered through a self-describing JSON [`Value`]
//! model, plus a strict JSON parser (used by tests to validate emitted
//! traces). `#[derive(Serialize)]` comes from the sibling `serde_derive`
//! shim (enabled by the `derive` feature, as upstream).
//!
//! The build environment has no registry access; the workspace points
//! `serde` at this path crate (see the root `Cargo.toml`). The surface is
//! deliberately small — callers only need "make my struct a JSON value".

#![deny(missing_docs)]

mod json;

pub use json::{ParseError, Value};

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A type renderable as a JSON [`Value`].
pub trait Serialize {
    /// Convert to the self-describing value model.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
    )*};
}

impl_serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for std::borrow::Cow<'_, str> {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<std::borrow::Cow<'static, str>, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_value() {
        assert_eq!(42u32.to_value().to_json(), "42");
        assert_eq!(1.5f64.to_value().to_json(), "1.5");
        assert_eq!(true.to_value().to_json(), "true");
        assert_eq!("hi".to_value().to_json(), "\"hi\"");
        assert_eq!(Option::<u32>::None.to_value().to_json(), "null");
        assert_eq!(vec![1u8, 2].to_value().to_json(), "[1,2]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_value().to_json(), "null");
        assert_eq!(f64::INFINITY.to_value().to_json(), "null");
    }
}
