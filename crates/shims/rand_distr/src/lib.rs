//! Vendored work-alike shim for the slice of `rand_distr` this workspace
//! uses: `Normal` (f32/f64, Box–Muller), `LogNormal` (f64), and `Zipf`
//! (exact inverse-CDF table). See `crates/shims/rand/src/lib.rs` for why
//! these shims exist.

#![deny(missing_docs)]

use rand::{Rng, RngCore};

/// A distribution that can be sampled with any [`RngCore`].
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;

    /// An iterator of samples driven by `rng` (which may be `&mut R`).
    fn sample_iter<R: RngCore>(self, rng: R) -> SampleIter<Self, R, T>
    where
        Self: Sized,
    {
        SampleIter {
            dist: self,
            rng,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Iterator returned by [`Distribution::sample_iter`].
pub struct SampleIter<D, R, T> {
    dist: D,
    rng: R,
    _marker: std::marker::PhantomData<T>,
}

impl<D: Distribution<T>, R: RngCore, T> Iterator for SampleIter<D, R, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        Some(self.dist.sample(&mut self.rng))
    }
}

/// Error from constructing a distribution with invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamError;

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for ParamError {}

fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller: two uniforms → one standard normal (the second is
    // discarded — simplicity over throughput; callers are test-sized).
    let mut u1 = rng.gen_f64();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.gen_f64();
    }
    let u2 = rng.gen_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Float types [`Normal`] and [`LogNormal`] are generic over.
pub trait NormalFloat: Copy {
    /// Widen to `f64`.
    fn to_f64(self) -> f64;
    /// Narrow from `f64`.
    fn from_f64(x: f64) -> Self;
}

impl NormalFloat for f32 {
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(x: f64) -> Self {
        x as f32
    }
}

impl NormalFloat for f64 {
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(x: f64) -> Self {
        x
    }
}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Clone, Copy, Debug)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl<F: NormalFloat> Normal<F> {
    /// `N(mean, std_dev²)`; `std_dev` must be finite and ≥ 0.
    pub fn new(mean: F, std_dev: F) -> Result<Self, ParamError> {
        if std_dev.to_f64().is_finite() && std_dev.to_f64() >= 0.0 && mean.to_f64().is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(ParamError)
        }
    }
}

impl<F: NormalFloat> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * standard_normal(rng))
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal<F> {
    norm: Normal<F>,
}

impl LogNormal<f64> {
    /// Log-normal with underlying normal `N(mu, sigma²)`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// The Zipf distribution over `{1, …, n}` with exponent `s`:
/// `P(k) ∝ k^{-s}`. Sampled exactly by inverse CDF over a precomputed
/// normalized table (`O(n)` memory, `O(log n)` per sample — fine at the
/// scaled dataset sizes this workspace generates).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Zipf over `n ≥ 1` items with exponent `s > 0`.
    pub fn new(n: u64, s: f64) -> Result<Self, ParamError> {
        if n == 0 || !s.is_finite() || s <= 0.0 {
            return Err(ParamError);
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = rng.gen_f64();
        // First index whose CDF value exceeds u → 1-based rank.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn normal_mean_and_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Normal::new(5.0f64, 2.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = d.sample_iter(&mut rng).take(n).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_is_positive_with_right_median() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = LogNormal::new(2.0, 0.5).unwrap();
        let mut samples: Vec<f64> = (0..10_001).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[5000];
        assert!((median - 2.0f64.exp()).abs() < 0.5, "median {median}");
    }

    #[test]
    fn zipf_is_one_based_and_head_heavy() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Zipf::new(1000, 1.0).unwrap();
        let mut head = 0usize;
        let n = 10_000;
        for _ in 0..n {
            let k = d.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&k));
            if k <= 100.0 {
                head += 1;
            }
        }
        // Top 10% of ranks carry well over half the mass at s = 1.
        assert!(head as f64 > 0.55 * n as f64, "head mass {head}/{n}");
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
    }
}
