//! Vendored work-alike shim for the tiny slice of the `rand` crate API this
//! workspace uses. The build environment has no registry access, so the
//! workspace points `rand` at this path crate (see the root `Cargo.toml`).
//!
//! Only determinism and reasonable statistical quality are required by the
//! callers (synthetic dataset generation and property tests) — the stream is
//! **not** identical to upstream `rand`'s `StdRng`. `StdRng` here is
//! splitmix64, which passes the callers' statistical-shape assertions.

#![deny(missing_docs)]

/// The core random-number-generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience extension trait over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 mantissa bits of the next u64.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
    /// A uniform `f32` in `[0, 1)`.
    fn gen_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014) — full-period, passes
            // BigCrush; more than adequate for synthetic data generation.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.gen_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }
}
