//! Vendored minimal work-alike shim for the slice of `criterion` this
//! workspace's benches use: `Criterion`, benchmark groups, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple — median of a fixed number of timed
//! batches, printed as one line per benchmark (with throughput when set).
//! No statistics, plots, or baselines; the benches exist to be runnable and
//! to give a usable order-of-magnitude number offline.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (upstream re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (used inside a named group).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Throughput annotation for a group: rates are printed alongside times.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Times closures; handed to benchmark functions.
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call.
    last: Duration,
}

impl Bencher {
    /// Measure `routine`, storing the median per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        // Pick a batch size targeting ≥ ~1 ms per batch.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(50));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        let mut samples: Vec<Duration> = Vec::with_capacity(9);
        for _ in 0..9 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed() / batch);
        }
        samples.sort();
        self.last = samples[samples.len() / 2];
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// No-op (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// No-op (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            last: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.name, b.last);
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            last: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.name, b.last);
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}

    fn report(&self, bench: &str, time: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if time > Duration::ZERO => {
                format!(
                    "  {:>10.1} MiB/s",
                    n as f64 / time.as_secs_f64() / (1 << 20) as f64
                )
            }
            Some(Throughput::Elements(n)) if time > Duration::ZERO => {
                format!("  {:>10.1} Kelem/s", n as f64 / time.as_secs_f64() / 1e3)
            }
            _ => String::new(),
        };
        println!("{}/{}: {:>12?}{rate}", self.name, bench, time);
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("bench", f);
        group.finish();
        self
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(32), &32u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }
}
