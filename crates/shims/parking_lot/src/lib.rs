//! Vendored work-alike shim for the slice of `parking_lot` this workspace
//! uses: `Mutex` and `RwLock` with panic-free (non-`Result`) lock methods.
//! Backed by `std::sync`; poisoning is ignored (parking_lot semantics).

#![deny(missing_docs)]

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
