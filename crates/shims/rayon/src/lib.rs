//! Vendored **sequential** work-alike shim for the slice of `rayon` this
//! workspace uses. The build environment has no registry access, so the
//! workspace points `rayon` at this path crate (see the root `Cargo.toml`).
//!
//! Semantics: every "parallel" iterator here runs sequentially on the
//! calling thread, in order. That is a legal rayon schedule (rayon makes no
//! ordering or thread-count promises to `for_each`/`reduce` callers), so
//! code written against real rayon behaves identically — deterministically
//! so, which the simulator tests actually prefer. Swapping real rayon back
//! in is a one-line change in the workspace manifest.

#![deny(missing_docs)]

use std::marker::PhantomData;

/// A "parallel" iterator — a thin newtype over a sequential [`Iterator`].
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Map each item.
    pub fn map<F, R>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParIter(self.0.map(f))
    }

    /// Pair items with their index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Zip with another parallel iterator.
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter(self.0.zip(other.0))
    }

    /// Keep items satisfying `pred`.
    pub fn filter<P>(self, pred: P) -> ParIter<std::iter::Filter<I, P>>
    where
        P: FnMut(&I::Item) -> bool,
    {
        ParIter(self.0.filter(pred))
    }

    /// Consume every item.
    pub fn for_each<F: FnMut(I::Item)>(self, mut f: F) {
        for item in self.0 {
            f(item);
        }
    }

    /// Consume every item with per-"thread" scratch state (allocated once
    /// here — the sequential schedule is a single rayon job).
    pub fn for_each_init<INIT, T, F>(self, mut init: INIT, mut f: F)
    where
        INIT: FnMut() -> T,
        F: FnMut(&mut T, I::Item),
    {
        let mut scratch = init();
        for item in self.0 {
            f(&mut scratch, item);
        }
    }

    /// Fold items into per-job accumulators (a single one, sequentially).
    pub fn fold<T, ID, F>(self, mut identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: FnMut() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    /// Reduce all items with `op`, seeding with `identity()`.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: FnOnce() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Sum all items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Collect into any [`FromIterator`] container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
}

/// Conversion into a [`ParIter`]; implemented for everything iterable.
pub trait IntoParallelIterator {
    /// The underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Iter = C::IntoIter;
    type Item = C::Item;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// Shared-slice parallel views.
pub trait ParallelSlice<T> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// Parallel iterator over non-overlapping chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
}

/// Mutable-slice parallel views.
pub trait ParallelSliceMut<T> {
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }
}

/// A fork-join scope; spawned tasks run immediately on the calling thread.
pub struct Scope<'scope>(PhantomData<&'scope ()>);

impl<'scope> Scope<'scope> {
    /// Run `body` (immediately — the sequential schedule).
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + 'scope,
    {
        body(self);
    }
}

/// Create a fork-join scope and run `op` in it.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    op(&Scope(PhantomData))
}

/// The usual glob-import surface.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_sum() {
        let s: u64 = (0u64..100).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 9900);
    }

    #[test]
    fn fold_reduce_matches_sequential() {
        let total = (1u64..=10)
            .into_par_iter()
            .fold(|| 0u64, |acc, x| acc + x)
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(total, 55);
    }

    #[test]
    fn chunks_mut_with_zip_and_enumerate() {
        let mut buf = vec![0i32; 6];
        let adds = [10, 20, 30];
        buf.as_mut_slice()
            .par_chunks_mut(2)
            .zip(adds.par_iter())
            .enumerate()
            .for_each(|(i, (chunk, &a))| {
                for c in chunk.iter_mut() {
                    *c = a + i as i32;
                }
            });
        assert_eq!(buf, vec![10, 10, 21, 21, 32, 32]);
    }

    #[test]
    fn for_each_init_reuses_scratch() {
        let mut hits = 0usize;
        (0..5usize).into_par_iter().for_each_init(
            || {
                hits += 1;
                Vec::<usize>::new()
            },
            |scratch, x| scratch.push(x),
        );
        assert_eq!(hits, 1, "sequential schedule allocates scratch once");
    }

    #[test]
    fn scope_spawn_runs_everything() {
        let mut parts: Vec<i32> = vec![0; 3];
        {
            let mut iter = parts.iter_mut();
            let (a, b, c) = (
                iter.next().unwrap(),
                iter.next().unwrap(),
                iter.next().unwrap(),
            );
            super::scope(|s| {
                s.spawn(move |_| *a = 1);
                s.spawn(move |_| *b = 2);
                s.spawn(move |_| *c = 3);
            });
        }
        assert_eq!(parts, vec![1, 2, 3]);
    }
}
