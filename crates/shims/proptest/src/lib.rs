//! Vendored work-alike shim for the slice of `proptest` this workspace
//! uses: the `proptest!` macro, `Strategy` with `prop_map` /
//! `prop_filter` / `prop_flat_map`, range and tuple strategies,
//! `prop::collection::vec`, `prop::sample::select`, `prop::num::f32::NORMAL`,
//! `any::<T>()`, and the `prop_assert*` macros.
//!
//! Each test runs `ProptestConfig::cases` deterministic cases (seeded from
//! the test's module path), with filter rejections retried. There is no
//! shrinking: a failing case reports its assertion message and the case
//! index, which together with determinism is enough to reproduce.

#![deny(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategy constructors, namespaced as upstream (`prop::collection::vec`…).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }
    /// Sampling strategies.
    pub mod sample {
        pub use crate::strategy::{select, Select};
    }
    /// Numeric bit-pattern strategies.
    pub mod num {
        /// `f32` strategies.
        pub mod f32 {
            pub use crate::strategy::NORMAL;
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut case: u32 = 0;
            let mut attempts: u32 = 0;
            while case < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(200).max(10_000),
                    "proptest {}: too many strategy rejections",
                    stringify!($name)
                );
                let ($($arg,)+) =
                    match $crate::strategy::Strategy::generate(&strategy, &mut rng) {
                        Some(v) => v,
                        None => continue, // filter rejection — resample
                    };
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}: {}",
                        stringify!($name),
                        case,
                        e
                    );
                }
                case += 1;
            }
        }
    )*};
}

/// Assert inside a `proptest!` body, failing the case (not the process
/// outright) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in -4i32..=4, z in 0.5f32..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.5..2.0).contains(&z));
        }

        #[test]
        fn map_filter_flat_map_compose(
            v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0u32..100, n)),
            odd in (0u32..1000).prop_map(|x| x * 2 + 1).prop_filter("odd", |x| x % 2 == 1),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(odd % 2 == 1, "odd was {}", odd);
        }

        #[test]
        fn select_and_any(t in prop::sample::select(vec![32u32, 64, 128]), bits in any::<u16>()) {
            prop_assert!(t == 32 || t == 64 || t == 128);
            let _ = bits;
        }

        #[test]
        fn normal_floats_are_normal(x in prop::num::f32::NORMAL) {
            prop_assert!(x.is_normal());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("fixed");
        let mut b = crate::test_runner::TestRng::from_name("fixed");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
