//! The [`Strategy`] trait and the concrete strategies this workspace uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test values. `generate` returns `None` when a value was
/// rejected (by `prop_filter`); the runner resamples.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value (or `None` on filter rejection).
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform generated values.
    fn prop_map<R, F>(self, f: F) -> Map<Self, F, R>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        Map {
            source: self,
            f,
            _marker: PhantomData,
        }
    }

    /// Reject values failing `pred` (the reason is for diagnostics only).
    fn prop_filter<F>(self, _reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, pred }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F, S2>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap {
            source: self,
            f,
            _marker: PhantomData,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F, R> {
    source: S,
    f: F,
    _marker: PhantomData<fn() -> R>,
}

impl<S: Strategy, F: Fn(S::Value) -> R, R> Strategy for Map<S, F, R> {
    type Value = R;
    fn generate(&self, rng: &mut TestRng) -> Option<R> {
        self.source.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.source.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F, S2> {
    source: S,
    f: F,
    _marker: PhantomData<fn() -> S2>,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F, S2> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let inner = (self.f)(self.source.generate(rng)?);
        inner.generate(rng)
    }
}

/// A constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                Some((self.start as i128 + v as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                Some((*self.start() as i128 + v as i128) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                Some(if v >= self.end { self.start } else { v })
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($S:ident : $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategies! {
    (S0: 0)
    (S0: 0, S1: 1)
    (S0: 0, S1: 1, S2: 2)
    (S0: 0, S1: 1, S2: 2, S3: 3)
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4)
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5)
}

/// A length specification for [`vec`]: an exact length or a half-open /
/// inclusive range of lengths.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max_exclusive: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }
}

/// A `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`select`].
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        Some(self.options[i].clone())
    }
}

/// Uniformly select one of `options` (must be non-empty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// Strategy type of [`NORMAL`].
#[derive(Clone, Copy, Debug)]
pub struct NormalF32;

/// All *normal* `f32` values (finite, non-zero, non-subnormal), both signs.
pub const NORMAL: NormalF32 = NormalF32;

impl Strategy for NormalF32 {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> Option<f32> {
        // Normal floats are ~99.2% of bit patterns; rejection terminates fast.
        for _ in 0..64 {
            let x = f32::from_bits(rng.next_u32());
            if x.is_normal() {
                return Some(x);
            }
        }
        Some(1.0)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy type of [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// Any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
