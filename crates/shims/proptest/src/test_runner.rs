//! Test-runner support types: the deterministic RNG, per-test
//! configuration, and the case-failure error the `prop_assert*` macros
//! return.

/// Per-`proptest!` configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (returned by `prop_assert*`, reported by the
/// runner with the case index).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator driving strategies (splitmix64 seeded from
/// the test's fully qualified name — stable across runs and machines).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
