//! `#[derive(Serialize)]` for the vendored serde shim: a small hand-rolled
//! proc-macro (no `syn`/`quote` — the build has no registry access) that
//! handles the shapes this workspace derives on:
//!
//! - structs with named fields → a JSON object in declaration order;
//! - enums whose variants are unit or named-field → a JSON string for unit
//!   variants, or an object with a `"type"` tag for named-field variants.
//!
//! Generics are not supported; derive targets here are plain data records.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the shim's `to_value` form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Find the `struct` / `enum` keyword, skipping attributes and visibility.
    let mut i = 0;
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break "struct",
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break "enum",
            Some(_) => i += 1,
            None => panic!("derive(Serialize): expected a struct or enum"),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("derive(Serialize): expected a type name"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive(Serialize) shim does not support generic types");
        }
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(_) => i += 1,
            None => panic!("derive(Serialize): expected a braced body on `{name}`"),
        }
    };

    let code = match kind {
        "struct" => derive_struct(&name, body.stream()),
        _ => derive_enum(&name, body.stream()),
    };
    code.parse()
        .expect("derive(Serialize): generated code failed to parse")
}

/// Names of the named fields in a struct/variant body, in order.
fn field_names(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes (`#[...]`, including doc comments).
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2; // '#' + bracket group
        }
        // Skip visibility: `pub` optionally followed by `(crate)` etc.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("derive(Serialize): expected a field name, found `{other}`"),
        }
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!(
                "derive(Serialize): expected ':', found `{other}` (tuple structs unsupported)"
            ),
        }
        // Skip the type: tokens until a ',' at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn derive_struct(name: &str, body: TokenStream) -> String {
    let fields = field_names(body);
    let members: String = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         ::serde::Value::Object(vec![{members}])\n\
         }}\n}}"
    )
}

fn derive_enum(name: &str, body: TokenStream) -> String {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut arms = String::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        let variant = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive(Serialize): expected a variant name, found `{other}`"),
        };
        i += 1;
        match tokens.get(i) {
            // Named-field variant: tag with "type", then the fields.
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = field_names(g.stream());
                let bindings = fields.join(", ");
                let members: String =
                    std::iter::once(format!(
                        "(\"type\".to_string(), ::serde::Value::Str(\"{variant}\".to_string())),"
                    ))
                    .chain(fields.iter().map(|f| {
                        format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),")
                    }))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{variant} {{ {bindings} }} => ::serde::Value::Object(vec![{members}]),\n"
                ));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "derive(Serialize) shim does not support tuple variants ({name}::{variant})"
                );
            }
            // Unit variant: its name as a string.
            _ => {
                arms.push_str(&format!(
                    "{name}::{variant} => ::serde::Value::Str(\"{variant}\".to_string()),\n"
                ));
            }
        }
        // Skip to the next variant (past the ',', and any discriminant).
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n{arms}}}\n\
         }}\n}}"
    )
}
