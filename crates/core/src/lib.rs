//! # cumf-als — ALS matrix factorization with memory optimization and
//! approximate computing
//!
//! A Rust reproduction of *"Matrix Factorization on GPUs with Memory
//! Optimization and Approximate Computing"* (Tan et al., ICPP 2018) — the
//! cuMF_ALS system. The library factorizes a sparse rating matrix
//! `R ≈ X·Θᵀ` by alternating least squares, with the paper's two
//! optimizations:
//!
//! 1. **Memory-optimized `get_hermitian`** ([`kernels::hermitian`]):
//!    the per-row Gram matrices `A_u = Σ θ_v θ_vᵀ + λ n_u I` are built with
//!    register-tiled accumulation and shared-memory staging, with the
//!    *non-coalesced cache-assisted* load scheme of the paper's Solution 2.
//! 2. **Approximate solving** ([`kernels::solve`]): the per-row systems
//!    `A_u x_u = b_u` are solved with a truncated conjugate-gradient solver
//!    (`fs ≪ f` iterations, `O(f²)` each) instead of exact batched LU
//!    (`O(f³)`), optionally reading `A_u` in FP16 to halve solver memory
//!    traffic (Solutions 3–4).
//!
//! Kernels execute functionally on the host (real arithmetic, parallelized
//! with rayon standing in for the GPU's thread blocks), while every launch is
//! priced on a [`cumf_gpu_sim::GpuSpec`] — see that crate for the model. The
//! trainer reports per-phase simulated time plus genuinely measured test
//! RMSE, which is exactly the data the paper's evaluation plots.
//!
//! ## Quickstart
//!
//! ```
//! use cumf_als::{AlsConfig, AlsTrainer, SolverKind, Precision};
//! use cumf_datasets::{MfDataset, SizeClass};
//! use cumf_gpu_sim::GpuSpec;
//!
//! let data = MfDataset::netflix(SizeClass::Tiny, 42);
//! let config = AlsConfig {
//!     f: 16,
//!     iterations: 3,
//!     ..AlsConfig::for_profile(&data.profile)
//! };
//! let mut trainer = AlsTrainer::new(&data, config, GpuSpec::maxwell_titan_x(), 1);
//! let report = trainer.train();
//! assert!(report.final_rmse() < 1.5);
//! println!("simulated time: {:.2}s", report.total_sim_time());
//! ```

#![deny(missing_docs)]

pub mod als;
pub mod config;
pub mod fold_in;
pub mod hybrid;
pub mod implicit;
pub mod kernels;
pub mod metrics;
pub mod selector;

pub use als::{
    price_epoch, price_side, price_side_detailed, solver_kernel_name, AlsTrainer, EpochPhases,
    EpochReport, Side, SideCosts, TrainReport,
};
pub use config::{AlsConfig, Precision, SolverKind};
pub use fold_in::{fold_in_batch, fold_in_row, fold_in_row_into, FoldInScratch};
pub use hybrid::{HybridTrainer, IncrementalConfig};
pub use implicit::{ImplicitAlsConfig, ImplicitAlsTrainer};
pub use metrics::{predict, test_rmse, training_objective};
pub use selector::{select, Algorithm, Selection};
