//! Evaluation metrics: test RMSE (the paper's convergence criterion) and
//! the regularized training objective of equation (1).

use cumf_numeric::dense::{dot, DenseMatrix};
use cumf_numeric::stats::Welford;
use cumf_sparse::coo::CooMatrix;
use cumf_sparse::csr::CsrMatrix;
use rayon::prelude::*;

/// Predicted rating: `x_uᵀ θ_v`.
#[inline]
pub fn predict(x_row: &[f32], theta_row: &[f32]) -> f32 {
    dot(x_row, theta_row)
}

/// Root-mean-square error of `X·Θᵀ` against held-out observations,
/// evaluated in parallel with a merge-tree of Welford accumulators.
pub fn test_rmse(x: &DenseMatrix, theta: &DenseMatrix, test: &CooMatrix) -> f64 {
    if test.nnz() == 0 {
        return 0.0;
    }
    let w = test
        .entries()
        .par_chunks(4096)
        .map(|chunk| {
            let mut acc = Welford::new();
            for e in chunk {
                let p = predict(x.row(e.row as usize), theta.row(e.col as usize));
                let err = (p - e.value) as f64;
                acc.push(err * err);
            }
            acc
        })
        .reduce(Welford::new, |mut a, b| {
            a.merge(&b);
            a
        });
    w.root_mean()
}

/// The regularized objective of equation (1):
/// `Σ_{r_uv≠0} (r_uv − x_uᵀθ_v)² + λ(Σ_u n_u‖x_u‖² + Σ_v n_v‖θ_v‖²)`.
///
/// ALS descends this monotonically — the property test the trainer relies
/// on to detect kernel regressions.
pub fn training_objective(r: &CsrMatrix, x: &DenseMatrix, theta: &DenseMatrix, lambda: f32) -> f64 {
    let loss: f64 = (0..r.rows())
        .into_par_iter()
        .map(|u| {
            let xu = x.row(u);
            let mut s = 0.0f64;
            for (v, val) in r.row_iter(u) {
                let e = (val - predict(xu, theta.row(v as usize))) as f64;
                s += e * e;
            }
            s
        })
        .sum();

    let reg_x: f64 = (0..r.rows())
        .into_par_iter()
        .map(|u| {
            let xu = x.row(u);
            r.row_nnz(u) as f64 * cumf_numeric::dense::dot_f64(xu, xu)
        })
        .sum();

    // Column counts for the Θ side.
    let mut col_counts = vec![0u32; r.cols()];
    for u in 0..r.rows() {
        for &c in r.row_cols(u) {
            col_counts[c as usize] += 1;
        }
    }
    let reg_t: f64 = (0..theta.rows())
        .into_par_iter()
        .map(|v| {
            let tv = theta.row(v);
            col_counts[v] as f64 * cumf_numeric::dense::dot_f64(tv, tv)
        })
        .sum();

    loss + lambda as f64 * (reg_x + reg_t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_sparse::coo::CooMatrix;

    #[test]
    fn perfect_factors_give_zero_rmse() {
        // R = X·Θᵀ exactly.
        let x = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let theta = DenseMatrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let mut test = CooMatrix::new(2, 2);
        test.push(0, 0, 3.0); // x_0·θ_0 = 3
        test.push(1, 1, 6.0); // x_1·θ_1 = 6
        assert_eq!(test_rmse(&x, &theta, &test), 0.0);
    }

    #[test]
    fn rmse_known_error() {
        let x = DenseMatrix::from_vec(1, 1, vec![1.0]);
        let theta = DenseMatrix::from_vec(2, 1, vec![2.0, 4.0]);
        let mut test = CooMatrix::new(1, 2);
        test.push(0, 0, 3.0); // error 1
        test.push(0, 1, 3.0); // error 1
        assert!((test_rmse(&x, &theta, &test) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_test_set_is_zero() {
        let x = DenseMatrix::zeros(1, 1);
        let theta = DenseMatrix::zeros(1, 1);
        assert_eq!(test_rmse(&x, &theta, &CooMatrix::new(1, 1)), 0.0);
    }

    #[test]
    fn objective_decomposes_loss_and_regularizer() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 3.0);
        let r = CsrMatrix::from_coo(&coo);
        let x = DenseMatrix::from_vec(2, 1, vec![1.0, 1.0]);
        let theta = DenseMatrix::from_vec(2, 1, vec![1.0, 1.0]);
        // loss: (2-1)² + (3-1)² = 5; reg: λ(1·1 + 1·1 + 1·1 + 1·1) = 4λ.
        let obj = training_objective(&r, &x, &theta, 0.5);
        assert!((obj - (5.0 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn objective_zero_for_perfect_fit_without_reg() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 6.0);
        let r = CsrMatrix::from_coo(&coo);
        let x = DenseMatrix::from_vec(1, 2, vec![2.0, 1.0]);
        let theta = DenseMatrix::from_vec(1, 2, vec![2.0, 2.0]);
        assert_eq!(training_objective(&r, &x, &theta, 0.0), 0.0);
    }
}
