//! The three device kernels of an ALS update, each paired with its cost
//! model: [`hermitian`] (step i, the compute-intensive Gram build),
//! [`bias`] (step i's right-hand sides), and [`solve`] (step ii).

pub mod bias;
pub mod hermitian;
pub mod solve;
