//! `get_bias` — the right-hand-side kernel: `b_u = Θᵀ · R_{u*}ᵀ`.
//!
//! Step (i)'s cheaper half: a weighted sum of the row's feature vectors.
//! Its compute complexity `O(Nz·f)` is an `f`-th of `get_hermitian`'s,
//! which is why the paper optimizes the latter first (§II); we still price
//! it so epoch totals are complete.

use cumf_gpu_sim::kernel::KernelCost;
use cumf_gpu_sim::GpuSpec;
use cumf_numeric::dense::DenseMatrix;

/// Compute one row's right-hand side `b_u = Σ_v r_uv θ_v` into `out`.
pub fn bias_row(cols: &[u32], values: &[f32], features: &DenseMatrix, out: &mut [f32]) {
    debug_assert_eq!(cols.len(), values.len());
    debug_assert_eq!(out.len(), features.cols());
    out.fill(0.0);
    for (&v, &r) in cols.iter().zip(values) {
        cumf_numeric::dense::axpy(r, features.row(v as usize), out);
    }
}

/// Cost of a `get_bias` launch over `nz` non-zeros at dimension `f`,
/// updating `rows` rows. Memory-dominated: it re-reads the staged features
/// (served mostly from cache right after `get_hermitian`) and streams the
/// ratings and outputs.
pub fn bias_cost(_spec: &GpuSpec, rows: u64, nz: u64, f: u64) -> KernelCost {
    KernelCost {
        flops_fp32: (2 * nz * f) as f64,
        flops_fp16: 0.0,
        // Ratings (value + column index) stream once; feature reads hit the
        // caches warmed by get_hermitian, so DRAM sees only the streams.
        dram_read_bytes: (nz * 8) as f64,
        dram_write_bytes: (rows * f * 4) as f64,
        l2_wire_bytes: (nz * f * 4) as f64,
        transactions: (nz * f * 4 / 128) as f64,
        mlp: 32.0,
        pipe_efficiency: 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features() -> DenseMatrix {
        DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 2.0, 1.0, 1.0])
    }

    #[test]
    fn weighted_sum_of_features() {
        let mut b = [0.0f32; 2];
        bias_row(&[0, 2], &[3.0, 0.5], &features(), &mut b);
        // 3·[1,0] + 0.5·[1,1] = [3.5, 0.5]
        assert_eq!(b, [3.5, 0.5]);
    }

    #[test]
    fn empty_row_gives_zero_rhs() {
        let mut b = [7.0f32; 2];
        bias_row(&[], &[], &features(), &mut b);
        assert_eq!(b, [0.0, 0.0]);
    }

    #[test]
    fn out_buffer_is_overwritten_not_accumulated() {
        let mut b = [100.0f32; 2];
        bias_row(&[1], &[1.0], &features(), &mut b);
        assert_eq!(b, [0.0, 2.0]);
    }

    #[test]
    fn cost_is_linear_in_nz_and_far_below_hermitian() {
        let spec = GpuSpec::maxwell_titan_x();
        let c1 = bias_cost(&spec, 1000, 10_000, 100);
        let c2 = bias_cost(&spec, 1000, 20_000, 100);
        assert_eq!(c2.flops_fp32, 2.0 * c1.flops_fp32);
        // Table I: bias is f× cheaper than hermitian in compute.
        let herm = crate::kernels::hermitian::hermitian_cost(
            &spec,
            &crate::kernels::hermitian::HermitianWorkload {
                rows: 1000,
                feature_rows: 500,
                nz: 10_000,
            },
            &crate::kernels::hermitian::HermitianShape::paper(100),
            cumf_gpu_sim::memory::LoadPattern::NonCoalescedL1,
        );
        assert!(herm.flops_fp32 / c1.flops_fp32 > 40.0);
    }
}
