//! `get_hermitian` — the memory-optimized Gram-matrix kernel (§III).
//!
//! For every row `u` with non-zeros `{v : r_uv ≠ 0}`, build
//!
//! ```text
//! A_u = Σ_v θ_v θ_vᵀ + λ·n_u·I
//! ```
//!
//! The functional implementation mirrors the CUDA kernel's structure
//! (Figure 2): feature vectors are *staged* in batches of `BIN` (the shared
//! memory buffer), and each staged vector's outer product is accumulated
//! *tile by tile* over the lower triangle only (`x ≤ y` tiles, the register
//! blocking). The mirrored structure is not decoration — the tests assert
//! tile-order-invariance against a plain rank-1 update, which is exactly the
//! correctness argument for the CUDA kernel's tiling.
//!
//! The cost side prices the three phases Figure 4 measures — **load**
//! (global→shared staging under a [`LoadPattern`]), **compute** (the
//! `Nz·f²` FMAs), **write** (flushing `A_u` to global memory) — using the
//! occupancy the register demand allows.

use cumf_gpu_sim::kernel::{hermitian_pipe_efficiency, KernelCost};
use cumf_gpu_sim::memory::{
    load_time, streaming_write_time, LoadBreakdown, LoadPattern, StagedLoad,
};
use cumf_gpu_sim::occupancy::{hermitian_regs_per_thread, occupancy, KernelResources, Occupancy};
use cumf_gpu_sim::GpuSpec;
use cumf_numeric::dense::DenseMatrix;
use cumf_numeric::sym::{packed_len, SymPacked};
use cumf_sparse::CsrMatrix;

/// Geometry of the kernel: feature dimension, staging batch, register tile.
#[derive(Clone, Copy, Debug)]
pub struct HermitianShape {
    /// Latent dimension `f`.
    pub f: usize,
    /// Shared-memory staging batch (`BIN`, 32 in the paper).
    pub bin: usize,
    /// Register tile edge (`T`, 10 in the paper at f = 100).
    pub tile: usize,
}

impl HermitianShape {
    /// The paper's geometry at a given `f`.
    pub fn paper(f: usize) -> Self {
        HermitianShape {
            f,
            bin: 32,
            tile: 10,
        }
    }

    /// Thread-block resources this geometry compiles to (64-thread blocks,
    /// as the paper's worked example uses).
    pub fn resources(&self) -> KernelResources {
        KernelResources {
            regs_per_thread: hermitian_regs_per_thread(self.f as u32, self.tile as u32, 64),
            threads_per_block: 64,
            shared_mem_per_block: (self.bin * self.f * 4) as u32,
        }
    }
}

/// Accumulate `θθᵀ` into packed `acc`, walking the tile grid exactly as the
/// CUDA kernel does: only tiles with `x ≤ y`, each tile a `T×T` block of
/// FMAs (Figure 2's numbered blocks).
pub fn tiled_rank1_update(acc: &mut [f32], theta: &[f32], tile: usize) {
    let f = theta.len();
    debug_assert_eq!(acc.len(), packed_len(f));
    let g = f.div_ceil(tile);
    for ty in 0..g {
        let row_start = ty * tile;
        let row_end = (row_start + tile).min(f);
        for tx in 0..=ty {
            let col_start = tx * tile;
            let col_end = (col_start + tile).min(f);
            for i in row_start..row_end {
                let ti = theta[i];
                let base = i * (i + 1) / 2;
                // Diagonal tiles only fill their lower half.
                let jmax = if tx == ty {
                    i.min(col_end - 1)
                } else {
                    col_end - 1
                };
                for j in col_start..=jmax {
                    acc[base + j] += ti * theta[j];
                }
            }
        }
    }
}

/// Build `A_u` for one row: stage the row's feature vectors in `BIN`-sized
/// batches (the shared-memory buffer), accumulate each via
/// [`tiled_rank1_update`], then add `λ·n_u` to the diagonal.
///
/// `staging` is the caller-provided scratch standing in for shared memory
/// (`BIN × f` floats); reusing it across rows mirrors how the CUDA kernel
/// reuses its static shared allocation, and keeps the host loop
/// allocation-free.
pub fn hermitian_row(
    cols: &[u32],
    features: &DenseMatrix,
    lambda: f32,
    shape: &HermitianShape,
    staging: &mut Vec<f32>,
    out: &mut SymPacked,
) {
    let f = shape.f;
    debug_assert_eq!(features.cols(), f);
    debug_assert_eq!(out.dim(), f);
    out.as_mut_slice().fill(0.0);

    for batch in cols.chunks(shape.bin) {
        // Stage: copy this batch of feature vectors (global → shared).
        staging.clear();
        for &v in batch {
            staging.extend_from_slice(features.row(v as usize));
        }
        // Accumulate each staged vector tile-by-tile (shared → registers).
        for idx in 0..batch.len() {
            tiled_rank1_update(
                out.as_mut_slice(),
                &staging[idx * f..(idx + 1) * f],
                shape.tile,
            );
        }
    }
    out.add_diagonal(lambda * cols.len() as f32);
}

/// Reference implementation (no staging, no tiling) for equivalence tests.
pub fn hermitian_row_reference(
    cols: &[u32],
    features: &DenseMatrix,
    lambda: f32,
    f: usize,
) -> SymPacked {
    let mut a = SymPacked::zeros(f);
    for &v in cols {
        a.syr(features.row(v as usize));
    }
    a.add_diagonal(lambda * cols.len() as f32);
    a
}

/// The phase breakdown Figure 4 plots for one `get_hermitian` launch.
#[derive(Clone, Copy, Debug)]
pub struct HermitianPhases {
    /// Global→shared staging time (per [`LoadPattern`]).
    pub load: LoadBreakdown,
    /// FMA time for `Σ θθᵀ`.
    pub compute_time: f64,
    /// Time to flush the `A_u`s to global memory.
    pub write_time: f64,
    /// Achieved occupancy of the launch.
    pub occupancy: Occupancy,
}

impl HermitianPhases {
    /// Total kernel time (phases overlap little in this kernel: staging,
    /// accumulation and the final flush are dependency-ordered per block).
    pub fn total(&self) -> f64 {
        self.load.time + self.compute_time + self.write_time
    }
}

/// Workload description at *cost-model* scale: how many rows are updated,
/// how many feature rows are staged from, how many non-zeros drive FMAs.
#[derive(Clone, Copy, Debug)]
pub struct HermitianWorkload {
    /// Rows being updated (m for update-X, n for update-Θ).
    pub rows: u64,
    /// Rows of the staged feature matrix (n for update-X, m for update-Θ).
    pub feature_rows: u64,
    /// Non-zeros processed.
    pub nz: u64,
}

/// Price the three phases of a `get_hermitian` launch on `spec`.
pub fn hermitian_phases(
    spec: &GpuSpec,
    w: &HermitianWorkload,
    shape: &HermitianShape,
    pattern: LoadPattern,
) -> HermitianPhases {
    let occ = occupancy(spec, &shape.resources());
    let f = shape.f as u64;

    let load = load_time(
        spec,
        &occ,
        pattern,
        &StagedLoad {
            total_bytes: w.nz * f * 4,
            unique_bytes: w.feature_rows * f * 4,
        },
    );

    // FMAs: Nz × f(f+1)/2 into the lower triangle (the paper quotes Nz·f²
    // flops, which is the same quantity counting FMA = 2 ops).
    let fmas = w.nz as f64 * packed_len(shape.f) as f64;
    let compute_time = 2.0 * fmas / (spec.peak_fp32_flops * hermitian_pipe_efficiency(spec));

    // Flush: the solver consumes full (symmetrized) f×f matrices.
    let write_time = streaming_write_time(spec, w.rows * f * f * 4);

    HermitianPhases {
        load,
        compute_time,
        write_time,
        occupancy: occ,
    }
}

/// The accumulated [`KernelCost`] of a launch — the operation counters the
/// Table-I harness reads.
pub fn hermitian_cost(
    spec: &GpuSpec,
    w: &HermitianWorkload,
    shape: &HermitianShape,
    pattern: LoadPattern,
) -> KernelCost {
    let phases = hermitian_phases(spec, w, shape, pattern);
    let f = shape.f as f64;
    KernelCost {
        flops_fp32: 2.0 * w.nz as f64 * packed_len(shape.f) as f64,
        flops_fp16: 0.0,
        dram_read_bytes: phases.load.dram_bytes,
        dram_write_bytes: (w.rows as f64) * f * f * 4.0,
        l2_wire_bytes: (w.nz as f64) * f * 4.0,
        transactions: (w.nz as f64) * f * 4.0 / 128.0,
        mlp: match pattern {
            LoadPattern::Coalesced => 2.0,
            _ => 32.0,
        },
        pipe_efficiency: hermitian_pipe_efficiency(spec),
    }
}

/// Run `get_hermitian` functionally for all rows of `r` (parallel over rows
/// like the GPU's one-block-per-row mapping), fused with a consumer — the
/// trainer fuses bias + solve here so the `A_u`s never all materialize.
pub fn for_each_row_hermitian<F>(
    r: &CsrMatrix,
    features: &DenseMatrix,
    lambda: f32,
    shape: &HermitianShape,
    consumer: F,
) where
    F: Fn(usize, &SymPacked) + Sync,
{
    use rayon::prelude::*;
    (0..r.rows()).into_par_iter().for_each_init(
        || {
            (
                SymPacked::zeros(shape.f),
                Vec::with_capacity(shape.bin * shape.f),
            )
        },
        |(acc, staging), u| {
            hermitian_row(r.row_cols(u), features, lambda, shape, staging, acc);
            consumer(u, acc);
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_numeric::stats::XorShift64;

    fn random_features(rows: usize, f: usize, seed: u64) -> DenseMatrix {
        let mut rng = XorShift64::new(seed);
        let mut m = DenseMatrix::zeros(rows, f);
        m.fill_with(|| rng.next_f32() - 0.5);
        m
    }

    #[test]
    fn tiled_update_matches_syr() {
        let mut rng = XorShift64::new(3);
        for f in [1usize, 5, 10, 16, 23, 100] {
            for tile in [1usize, 3, 10] {
                let theta: Vec<f32> = (0..f).map(|_| rng.next_f32() - 0.5).collect();
                let mut tiled = vec![0.0f32; packed_len(f)];
                tiled_rank1_update(&mut tiled, &theta, tile);
                let mut reference = SymPacked::zeros(f);
                reference.syr(&theta);
                for (a, b) in tiled.iter().zip(reference.as_slice()) {
                    assert_eq!(a, b, "f={f} tile={tile}: tiling must be bitwise-identical");
                }
            }
        }
    }

    #[test]
    fn staged_row_matches_reference_bitwise() {
        // The BIN-staged, tiled kernel must produce the same A_u as a plain
        // rank-1 loop: same additions in the same per-element order.
        let f = 24;
        let features = random_features(50, f, 7);
        let cols: Vec<u32> = vec![3, 11, 17, 20, 42, 49, 5, 9, 13, 27, 31, 44];
        let shape = HermitianShape { f, bin: 5, tile: 7 };
        let mut staging = Vec::new();
        let mut a = SymPacked::zeros(f);
        hermitian_row(&cols, &features, 0.05, &shape, &mut staging, &mut a);
        let reference = hermitian_row_reference(&cols, &features, 0.05, f);
        assert_eq!(a.as_slice(), reference.as_slice());
    }

    #[test]
    fn lambda_scales_with_row_count() {
        let f = 8;
        let features = random_features(10, f, 1);
        let shape = HermitianShape { f, bin: 4, tile: 4 };
        let mut staging = Vec::new();
        let mut a = SymPacked::zeros(f);
        hermitian_row(&[1, 2, 3], &features, 0.5, &shape, &mut staging, &mut a);
        let bare = hermitian_row_reference(&[1, 2, 3], &features, 0.0, f);
        for i in 0..f {
            assert!(
                (a.get(i, i) - bare.get(i, i) - 1.5).abs() < 1e-6,
                "λ·n_u = 0.5·3 on the diagonal"
            );
        }
    }

    #[test]
    fn empty_row_is_pure_regularizer() {
        let f = 6;
        let features = random_features(5, f, 2);
        let shape = HermitianShape::paper(f);
        let mut staging = Vec::new();
        let mut a = SymPacked::zeros(f);
        hermitian_row(&[], &features, 0.05, &shape, &mut staging, &mut a);
        // n_u = 0 → A_u is exactly zero (the trainer special-cases empty
        // rows rather than solving a singular system).
        assert!(a.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        use cumf_sparse::coo::CooMatrix;
        let f = 12;
        let mut coo = CooMatrix::new(30, 20);
        let mut rng = XorShift64::new(11);
        for _ in 0..200 {
            coo.push(
                rng.next_below(30) as u32,
                rng.next_below(20) as u32,
                rng.next_f32(),
            );
        }
        let r = CsrMatrix::from_coo(&coo);
        let features = random_features(20, f, 5);
        let shape = HermitianShape { f, bin: 8, tile: 5 };

        let results: Vec<parking_lot::Mutex<Option<SymPacked>>> =
            (0..30).map(|_| parking_lot::Mutex::new(None)).collect();
        for_each_row_hermitian(&r, &features, 0.1, &shape, |u, a| {
            *results[u].lock() = Some(a.clone());
        });
        for (u, cell) in results.iter().enumerate() {
            let got = cell.lock().take().unwrap();
            let want = hermitian_row_reference(r.row_cols(u), &features, 0.1, f);
            assert_eq!(got.as_slice(), want.as_slice(), "row {u}");
        }
    }

    #[test]
    fn figure4_phase_shape() {
        // Netflix update-X on Maxwell: nonCoal-L1 load < nonCoal-noL1 < coal;
        // compute identical across patterns.
        let spec = GpuSpec::maxwell_titan_x();
        let w = HermitianWorkload {
            rows: 480_189,
            feature_rows: 17_770,
            nz: 99_072_112,
        };
        let shape = HermitianShape::paper(100);
        let l1 = hermitian_phases(&spec, &w, &shape, LoadPattern::NonCoalescedL1);
        let no_l1 = hermitian_phases(&spec, &w, &shape, LoadPattern::NonCoalescedNoL1);
        let coal = hermitian_phases(&spec, &w, &shape, LoadPattern::Coalesced);
        assert!(l1.load.time < no_l1.load.time);
        assert!(no_l1.load.time < coal.load.time);
        assert_eq!(l1.compute_time, coal.compute_time);
        assert_eq!(
            l1.occupancy.blocks_per_sm, 6,
            "the paper's occupancy example"
        );
    }

    #[test]
    fn update_theta_writes_less_for_netflix_shape() {
        // n < m on Netflix (Table II), so update-Θ flushes fewer Gram
        // matrices. (The paper's Fig-4 caption swaps m and n; we follow the
        // physics and note the discrepancy in EXPERIMENTS.md.)
        let spec = GpuSpec::maxwell_titan_x();
        let shape = HermitianShape::paper(100);
        let x = hermitian_phases(
            &spec,
            &HermitianWorkload {
                rows: 480_189,
                feature_rows: 17_770,
                nz: 99_072_112,
            },
            &shape,
            LoadPattern::NonCoalescedL1,
        );
        let theta = hermitian_phases(
            &spec,
            &HermitianWorkload {
                rows: 17_770,
                feature_rows: 480_189,
                nz: 99_072_112,
            },
            &shape,
            LoadPattern::NonCoalescedL1,
        );
        assert!(theta.write_time < x.write_time);
        // But update-Θ's load is slower: the staged working set (X, 192 MB)
        // overwhelms L2, killing cross-block reuse.
        assert!(theta.load.time > x.load.time);
    }

    #[test]
    fn cost_counters_match_table1_complexity() {
        let spec = GpuSpec::maxwell_titan_x();
        let w = HermitianWorkload {
            rows: 1000,
            feature_rows: 500,
            nz: 50_000,
        };
        let shape = HermitianShape::paper(100);
        let cost = hermitian_cost(&spec, &w, &shape, LoadPattern::NonCoalescedL1);
        // C = Nz·f(f+1) ≈ Nz·f²; intensity C/M ~ f/4 per byte.
        assert!((cost.flops_fp32 - 50_000.0 * 5050.0 * 2.0).abs() < 1.0);
        assert!(cost.arithmetic_intensity() > 1.0);
    }
}
