//! The batched `solve` step (§IV): exact LU / Cholesky, or the paper's
//! approximate CG with optional FP16 storage.
//!
//! Functionally, each row's SPD system `A_u x_u = b_u` is solved
//! independently (the GPU batches them across blocks; we batch across rayon
//! tasks in the caller). The cost side reproduces Figure 5: exact solvers
//! are compute-bound `O(f³)` per row; CG is memory-bound at `fs` reads of
//! `A_u` per row, and FP16 storage halves those bytes.

use crate::config::{Precision, SolverKind};
use cumf_gpu_sim::kernel::{KernelCost, LU_BATCHED_PIPE_EFFICIENCY};
use cumf_gpu_sim::memory::STREAM_READ_EFFICIENCY;
use cumf_gpu_sim::GpuSpec;
use cumf_numeric::cg::{cg_solve, cg_solve_traced};
use cumf_numeric::cholesky::cholesky_solve;
use cumf_numeric::lu::{lu_flops, lu_solve};
use cumf_numeric::sym::SymPacked;

/// Outcome of one row's solve — the trainer averages `iterations` across
/// rows to feed the cost model the *actual* CG work done.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveStats {
    /// CG iterations spent (direct solvers report the dimension `f`).
    pub iterations: usize,
    /// Whether the solve hit its tolerance (always true for direct).
    pub converged: bool,
}

/// Observability capture of one traced row solve: the CG residual
/// trajectory and, for FP16 solves, round-trip error statistics of the
/// narrowed Gram matrix. Filled by [`solve_row_traced`]; `solve_row` skips
/// it entirely.
#[derive(Clone, Debug, Default)]
pub struct SolveTrace {
    /// Residual norms: one before the first CG iteration, one per
    /// iteration. Empty for direct solves.
    pub residuals: Vec<f64>,
    /// RMS of `|a_ij − fp32(fp16(a_ij))|` over the Gram entries (0 unless
    /// the solve narrowed to FP16).
    pub fp16_roundtrip_rms: f64,
    /// Max of the same round-trip error.
    pub fp16_roundtrip_max: f64,
}

/// Solve `A x = b` for one row, warm-starting CG from the incoming `x`.
///
/// Returns the per-row stats. Falls back from a failed direct factorization
/// (numerically semidefinite `A_u` on a nearly-empty row) to CG, which
/// handles semidefiniteness gracefully — the same guard the CUDA batched
/// solver implements via info codes.
pub fn solve_row(solver: &SolverKind, a: &SymPacked, x: &mut [f32], b: &[f32]) -> SolveStats {
    solve_row_impl(solver, a, x, b, None)
}

/// [`solve_row`] plus telemetry capture: CG residual trajectories and FP16
/// round-trip error statistics land in `trace`. The solve arithmetic is
/// identical to the untraced path.
pub fn solve_row_traced(
    solver: &SolverKind,
    a: &SymPacked,
    x: &mut [f32],
    b: &[f32],
    trace: &mut SolveTrace,
) -> SolveStats {
    solve_row_impl(solver, a, x, b, Some(trace))
}

fn fp16_roundtrip_stats(
    original: &SymPacked,
    narrowed: &cumf_numeric::sym::SymPackedF16,
    trace: &mut SolveTrace,
) {
    let mut sum_sq = 0.0f64;
    let mut max = 0.0f64;
    let n = original.as_slice().len().max(1);
    for (&v, h) in original.as_slice().iter().zip(narrowed.as_slice()) {
        let err = (v - h.to_f32()).abs() as f64;
        sum_sq += err * err;
        max = max.max(err);
    }
    trace.fp16_roundtrip_rms = (sum_sq / n as f64).sqrt();
    trace.fp16_roundtrip_max = max;
}

fn solve_row_impl(
    solver: &SolverKind,
    a: &SymPacked,
    x: &mut [f32],
    b: &[f32],
    mut trace: Option<&mut SolveTrace>,
) -> SolveStats {
    let f = a.dim();
    fn residuals<'t>(t: &'t mut Option<&mut SolveTrace>) -> Option<&'t mut Vec<f64>> {
        t.as_deref_mut().map(|t| &mut t.residuals)
    }
    match solver {
        SolverKind::BatchCholesky => match cholesky_solve(a, b) {
            Ok(sol) => {
                x.copy_from_slice(&sol);
                SolveStats {
                    iterations: f,
                    converged: true,
                }
            }
            Err(_) => cg_fallback(a, x, b),
        },
        SolverKind::BatchLu => match lu_solve(&a.to_dense(), b) {
            Ok(sol) => {
                x.copy_from_slice(&sol);
                SolveStats {
                    iterations: f,
                    converged: true,
                }
            }
            Err(_) => cg_fallback(a, x, b),
        },
        SolverKind::Cg {
            fs,
            tolerance,
            precision,
        } => match precision {
            Precision::Fp32 => {
                let out = cg_solve_traced(a, x, b, *fs, *tolerance, residuals(&mut trace));
                SolveStats {
                    iterations: out.iterations,
                    converged: out.converged,
                }
            }
            Precision::Fp16 => {
                // Narrow A_u to half precision — the reduced-precision read
                // path of Solution 4. b and x stay FP32 (as on the GPU).
                //
                // Overflow guard: binary16 tops out at 65504, and Gram
                // entries scale with n_u·r². Solving (A/s)·x = b/s is the
                // same system, so rescale into range before narrowing (the
                // tolerance applies to the scaled residual, which only makes
                // the stop criterion stricter).
                let amax = a.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                if amax > 3.0e4 {
                    let s = amax / 1.0e4;
                    let mut scaled = a.clone();
                    for v in scaled.as_mut_slice() {
                        *v /= s;
                    }
                    let b_scaled: Vec<f32> = b.iter().map(|x| x / s).collect();
                    let a16 = scaled.to_f16();
                    if let Some(t) = trace.as_deref_mut() {
                        fp16_roundtrip_stats(&scaled, &a16, t);
                    }
                    let out =
                        cg_solve_traced(&a16, x, &b_scaled, *fs, *tolerance, residuals(&mut trace));
                    SolveStats {
                        iterations: out.iterations,
                        converged: out.converged,
                    }
                } else {
                    let a16 = a.to_f16();
                    if let Some(t) = trace.as_deref_mut() {
                        fp16_roundtrip_stats(a, &a16, t);
                    }
                    let out = cg_solve_traced(&a16, x, b, *fs, *tolerance, residuals(&mut trace));
                    SolveStats {
                        iterations: out.iterations,
                        converged: out.converged,
                    }
                }
            }
        },
    }
}

fn cg_fallback(a: &SymPacked, x: &mut [f32], b: &[f32]) -> SolveStats {
    let out = cg_solve(a, x, b, a.dim(), 1e-6);
    SolveStats {
        iterations: out.iterations,
        converged: out.converged,
    }
}

/// Cost of a batched solve over `rows` systems of dimension `f`.
///
/// `mean_cg_iters` is the measured average CG iteration count (ignored for
/// direct solvers). The `l1_enabled` flag exists to answer the paper's
/// "does L1 benefit the CG solver?" question — it does not (coalesced
/// high-occupancy streams bypass it), so it deliberately has no effect,
/// matching the identical `solve-L1`/`solve-noL1` bars of Figure 5.
pub fn solve_cost(
    _spec: &GpuSpec,
    solver: &SolverKind,
    rows: u64,
    f: u64,
    mean_cg_iters: f64,
    l1_enabled: bool,
) -> KernelCost {
    let _ = l1_enabled;
    match solver {
        SolverKind::BatchLu | SolverKind::BatchCholesky => {
            let per_row_flops = 2.0 * lu_flops(f as usize) as f64;
            KernelCost {
                flops_fp32: rows as f64 * per_row_flops,
                flops_fp16: 0.0,
                dram_read_bytes: (rows * (f * f + f) * 4) as f64,
                dram_write_bytes: (rows * f * 4) as f64,
                l2_wire_bytes: (rows * (f * f + f) * 4) as f64,
                transactions: (rows * (f * f + f) * 4 / 128) as f64,
                mlp: 8.0,
                pipe_efficiency: LU_BATCHED_PIPE_EFFICIENCY,
            }
        }
        SolverKind::Cg { precision, .. } => {
            // Each CG iteration re-reads A_u (f² elements; the CUDA kernel
            // stores the full symmetric matrix for coalesced matvec rows),
            // plus the initial residual matvec.
            let reads = mean_cg_iters + 1.0;
            let elem_bytes = match precision {
                Precision::Fp32 => 4.0,
                Precision::Fp16 => 2.0,
            };
            let matrix_bytes = rows as f64 * (f * f) as f64 * elem_bytes * reads;
            let vector_bytes = rows as f64 * (f * 4) as f64 * reads * 4.0; // r, p, ap, x traffic
            let flops = rows as f64 * reads * 2.0 * (f * f) as f64;
            let (fp32, fp16) = match precision {
                Precision::Fp32 => (flops, 0.0),
                Precision::Fp16 => (0.0, flops),
            };
            KernelCost {
                flops_fp32: fp32,
                flops_fp16: fp16,
                dram_read_bytes: (matrix_bytes + vector_bytes) / STREAM_READ_EFFICIENCY.min(1.0),
                dram_write_bytes: (rows * f * 4) as f64,
                l2_wire_bytes: matrix_bytes + vector_bytes,
                transactions: (matrix_bytes + vector_bytes) / 128.0,
                mlp: 32.0,
                pipe_efficiency: 0.8,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_gpu_sim::occupancy::{occupancy, KernelResources};

    fn spd(dim: usize, seed: u64) -> SymPacked {
        let mut rng = cumf_numeric::stats::XorShift64::new(seed);
        let mut a = SymPacked::zeros(dim);
        for _ in 0..dim + 2 {
            let v: Vec<f32> = (0..dim).map(|_| rng.next_f32() - 0.5).collect();
            a.syr(&v);
        }
        a.add_diagonal(0.5);
        a
    }

    #[test]
    fn all_solvers_agree_on_spd_system() {
        let f = 10;
        let a = spd(f, 3);
        let b: Vec<f32> = (0..f).map(|i| (i as f32 - 4.0) * 0.2).collect();
        let solvers = [
            SolverKind::BatchLu,
            SolverKind::BatchCholesky,
            SolverKind::Cg {
                fs: 2 * f,
                tolerance: 1e-7,
                precision: Precision::Fp32,
            },
        ];
        let mut solutions = Vec::new();
        for s in &solvers {
            let mut x = vec![0.0f32; f];
            let stats = solve_row(s, &a, &mut x, &b);
            assert!(stats.converged, "{s:?}");
            solutions.push(x);
        }
        for sol in &solutions[1..] {
            for i in 0..f {
                assert!(
                    (sol[i] - solutions[0][i]).abs() < 1e-2,
                    "solver disagreement at {i}"
                );
            }
        }
    }

    #[test]
    fn fp16_solution_close_to_fp32() {
        let f = 12;
        let a = spd(f, 9);
        let b: Vec<f32> = (0..f).map(|i| ((i * 3) % 5) as f32 * 0.3 - 0.6).collect();
        let mut x32 = vec![0.0f32; f];
        let mut x16 = vec![0.0f32; f];
        solve_row(
            &SolverKind::Cg {
                fs: 24,
                tolerance: 1e-6,
                precision: Precision::Fp32,
            },
            &a,
            &mut x32,
            &b,
        );
        solve_row(
            &SolverKind::Cg {
                fs: 24,
                tolerance: 1e-6,
                precision: Precision::Fp16,
            },
            &a,
            &mut x16,
            &b,
        );
        for i in 0..f {
            assert!(
                (x32[i] - x16[i]).abs() < 0.05,
                "i={i}: {} vs {}",
                x32[i],
                x16[i]
            );
        }
    }

    #[test]
    fn fp16_overflow_guard_rescales() {
        // Gram entries far beyond f16's 65504 max: without rescaling the
        // narrowed matrix is +∞ and CG returns garbage.
        let f = 6;
        let mut a = spd(f, 4);
        for v in a.as_mut_slice() {
            *v *= 1.0e6;
        }
        let b: Vec<f32> = (0..f).map(|i| (i as f32 + 1.0) * 1.0e5).collect();
        let mut x16 = vec![0.0f32; f];
        solve_row(
            &SolverKind::Cg {
                fs: 2 * f,
                tolerance: 0.0,
                precision: Precision::Fp16,
            },
            &a,
            &mut x16,
            &b,
        );
        assert!(x16.iter().all(|v| v.is_finite()), "{x16:?}");
        let x_exact = cholesky_solve(&a, &b).unwrap();
        for i in 0..f {
            assert!(
                (x16[i] - x_exact[i]).abs() < 0.05 * x_exact[i].abs().max(0.01),
                "i={i}"
            );
        }
    }

    #[test]
    fn truncated_cg_reports_its_iterations() {
        let f = 20;
        let a = spd(f, 5);
        let b = vec![1.0f32; f];
        let mut x = vec![0.0f32; f];
        let stats = solve_row(
            &SolverKind::Cg {
                fs: 6,
                tolerance: 0.0,
                precision: Precision::Fp32,
            },
            &a,
            &mut x,
            &b,
        );
        assert_eq!(stats.iterations, 6);
        assert!(!stats.converged);
    }

    #[test]
    fn traced_solve_is_bit_identical_and_captures_fp16_error() {
        let f = 10;
        let a = spd(f, 6);
        let b: Vec<f32> = (0..f).map(|i| (i as f32) * 0.2 - 0.8).collect();
        for precision in [Precision::Fp32, Precision::Fp16] {
            let solver = SolverKind::Cg {
                fs: 8,
                tolerance: 1e-6,
                precision,
            };
            let mut x_plain = vec![0.0f32; f];
            let mut x_traced = vec![0.0f32; f];
            let mut trace = SolveTrace::default();
            let plain = solve_row(&solver, &a, &mut x_plain, &b);
            let traced = solve_row_traced(&solver, &a, &mut x_traced, &b, &mut trace);
            assert_eq!(
                x_plain, x_traced,
                "{precision:?}: tracing changed the solution"
            );
            assert_eq!(plain.iterations, traced.iterations);
            assert_eq!(trace.residuals.len(), traced.iterations + 1);
            match precision {
                Precision::Fp32 => assert_eq!(trace.fp16_roundtrip_rms, 0.0),
                Precision::Fp16 => {
                    assert!(trace.fp16_roundtrip_rms > 0.0);
                    assert!(trace.fp16_roundtrip_max >= trace.fp16_roundtrip_rms);
                    // Relative error of binary16 narrowing is ≤ 2⁻¹¹.
                    let amax = a.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs())) as f64;
                    assert!(trace.fp16_roundtrip_max <= amax * 5e-4);
                }
            }
        }
    }

    #[test]
    fn singular_direct_solve_falls_back_to_cg() {
        // A zero row has A_u = λ·0·I = 0 — singular for LU.
        let a = SymPacked::zeros(4);
        let b = [0.0f32; 4];
        let mut x = [1.0f32; 4];
        let stats = solve_row(&SolverKind::BatchLu, &a, &mut x, &b);
        // CG on 0·x = 0 finishes immediately.
        assert!(stats.converged);
    }

    fn cg_times(spec: &GpuSpec, rows: u64, f: u64, precision: Precision) -> f64 {
        let occ = occupancy(
            spec,
            &KernelResources {
                regs_per_thread: 40,
                threads_per_block: 128,
                shared_mem_per_block: 0,
            },
        );
        let solver = SolverKind::Cg {
            fs: 6,
            tolerance: 1e-4,
            precision,
        };
        let cost = solve_cost(spec, &solver, rows, f, 6.0, false);
        cumf_gpu_sim::kernel::launch_time(spec, &occ, &cost).time
    }

    #[test]
    fn figure5_solver_ratios() {
        // LU-FP32 ≈ 4× CG-FP32; CG-FP16 ≈ ½ CG-FP32 (on Maxwell: FP16 saves
        // only bandwidth).
        let spec = GpuSpec::maxwell_titan_x();
        let occ = occupancy(
            &spec,
            &KernelResources {
                regs_per_thread: 40,
                threads_per_block: 128,
                shared_mem_per_block: 0,
            },
        );
        let rows = 498_000u64;
        let f = 100u64;
        let lu_cost = solve_cost(&spec, &SolverKind::BatchLu, rows, f, 0.0, false);
        let t_lu = cumf_gpu_sim::kernel::launch_time(&spec, &occ, &lu_cost).time;
        let t_cg32 = cg_times(&spec, rows, f, Precision::Fp32);
        let t_cg16 = cg_times(&spec, rows, f, Precision::Fp16);
        let r_lu_cg = t_lu / t_cg32;
        let r_32_16 = t_cg32 / t_cg16;
        assert!(r_lu_cg > 2.5 && r_lu_cg < 6.0, "LU/CG32 ratio {r_lu_cg}");
        assert!(r_32_16 > 1.5 && r_32_16 < 2.1, "CG32/CG16 ratio {r_32_16}");
    }

    #[test]
    fn l1_flag_changes_nothing_for_cg() {
        // Figure 5's solve-L1 == solve-noL1 observation.
        let spec = GpuSpec::maxwell_titan_x();
        let solver = SolverKind::cumf_default();
        let with = solve_cost(&spec, &solver, 1000, 100, 6.0, true);
        let without = solve_cost(&spec, &solver, 1000, 100, 6.0, false);
        assert_eq!(with, without);
    }

    #[test]
    fn cg_cost_scales_with_measured_iterations() {
        let spec = GpuSpec::maxwell_titan_x();
        let solver = SolverKind::Cg {
            fs: 6,
            tolerance: 1e-4,
            precision: Precision::Fp32,
        };
        let c3 = solve_cost(&spec, &solver, 1000, 100, 3.0, false);
        let c6 = solve_cost(&spec, &solver, 1000, 100, 6.0, false);
        assert!(c6.dram_read_bytes > c3.dram_read_bytes * 1.5);
    }
}
