//! Algorithm selection — the paper's first future-work item (§VII):
//! "investigate algorithm selection based on dataset characteristics such
//! as dimensions and sparsity, and hardware resource constraints such as
//! number of GPUs."
//!
//! The selector prices an ALS epoch and an SGD epoch on the available
//! hardware with the same cost models the evaluation uses, weights them by
//! the typical epoch counts each algorithm needs (§V-E: SGD iterates
//! faster but more often), applies the paper's qualitative rules — implicit
//! inputs make SGD hopeless (§V-F), density favours ALS — and picks the
//! fewest GPUs that both fit the problem and are near the time optimum.

use crate::config::AlsConfig;
use cumf_datasets::DatasetProfile;
use cumf_gpu_sim::interconnect::Interconnect;
use cumf_gpu_sim::mem_alloc::{als_footprint, DeviceMemory};
use cumf_gpu_sim::{GpuGeneration, GpuSpec};

/// Epochs-to-target ratio assumed between SGD and ALS, from the paper's
/// observation that ALS "requires significantly fewer iterations" (§II) —
/// measured in our Figure-6 runs as ≈5–10×.
const SGD_EPOCH_MULTIPLIER: f64 = 6.0;
/// Typical ALS epochs to an acceptable RMSE.
const ALS_EPOCHS: f64 = 10.0;
/// Accept one extra GPU only if it cuts time by at least this factor.
const MARGINAL_GPU_GAIN: f64 = 1.25;

/// Which algorithm the selector recommends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// cuMF_ALS (this library's trainer).
    Als,
    /// A cuMF_SGD-style batch Hogwild trainer.
    Sgd,
}

/// The selector's decision.
#[derive(Clone, Debug)]
pub struct Selection {
    /// Recommended algorithm.
    pub algorithm: Algorithm,
    /// Recommended GPU count.
    pub gpus: u32,
    /// Estimated time-to-target on the recommendation, seconds.
    pub estimated_time: f64,
    /// Human-readable rationale.
    pub rationale: String,
}

/// Estimated time of one SGD epoch at full scale (memory-bound, half
/// precision — the cuMF_SGD model).
fn sgd_epoch_time(profile: &DatasetProfile, spec: &GpuSpec, gpus: u32) -> f64 {
    let nz = profile.nz as f64 / gpus as f64;
    let f = profile.f as f64;
    let bytes = nz * (4.0 * f * 2.0 + 12.0);
    let compute = bytes / (spec.dram_bandwidth * 0.55);
    let comm = if gpus > 1 {
        let ic = match spec.generation {
            GpuGeneration::Pascal => Interconnect::nvlink(),
            _ => Interconnect::pcie3(),
        };
        ic.allgather_time(profile.n * profile.f as u64 * 2, gpus)
    } else {
        0.0
    };
    compute + comm
}

/// Smallest GPU count (up to `available`) whose ALS footprint fits.
fn min_gpus_that_fit(profile: &DatasetProfile, spec: &GpuSpec, available: u32) -> Option<u32> {
    (1..=available).find(|&g| {
        let mut mem = DeviceMemory::new(spec);
        als_footprint(
            &mut mem,
            profile.m,
            profile.n,
            profile.nz,
            profile.f as u64,
            g as u64,
        )
        .is_ok()
    })
}

/// Recommend an algorithm and GPU count for a dataset on a server.
///
/// `implicit` marks one-class/positive-unlabeled input, which rules SGD out
/// (its cost is `O(m·n·f)` on a dense preference matrix, §V-F).
pub fn select(
    profile: &DatasetProfile,
    spec: &GpuSpec,
    available_gpus: u32,
    implicit: bool,
) -> Selection {
    assert!(available_gpus >= 1);
    let min_gpus = min_gpus_that_fit(profile, spec, available_gpus);

    // Price ALS across feasible GPU counts; keep the smallest count within
    // MARGINAL_GPU_GAIN of the best.
    let als_config = AlsConfig::for_profile(profile);
    let als_time =
        |g: u32| crate::als::price_epoch(profile, &als_config, spec, g, 6.0).total() * ALS_EPOCHS;
    let (als_gpus, als_t) = match min_gpus {
        Some(lo) => {
            let mut best = (lo, als_time(lo));
            for g in lo + 1..=available_gpus {
                let t = als_time(g);
                if best.1 / t >= MARGINAL_GPU_GAIN {
                    best = (g, t);
                }
            }
            best
        }
        None => (available_gpus, f64::INFINITY), // cannot fit even sharded
    };

    if implicit {
        return Selection {
            algorithm: Algorithm::Als,
            gpus: als_gpus,
            estimated_time: als_t,
            rationale:
                "implicit input: the preference matrix is dense (Nz = m·n), so SGD's O(Nz·f) \
                        per epoch is intractable; ALS with the Gram trick stays O(observed·f²)"
                    .to_string(),
        };
    }

    let sgd_t = sgd_epoch_time(profile, spec, 1) * ALS_EPOCHS * SGD_EPOCH_MULTIPLIER;
    if sgd_t < als_t {
        Selection {
            algorithm: Algorithm::Sgd,
            gpus: 1,
            estimated_time: sgd_t,
            rationale: format!(
                "sparse explicit input on one GPU: SGD's cheap epochs win ({:.1}s vs {:.1}s ALS)",
                sgd_t, als_t
            ),
        }
    } else {
        Selection {
            algorithm: Algorithm::Als,
            gpus: als_gpus,
            estimated_time: als_t,
            rationale: format!(
                "ALS wins: fewer epochs at high arithmetic intensity ({:.1}s vs {:.1}s SGD), \
                 {} GPU(s)",
                als_t, sgd_t, als_gpus
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_always_selects_als() {
        for profile in DatasetProfile::table2() {
            let s = select(&profile, &GpuSpec::maxwell_titan_x(), 4, true);
            assert_eq!(s.algorithm, Algorithm::Als, "{}", profile.name);
        }
    }

    #[test]
    fn hugewiki_needs_multiple_gpus() {
        let s = select(
            &DatasetProfile::hugewiki(),
            &GpuSpec::maxwell_titan_x(),
            4,
            false,
        );
        assert!(s.gpus >= 2, "Hugewiki cannot fit one Titan X: {s:?}");
    }

    #[test]
    fn netflix_explicit_single_gpu_is_competitive() {
        // §V-E / Figure 8: on one GPU the two algorithms are close; the
        // selector must produce a finite, sane estimate either way.
        let s = select(
            &DatasetProfile::netflix(),
            &GpuSpec::maxwell_titan_x(),
            1,
            false,
        );
        assert!(s.estimated_time.is_finite());
        assert_eq!(s.gpus, 1);
    }

    #[test]
    fn more_available_gpus_never_hurts_estimate() {
        let p = DatasetProfile::hugewiki();
        let s1 = select(&p, &GpuSpec::pascal_p100(), 2, true);
        let s4 = select(&p, &GpuSpec::pascal_p100(), 4, true);
        assert!(s4.estimated_time <= s1.estimated_time * 1.001);
    }

    #[test]
    fn marginal_gpu_rule_avoids_wasteful_scaling() {
        // A communication-dominated shape (enormous m, light arithmetic) on
        // a PCIe box: the all-gather grows with GPUs while the per-GPU work
        // shrinks below it, so extra GPUs fail the marginal-gain rule.
        let profile = DatasetProfile {
            name: "comm-bound",
            m: 40_000_000,
            n: 5_000,
            nz: 120_000_000,
            f: 100,
            lambda: 0.05,
            rmse_target: 1.0,
            value_range: (1.0, 5.0),
            value_mean: 3.0,
        };
        let s = select(&profile, &GpuSpec::maxwell_titan_x(), 4, true);
        // It must shard enough to fit (X is 16 GB) but stop adding GPUs once
        // PCIe gathering eats the gain.
        assert!(s.gpus >= 2, "must shard to fit: {}", s.gpus);
        assert!(s.gpus < 4, "selector over-provisioned: {}", s.gpus);
    }

    #[test]
    fn rationale_is_informative() {
        let s = select(
            &DatasetProfile::yahoo_music(),
            &GpuSpec::maxwell_titan_x(),
            2,
            true,
        );
        assert!(s.rationale.contains("implicit"));
    }
}
