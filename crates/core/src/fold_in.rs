//! Incremental fold-in: serve new users/items without retraining.
//!
//! The paper's conclusion sketches "ALS for the initial batch training and
//! SGD for incremental updates". The cheapest incremental operation —
//! widely deployed with ALS models — is the *fold-in*: given a trained `Θ`
//! and a new user's ratings, the optimal `x_u` is one regularized solve
//! against the existing item factors (exactly an update-X row, so it reuses
//! the `get_hermitian`/`get_bias`/`solve` kernels and costs `O(n_u·f² + f²·fs)`).

use crate::config::SolverKind;
use crate::kernels::bias::bias_row;
use crate::kernels::hermitian::{hermitian_row, HermitianShape};
use crate::kernels::solve::solve_row;
use cumf_numeric::dense::DenseMatrix;
use cumf_numeric::sym::SymPacked;

/// Reusable workspace for fold-in solves at one feature dimension `f`.
///
/// One fold-in allocates a staging buffer, a packed Gram matrix, a bias
/// vector and two index/value scatter buffers; a serving engine folding
/// cold users on every micro-batch wants to pay that once per worker, not
/// once per request. All buffers are fully overwritten on each solve, so
/// reuse never leaks state between rows.
#[derive(Clone, Debug)]
pub struct FoldInScratch {
    shape: HermitianShape,
    staging: Vec<f32>,
    a: SymPacked,
    b: Vec<f32>,
    cols: Vec<u32>,
    values: Vec<f32>,
}

impl FoldInScratch {
    /// A workspace for feature dimension `f` (the paper's BIN staging
    /// shape).
    pub fn new(f: usize) -> FoldInScratch {
        let shape = HermitianShape::paper(f);
        FoldInScratch {
            staging: Vec::with_capacity(shape.bin * f),
            shape,
            a: SymPacked::zeros(f),
            b: vec![0.0f32; f],
            cols: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The feature dimension this workspace was sized for.
    pub fn f(&self) -> usize {
        self.b.len()
    }
}

/// [`fold_in_row`] writing into a caller-provided buffer through a
/// reusable [`FoldInScratch`] — the allocation-free form batch callers
/// loop over. `out.len()` and `scratch.f()` must equal
/// `item_factors.cols()`.
pub fn fold_in_row_into(
    item_factors: &DenseMatrix,
    ratings: &[(u32, f32)],
    lambda: f32,
    solver: &SolverKind,
    scratch: &mut FoldInScratch,
    out: &mut [f32],
) {
    let f = item_factors.cols();
    assert_eq!(out.len(), f, "output buffer must be f-long");
    assert_eq!(scratch.f(), f, "scratch sized for a different f");
    out.fill(0.0);
    if ratings.is_empty() {
        return;
    }
    scratch.cols.clear();
    scratch.values.clear();
    for &(v, r) in ratings {
        scratch.cols.push(v);
        scratch.values.push(r);
    }
    hermitian_row(
        &scratch.cols,
        item_factors,
        lambda,
        &scratch.shape,
        &mut scratch.staging,
        &mut scratch.a,
    );
    bias_row(&scratch.cols, &scratch.values, item_factors, &mut scratch.b);
    solve_row(solver, &scratch.a, out, &scratch.b);
}

/// Fold a new row (user) into an existing model: returns the factor vector
/// that optimally explains `ratings` against the fixed `item_factors`.
///
/// `ratings` pairs item indices with observed values; indices must be valid
/// rows of `item_factors`. An empty slice returns the zero vector (the
/// regularized optimum for an unobserved user).
pub fn fold_in_row(
    item_factors: &DenseMatrix,
    ratings: &[(u32, f32)],
    lambda: f32,
    solver: &SolverKind,
) -> Vec<f32> {
    let f = item_factors.cols();
    let mut x = vec![0.0f32; f];
    let mut scratch = FoldInScratch::new(f);
    fold_in_row_into(item_factors, ratings, lambda, solver, &mut scratch, &mut x);
    x
}

/// Fold a batch of new rows in, returning an `rows × f` factor matrix.
/// Rows solve in parallel, each worker reusing one [`FoldInScratch`].
pub fn fold_in_batch(
    item_factors: &DenseMatrix,
    rows: &[Vec<(u32, f32)>],
    lambda: f32,
    solver: &SolverKind,
) -> DenseMatrix {
    use rayon::prelude::*;
    let f = item_factors.cols();
    let mut out = DenseMatrix::zeros(rows.len(), f);
    out.as_mut_slice()
        .par_chunks_mut(f)
        .zip(rows.par_iter())
        .for_each_init(
            || FoldInScratch::new(f),
            |scratch, (row, ratings)| {
                fold_in_row_into(item_factors, ratings, lambda, solver, scratch, row);
            },
        );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::AlsTrainer;
    use crate::config::AlsConfig;
    use cumf_datasets::{MfDataset, SizeClass};
    use cumf_gpu_sim::GpuSpec;

    fn trained() -> (MfDataset, DenseMatrix, DenseMatrix) {
        let data = MfDataset::netflix(SizeClass::Tiny, 33);
        let cfg = AlsConfig {
            f: 8,
            iterations: 6,
            rmse_target: None,
            ..AlsConfig::for_profile(&data.profile)
        };
        let mut t = AlsTrainer::new(&data, cfg, GpuSpec::maxwell_titan_x(), 1);
        t.train();
        let x = t.x.clone();
        let theta = t.theta.clone();
        (data, x, theta)
    }

    #[test]
    fn fold_in_recovers_existing_user() {
        // Folding an existing user's own ratings back in must land near the
        // factor vector training produced for them.
        let (data, x, theta) = trained();
        let solver = SolverKind::BatchCholesky;
        let user = (0..data.m()).max_by_key(|&u| data.r.row_nnz(u)).unwrap();
        let ratings: Vec<(u32, f32)> = data.r.row_iter(user).collect();
        let folded = fold_in_row(&theta, &ratings, 0.05, &solver);
        for (i, &fv) in folded.iter().enumerate().take(8) {
            assert!(
                (fv - x.get(user, i)).abs() < 0.05,
                "dim {i}: folded {} vs trained {}",
                fv,
                x.get(user, i)
            );
        }
    }

    #[test]
    fn folded_user_predicts_their_ratings() {
        let (data, _, theta) = trained();
        let user = (0..data.m()).max_by_key(|&u| data.r.row_nnz(u)).unwrap();
        let ratings: Vec<(u32, f32)> = data.r.row_iter(user).collect();
        let folded = fold_in_row(&theta, &ratings, 0.05, &SolverKind::cumf_default());
        let mut se = 0.0f64;
        for &(v, r) in &ratings {
            let p = cumf_numeric::dense::dot(&folded, theta.row(v as usize));
            se += ((p - r) as f64).powi(2);
        }
        let rmse = (se / ratings.len() as f64).sqrt();
        assert!(rmse < 1.0, "fold-in train RMSE {rmse}");
    }

    #[test]
    fn empty_history_folds_to_zero() {
        let (_, _, theta) = trained();
        let folded = fold_in_row(&theta, &[], 0.05, &SolverKind::BatchCholesky);
        assert!(folded.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // Solving row B after row A through one scratch must equal solving
        // B through a fresh scratch — no state may leak between solves.
        let (data, _, theta) = trained();
        let a: Vec<(u32, f32)> = data.r.row_iter(0).collect();
        let b: Vec<(u32, f32)> = data.r.row_iter(1).collect();
        let solver = SolverKind::cumf_default();
        let f = theta.cols();
        let mut shared = FoldInScratch::new(f);
        let mut out_a = vec![0.0f32; f];
        let mut out_b = vec![0.0f32; f];
        fold_in_row_into(&theta, &a, 0.05, &solver, &mut shared, &mut out_a);
        fold_in_row_into(&theta, &b, 0.05, &solver, &mut shared, &mut out_b);
        let mut fresh = FoldInScratch::new(f);
        let mut out_fresh = vec![1.0f32; f]; // dirty output buffer too
        fold_in_row_into(&theta, &b, 0.05, &solver, &mut fresh, &mut out_fresh);
        assert_eq!(out_b, out_fresh);
        // Empty ratings still zero a dirty output buffer.
        fold_in_row_into(&theta, &[], 0.05, &solver, &mut shared, &mut out_a);
        assert!(out_a.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn batch_matches_row_by_row() {
        let (data, _, theta) = trained();
        let rows: Vec<Vec<(u32, f32)>> = (0..20).map(|u| data.r.row_iter(u).collect()).collect();
        let solver = SolverKind::BatchCholesky;
        let batch = fold_in_batch(&theta, &rows, 0.05, &solver);
        for (u, ratings) in rows.iter().enumerate() {
            let single = fold_in_row(&theta, ratings, 0.05, &solver);
            assert_eq!(batch.row(u), &single[..], "row {u}");
        }
    }
}
