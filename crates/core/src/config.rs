//! Training configuration for the ALS trainer.

use cumf_datasets::DatasetProfile;
use cumf_gpu_sim::memory::LoadPattern;

/// Storage precision of the Gram matrices read by the CG solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    /// 32-bit float storage.
    Fp32,
    /// 16-bit float storage (the paper's Solution 4: halves solver memory
    /// traffic; doubles FP16 arithmetic rate on Pascal).
    Fp16,
}

/// Which linear-system solver handles `A_u x_u = b_u`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SolverKind {
    /// Exact batched LU with partial pivoting — the cuBLAS `getrfBatched`
    /// baseline of Figure 5 (`LU-FP32`), `O(f³)` per row.
    BatchLu,
    /// Exact batched Cholesky — same cost class as LU; provided because the
    /// systems are SPD and some downstream users prefer it.
    BatchCholesky,
    /// The paper's approximate conjugate-gradient solver (Algorithm 1).
    Cg {
        /// Maximum CG iterations (`fs` in the paper; 6 at f = 100 is "the
        /// smallest number that does not hurt convergence").
        fs: usize,
        /// Residual-norm tolerance `ε` for early exit.
        tolerance: f32,
        /// Storage precision of `A_u` during the solve.
        precision: Precision,
    },
}

impl SolverKind {
    /// The configuration the paper ships as cuMF_ALS's default: CG with
    /// `fs = 6`, FP16 storage.
    pub fn cumf_default() -> SolverKind {
        SolverKind::Cg {
            fs: 6,
            tolerance: 1e-4,
            precision: Precision::Fp16,
        }
    }
}

/// Full ALS training configuration.
#[derive(Clone, Debug)]
pub struct AlsConfig {
    /// Latent feature dimension `f`.
    pub f: usize,
    /// Regularization `λ` (scaled per-row by the non-zero count, as in
    /// equation (1)'s weighted-λ formulation).
    pub lambda: f32,
    /// Number of ALS iterations (each = one update-X + one update-Θ sweep).
    pub iterations: usize,
    /// Linear solver for the per-row systems.
    pub solver: SolverKind,
    /// Global-to-shared staging scheme for `get_hermitian`.
    pub load_pattern: LoadPattern,
    /// Shared-memory staging batch (features per batch; the paper's BIN).
    pub bin: usize,
    /// Register tile edge (the paper's T).
    pub tile: usize,
    /// RNG seed for factor initialization.
    pub seed: u64,
    /// Stop early once test RMSE reaches this level (the paper's
    /// "acceptable RMSE" protocol); `None` runs all iterations.
    pub rmse_target: Option<f64>,
}

impl AlsConfig {
    /// The paper's configuration for a given dataset profile: its `f` and
    /// `λ` from Table II, CG(fs=6)+FP16 solver, non-coalesced loads.
    pub fn for_profile(profile: &DatasetProfile) -> AlsConfig {
        AlsConfig {
            f: profile.f as usize,
            lambda: profile.lambda,
            iterations: 30,
            solver: SolverKind::cumf_default(),
            load_pattern: LoadPattern::NonCoalescedL1,
            bin: 32,
            tile: 10,
            seed: 42,
            rmse_target: Some(profile.rmse_target),
        }
    }

    /// The GPU-ALS baseline configuration (the paper's own HPDC'16
    /// predecessor \[31\]): exact batched LU and conventional coalesced
    /// loads — no Solution 2/3/4.
    pub fn gpu_als_baseline(profile: &DatasetProfile) -> AlsConfig {
        AlsConfig {
            solver: SolverKind::BatchLu,
            load_pattern: LoadPattern::Coalesced,
            ..Self::for_profile(profile)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let p = DatasetProfile::netflix();
        let c = AlsConfig::for_profile(&p);
        assert_eq!(c.f, 100);
        assert_eq!(c.lambda, 0.05);
        assert_eq!(c.bin, 32);
        assert_eq!(c.tile, 10);
        assert_eq!(c.load_pattern, LoadPattern::NonCoalescedL1);
        match c.solver {
            SolverKind::Cg { fs, precision, .. } => {
                assert_eq!(fs, 6);
                assert_eq!(precision, Precision::Fp16);
            }
            other => panic!("default solver should be CG, got {other:?}"),
        }
        assert_eq!(c.rmse_target, Some(0.92));
    }

    #[test]
    fn baseline_strips_both_optimizations() {
        let p = DatasetProfile::netflix();
        let c = AlsConfig::gpu_als_baseline(&p);
        assert_eq!(c.solver, SolverKind::BatchLu);
        assert_eq!(c.load_pattern, LoadPattern::Coalesced);
        assert_eq!(c.f, 100, "everything else stays the paper's setting");
    }
}
