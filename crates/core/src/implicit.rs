//! Implicit-feedback matrix factorization (§V-F) — the Hu–Koren–Volinsky
//! one-class model the paper extends cuMF_ALS to.
//!
//! Observations become binary preferences `p_uv = 1 iff r_uv > 0` with
//! confidences `c_uv = 1 + α·r_uv`; *every* unobserved cell is a zero-
//! preference observation with confidence 1, so `P` is dense and SGD becomes
//! hopeless (`Nz = m·n`) — the paper's argument for why ALS wins here.
//!
//! ALS stays tractable through the classic Gram trick:
//!
//! ```text
//! A_u = ΘᵀΘ + Σ_{v: r_uv>0} (c_uv − 1)·θ_v θ_vᵀ + λI
//! b_u = Σ_{v: r_uv>0} c_uv · θ_v
//! ```
//!
//! `ΘᵀΘ` is computed once per sweep (`O(n f²)`), after which each row costs
//! only its observed non-zeros — the same complexity class as explicit ALS.

use crate::als::solver_kernel_name;
use crate::config::{Precision, SolverKind};
use crate::kernels::solve::{solve_cost, solve_row};
use cumf_datasets::MfDataset;
use cumf_gpu_sim::kernel::{hermitian_pipe_efficiency, launch_time, KernelCost, LaunchTiming};
use cumf_gpu_sim::occupancy::{occupancy, KernelResources};
use cumf_gpu_sim::timeline::SimClock;
use cumf_gpu_sim::GpuSpec;
use cumf_numeric::dense::DenseMatrix;
use cumf_numeric::stats::XorShift64;
use cumf_numeric::sym::{packed_len, SymPacked};
use cumf_sparse::CsrMatrix;
use cumf_telemetry::{KernelLaunchRecord, PhaseSpan, Recorder, NOOP};
use rayon::prelude::*;

/// Configuration of the implicit-feedback trainer.
#[derive(Clone, Debug)]
pub struct ImplicitAlsConfig {
    /// Latent dimension `f`.
    pub f: usize,
    /// Regularization λ.
    pub lambda: f32,
    /// Confidence scale α in `c_uv = 1 + α·r_uv` (40 in the original paper).
    pub alpha: f32,
    /// Sweeps to run.
    pub iterations: usize,
    /// Per-row solver (CG by default — exactly where the approximate solver
    /// shines, since `A_u` is dense here).
    pub solver: SolverKind,
    /// Seed for factor initialization.
    pub seed: u64,
}

impl Default for ImplicitAlsConfig {
    fn default() -> Self {
        ImplicitAlsConfig {
            f: 100,
            lambda: 0.05,
            alpha: 40.0,
            iterations: 10,
            solver: SolverKind::Cg {
                fs: 6,
                tolerance: 1e-4,
                precision: Precision::Fp32,
            },
            seed: 7,
        }
    }
}

/// One sweep's record.
#[derive(Clone, Copy, Debug)]
pub struct ImplicitEpochReport {
    /// 1-based sweep number.
    pub epoch: u32,
    /// Cumulative simulated time.
    pub sim_time: f64,
    /// The weighted one-class objective (should fall monotonically-ish).
    pub objective: f64,
}

/// The implicit-feedback ALS trainer.
pub struct ImplicitAlsTrainer<'a> {
    data: &'a MfDataset,
    config: ImplicitAlsConfig,
    spec: GpuSpec,
    /// User factors.
    pub x: DenseMatrix,
    /// Item factors.
    pub theta: DenseMatrix,
    clock: SimClock,
    recorder: &'a dyn Recorder,
}

impl<'a> ImplicitAlsTrainer<'a> {
    /// Create a trainer; ratings in `data` are reinterpreted as implicit
    /// counts (any positive value = an interaction).
    pub fn new(data: &'a MfDataset, config: ImplicitAlsConfig, spec: GpuSpec) -> Self {
        let f = config.f;
        let mut rng = XorShift64::new(config.seed);
        let mut x = DenseMatrix::zeros(data.m(), f);
        let mut theta = DenseMatrix::zeros(data.n(), f);
        let s = 0.1 / (f as f32).sqrt();
        x.fill_with(|| rng.next_f32() * s);
        theta.fill_with(|| rng.next_f32() * s);
        ImplicitAlsTrainer {
            data,
            config,
            spec,
            x,
            theta,
            clock: SimClock::new(),
            recorder: &NOOP,
        }
    }

    /// Attach a telemetry recorder; each sweep then emits a phase span and
    /// kernel records for the Gram/row-update compute and the batched solve.
    /// Recording never changes the simulated times.
    pub fn set_recorder(&mut self, recorder: &'a dyn Recorder) {
        self.recorder = recorder;
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Run all sweeps, recording objective and simulated time per sweep.
    pub fn train(&mut self) -> Vec<ImplicitEpochReport> {
        (1..=self.config.iterations as u32)
            .map(|epoch| {
                self.run_epoch();
                ImplicitEpochReport {
                    epoch,
                    sim_time: self.clock.now(),
                    objective: self.objective(),
                }
            })
            .collect()
    }

    /// One full sweep: update X from Θ, then Θ from X.
    pub fn run_epoch(&mut self) {
        let t0 = self.clock.now();
        let new_x = self.update_factors(&self.data.r, &self.theta, &self.x);
        self.x = new_x;
        let new_t = self.update_factors(&self.data.rt, &self.x, &self.theta);
        self.theta = new_t;
        let t = self.epoch_sim_time();
        self.clock.advance("implicit-epoch", t);
        if self.recorder.enabled() {
            self.emit_epoch_telemetry(t0);
        }
    }

    /// Telemetry for one sweep: the Gram/row-update compute and the batched
    /// solve as kernel records (their costs recomputed exactly as
    /// [`ImplicitAlsTrainer::epoch_sim_time`] prices them, so the two launch
    /// durations sum to the advanced epoch time), under an
    /// `implicit-epoch` phase span.
    fn emit_epoch_telemetry(&self, t0: f64) {
        let p = &self.data.profile;
        let f = self.config.f as u64;
        let spec = &self.spec;
        let occ = occupancy(
            spec,
            &KernelResources {
                regs_per_thread: 64,
                threads_per_block: 128,
                shared_mem_per_block: 0,
            },
        );
        let gram_flops = 2.0 * (p.n + p.m) as f64 * packed_len(f as usize) as f64;
        let row_flops = 2.0 * 2.0 * p.nz as f64 * packed_len(f as usize) as f64;
        let eff = hermitian_pipe_efficiency(spec);
        let compute = (gram_flops + row_flops) / (spec.peak_fp32_flops * eff);
        let compute_cost = KernelCost::compute_only(gram_flops + row_flops, eff);
        let compute_timing = LaunchTiming {
            compute_time: compute,
            dram_time: 0.0,
            l2_time: 0.0,
            latency_time: 0.0,
            time: compute,
        };
        self.recorder.kernel(KernelLaunchRecord::new(
            "implicit_gram_update",
            spec,
            occ,
            compute_cost,
            compute_timing,
            t0,
            p.m + p.n,
            128,
        ));
        let scost = solve_cost(spec, &self.config.solver, p.m + p.n, f, 6.0, false);
        let stiming = launch_time(spec, &occ, &scost);
        self.recorder.kernel(KernelLaunchRecord::new(
            solver_kernel_name(&self.config.solver),
            spec,
            occ,
            scost,
            stiming,
            t0 + compute,
            p.m + p.n,
            128,
        ));
        self.recorder
            .phase(PhaseSpan::new("implicit-epoch", t0, self.clock.now()));
    }

    /// Simulated time of one sweep at full-scale profile dimensions.
    pub fn epoch_sim_time(&self) -> f64 {
        let p = &self.data.profile;
        let f = self.config.f as u64;
        let spec = &self.spec;
        let occ = occupancy(
            spec,
            &KernelResources {
                regs_per_thread: 64,
                threads_per_block: 128,
                shared_mem_per_block: 0,
            },
        );
        // Gram precomputes: ΘᵀΘ and XᵀX.
        let gram_flops = 2.0 * (p.n + p.m) as f64 * packed_len(f as usize) as f64;
        // Per-row confidence updates: like get_hermitian over Nz, twice.
        let row_flops = 2.0 * 2.0 * p.nz as f64 * packed_len(f as usize) as f64;
        let compute =
            (gram_flops + row_flops) / (spec.peak_fp32_flops * hermitian_pipe_efficiency(spec));
        // Solves for all m + n rows.
        let solve = launch_time(
            spec,
            &occ,
            &solve_cost(spec, &self.config.solver, p.m + p.n, f, 6.0, false),
        )
        .time;
        compute + solve
    }

    /// Update one side's factors given the other side's (`features`).
    fn update_factors(
        &self,
        r: &CsrMatrix,
        features: &DenseMatrix,
        old: &DenseMatrix,
    ) -> DenseMatrix {
        let f = self.config.f;
        let lambda = self.config.lambda;
        let alpha = self.config.alpha;
        let solver = self.config.solver;

        // Gram base: G = Σ_v θ_v θ_vᵀ over ALL feature rows (dense part of
        // the one-class loss), computed once per sweep in parallel.
        let gram = (0..features.rows())
            .into_par_iter()
            .fold(
                || SymPacked::zeros(f),
                |mut acc, v| {
                    acc.syr(features.row(v));
                    acc
                },
            )
            .reduce(
                || SymPacked::zeros(f),
                |mut a, b| {
                    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
                        *x += y;
                    }
                    a
                },
            );

        let mut out = DenseMatrix::zeros(r.rows(), f);
        out.as_mut_slice()
            .par_chunks_mut(f)
            .enumerate()
            .for_each_init(
                || (SymPacked::zeros(f), vec![0.0f32; f]),
                |(a, b), (u, row)| {
                    a.as_mut_slice().copy_from_slice(gram.as_slice());
                    b.fill(0.0);
                    for (v, rv) in r.row_iter(u) {
                        let c_minus_1 = alpha * rv.max(0.0);
                        a.syr_scaled(c_minus_1, features.row(v as usize));
                        cumf_numeric::dense::axpy(1.0 + c_minus_1, features.row(v as usize), b);
                    }
                    a.add_diagonal(lambda);
                    row.copy_from_slice(old.row(u));
                    solve_row(&solver, a, row, b);
                },
            );
        out
    }

    /// The one-class weighted objective
    /// `Σ_{u,v} c_uv (p_uv − x_uᵀθ_v)² + λ(‖X‖² + ‖Θ‖²)`, computed without
    /// materializing the dense sum via the Gram identity:
    /// `Σ_{all v} (x_uᵀθ_v)² = x_uᵀ (ΘᵀΘ) x_u`.
    pub fn objective(&self) -> f64 {
        let f = self.config.f;
        // Gram of Θ.
        let mut gram = SymPacked::zeros(f);
        for v in 0..self.theta.rows() {
            gram.syr(self.theta.row(v));
        }
        let dense_part: f64 = (0..self.x.rows())
            .into_par_iter()
            .map(|u| {
                let xu = self.x.row(u);
                let mut gx = vec![0.0f32; f];
                gram.matvec(xu, &mut gx);
                cumf_numeric::dense::dot_f64(xu, &gx)
            })
            .sum();
        // Correction on observed cells: c(1 − s)² − s² where s = x·θ.
        let correction: f64 = (0..self.data.r.rows())
            .into_par_iter()
            .map(|u| {
                let xu = self.x.row(u);
                let mut acc = 0.0f64;
                for (v, rv) in self.data.r.row_iter(u) {
                    let s = cumf_numeric::dense::dot(xu, self.theta.row(v as usize)) as f64;
                    let c = 1.0 + self.config.alpha as f64 * rv.max(0.0) as f64;
                    acc += c * (1.0 - s) * (1.0 - s) - s * s;
                }
                acc
            })
            .sum();
        let reg = self.config.lambda as f64
            * (cumf_numeric::dense::dot_f64(self.x.as_slice(), self.x.as_slice())
                + cumf_numeric::dense::dot_f64(self.theta.as_slice(), self.theta.as_slice()));
        dense_part + correction + reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_datasets::SizeClass;

    fn tiny() -> MfDataset {
        MfDataset::netflix(SizeClass::Tiny, 5)
    }

    fn cfg(f: usize, iterations: usize) -> ImplicitAlsConfig {
        ImplicitAlsConfig {
            f,
            iterations,
            alpha: 10.0,
            ..Default::default()
        }
    }

    #[test]
    fn objective_decreases_over_sweeps() {
        let data = tiny();
        let mut t = ImplicitAlsTrainer::new(&data, cfg(8, 4), GpuSpec::maxwell_titan_x());
        let reports = t.train();
        assert_eq!(reports.len(), 4);
        for w in reports.windows(2) {
            assert!(
                w[1].objective <= w[0].objective * 1.001,
                "objective rose: {} → {}",
                w[0].objective,
                w[1].objective
            );
        }
    }

    #[test]
    fn observed_cells_predict_high() {
        let data = tiny();
        let mut t = ImplicitAlsTrainer::new(&data, cfg(8, 5), GpuSpec::maxwell_titan_x());
        t.train();
        // Mean prediction on observed interactions should be well above the
        // global mean prediction (pulled toward 1 by high confidence).
        let mut obs_sum = 0.0f64;
        let mut obs_n = 0usize;
        for u in 0..data.m() {
            for (v, _) in data.r.row_iter(u) {
                obs_sum += crate::metrics::predict(t.x.row(u), t.theta.row(v as usize)) as f64;
                obs_n += 1;
            }
        }
        let obs_mean = obs_sum / obs_n as f64;
        assert!(obs_mean > 0.4, "observed-cell mean prediction {obs_mean}");
    }

    #[test]
    fn closed_form_matches_tiny_dense_solution() {
        // On a 3×2 toy problem, compare update_factors against the dense
        // normal-equations solution computed by brute force.
        use cumf_sparse::coo::CooMatrix;
        let mut coo = CooMatrix::new(3, 2);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 1.0);
        coo.push(2, 0, 3.0);
        let _r = CsrMatrix::from_coo(&coo);
        let data = tiny(); // only used for the trainer scaffold
        let config = cfg(2, 1);
        let t = ImplicitAlsTrainer::new(&data, config.clone(), GpuSpec::maxwell_titan_x());

        let theta = DenseMatrix::from_vec(2, 2, vec![0.3, 0.1, 0.2, 0.4]);
        let old = DenseMatrix::zeros(3, 2);
        let r = CsrMatrix::from_coo(&coo);
        let got = {
            // Use the private path through a fresh trainer-less call.
            let tt = ImplicitAlsTrainer {
                data: t.data,
                config: config.clone(),
                spec: t.spec.clone(),
                x: old.clone(),
                theta: theta.clone(),
                clock: SimClock::new(),
                recorder: &NOOP,
            };
            tt.update_factors(&r, &theta, &old)
        };
        // Brute force for row 0: A = ΘᵀΘ + α·2·θ₀θ₀ᵀ + λI, b = (1+α·2)θ₀.
        let alpha = config.alpha;
        let lambda = config.lambda;
        let mut a = SymPacked::zeros(2);
        a.syr(theta.row(0));
        a.syr(theta.row(1));
        a.syr_scaled(alpha * 2.0, theta.row(0));
        a.add_diagonal(lambda);
        let mut b = vec![0.0f32; 2];
        cumf_numeric::dense::axpy(1.0 + alpha * 2.0, theta.row(0), &mut b);
        let expect = cumf_numeric::cholesky::cholesky_solve(&a, &b).unwrap();
        for (j, &ev) in expect.iter().enumerate().take(2) {
            assert!(
                (got.get(0, j) - ev).abs() < 1e-3,
                "j={j}: {} vs {}",
                got.get(0, j),
                ev
            );
        }
    }

    #[test]
    fn per_iteration_time_in_figure_ballpark() {
        // §V-F: cuMFALS ≈ 2.2 s per implicit iteration on Netflix.
        let data = tiny();
        let t = ImplicitAlsTrainer::new(
            &data,
            ImplicitAlsConfig::default(),
            GpuSpec::maxwell_titan_x(),
        );
        let time = t.epoch_sim_time();
        assert!(time > 0.5 && time < 8.0, "implicit epoch priced at {time}s");
    }
}
