//! Hybrid ALS + SGD — the paper's second future-work item (§VII): "using
//! ALS for the initial batch training and SGD for incremental updates of
//! the model."
//!
//! [`HybridTrainer`] wraps a batch-trained model and applies lightweight
//! SGD passes to *newly arriving* ratings, touching only the affected rows
//! and columns — the serving-time pattern of a production recommender,
//! where retraining per event is unaffordable but models must track fresh
//! interactions. Brand-new users go through the [`crate::fold_in`] path.

use crate::als::{AlsTrainer, TrainReport};
use crate::config::AlsConfig;
use cumf_datasets::MfDataset;
use cumf_gpu_sim::GpuSpec;
use cumf_numeric::dense::DenseMatrix;
use cumf_sparse::coo::Entry;

/// Configuration of the incremental phase.
#[derive(Clone, Copy, Debug)]
pub struct IncrementalConfig {
    /// SGD learning rate for update events.
    pub lr: f32,
    /// L2 regularization applied during updates.
    pub lambda: f32,
    /// Passes over each ingested batch.
    pub passes: usize,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            lr: 0.01,
            lambda: 0.05,
            passes: 2,
        }
    }
}

/// A batch-trained model accepting streaming rating updates.
pub struct HybridTrainer {
    /// Row factors (users).
    pub x: DenseMatrix,
    /// Column factors (items).
    pub theta: DenseMatrix,
    incremental: IncrementalConfig,
    /// Ratings ingested since batch training (for periodic re-batch).
    pending: Vec<Entry>,
}

impl HybridTrainer {
    /// Batch-train with ALS, then switch to incremental mode.
    pub fn batch_train(
        data: &MfDataset,
        config: AlsConfig,
        spec: GpuSpec,
        gpus: u32,
        incremental: IncrementalConfig,
    ) -> (HybridTrainer, TrainReport) {
        Self::batch_train_with_recorder(
            data,
            config,
            spec,
            gpus,
            incremental,
            &cumf_telemetry::NOOP,
        )
    }

    /// [`HybridTrainer::batch_train`] with a telemetry recorder observing the
    /// batch ALS phase (the incremental SGD phase is host-side and unpriced).
    pub fn batch_train_with_recorder(
        data: &MfDataset,
        config: AlsConfig,
        spec: GpuSpec,
        gpus: u32,
        incremental: IncrementalConfig,
        recorder: &dyn cumf_telemetry::Recorder,
    ) -> (HybridTrainer, TrainReport) {
        let mut trainer = AlsTrainer::with_recorder(data, config, spec, gpus, recorder);
        let report = trainer.train();
        (
            HybridTrainer {
                x: trainer.x.clone(),
                theta: trainer.theta.clone(),
                incremental,
                pending: Vec::new(),
            },
            report,
        )
    }

    /// Wrap pre-trained factors directly.
    pub fn from_factors(
        x: DenseMatrix,
        theta: DenseMatrix,
        incremental: IncrementalConfig,
    ) -> HybridTrainer {
        assert_eq!(x.cols(), theta.cols(), "factor dimensions must agree");
        HybridTrainer {
            x,
            theta,
            incremental,
            pending: Vec::new(),
        }
    }

    /// Ingest a batch of new ratings: `passes` SGD sweeps over just these
    /// events, updating only the rows/columns they touch.
    pub fn ingest(&mut self, events: &[Entry]) {
        let f = self.x.cols();
        let lr = self.incremental.lr;
        let lambda = self.incremental.lambda;
        for _ in 0..self.incremental.passes.max(1) {
            for e in events {
                let (u, v) = (e.row as usize, e.col as usize);
                assert!(
                    u < self.x.rows() && v < self.theta.rows(),
                    "event out of model bounds"
                );
                let mut err = e.value;
                for i in 0..f {
                    err -= self.x.get(u, i) * self.theta.get(v, i);
                }
                for i in 0..f {
                    let xi = self.x.get(u, i);
                    let ti = self.theta.get(v, i);
                    self.x.set(u, i, xi + lr * (err * ti - lambda * xi));
                    self.theta.set(v, i, ti + lr * (err * xi - lambda * ti));
                }
            }
        }
        self.pending.extend_from_slice(events);
    }

    /// Number of events ingested since the last batch (re)train — the
    /// trigger a deployment would watch to schedule the next ALS batch.
    pub fn pending_events(&self) -> usize {
        self.pending.len()
    }

    /// Prediction for a (user, item) pair.
    pub fn predict(&self, user: usize, item: usize) -> f32 {
        cumf_numeric::dense::dot(self.x.row(user), self.theta.row(item))
    }

    /// RMSE of the current model over a set of observations.
    pub fn rmse_over(&self, events: &[Entry]) -> f64 {
        if events.is_empty() {
            return 0.0;
        }
        let mut w = cumf_numeric::stats::Welford::new();
        for e in events {
            let err = (self.predict(e.row as usize, e.col as usize) - e.value) as f64;
            w.push(err * err);
        }
        w.root_mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_datasets::SizeClass;

    fn setup() -> (MfDataset, HybridTrainer) {
        let data = MfDataset::netflix(SizeClass::Tiny, 55);
        let cfg = AlsConfig {
            f: 8,
            iterations: 6,
            rmse_target: None,
            ..AlsConfig::for_profile(&data.profile)
        };
        let (h, report) = HybridTrainer::batch_train(
            &data,
            cfg,
            GpuSpec::maxwell_titan_x(),
            1,
            IncrementalConfig::default(),
        );
        assert!(report.final_rmse() < 1.1);
        (data, h)
    }

    #[test]
    fn ingesting_events_improves_their_fit() {
        let (data, mut h) = setup();
        // Use the held-out test ratings as the "new events" stream.
        let events: Vec<Entry> = data.test.entries().to_vec();
        let before = h.rmse_over(&events);
        for _ in 0..5 {
            h.ingest(&events);
        }
        let after = h.rmse_over(&events);
        assert!(
            after < before,
            "ingest must adapt the model: {before} → {after}"
        );
        assert_eq!(h.pending_events(), events.len() * 5);
    }

    #[test]
    fn incremental_updates_do_not_wreck_old_knowledge() {
        let (data, mut h) = setup();
        let old: Vec<Entry> = data.train_coo.entries()[..500.min(data.train_nnz())].to_vec();
        let old_before = h.rmse_over(&old);
        let events: Vec<Entry> = data.test.entries().iter().take(200).copied().collect();
        h.ingest(&events);
        let old_after = h.rmse_over(&old);
        assert!(
            old_after < old_before + 0.1,
            "catastrophic forgetting: {old_before} → {old_after}"
        );
    }

    #[test]
    fn single_event_moves_prediction_toward_value() {
        let (data, mut h) = setup();
        let e = data.test.entries()[0];
        let before = h.predict(e.row as usize, e.col as usize);
        h.ingest(std::slice::from_ref(&e));
        let after = h.predict(e.row as usize, e.col as usize);
        assert!(
            (after - e.value).abs() <= (before - e.value).abs(),
            "prediction must move toward the observation: {before} → {after} (target {})",
            e.value
        );
    }

    #[test]
    #[should_panic(expected = "out of model bounds")]
    fn out_of_range_event_panics() {
        let (_, mut h) = setup();
        h.ingest(&[Entry {
            row: u32::MAX,
            col: 0,
            value: 1.0,
        }]);
    }

    #[test]
    fn from_factors_validates_dimensions() {
        let x = DenseMatrix::zeros(3, 4);
        let theta = DenseMatrix::zeros(2, 4);
        let h = HybridTrainer::from_factors(x, theta, IncrementalConfig::default());
        assert_eq!(h.pending_events(), 0);
    }
}
