//! The ALS trainer: alternating `update-X` / `update-Θ` sweeps, each a fused
//! `get_hermitian → get_bias → solve` pass, with per-phase simulated timing
//! on a chosen GPU (or multi-GPU server).
//!
//! Functional execution is real: the factor matrices are genuinely solved
//! and test RMSE genuinely evaluated, so epochs-to-convergence comes from
//! the data. Simulated time prices each epoch at the dataset's *full-scale*
//! profile (Table II dimensions) on the chosen [`GpuSpec`] — see DESIGN.md
//! §1 and §5.

use crate::config::{AlsConfig, Precision, SolverKind};
use crate::kernels::bias::{bias_cost, bias_row};
use crate::kernels::hermitian::{
    hermitian_phases, hermitian_row, HermitianPhases, HermitianShape, HermitianWorkload,
};
use crate::kernels::solve::{solve_cost, solve_row, solve_row_traced, SolveTrace};
use crate::metrics::test_rmse;
use cumf_datasets::MfDataset;
use cumf_gpu_sim::interconnect::Interconnect;
use cumf_gpu_sim::kernel::{hermitian_pipe_efficiency, launch_time, KernelCost, LaunchTiming};
use cumf_gpu_sim::memory::{load_l1_hit_ratio, load_wire_profile, StagedLoad};
use cumf_gpu_sim::occupancy::{occupancy, KernelResources, Occupancy};
use cumf_gpu_sim::timeline::{ConvergenceCurve, SimClock};
use cumf_gpu_sim::{GpuGeneration, GpuSpec};
use cumf_numeric::dense::DenseMatrix;
use cumf_numeric::stats::XorShift64;
use cumf_numeric::sym::{packed_len, SymPacked};
use cumf_sparse::CsrMatrix;
use cumf_telemetry::{
    CounterSample, KernelLaunchRecord, PhaseSpan, Recorder, SolverExit, SolverRecord, NOOP,
};
use rayon::prelude::*;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Simulated per-phase times of one epoch (one update-X + one update-Θ).
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct EpochPhases {
    /// Global→shared staging time of both `get_hermitian` launches.
    pub load: f64,
    /// FMA time of both `get_hermitian` launches.
    pub compute: f64,
    /// `A_u` flush time of both launches.
    pub write: f64,
    /// Both `get_bias` launches.
    pub bias: f64,
    /// Both batched solves.
    pub solve: f64,
    /// Multi-GPU all-gather time (0 on one GPU).
    pub comm: f64,
}

impl EpochPhases {
    /// Total epoch time.
    pub fn total(&self) -> f64 {
        self.load + self.compute + self.write + self.bias + self.solve + self.comm
    }
}

/// One epoch's record.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct EpochReport {
    /// 1-based epoch number.
    pub epoch: u32,
    /// Cumulative simulated training time after this epoch.
    pub sim_time: f64,
    /// Test RMSE after this epoch.
    pub test_rmse: f64,
    /// This epoch's phase breakdown.
    pub phases: EpochPhases,
    /// Mean CG iterations per row this epoch (f for direct solvers).
    pub mean_cg_iters: f64,
}

/// The result of a training run.
#[derive(Clone, Debug, Serialize)]
pub struct TrainReport {
    /// Per-epoch records, in order.
    pub epochs: Vec<EpochReport>,
    /// The `(sim time, RMSE)` convergence curve (Figure 6 / 8 material).
    pub curve: ConvergenceCurve,
    /// Simulated time at which the RMSE target was reached, if it was.
    pub time_to_target: Option<f64>,
}

impl TrainReport {
    /// RMSE after the last completed epoch.
    pub fn final_rmse(&self) -> f64 {
        self.epochs
            .last()
            .map(|e| e.test_rmse)
            .unwrap_or(f64::INFINITY)
    }

    /// Total simulated training time.
    pub fn total_sim_time(&self) -> f64 {
        self.epochs.last().map(|e| e.sim_time).unwrap_or(0.0)
    }
}

/// Which factor a sweep updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Solve each `x_u` from `R` rows and `Θ`.
    X,
    /// Solve each `θ_v` from `Rᵀ` rows and `X`.
    Theta,
}

/// Price one sweep of an ALS epoch at *full-scale* profile dimensions on
/// `spec` × `gpus` — the pure cost model, usable without running the
/// functional sweep (harnesses re-price a single functional run on several
/// devices this way).
pub fn price_side(
    profile: &cumf_datasets::DatasetProfile,
    config: &AlsConfig,
    side: Side,
    spec: &GpuSpec,
    gpus: u32,
    mean_cg_iters: f64,
) -> EpochPhases {
    price_side_detailed(profile, config, side, spec, gpus, mean_cg_iters).phases
}

/// Everything [`price_side`] computes, kept at full resolution for the
/// telemetry pipeline: per-pseudo-kernel [`KernelCost`]s and
/// [`LaunchTiming`]s (load / compute / write / bias / solve), cache hit
/// ratios of the staging phase, occupancies, and communication volume.
#[derive(Clone, Debug)]
pub struct SideCosts {
    /// The condensed phase times — exactly what [`price_side`] returns.
    pub phases: EpochPhases,
    /// The raw `get_hermitian` breakdown (its occupancy included).
    pub herm: HermitianPhases,
    /// Operation counters of the global→shared staging phase.
    pub load_cost: KernelCost,
    /// Timing of the staging phase (`bound()` classifies dram/l2/latency).
    pub load_timing: LaunchTiming,
    /// Operation counters of the `Σ θθᵀ` FMA phase.
    pub compute_cost: KernelCost,
    /// Timing of the FMA phase (always compute-bound by construction).
    pub compute_timing: LaunchTiming,
    /// Operation counters of the `A_u` flush.
    pub write_cost: KernelCost,
    /// Timing of the flush (streaming-write, dram-bound).
    pub write_timing: LaunchTiming,
    /// Fraction of staged reads served by L1 under the load pattern.
    pub l1_hit_ratio: f64,
    /// Fraction of L2 wire traffic *not* going to DRAM.
    pub l2_hit_ratio: f64,
    /// Occupancy of the generic 128-thread bias / solve launches.
    pub generic_occ: Occupancy,
    /// `get_bias` operation counters.
    pub bias_cost: KernelCost,
    /// `get_bias` launch timing.
    pub bias_timing: LaunchTiming,
    /// Batched-solve operation counters.
    pub solve_cost: KernelCost,
    /// Batched-solve launch timing.
    pub solve_timing: LaunchTiming,
    /// Rows updated on this GPU at full scale (= the launch grid size).
    pub rows: u64,
    /// Bytes all-gathered after the sweep (0 on one GPU).
    pub comm_bytes: u64,
}

/// [`price_side`] at full resolution. The phase times are computed by the
/// identical sequence of operations, so `price_side_detailed(..).phases`
/// is bit-identical to `price_side(..)`.
pub fn price_side_detailed(
    profile: &cumf_datasets::DatasetProfile,
    config: &AlsConfig,
    side: Side,
    spec: &GpuSpec,
    gpus: u32,
    mean_cg_iters: f64,
) -> SideCosts {
    let f = config.f;
    let shape = HermitianShape {
        f,
        bin: config.bin,
        tile: config.tile,
    };
    let (rows_full, feat_full) = match side {
        Side::X => (profile.m, profile.n),
        Side::Theta => (profile.n, profile.m),
    };
    let g = gpus as u64;
    let w = HermitianWorkload {
        rows: rows_full.div_ceil(g),
        feature_rows: feat_full,
        nz: profile.nz / g,
    };
    let herm = hermitian_phases(spec, &w, &shape, config.load_pattern);

    let generic_occ = occupancy(
        spec,
        &KernelResources {
            regs_per_thread: 40,
            threads_per_block: 128,
            shared_mem_per_block: 0,
        },
    );
    let bias_kcost = bias_cost(spec, w.rows, w.nz, f as u64);
    let bias_timing = launch_time(spec, &generic_occ, &bias_kcost);
    let mean_iters_for_cost = match config.solver {
        SolverKind::Cg { .. } => mean_cg_iters,
        _ => f as f64,
    };
    let solve_kcost = solve_cost(
        spec,
        &config.solver,
        w.rows,
        f as u64,
        mean_iters_for_cost,
        false,
    );
    let solve_timing = launch_time(spec, &generic_occ, &solve_kcost);

    let (comm, comm_bytes) = if gpus > 1 {
        let ic = match spec.generation {
            GpuGeneration::Pascal => Interconnect::nvlink(),
            _ => Interconnect::pcie3(),
        };
        let bytes = profile.factor_bytes(rows_full);
        (ic.allgather_time(bytes, gpus), bytes)
    } else {
        (0.0, 0)
    };

    let phases = EpochPhases {
        load: herm.load.time,
        compute: herm.compute_time,
        write: herm.write_time,
        bias: bias_timing.time,
        solve: solve_timing.time,
        comm,
    };

    // Telemetry-only derived quantities below: none feed back into `phases`.
    // The load/compute/write timings are reconstructed so that each phase's
    // `time` matches the priced phase and `bound()` classifies it the same
    // way `load_time` / `hermitian_phases` decided it.
    let staged = StagedLoad {
        total_bytes: w.nz * f as u64 * 4,
        unique_bytes: w.feature_rows * f as u64 * 4,
    };
    let (wire_bytes, transactions, mlp) = load_wire_profile(config.load_pattern, &staged);
    let load_cost = KernelCost {
        flops_fp32: 0.0,
        flops_fp16: 0.0,
        dram_read_bytes: herm.load.dram_bytes,
        dram_write_bytes: 0.0,
        l2_wire_bytes: wire_bytes,
        transactions,
        mlp,
        pipe_efficiency: 1.0,
    };
    let load_timing = LaunchTiming {
        compute_time: 0.0,
        dram_time: herm.load.dram_time,
        l2_time: herm.load.l2_time,
        latency_time: herm.load.latency_time,
        time: herm.load.time,
    };
    let l1_hit_ratio = load_l1_hit_ratio(config.load_pattern);
    let l2_hit_ratio = if wire_bytes > 0.0 {
        (1.0 - herm.load.dram_bytes / wire_bytes).max(0.0)
    } else {
        0.0
    };

    let compute_cost = KernelCost::compute_only(
        2.0 * w.nz as f64 * packed_len(f) as f64,
        hermitian_pipe_efficiency(spec),
    );
    let compute_timing = LaunchTiming {
        compute_time: herm.compute_time,
        dram_time: 0.0,
        l2_time: 0.0,
        latency_time: 0.0,
        time: herm.compute_time,
    };

    let write_cost = KernelCost {
        flops_fp32: 0.0,
        flops_fp16: 0.0,
        dram_read_bytes: 0.0,
        dram_write_bytes: (w.rows * (f as u64) * (f as u64) * 4) as f64,
        l2_wire_bytes: 0.0,
        transactions: 0.0,
        mlp: 1.0,
        pipe_efficiency: 1.0,
    };
    let write_timing = LaunchTiming {
        compute_time: 0.0,
        dram_time: herm.write_time,
        l2_time: 0.0,
        latency_time: 0.0,
        time: herm.write_time,
    };

    SideCosts {
        phases,
        herm,
        load_cost,
        load_timing,
        compute_cost,
        compute_timing,
        write_cost,
        write_timing,
        l1_hit_ratio,
        l2_hit_ratio,
        generic_occ,
        bias_cost: bias_kcost,
        bias_timing,
        solve_cost: solve_kcost,
        solve_timing,
        rows: w.rows,
        comm_bytes,
    }
}

/// Telemetry name of the configured batched solver kernel.
pub fn solver_kernel_name(solver: &SolverKind) -> &'static str {
    match solver {
        SolverKind::BatchCholesky => "solve_cholesky",
        SolverKind::BatchLu => "solve_lu",
        SolverKind::Cg {
            precision: Precision::Fp32,
            ..
        } => "solve_cg_fp32",
        SolverKind::Cg {
            precision: Precision::Fp16,
            ..
        } => "solve_cg_fp16",
    }
}

/// Price a whole ALS epoch (update-X + update-Θ).
pub fn price_epoch(
    profile: &cumf_datasets::DatasetProfile,
    config: &AlsConfig,
    spec: &GpuSpec,
    gpus: u32,
    mean_cg_iters: f64,
) -> EpochPhases {
    let px = price_side(profile, config, Side::X, spec, gpus, mean_cg_iters);
    let pt = price_side(profile, config, Side::Theta, spec, gpus, mean_cg_iters);
    EpochPhases {
        load: px.load + pt.load,
        compute: px.compute + pt.compute,
        write: px.write + pt.write,
        bias: px.bias + pt.bias,
        solve: px.solve + pt.solve,
        comm: px.comm + pt.comm,
    }
}

/// Functional-sweep counters gathered for one side's [`SolverRecord`].
struct SweepCounts {
    rows: u64,
    total_cg_iters: u64,
    max_cg_iters: u64,
    rows_converged: u64,
    rows_capped: u64,
}

/// The cuMF_ALS trainer.
pub struct AlsTrainer<'a> {
    data: &'a MfDataset,
    config: AlsConfig,
    spec: GpuSpec,
    gpus: u32,
    /// User factors, `m × f`.
    pub x: DenseMatrix,
    /// Item factors, `n × f`.
    pub theta: DenseMatrix,
    clock: SimClock,
    recorder: &'a dyn Recorder,
    epochs_run: u32,
    interconnect_bytes: f64,
}

impl<'a> AlsTrainer<'a> {
    /// Create a trainer over `data` on `gpus` devices of type `spec`.
    ///
    /// Factors are initialized so that `x_uᵀθ_v` starts near the dataset's
    /// mean value (the standard ALS warm init), with seeded jitter.
    pub fn new(data: &'a MfDataset, config: AlsConfig, spec: GpuSpec, gpus: u32) -> Self {
        assert!(gpus >= 1, "need at least one GPU");
        let f = config.f;
        let mut rng = XorShift64::new(config.seed);
        let center = (data.profile.value_mean.max(0.01) / f as f32).sqrt();
        let mut x = DenseMatrix::zeros(data.m(), f);
        let mut theta = DenseMatrix::zeros(data.n(), f);
        let jitter = center * 0.5;
        x.fill_with(|| center + (rng.next_f32() - 0.5) * jitter);
        theta.fill_with(|| center + (rng.next_f32() - 0.5) * jitter);
        AlsTrainer {
            data,
            config,
            spec,
            gpus,
            x,
            theta,
            clock: SimClock::new(),
            recorder: &NOOP,
            epochs_run: 0,
            interconnect_bytes: 0.0,
        }
    }

    /// [`AlsTrainer::new`] with a telemetry recorder attached from the start.
    pub fn with_recorder(
        data: &'a MfDataset,
        config: AlsConfig,
        spec: GpuSpec,
        gpus: u32,
        recorder: &'a dyn Recorder,
    ) -> Self {
        let mut t = Self::new(data, config, spec, gpus);
        t.recorder = recorder;
        t
    }

    /// Attach a telemetry recorder; subsequent epochs emit kernel launches,
    /// phase spans, solver records and counters. Recording only observes the
    /// simulation — with the default no-op recorder the trainer's sim times
    /// and factors are bit-identical to an uninstrumented run.
    pub fn set_recorder(&mut self, recorder: &'a dyn Recorder) {
        self.recorder = recorder;
    }

    /// Borrow the config.
    pub fn config(&self) -> &AlsConfig {
        &self.config
    }

    /// The simulated clock (phase attribution is cumulative over training).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Run the configured number of ALS iterations (stopping early at the
    /// RMSE target if one is set), returning the full report.
    pub fn train(&mut self) -> TrainReport {
        let mut epochs = Vec::with_capacity(self.config.iterations);
        let mut curve = ConvergenceCurve::new(format!("cuMFALS@{}x{}", self.gpus, self.spec.name));
        let mut time_to_target = None;

        for epoch in 1..=self.config.iterations as u32 {
            let (phases, mean_cg) = self.run_epoch();
            let rmse = test_rmse(&self.x, &self.theta, &self.data.test);
            if self.recorder.enabled() {
                // RMSE evaluation runs host-side in cuMF; mark it as a
                // zero-length instant on the simulated timeline.
                let now = self.clock.now();
                self.recorder.phase(PhaseSpan::new("rmse-eval", now, now));
            }
            let report = EpochReport {
                epoch,
                sim_time: self.clock.now(),
                test_rmse: rmse,
                phases,
                mean_cg_iters: mean_cg,
            };
            curve.push(report.sim_time, epoch, rmse);
            epochs.push(report);
            if let Some(target) = self.config.rmse_target {
                if rmse <= target && time_to_target.is_none() {
                    time_to_target = Some(self.clock.now());
                    break;
                }
            }
        }
        TrainReport {
            epochs,
            curve,
            time_to_target,
        }
    }

    /// One ALS iteration: update-X then update-Θ. Returns the epoch's phase
    /// breakdown and the mean CG iteration count across both sweeps.
    pub fn run_epoch(&mut self) -> (EpochPhases, f64) {
        let t0 = self.clock.now();
        if self.recorder.enabled() {
            self.recorder.counter(CounterSample::new(
                "device_mem_bytes",
                t0,
                self.device_bytes_per_gpu() as f64,
            ));
        }
        let (px, cg_x) = self.update_side(Side::X, t0);
        let (pt, cg_t) = self.update_side(Side::Theta, t0 + px.total());
        let phases = EpochPhases {
            load: px.load + pt.load,
            compute: px.compute + pt.compute,
            write: px.write + pt.write,
            bias: px.bias + pt.bias,
            solve: px.solve + pt.solve,
            comm: px.comm + pt.comm,
        };
        self.clock.advance("load", phases.load);
        self.clock.advance("compute", phases.compute);
        self.clock.advance("write", phases.write);
        self.clock.advance("bias", phases.bias);
        self.clock.advance("solve", phases.solve);
        self.clock.advance("comm", phases.comm);
        self.epochs_run += 1;
        (phases, (cg_x + cg_t) / 2.0)
    }

    /// One fused sweep. Functionally updates the factor matrix; returns the
    /// priced phases (at full-scale profile dimensions) and the measured
    /// mean CG iterations. `t0` is the simulated instant the sweep starts —
    /// kernel records and phase spans are laid out sequentially from it.
    fn update_side(&mut self, side: Side, t0: f64) -> (EpochPhases, f64) {
        let f = self.config.f;
        let shape = HermitianShape {
            f,
            bin: self.config.bin,
            tile: self.config.tile,
        };
        let (r, features): (&CsrMatrix, &DenseMatrix) = match side {
            Side::X => (&self.data.r, &self.theta),
            Side::Theta => (&self.data.rt, &self.x),
        };
        let lambda = self.config.lambda;
        let solver = self.config.solver;
        let tracing = self.recorder.enabled();

        // --- functional sweep (fused hermitian + bias + solve per row) ---
        let total_cg_iters = AtomicU64::new(0);
        let max_cg_iters = AtomicU64::new(0);
        let rows_converged = AtomicU64::new(0);
        let rows_capped = AtomicU64::new(0);
        let mut new_factors = DenseMatrix::zeros(r.rows(), f);
        let old_factors: &DenseMatrix = match side {
            Side::X => &self.x,
            Side::Theta => &self.theta,
        };
        new_factors
            .as_mut_slice()
            .par_chunks_mut(f)
            .enumerate()
            .for_each_init(
                || {
                    (
                        SymPacked::zeros(f),
                        Vec::with_capacity(shape.bin * f),
                        vec![0.0f32; f],
                    )
                },
                |(a, staging, b), (u, out_row)| {
                    let cols = r.row_cols(u);
                    if cols.is_empty() {
                        // No observations: the regularized optimum is 0.
                        out_row.fill(0.0);
                        return;
                    }
                    hermitian_row(cols, features, lambda, &shape, staging, a);
                    bias_row(cols, r.row_values(u), features, b);
                    // Warm start from the previous sweep's factors.
                    out_row.copy_from_slice(old_factors.row(u));
                    let stats = solve_row(&solver, a, out_row, b);
                    total_cg_iters.fetch_add(stats.iterations as u64, Ordering::Relaxed);
                    if tracing {
                        max_cg_iters.fetch_max(stats.iterations as u64, Ordering::Relaxed);
                        if stats.converged {
                            rows_converged.fetch_add(1, Ordering::Relaxed);
                        } else {
                            rows_capped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                },
            );

        // Representative-row trace: re-solve the first populated row on
        // scratch buffers (before the factor swap, so the warm start matches
        // what the sweep saw). Pure observation — results are discarded.
        let mut solve_trace = SolveTrace::default();
        if tracing {
            if let Some(u) = (0..r.rows()).find(|&u| !r.row_cols(u).is_empty()) {
                let mut a = SymPacked::zeros(f);
                let mut staging = Vec::with_capacity(shape.bin * f);
                let mut b = vec![0.0f32; f];
                let mut x_row = old_factors.row(u).to_vec();
                hermitian_row(
                    r.row_cols(u),
                    features,
                    lambda,
                    &shape,
                    &mut staging,
                    &mut a,
                );
                bias_row(r.row_cols(u), r.row_values(u), features, &mut b);
                solve_row_traced(&solver, &a, &mut x_row, &b, &mut solve_trace);
            }
        }

        match side {
            Side::X => self.x = new_factors,
            Side::Theta => self.theta = new_factors,
        }
        let functional_rows = r.rows() as u64;
        let mean_cg = total_cg_iters.load(Ordering::Relaxed) as f64 / r.rows().max(1) as f64;

        // --- cost model at full-scale dimensions ---
        let costs = price_side_detailed(
            &self.data.profile,
            &self.config,
            side,
            &self.spec,
            self.gpus,
            mean_cg,
        );
        if tracing {
            self.emit_side_telemetry(
                side,
                t0,
                &costs,
                mean_cg,
                &solve_trace,
                SweepCounts {
                    rows: functional_rows,
                    total_cg_iters: total_cg_iters.load(Ordering::Relaxed),
                    max_cg_iters: max_cg_iters.load(Ordering::Relaxed),
                    rows_converged: rows_converged.load(Ordering::Relaxed),
                    rows_capped: rows_capped.load(Ordering::Relaxed),
                },
            );
        }
        (costs.phases, mean_cg)
    }

    /// Emit one sweep's telemetry: three `get_hermitian` pseudo-kernels, the
    /// bias and solve launches, the all-gather (multi-GPU), phase spans over
    /// each group, the batch [`SolverRecord`], and the cumulative
    /// interconnect-traffic counter. Events are stamped sequentially from
    /// `t0`, mirroring how `run_epoch` advances the [`SimClock`].
    fn emit_side_telemetry(
        &mut self,
        side: Side,
        t0: f64,
        costs: &SideCosts,
        mean_cg: f64,
        solve_trace: &SolveTrace,
        counts: SweepCounts,
    ) {
        let rec = self.recorder;
        let label = match side {
            Side::X => "X",
            Side::Theta => "Theta",
        };
        let p = &costs.phases;
        let grid = costs.rows;

        let mut t = t0;
        rec.kernel(
            KernelLaunchRecord::new(
                "get_hermitian.load",
                &self.spec,
                costs.herm.occupancy,
                costs.load_cost,
                costs.load_timing,
                t,
                grid,
                64,
            )
            .with_cache_hit_ratios(costs.l1_hit_ratio, costs.l2_hit_ratio),
        );
        t += p.load;
        rec.kernel(KernelLaunchRecord::new(
            "get_hermitian.compute",
            &self.spec,
            costs.herm.occupancy,
            costs.compute_cost,
            costs.compute_timing,
            t,
            grid,
            64,
        ));
        t += p.compute;
        rec.kernel(KernelLaunchRecord::new(
            "get_hermitian.write",
            &self.spec,
            costs.herm.occupancy,
            costs.write_cost,
            costs.write_timing,
            t,
            grid,
            64,
        ));
        t += p.write;
        rec.phase(PhaseSpan::new(format!("get_hermitian-{label}"), t0, t));

        let bias_start = t;
        rec.kernel(KernelLaunchRecord::new(
            "get_bias",
            &self.spec,
            costs.generic_occ,
            costs.bias_cost,
            costs.bias_timing,
            t,
            grid,
            128,
        ));
        t += p.bias;
        rec.phase(PhaseSpan::new(format!("get_bias-{label}"), bias_start, t));

        let solve_start = t;
        let solver_name = solver_kernel_name(&self.config.solver);
        rec.kernel(KernelLaunchRecord::new(
            solver_name,
            &self.spec,
            costs.generic_occ,
            costs.solve_cost,
            costs.solve_timing,
            t,
            grid,
            128,
        ));
        t += p.solve;
        rec.phase(PhaseSpan::new(format!("solve-{label}"), solve_start, t));

        let is_cg = matches!(self.config.solver, SolverKind::Cg { .. });
        let exit = if !is_cg {
            SolverExit::Direct
        } else if counts.rows_capped > counts.rows_converged {
            SolverExit::IterationCap
        } else {
            SolverExit::Converged
        };
        rec.solver(SolverRecord {
            solver: solver_name.into(),
            side: label.into(),
            epoch: self.epochs_run,
            rows: counts.rows,
            total_cg_iters: if is_cg { counts.total_cg_iters } else { 0 },
            mean_cg_iters: mean_cg,
            max_cg_iters: counts.max_cg_iters as u32,
            rows_converged: counts.rows_converged,
            rows_iteration_capped: counts.rows_capped,
            exit,
            residual_trajectory: solve_trace.residuals.clone(),
            fp16_roundtrip_rms: solve_trace.fp16_roundtrip_rms,
            fp16_roundtrip_max: solve_trace.fp16_roundtrip_max,
            sim_time: t,
        });

        if p.comm > 0.0 {
            let comm_start = t;
            let comm_cost = KernelCost {
                flops_fp32: 0.0,
                flops_fp16: 0.0,
                dram_read_bytes: costs.comm_bytes as f64,
                dram_write_bytes: 0.0,
                l2_wire_bytes: 0.0,
                transactions: 0.0,
                mlp: 1.0,
                pipe_efficiency: 1.0,
            };
            let comm_timing = LaunchTiming {
                compute_time: 0.0,
                dram_time: p.comm,
                l2_time: 0.0,
                latency_time: 0.0,
                time: p.comm,
            };
            rec.kernel(KernelLaunchRecord::new(
                "nccl_allgather",
                &self.spec,
                costs.generic_occ,
                comm_cost,
                comm_timing,
                comm_start,
                self.gpus as u64,
                1,
            ));
            t += p.comm;
            rec.phase(PhaseSpan::new(format!("comm-{label}"), comm_start, t));
            self.interconnect_bytes += costs.comm_bytes as f64;
            rec.counter(CounterSample::new(
                "interconnect_bytes",
                t,
                self.interconnect_bytes,
            ));
        }
    }

    /// Peak device-memory demand per GPU at full scale: the factor matrices
    /// (X sliced, Θ full for update-X and vice versa), the rating slice, and
    /// the staged Gram matrices. Used by harnesses to check Table III
    /// capacity (Hugewiki does not fit one 12 GB GPU — the reason the paper
    /// runs it on four).
    pub fn device_bytes_per_gpu(&self) -> u64 {
        let p = &self.data.profile;
        let f = self.config.f as u64;
        let g = self.gpus as u64;
        let factors = (p.m.div_ceil(g) + p.n) * f * 4;
        let ratings = p.nz / g * 8; // value + column index
        let grams_in_flight = 4096 * f * f * 4; // solver batch window
        factors + ratings + grams_in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Precision;
    use cumf_datasets::SizeClass;

    fn tiny() -> MfDataset {
        MfDataset::netflix(SizeClass::Tiny, 77)
    }

    fn fast_config(data: &MfDataset, solver: SolverKind) -> AlsConfig {
        AlsConfig {
            f: 8,
            iterations: 5,
            solver,
            rmse_target: None,
            ..AlsConfig::for_profile(&data.profile)
        }
    }

    #[test]
    fn rmse_decreases_over_epochs() {
        let data = tiny();
        let mut t = AlsTrainer::new(
            &data,
            fast_config(&data, SolverKind::cumf_default()),
            GpuSpec::maxwell_titan_x(),
            1,
        );
        let report = t.train();
        let first = report.epochs.first().unwrap().test_rmse;
        let last = report.final_rmse();
        assert!(last < first, "RMSE should fall: {first} → {last}");
        assert!(last < 1.1, "tiny Netflix should fit well, got {last}");
    }

    #[test]
    fn objective_monotone_under_exact_solver() {
        let data = tiny();
        let config = fast_config(&data, SolverKind::BatchCholesky);
        let mut t = AlsTrainer::new(&data, config, GpuSpec::maxwell_titan_x(), 1);
        let mut prev = f64::INFINITY;
        for _ in 0..4 {
            t.run_epoch();
            let obj = crate::metrics::training_objective(&data.r, &t.x, &t.theta, 0.05);
            assert!(obj <= prev * (1.0 + 1e-6), "objective rose: {prev} → {obj}");
            prev = obj;
        }
    }

    #[test]
    fn cg_and_direct_converge_to_similar_rmse() {
        // Solution 3's claim: truncated CG does not hurt ALS convergence.
        let data = tiny();
        let spec = GpuSpec::maxwell_titan_x();
        let mut exact = AlsTrainer::new(
            &data,
            fast_config(&data, SolverKind::BatchCholesky),
            spec.clone(),
            1,
        );
        let mut approx = AlsTrainer::new(
            &data,
            fast_config(
                &data,
                SolverKind::Cg {
                    fs: 4,
                    tolerance: 1e-4,
                    precision: Precision::Fp32,
                },
            ),
            spec,
            1,
        );
        let re = exact.train();
        let ra = approx.train();
        assert!(
            (re.final_rmse() - ra.final_rmse()).abs() < 0.05,
            "exact {} vs cg {}",
            re.final_rmse(),
            ra.final_rmse()
        );
    }

    #[test]
    fn fp16_matches_fp32_convergence() {
        let data = tiny();
        let spec = GpuSpec::pascal_p100();
        let cg32 = SolverKind::Cg {
            fs: 6,
            tolerance: 1e-4,
            precision: Precision::Fp32,
        };
        let cg16 = SolverKind::Cg {
            fs: 6,
            tolerance: 1e-4,
            precision: Precision::Fp16,
        };
        let r32 = AlsTrainer::new(&data, fast_config(&data, cg32), spec.clone(), 1).train();
        let r16 = AlsTrainer::new(&data, fast_config(&data, cg16), spec, 1).train();
        assert!((r32.final_rmse() - r16.final_rmse()).abs() < 0.05);
    }

    #[test]
    fn simulated_time_uses_full_scale_profile() {
        // Tiny synthetic instance, but per-epoch time must reflect Netflix's
        // 99M ratings: well over 100 ms per epoch on Maxwell.
        let data = tiny();
        let mut cfg = fast_config(&data, SolverKind::cumf_default());
        cfg.f = 100;
        let mut t = AlsTrainer::new(&data, cfg, GpuSpec::maxwell_titan_x(), 1);
        let (phases, _) = t.run_epoch();
        assert!(phases.total() > 0.1, "epoch priced at {}", phases.total());
        assert!(phases.total() < 100.0);
    }

    #[test]
    fn pascal_is_faster_than_kepler() {
        let data = tiny();
        let cfg = fast_config(&data, SolverKind::cumf_default());
        let (pk, _) = AlsTrainer::new(&data, cfg.clone(), GpuSpec::kepler_k40(), 1).run_epoch();
        let (pp, _) = AlsTrainer::new(&data, cfg, GpuSpec::pascal_p100(), 1).run_epoch();
        assert!(pp.total() < pk.total());
    }

    #[test]
    fn multi_gpu_divides_compute_and_adds_comm() {
        let data = tiny();
        let cfg = fast_config(&data, SolverKind::cumf_default());
        let (p1, _) = AlsTrainer::new(&data, cfg.clone(), GpuSpec::pascal_p100(), 1).run_epoch();
        let (p4, _) = AlsTrainer::new(&data, cfg, GpuSpec::pascal_p100(), 4).run_epoch();
        assert_eq!(p1.comm, 0.0);
        assert!(p4.comm > 0.0);
        assert!(
            p4.compute < p1.compute / 3.0,
            "compute should split ~4 ways"
        );
    }

    #[test]
    fn early_stop_at_target() {
        let data = tiny();
        let mut cfg = fast_config(&data, SolverKind::cumf_default());
        cfg.iterations = 30;
        cfg.rmse_target = Some(1.0); // loose target reached quickly
        let mut t = AlsTrainer::new(&data, cfg, GpuSpec::maxwell_titan_x(), 1);
        let report = t.train();
        assert!(report.time_to_target.is_some());
        assert!(report.epochs.len() < 30, "should stop early");
        assert_eq!(report.time_to_target, report.curve.time_to_rmse(1.0));
    }

    #[test]
    fn hugewiki_does_not_fit_one_maxwell() {
        // Table III motivation for 4 GPUs on Hugewiki.
        let data = MfDataset::hugewiki(SizeClass::Tiny, 1);
        let cfg = AlsConfig {
            f: 100,
            iterations: 1,
            ..AlsConfig::for_profile(&data.profile)
        };
        let t1 = AlsTrainer::new(&data, cfg.clone(), GpuSpec::maxwell_titan_x(), 1);
        assert!(t1.device_bytes_per_gpu() > GpuSpec::maxwell_titan_x().dram_capacity);
        let t4 = AlsTrainer::new(&data, cfg, GpuSpec::maxwell_titan_x(), 4);
        assert!(t4.device_bytes_per_gpu() < GpuSpec::maxwell_titan_x().dram_capacity);
    }
}
