//! Property-based tests on the cuMF_ALS kernels.

use cumf_als::kernels::bias::bias_row;
use cumf_als::kernels::hermitian::{
    hermitian_row, hermitian_row_reference, tiled_rank1_update, HermitianShape,
};
use cumf_als::kernels::solve::solve_row;
use cumf_als::{Precision, SolverKind};
use cumf_numeric::dense::DenseMatrix;
use cumf_numeric::sym::{packed_len, SymPacked};
use proptest::prelude::*;

fn features(rows: usize, f: usize) -> impl Strategy<Value = DenseMatrix> {
    prop::collection::vec(-1.0f32..1.0, rows * f)
        .prop_map(move |data| DenseMatrix::from_vec(rows, f, data))
}

proptest! {
    /// Tiled rank-1 accumulation is bitwise identical to the plain update
    /// for any tile size, including non-dividing ones.
    #[test]
    fn tiling_invariance(
        theta in prop::collection::vec(-2.0f32..2.0, 1..40),
        tile in 1usize..12,
    ) {
        let f = theta.len();
        let mut tiled = vec![0.0f32; packed_len(f)];
        tiled_rank1_update(&mut tiled, &theta, tile);
        let mut reference = SymPacked::zeros(f);
        reference.syr(&theta);
        prop_assert_eq!(&tiled[..], reference.as_slice());
    }

    /// Staged (BIN-batched) accumulation is bitwise identical to the
    /// reference regardless of BIN and tile geometry.
    #[test]
    fn staging_invariance(
        feats in features(20, 9),
        cols in prop::collection::vec(0u32..20, 0..30),
        bin in 1usize..8,
        tile in 1usize..6,
        lambda in 0.0f32..1.0,
    ) {
        let shape = HermitianShape { f: 9, bin, tile };
        let mut staging = Vec::new();
        let mut a = SymPacked::zeros(9);
        hermitian_row(&cols, &feats, lambda, &shape, &mut staging, &mut a);
        let reference = hermitian_row_reference(&cols, &feats, lambda, 9);
        prop_assert_eq!(a.as_slice(), reference.as_slice());
    }

    /// A_u is positive semidefinite plus λ·n_u on the diagonal: every
    /// solve_row solver produces a solution with small residual.
    #[test]
    fn solvers_consistent_on_generated_rows(
        feats in features(15, 6),
        cols in prop::collection::vec(0u32..15, 1..15),
    ) {
        let a = hermitian_row_reference(&cols, &feats, 0.1, 6);
        let values: Vec<f32> = cols.iter().map(|&c| 1.0 + (c % 5) as f32).collect();
        let mut b = vec![0.0f32; 6];
        bias_row(&cols, &values, &feats, &mut b);

        let mut x_direct = vec![0.0f32; 6];
        solve_row(&SolverKind::BatchCholesky, &a, &mut x_direct, &b);
        let mut x_cg = vec![0.0f32; 6];
        solve_row(&SolverKind::Cg { fs: 12, tolerance: 1e-7, precision: Precision::Fp32 }, &a, &mut x_cg, &b);

        for i in 0..6 {
            let tol = 1e-2f32.max(2e-2 * x_direct[i].abs());
            prop_assert!((x_direct[i] - x_cg[i]).abs() < tol,
                "dim {}: direct {} vs cg {}", i, x_direct[i], x_cg[i]);
        }
        // Residual check for the direct solve.
        let mut ax = vec![0.0f32; 6];
        a.matvec(&x_direct, &mut ax);
        for i in 0..6 {
            let tol = 1e-3f32.max(1e-3 * b[i].abs());
            prop_assert!((ax[i] - b[i]).abs() < tol);
        }
    }

    /// bias_row is linear in the rating values.
    #[test]
    fn bias_linearity(
        feats in features(10, 5),
        cols in prop::collection::vec(0u32..10, 1..10),
        scale in 0.5f32..3.0,
    ) {
        let v1: Vec<f32> = cols.iter().map(|&c| (c % 7) as f32 * 0.5 + 0.1).collect();
        let v2: Vec<f32> = v1.iter().map(|x| x * scale).collect();
        let mut b1 = vec![0.0f32; 5];
        let mut b2 = vec![0.0f32; 5];
        bias_row(&cols, &v1, &feats, &mut b1);
        bias_row(&cols, &v2, &feats, &mut b2);
        for i in 0..5 {
            prop_assert!((b2[i] - b1[i] * scale).abs() < 1e-3 * (1.0 + b2[i].abs()));
        }
    }

    /// Column order never matters: A_u and b_u are permutation-invariant
    /// (up to FP addition order — tested with exactly representable values).
    #[test]
    fn permutation_invariance(perm_seed in 0u64..1000) {
        let f = 6;
        // Quarter-integer features are exact in f32 sums of this size.
        let mut feats = DenseMatrix::zeros(12, f);
        let mut v = 0.25f32;
        feats.fill_with(|| {
            v = if v > 2.0 { 0.25 } else { v + 0.25 };
            v
        });
        let mut cols: Vec<u32> = (0..12).collect();
        // Fisher–Yates with the seed.
        let mut rng = cumf_numeric::stats::XorShift64::new(perm_seed + 1);
        for i in (1..cols.len()).rev() {
            cols.swap(i, rng.next_below(i + 1));
        }
        let sorted: Vec<u32> = (0..12).collect();
        let a1 = hermitian_row_reference(&cols, &feats, 0.5, f);
        let a2 = hermitian_row_reference(&sorted, &feats, 0.5, f);
        prop_assert_eq!(a1.as_slice(), a2.as_slice());
    }
}
