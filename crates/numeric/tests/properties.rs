//! Property-based tests for the numeric substrate.

use cumf_numeric::cg::{cg_solve, MatVec};
use cumf_numeric::cholesky::cholesky_solve;
use cumf_numeric::dense::{dot_f64, DenseMatrix};
use cumf_numeric::f16::F16;
use cumf_numeric::lu::lu_solve;
use cumf_numeric::stats::Welford;
use cumf_numeric::sym::{packed_index, packed_len, SymPacked};
use proptest::prelude::*;

/// Finite, moderately sized floats that stay well inside f16's normal range.
fn small_f32() -> impl Strategy<Value = f32> {
    (-2000i32..=2000i32).prop_map(|i| i as f32 / 8.0)
}

fn any_normal_f32() -> impl Strategy<Value = f32> {
    prop::num::f32::NORMAL.prop_filter("within f16 range magnitude", |x| {
        x.abs() >= 2.0f32.powi(-14) && x.abs() <= 60000.0
    })
}

fn spd_matrix(dim: usize) -> impl Strategy<Value = SymPacked> {
    prop::collection::vec(prop::collection::vec(-1.0f32..1.0, dim), dim + 2).prop_map(move |vs| {
        let mut a = SymPacked::zeros(dim);
        for v in &vs {
            a.syr(v);
        }
        a.add_diagonal(1.0);
        a
    })
}

proptest! {
    /// Round-tripping through f16 keeps relative error within the unit
    /// roundoff 2⁻¹¹ for all normal-range values.
    #[test]
    fn f16_round_trip_error_bound(x in any_normal_f32()) {
        let r = F16::from_f32(x).to_f32();
        let err = (r - x).abs() / x.abs();
        prop_assert!(err <= 2.0f32.powi(-11), "x={x} r={r} err={err}");
    }

    /// Widening any bit pattern and narrowing it back is the identity
    /// (f32 has strictly more precision and range than f16).
    #[test]
    fn f16_widen_narrow_identity(bits in any::<u16>()) {
        let h = F16::from_bits(bits);
        let back = F16::from_f32(h.to_f32());
        if h.is_nan() {
            prop_assert!(back.is_nan());
        } else {
            prop_assert_eq!(h, back);
        }
    }

    /// f16 narrowing is monotone: a ≤ b implies f16(a) ≤ f16(b).
    #[test]
    fn f16_narrowing_monotone(a in small_f32(), b in small_f32()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }

    /// packed_index is a bijection from the lower triangle to 0..packed_len.
    #[test]
    fn packed_index_bijection(dim in 1usize..20) {
        let mut seen = vec![false; packed_len(dim)];
        for i in 0..dim {
            for j in 0..=i {
                let k = packed_index(i, j);
                prop_assert!(!seen[k], "duplicate index at ({},{})", i, j);
                seen[k] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Symmetric matvec agrees with the dense expansion.
    #[test]
    fn sym_matvec_matches_dense(a in spd_matrix(7), x in prop::collection::vec(-2.0f32..2.0, 7)) {
        let mut y1 = vec![0.0; 7];
        let mut y2 = vec![0.0; 7];
        a.matvec(&x, &mut y1);
        a.to_dense().matvec(&x, &mut y2);
        for i in 0..7 {
            prop_assert!((y1[i] - y2[i]).abs() < 1e-4);
        }
    }

    /// Cholesky solve of a random SPD system leaves a tiny residual.
    #[test]
    fn cholesky_residual(a in spd_matrix(8), b in prop::collection::vec(-2.0f32..2.0, 8)) {
        let x = cholesky_solve(&a, &b).unwrap();
        let mut ax = vec![0.0; 8];
        a.matvec(&x, &mut ax);
        for i in 0..8 {
            prop_assert!((ax[i] - b[i]).abs() < 1e-3, "row {}: {} vs {}", i, ax[i], b[i]);
        }
    }

    /// LU and Cholesky agree on SPD systems.
    #[test]
    fn lu_matches_cholesky(a in spd_matrix(6), b in prop::collection::vec(-2.0f32..2.0, 6)) {
        let xc = cholesky_solve(&a, &b).unwrap();
        let xl = lu_solve(&a.to_dense(), &b).unwrap();
        for i in 0..6 {
            prop_assert!((xc[i] - xl[i]).abs() < 1e-3);
        }
    }

    /// CG with fs = dim reaches the direct solution (finite termination).
    #[test]
    fn cg_finite_termination(a in spd_matrix(6), b in prop::collection::vec(-2.0f32..2.0, 6)) {
        let exact = cholesky_solve(&a, &b).unwrap();
        let mut x = vec![0.0; 6];
        cg_solve(&a, &mut x, &b, 12, 1e-7);
        for i in 0..6 {
            prop_assert!((x[i] - exact[i]).abs() < 5e-2, "i {}: {} vs {}", i, x[i], exact[i]);
        }
    }

    /// Each CG iteration never increases the A-norm error (CG optimality).
    #[test]
    fn cg_energy_monotone(a in spd_matrix(5), b in prop::collection::vec(-2.0f32..2.0, 5)) {
        let exact = cholesky_solve(&a, &b).unwrap();
        let energy = |x: &[f32]| {
            let e: Vec<f32> = x.iter().zip(&exact).map(|(xi, ei)| xi - ei).collect();
            let mut ae = vec![0.0; 5];
            a.matvec(&e, &mut ae);
            dot_f64(&ae, &e)
        };
        let mut prev = f64::INFINITY;
        for fs in 1..=5 {
            let mut x = vec![0.0; 5];
            cg_solve(&a, &mut x, &b, fs, 0.0);
            let cur = energy(&x);
            prop_assert!(cur <= prev * (1.0 + 1e-3) + 1e-6, "fs={}: {} > {}", fs, cur, prev);
            prev = cur;
        }
    }

    /// Welford merge is associative with sequential push (within fp tolerance).
    #[test]
    fn welford_merge_associativity(xs in prop::collection::vec(-100.0f64..100.0, 1..200), split in 0usize..200) {
        let split = split % (xs.len() + 1);
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = Welford::new();
        let mut b = Welford::new();
        xs[..split].iter().for_each(|&x| a.push(x));
        xs[split..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-4);
    }

    /// gemm_nt against hand-rolled triple loop.
    #[test]
    fn gemm_nt_reference(
        a in prop::collection::vec(-2.0f32..2.0, 12),
        b in prop::collection::vec(-2.0f32..2.0, 8),
    ) {
        let ma = DenseMatrix::from_vec(3, 4, a);
        let mb = DenseMatrix::from_vec(2, 4, b);
        let c = ma.gemm_nt(&mb);
        for i in 0..3 {
            for j in 0..2 {
                let mut s = 0.0f32;
                for k in 0..4 {
                    s += ma.get(i, k) * mb.get(j, k);
                }
                prop_assert!((c.get(i, j) - s).abs() < 1e-4);
            }
        }
    }

    /// MatVec through the trait object path equals the inherent method.
    #[test]
    fn matvec_trait_consistency(a in spd_matrix(5), x in prop::collection::vec(-1.0f32..1.0, 5)) {
        let mut y1 = vec![0.0; 5];
        let mut y2 = vec![0.0; 5];
        a.matvec(&x, &mut y1);
        MatVec::matvec(&a, &x, &mut y2);
        prop_assert_eq!(y1, y2);
    }
}
