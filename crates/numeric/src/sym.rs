//! Symmetric matrices in lower-triangular packed storage.
//!
//! The Gram matrix `A_u = Σ θ_v θ_vᵀ + λ n_{x_u} I` built by
//! `get_hermitian` is symmetric, and the paper's kernel exploits this by only
//! computing tiles with `x ≤ y` (Figure 2). [`SymPacked`] is the host-side
//! mirror of that layout: `f(f+1)/2` elements, lower triangle, row by row.
//!
//! Packed storage index for `(i, j)` with `i ≥ j`: `i(i+1)/2 + j`.

use crate::dense::DenseMatrix;
use crate::f16::F16;

/// A symmetric `dim × dim` matrix stored as its packed lower triangle.
#[derive(Clone, Debug, PartialEq)]
pub struct SymPacked {
    dim: usize,
    data: Vec<f32>,
}

/// Number of packed elements for a symmetric matrix of dimension `dim`.
#[inline]
pub fn packed_len(dim: usize) -> usize {
    dim * (dim + 1) / 2
}

/// Packed index of element `(i, j)`; arguments are swapped if `j > i`.
#[inline]
pub fn packed_index(i: usize, j: usize) -> usize {
    if i >= j {
        i * (i + 1) / 2 + j
    } else {
        j * (j + 1) / 2 + i
    }
}

impl SymPacked {
    /// The zero matrix of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        SymPacked {
            dim,
            data: vec![0.0; packed_len(dim)],
        }
    }

    /// Build from a packed lower-triangle buffer.
    pub fn from_packed(dim: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), packed_len(dim), "SymPacked::from_packed: size");
        SymPacked { dim, data }
    }

    /// Dimension of the matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow the packed buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the packed buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor (either triangle).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.dim && j < self.dim);
        self.data[packed_index(i, j)]
    }

    /// Element setter (sets the mirrored element implicitly).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.dim && j < self.dim);
        self.data[packed_index(i, j)] = v;
    }

    /// Rank-1 update `self ← self + v vᵀ` touching only the lower triangle —
    /// the innermost operation of `get_hermitian`.
    pub fn syr(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "syr: vector length");
        for i in 0..self.dim {
            let vi = v[i];
            let row = &mut self.data[i * (i + 1) / 2..i * (i + 1) / 2 + i + 1];
            for (j, cell) in row.iter_mut().enumerate() {
                *cell += vi * v[j];
            }
        }
    }

    /// Scaled rank-1 update `self ← self + w · v vᵀ` — the confidence-
    /// weighted accumulation of implicit-feedback ALS (`(c_uv − 1) θθᵀ`).
    pub fn syr_scaled(&mut self, w: f32, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "syr_scaled: vector length");
        for i in 0..self.dim {
            let wvi = w * v[i];
            let row = &mut self.data[i * (i + 1) / 2..i * (i + 1) / 2 + i + 1];
            for (j, cell) in row.iter_mut().enumerate() {
                *cell += wvi * v[j];
            }
        }
    }

    /// Add `lambda` to the diagonal (`+ λ I` regularization term).
    pub fn add_diagonal(&mut self, lambda: f32) {
        for i in 0..self.dim {
            self.data[i * (i + 1) / 2 + i] += lambda;
        }
    }

    /// Symmetric matrix–vector product `y = self · x`, reading each packed
    /// element once and using it for both `(i,j)` and `(j,i)`.
    pub fn matvec(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.dim, "sym matvec: x length");
        assert_eq!(y.len(), self.dim, "sym matvec: y length");
        y.fill(0.0);
        for i in 0..self.dim {
            let base = i * (i + 1) / 2;
            let mut acc = 0.0f32;
            for j in 0..i {
                let a = self.data[base + j];
                acc += a * x[j];
                y[j] += a * x[i];
            }
            y[i] += acc + self.data[base + i] * x[i];
        }
    }

    /// Expand into a full dense matrix (both triangles).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.dim, self.dim);
        for i in 0..self.dim {
            for j in 0..=i {
                let v = self.data[i * (i + 1) / 2 + j];
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        m
    }

    /// Build from the lower triangle of a dense matrix.
    pub fn from_dense_lower(m: &DenseMatrix) -> Self {
        assert_eq!(m.rows(), m.cols(), "from_dense_lower: must be square");
        let dim = m.rows();
        let mut data = Vec::with_capacity(packed_len(dim));
        for i in 0..dim {
            for j in 0..=i {
                data.push(m.get(i, j));
            }
        }
        SymPacked { dim, data }
    }

    /// Narrow the packed buffer to FP16 (the paper's Solution-4 store path).
    pub fn to_f16(&self) -> SymPackedF16 {
        let mut data = vec![F16::ZERO; self.data.len()];
        crate::f16::narrow_slice(&self.data, &mut data);
        SymPackedF16 {
            dim: self.dim,
            data,
        }
    }
}

/// A symmetric packed matrix stored in binary16 — the reduced-precision form
/// `A_u` takes in device memory for the FP16 CG solver.
#[derive(Clone, Debug, PartialEq)]
pub struct SymPackedF16 {
    dim: usize,
    data: Vec<F16>,
}

impl SymPackedF16 {
    /// Dimension of the matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow the packed FP16 buffer.
    #[inline]
    pub fn as_slice(&self) -> &[F16] {
        &self.data
    }

    /// Element accessor, widened to f32.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[packed_index(i, j)].to_f32()
    }

    /// Symmetric matvec reading FP16 storage, accumulating in FP32 — exactly
    /// the arithmetic contract of half-precision loads on the GPU.
    pub fn matvec(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.dim);
        assert_eq!(y.len(), self.dim);
        y.fill(0.0);
        for i in 0..self.dim {
            let base = i * (i + 1) / 2;
            let mut acc = 0.0f32;
            for j in 0..i {
                let a = self.data[base + j].to_f32();
                acc += a * x[j];
                y[j] += a * x[i];
            }
            y[i] += acc + self.data[base + i].to_f32() * x[i];
        }
    }

    /// Widen back to f32 packed storage.
    pub fn to_f32(&self) -> SymPacked {
        let mut data = vec![0.0f32; self.data.len()];
        crate::f16::widen_slice(&self.data, &mut data);
        SymPacked {
            dim: self.dim,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SymPacked {
        // [[2,1,0],[1,3,1],[0,1,4]]
        SymPacked::from_packed(3, vec![2.0, 1.0, 3.0, 0.0, 1.0, 4.0])
    }

    #[test]
    fn packed_index_symmetry() {
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(packed_index(i, j), packed_index(j, i));
            }
        }
        assert_eq!(packed_index(0, 0), 0);
        assert_eq!(packed_index(1, 0), 1);
        assert_eq!(packed_index(1, 1), 2);
        assert_eq!(packed_index(2, 2), 5);
    }

    #[test]
    fn get_set_both_triangles() {
        let mut s = SymPacked::zeros(4);
        s.set(3, 1, 7.5);
        assert_eq!(s.get(3, 1), 7.5);
        assert_eq!(s.get(1, 3), 7.5);
    }

    #[test]
    fn syr_builds_gram_matrix() {
        let mut s = SymPacked::zeros(3);
        s.syr(&[1.0, 2.0, 3.0]);
        s.syr(&[0.0, 1.0, -1.0]);
        // Σ v vᵀ at (1,1): 4+1=5; (2,1): 6-1=5; (2,2): 9+1=10
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(1, 1), 5.0);
        assert_eq!(s.get(2, 1), 5.0);
        assert_eq!(s.get(2, 2), 10.0);
    }

    #[test]
    fn syr_scaled_matches_scaled_syr() {
        let v = [1.0, -2.0, 0.5];
        let mut a = SymPacked::zeros(3);
        a.syr_scaled(3.0, &v);
        let scaled: Vec<f32> = v.iter().map(|x| x * 3.0f32.sqrt()).collect();
        let mut b = SymPacked::zeros(3);
        b.syr(&scaled);
        for i in 0..3 {
            for j in 0..3 {
                assert!((a.get(i, j) - b.get(i, j)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut s = sample();
        s.add_diagonal(0.5);
        assert_eq!(s.get(0, 0), 2.5);
        assert_eq!(s.get(1, 1), 3.5);
        assert_eq!(s.get(2, 2), 4.5);
        assert_eq!(s.get(1, 0), 1.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let s = sample();
        let d = s.to_dense();
        let x = [1.0, -1.0, 2.0];
        let mut y1 = [0.0; 3];
        let mut y2 = [0.0; 3];
        s.matvec(&x, &mut y1);
        d.matvec(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn dense_round_trip() {
        let s = sample();
        assert_eq!(SymPacked::from_dense_lower(&s.to_dense()), s);
    }

    #[test]
    fn f16_round_trip_small_values() {
        let s = sample(); // entries are small integers → exact in f16
        let h = s.to_f16();
        assert_eq!(h.to_f32(), s);
        let x = [1.0, 0.5, -0.25];
        let mut y1 = [0.0; 3];
        let mut y2 = [0.0; 3];
        s.matvec(&x, &mut y1);
        h.matvec(&x, &mut y2);
        assert_eq!(y1, y2);
    }
}
