//! Streaming statistics and error metrics for the experiment protocol.
//!
//! The paper's stopping criterion is "test RMSE reaches an acceptable level"
//! (0.92 / 22.0 / 0.52 for its three datasets); [`Welford`] provides the
//! numerically stable accumulation used to compute it over hundreds of
//! millions of test ratings without catastrophic cancellation.

/// Numerically stable streaming mean/variance (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merge another accumulator (parallel reduction; Chan et al.).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if fewer than 1 observation).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// √(mean of observations) — when observations are squared errors this is
    /// exactly the RMSE. NaN observations (e.g. from a diverged model)
    /// propagate to a NaN result rather than being masked.
    pub fn root_mean(&self) -> f64 {
        if self.mean.is_nan() {
            f64::NAN
        } else {
            self.mean.max(0.0).sqrt()
        }
    }
}

/// RMSE between predictions and targets.
pub fn rmse(predictions: &[f32], targets: &[f32]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "rmse: length mismatch");
    let mut w = Welford::new();
    for (&p, &t) in predictions.iter().zip(targets) {
        let e = (p - t) as f64;
        w.push(e * e);
    }
    w.root_mean()
}

/// Mean absolute error.
pub fn mae(predictions: &[f32], targets: &[f32]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "mae: length mismatch");
    let mut w = Welford::new();
    for (&p, &t) in predictions.iter().zip(targets) {
        w.push(((p - t) as f64).abs());
    }
    w.mean()
}

/// A deterministic xorshift64* PRNG for places where pulling in `rand` is
/// not worth it (cost-model jitter, test fixtures). Not cryptographic.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded constructor; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }

    /// Uniform in `[0, n)`.
    #[inline]
    pub fn next_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_mean_variance() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = Welford::new();
        let mut b = Welford::new();
        xs[..33].iter().for_each(|&x| a.push(x));
        xs[33..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.push(3.0);
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w.mean(), before.mean());
        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty.mean(), before.mean());
    }

    #[test]
    fn nan_observations_propagate() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(f64::NAN);
        assert!(w.root_mean().is_nan());
        assert!(rmse(&[f32::NAN], &[1.0]).is_nan());
    }

    #[test]
    fn rmse_of_exact_predictions_is_zero() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&t, &t), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        // errors: 1, -1, 1, -1 → RMSE = 1
        let p = [2.0, 1.0, 4.0, 3.0];
        let t = [1.0, 2.0, 3.0, 4.0];
        assert!((rmse(&p, &t) - 1.0).abs() < 1e-12);
        assert!((mae(&p, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn xorshift_is_deterministic_and_spread() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Crude uniformity check on [0,1).
        let mut r = XorShift64::new(7);
        let mean: f32 = (0..10_000).map(|_| r.next_f32()).sum::<f32>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
