//! Numeric substrate for the cuMF_ALS reproduction.
//!
//! This crate is dependency-light on purpose: everything the ALS/SGD/CCD
//! solvers need from "a BLAS" is implemented here from scratch —
//!
//! * [`mod@f16`] — a software IEEE 754 binary16 type, the storage format used by
//!   the paper's reduced-precision CG solver (Solution 4);
//! * [`dense`] — dense vector/matrix kernels (dot, axpy, gemv, gemm, norms);
//! * [`sym`] — symmetric matrices in lower-triangular packed storage, the
//!   layout of the per-row Gram matrices `A_u` built by `get_hermitian`;
//! * [`cholesky`] / [`lu`] — exact direct solvers (the cuBLAS batched-LU
//!   analog the paper replaces);
//! * [`cg`] — the truncated conjugate-gradient solver of the paper's
//!   Algorithm 1, generic over the precision the system matrix is read in;
//! * [`kernel`] — register-blocked SIMD scoring microkernels with fused
//!   FP16/int8 decode and a documented fixed lane-reduction order (the
//!   serving hot path);
//! * [`stats`] — RMSE and streaming statistics used by the experiment
//!   protocol.
//!
//! Numerics convention: all *accumulation* is done in `f32` (or `f64` where
//! noted); `f16` is a **storage** format only, exactly as on the GPU the
//! paper targets (FP16 loads feeding FP32 FMA pipelines).

#![deny(missing_docs)]

pub mod cg;
pub mod cholesky;
pub mod dense;
pub mod f16;
pub mod kernel;
pub mod lu;
pub mod stats;
pub mod sym;

pub use cg::{cg_solve, CgOutcome, MatVec};
pub use dense::DenseMatrix;
pub use f16::F16;
pub use sym::SymPacked;
