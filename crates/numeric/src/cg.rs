//! The truncated conjugate-gradient solver — Algorithm 1 of the paper.
//!
//! ```text
//! procedure CGSOLVE(A, x, b, fs, ε)
//!     r = b − A·x;  p = r;  rsold = rᵀr
//!     for j = 1..fs:
//!         ap = A·p;  α = rsold / (pᵀ·ap)
//!         x = x + αp;  r = r − α·ap
//!         rsnew = rᵀr
//!         if √rsnew < ε: break
//!         p = r + (rsnew/rsold)·p
//!         rsold = rsnew
//!     return x
//! ```
//!
//! With `fs = f` iterations this reproduces the exact solution of an SPD
//! system (CG's finite-termination property); the paper's approximation runs
//! `fs ≪ f` (empirically `fs = 6` at `f = 100`), cutting the solve from
//! `O(f³)` to `O(fs·f²)` without hurting the outer ALS convergence.
//!
//! The solver is generic over [`MatVec`] so the same code runs against FP32
//! packed Gram matrices and FP16-stored ones (reduced-precision reads,
//! Solution 4).
//!
//! Note: the paper's listing updates `r` as `r − α·p`; the correct CG
//! recurrence — and what any working implementation, including the authors'
//! released CUDA code, computes — is `r − α·(A·p)`. We implement the correct
//! recurrence and note the typo here.

use crate::dense::{axpy, dot_f64, xpby};
use crate::sym::{SymPacked, SymPackedF16};

/// Anything that can apply a symmetric linear operator: `y = A·x`.
pub trait MatVec {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;
    /// Compute `y = A·x`.
    fn matvec(&self, x: &[f32], y: &mut [f32]);
}

impl MatVec for SymPacked {
    fn dim(&self) -> usize {
        self.dim()
    }
    fn matvec(&self, x: &[f32], y: &mut [f32]) {
        SymPacked::matvec(self, x, y)
    }
}

impl MatVec for SymPackedF16 {
    fn dim(&self) -> usize {
        self.dim()
    }
    fn matvec(&self, x: &[f32], y: &mut [f32]) {
        SymPackedF16::matvec(self, x, y)
    }
}

impl MatVec for crate::dense::DenseMatrix {
    fn dim(&self) -> usize {
        debug_assert_eq!(self.rows(), self.cols());
        self.rows()
    }
    fn matvec(&self, x: &[f32], y: &mut [f32]) {
        crate::dense::DenseMatrix::matvec(self, x, y)
    }
}

/// What a CG run did: how many iterations it spent and the final residual.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CgOutcome {
    /// Number of `A·p` products performed.
    pub iterations: usize,
    /// `‖b − A·x‖₂` implied by the final recurrence (√rsnew).
    pub residual_norm: f32,
    /// Whether the ε tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Solve `A x = b` approximately, warm-starting from the incoming `x`.
///
/// * `max_iters` — the paper's `fs` (6 for f=100 in their evaluation);
/// * `tolerance` — the paper's `ε`, compared against `√(rᵀr)`.
///
/// ALS warm-starts each solve from the previous sweep's `x_u`, which is a
/// large part of why so few CG steps suffice.
pub fn cg_solve(
    a: &impl MatVec,
    x: &mut [f32],
    b: &[f32],
    max_iters: usize,
    tolerance: f32,
) -> CgOutcome {
    cg_solve_traced(a, x, b, max_iters, tolerance, None)
}

/// [`cg_solve`] with an optional residual-trajectory trace: when `trace` is
/// `Some`, the residual norm `√(rᵀr)` is appended once before the first
/// iteration and once per iteration. The arithmetic is identical with or
/// without a trace — tracing only observes values the solver computes
/// anyway.
pub fn cg_solve_traced(
    a: &impl MatVec,
    x: &mut [f32],
    b: &[f32],
    max_iters: usize,
    tolerance: f32,
    mut trace: Option<&mut Vec<f64>>,
) -> CgOutcome {
    let dim = a.dim();
    assert_eq!(x.len(), dim, "cg_solve: x length");
    assert_eq!(b.len(), dim, "cg_solve: b length");

    let mut r = vec![0.0f32; dim];
    let mut p = vec![0.0f32; dim];
    let mut ap = vec![0.0f32; dim];

    // r = b − A·x
    a.matvec(x, &mut ap);
    for i in 0..dim {
        r[i] = b[i] - ap[i];
    }
    p.copy_from_slice(&r);
    let mut rsold = dot_f64(&r, &r);
    if let Some(t) = trace.as_deref_mut() {
        t.push(rsold.sqrt());
    }

    if (rsold.sqrt() as f32) < tolerance {
        return CgOutcome {
            iterations: 0,
            residual_norm: rsold.sqrt() as f32,
            converged: true,
        };
    }

    let mut iterations = 0;
    let mut converged = false;
    let mut rsnew = rsold;

    for _ in 0..max_iters {
        a.matvec(&p, &mut ap);
        iterations += 1;
        let pap = dot_f64(&p, &ap);
        if pap <= 0.0 {
            // Loss of positive-definiteness in finite precision; stop rather
            // than take a step in a bad direction.
            break;
        }
        let alpha = (rsold / pap) as f32;
        axpy(alpha, &p, x);
        axpy(-alpha, &ap, &mut r);
        rsnew = dot_f64(&r, &r);
        if let Some(t) = trace.as_deref_mut() {
            t.push(rsnew.sqrt());
        }
        if (rsnew.sqrt() as f32) < tolerance {
            converged = true;
            break;
        }
        xpby(&r, (rsnew / rsold) as f32, &mut p);
        rsold = rsnew;
    }

    CgOutcome {
        iterations,
        residual_norm: rsnew.sqrt() as f32,
        converged,
    }
}

/// FMA count of `iters` CG iterations at dimension `f` — the `O(fs·f²)` cost
/// the simulator charges for the approximate solver.
pub fn cg_flops(f: usize, iters: usize) -> u64 {
    let f = f as u64;
    // per iteration: one symmetric matvec (f²) + ~5 vector ops (5f).
    (iters as u64) * (f * f + 5 * f) + f * f // + initial residual matvec
}

/// Bytes read from the system matrix per CG iteration when `A` is stored
/// packed with `bytes_per_elem` (4 for FP32, 2 for FP16) — the memory-bound
/// quantity of Observation 4.
pub fn cg_matrix_bytes_per_iter(f: usize, bytes_per_elem: u64) -> u64 {
    (crate::sym::packed_len(f) as u64) * bytes_per_elem
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::cholesky_solve;
    use crate::sym::SymPacked;

    fn spd(dim: usize, seed: u64) -> SymPacked {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u32 << 24) as f32 - 0.5
        };
        let mut a = SymPacked::zeros(dim);
        for _ in 0..dim + 3 {
            let v: Vec<f32> = (0..dim).map(|_| next()).collect();
            a.syr(&v);
        }
        a.add_diagonal(1.0);
        a
    }

    #[test]
    fn exact_after_dim_iterations() {
        // CG's finite-termination property: fs = f reproduces the direct solve.
        for seed in 1..6 {
            let a = spd(8, seed);
            let b: Vec<f32> = (0..8).map(|i| (i as f32) * 0.25 - 1.0).collect();
            let direct = cholesky_solve(&a, &b).unwrap();
            let mut x = vec![0.0; 8];
            let out = cg_solve(&a, &mut x, &b, 16, 1e-7);
            assert!(out.converged, "seed {seed} should converge");
            for i in 0..8 {
                assert!(
                    (x[i] - direct[i]).abs() < 1e-3,
                    "seed {seed} i {i}: {} vs {}",
                    x[i],
                    direct[i]
                );
            }
        }
    }

    #[test]
    fn truncated_cg_reduces_residual_monotonically() {
        let a = spd(12, 7);
        let b: Vec<f32> = (0..12).map(|i| ((i * 7 % 5) as f32) - 2.0).collect();
        let mut prev = f32::INFINITY;
        for fs in 1..8 {
            let mut x = vec![0.0; 12];
            let out = cg_solve(&a, &mut x, &b, fs, 0.0);
            assert!(
                out.residual_norm <= prev + 1e-4,
                "fs={fs}: {} > {}",
                out.residual_norm,
                prev
            );
            prev = out.residual_norm;
        }
    }

    #[test]
    fn warm_start_converges_in_zero_iterations() {
        let a = spd(6, 3);
        let b = [1.0, 0.5, -0.5, 2.0, 0.0, -1.0];
        let mut x = cholesky_solve(&a, &b).unwrap();
        let out = cg_solve(&a, &mut x, &b, 10, 1e-3);
        assert!(out.converged);
        assert!(
            out.iterations <= 1,
            "warm start took {} iterations",
            out.iterations
        );
    }

    #[test]
    fn identity_converges_in_one_iteration() {
        let mut a = SymPacked::zeros(5);
        a.add_diagonal(1.0);
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut x = vec![0.0; 5];
        let out = cg_solve(&a, &mut x, &b, 10, 1e-6);
        assert_eq!(out.iterations, 1);
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn fp16_storage_still_converges() {
        let a = spd(10, 11);
        let h = a.to_f16();
        let b: Vec<f32> = (0..10).map(|i| (i as f32 - 5.0) * 0.1).collect();
        let exact = cholesky_solve(&a, &b).unwrap();
        let mut x = vec![0.0; 10];
        cg_solve(&h, &mut x, &b, 20, 1e-4);
        // FP16 matrix perturbs A by ≤2⁻¹¹ relatively; solution error stays small.
        for i in 0..10 {
            assert!(
                (x[i] - exact[i]).abs() < 0.02,
                "i {i}: {} vs {}",
                x[i],
                exact[i]
            );
        }
    }

    #[test]
    fn traced_solve_matches_untraced_and_records_residuals() {
        let a = spd(12, 8);
        let b: Vec<f32> = (0..12).map(|i| (i as f32) * 0.3 - 1.5).collect();
        let mut x_plain = vec![0.0; 12];
        let mut x_traced = vec![0.0; 12];
        let mut residuals = Vec::new();
        let plain = cg_solve(&a, &mut x_plain, &b, 6, 0.0);
        let traced = cg_solve_traced(&a, &mut x_traced, &b, 6, 0.0, Some(&mut residuals));
        assert_eq!(x_plain, x_traced, "tracing must not change arithmetic");
        assert_eq!(plain, traced);
        // One entry before iteration 1 plus one per iteration.
        assert_eq!(residuals.len(), plain.iterations + 1);
        assert!(residuals.last().unwrap() < residuals.first().unwrap());
        assert!((residuals.last().unwrap() - plain.residual_norm as f64).abs() < 1e-3);
    }

    #[test]
    fn respects_iteration_cap() {
        let a = spd(30, 5);
        let b = vec![1.0; 30];
        let mut x = vec![0.0; 30];
        let out = cg_solve(&a, &mut x, &b, 3, 0.0);
        assert_eq!(out.iterations, 3);
        assert!(!out.converged);
    }

    #[test]
    fn flops_model_is_quadratic_per_iteration() {
        // 6 CG iterations at f=100 ≈ 6·10⁴ FMAs ≪ LU's ~6.7·10⁵.
        assert!(cg_flops(100, 6) < crate::lu::lu_flops(100) / 4);
        assert_eq!(
            cg_matrix_bytes_per_iter(100, 2) * 2,
            cg_matrix_bytes_per_iter(100, 4)
        );
    }
}
