//! Software IEEE 754 binary16 ("half precision", FP16).
//!
//! The paper's Solution 4 stores the Gram matrices `A_u` in FP16 to halve the
//! bytes moved by the memory-bound CG solver. GPUs read FP16 and widen to
//! FP32 before the FMA; we reproduce exactly that contract: [`F16`] is a
//! **storage** type — all arithmetic happens after conversion to `f32`.
//!
//! The conversion pair implemented here is the standard round-to-nearest-even
//! narrowing and exact widening, covering normals, subnormals, signed zeros,
//! infinities and NaNs.

/// An IEEE 754 binary16 value stored as its raw bit pattern.
///
/// Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
/// Largest finite value is 65504; smallest positive normal is 2⁻¹⁴;
/// unit roundoff is 2⁻¹¹ ≈ 4.88e-4.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct F16(pub u16);

const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;
const SIGN_MASK: u16 = 0x8000;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value (65504.0).
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value (2⁻¹⁴).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value (2⁻²⁴).
    pub const MIN_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon: distance from 1.0 to the next representable value.
    pub const EPSILON: F16 = F16(0x1400);

    /// Narrow an `f32` to binary16 with round-to-nearest-even.
    ///
    /// Values above [`F16::MAX`] overflow to infinity; values below the
    /// subnormal range flush to (signed) zero via the rounding, matching
    /// hardware `__float2half_rn`.
    #[inline]
    pub fn from_f32(x: f32) -> F16 {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN. Preserve NaN-ness (set a mantissa bit).
            return if man == 0 {
                F16(sign | EXP_MASK)
            } else {
                F16(sign | EXP_MASK | 0x0200 | ((man >> 13) as u16 & MAN_MASK))
            };
        }

        // Unbiased exponent in f32, rebiased for f16 (bias 15).
        let unbiased = exp - 127;
        let half_exp = unbiased + 15;

        if half_exp >= 0x1F {
            // Overflow → infinity.
            return F16(sign | EXP_MASK);
        }

        if half_exp <= 0 {
            // Subnormal (or zero) in f16. The implicit leading 1 of the f32
            // mantissa becomes explicit and is shifted right.
            if half_exp < -10 {
                // Too small even for the largest shift: rounds to zero.
                return F16(sign);
            }
            let full_man = man | 0x0080_0000; // make leading 1 explicit
                                              // value = full_man × 2^(unbiased-23); subnormal unit is 2⁻²⁴,
                                              // so half_man = full_man >> (14 - half_exp).
            let shift = (14 - half_exp) as u32;
            let half_man = full_man >> shift;
            // Round to nearest even on the dropped bits.
            let dropped = full_man & ((1u32 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let mut h = half_man as u16;
            if dropped > halfway || (dropped == halfway && (h & 1) == 1) {
                h += 1; // may carry into the exponent: that is correct
            }
            return F16(sign | h);
        }

        // Normal case: keep top 10 mantissa bits, round-to-nearest-even.
        let mut h = (half_exp as u16) << 10 | ((man >> 13) as u16 & MAN_MASK);
        let dropped = man & 0x1FFF;
        if dropped > 0x1000 || (dropped == 0x1000 && (h & 1) == 1) {
            h += 1; // carries into exponent (and to infinity) correctly
        }
        F16(sign | h)
    }

    /// Widen to `f32`. Exact for every binary16 value.
    #[inline]
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & SIGN_MASK) as u32) << 16;
        let exp = ((self.0 & EXP_MASK) >> 10) as u32;
        let man = (self.0 & MAN_MASK) as u32;

        let bits = if exp == 0 {
            if man == 0 {
                sign // signed zero
            } else {
                // Subnormal: value = man × 2⁻²⁴ = 1.fff × 2^(p−24) where p is
                // the MSB position of man. Normalize into f32.
                let p = 31 - man.leading_zeros(); // 0..=9
                let exp32 = 127 - 24 + p;
                let man32 = (man << (23 - p)) & 0x007F_FFFF; // drop leading 1
                sign | (exp32 << 23) | man32
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (man << 13) // inf / NaN
        } else {
            sign | ((exp + 127 - 15) << 23) | (man << 13)
        };
        f32::from_bits(bits)
    }

    /// `true` if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// `true` if this value is +∞ or −∞.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & !SIGN_MASK) == EXP_MASK
    }

    /// `true` if this value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// Raw bit pattern.
    #[inline]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Construct from a raw bit pattern.
    #[inline]
    pub fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> Self {
        h.to_f32()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl core::fmt::Debug for F16 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}f16", self.to_f32())
    }
}

impl core::fmt::Display for F16 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Narrow a whole `f32` slice into a pre-allocated `F16` buffer.
///
/// This is the store path of the paper's FP16 pipeline: `get_hermitian`
/// writes `A_u` once in FP16; the CG solver then reads it many times.
pub fn narrow_slice(src: &[f32], dst: &mut [F16]) {
    assert_eq!(src.len(), dst.len(), "narrow_slice: length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = F16::from_f32(s);
    }
}

/// Widen a whole `F16` slice into a pre-allocated `f32` buffer.
pub fn widen_slice(src: &[F16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "widen_slice: length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s.to_f32();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(F16::from_f32(x).to_f32(), x, "integer {i} must be exact");
        }
    }

    #[test]
    fn constants_match_ieee() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::MIN_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
        assert!(F16::NAN.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert_eq!(F16::NEG_INFINITY.to_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32(65520.0).is_infinite()); // rounds up past MAX
        assert_eq!(F16::from_f32(65504.0), F16::MAX);
        assert_eq!(F16::from_f32(1e9), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e9), F16::NEG_INFINITY);
    }

    #[test]
    fn underflow_flushes_to_signed_zero() {
        assert_eq!(F16::from_f32(1e-9).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-1e-9).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
    }

    #[test]
    fn subnormals_round_trip() {
        // Every subnormal is k × 2⁻²⁴ for k in 1..1024.
        for k in 1u32..1024 {
            let x = k as f32 * 2.0f32.powi(-24);
            let h = F16::from_f32(x);
            assert_eq!(h.to_f32(), x, "subnormal k={k}");
        }
    }

    #[test]
    fn round_to_nearest_even_at_halfway() {
        // 1 + 2⁻¹¹ is exactly halfway between 1.0 and 1+2⁻¹⁰: ties to even → 1.0.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // 1 + 3·2⁻¹¹ is halfway between 1+2⁻¹⁰ and 1+2·2⁻¹⁰: ties to even → 1+2·2⁻¹⁰.
        let halfway_up = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(
            F16::from_f32(halfway_up).to_f32(),
            1.0 + 2.0 * 2.0f32.powi(-10)
        );
    }

    #[test]
    fn rounding_carry_into_exponent() {
        // Just below 2.0: mantissa all-ones rounds up and carries.
        let x = 2.0 - 2.0f32.powi(-12);
        assert_eq!(F16::from_f32(x).to_f32(), 2.0);
    }

    #[test]
    fn nan_payload_preserved_as_nan() {
        let h = F16::from_f32(f32::NAN);
        assert!(h.is_nan());
        assert!(h.to_f32().is_nan());
    }

    #[test]
    fn relative_error_bound_for_normals() {
        // Unit roundoff for binary16 is 2⁻¹¹.
        let u = 2.0f32.powi(-11);
        let mut x = 2.0f32.powi(-14);
        while x < 60000.0 {
            let err = (F16::from_f32(x).to_f32() - x).abs() / x;
            assert!(err <= u, "x={x} err={err}");
            x *= 1.37;
        }
    }

    #[test]
    fn slice_round_trip() {
        let src: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) * 0.25).collect();
        let mut h = vec![F16::ZERO; src.len()];
        let mut back = vec![0.0f32; src.len()];
        narrow_slice(&src, &mut h);
        widen_slice(&h, &mut back);
        assert_eq!(src, back, "quarter-integers are exact in f16");
    }

    #[test]
    fn ordering_matches_f32() {
        let vals = [-3.5f32, -0.0, 0.0, 0.1, 1.0, 1000.0];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    F16::from_f32(a).partial_cmp(&F16::from_f32(b)),
                    a.partial_cmp(&b),
                    "ordering of {a} vs {b}"
                );
            }
        }
    }
}
