//! Cholesky factorization and solve for symmetric positive-definite systems.
//!
//! ALS's per-row systems `A_u x_u = b_u` are SPD by construction
//! (`A_u = Σ θθᵀ + λ n I` with `λ n > 0`), so Cholesky is the natural exact
//! solver. We also keep [`crate::lu`] because the paper's baseline is the
//! cuBLAS *batched LU* routine; both cost `O(f³)` and their measured ratios
//! to CG are interchangeable.

use crate::sym::SymPacked;

/// Error raised when a factorization encounters a non-positive pivot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Index of the failing pivot.
    pub pivot: usize,
}

impl core::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// The packed lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct CholeskyFactor {
    dim: usize,
    /// Packed lower triangle of L.
    l: Vec<f32>,
}

/// Factor a packed SPD matrix: `A = L Lᵀ`.
///
/// Cost is `f³/3` FMAs — the cubic term the paper's approximate solver
/// removes.
pub fn cholesky_factor(a: &SymPacked) -> Result<CholeskyFactor, NotPositiveDefinite> {
    let dim = a.dim();
    let mut l = a.as_slice().to_vec();
    for j in 0..dim {
        // Diagonal: l_jj = sqrt(a_jj - Σ_{k<j} l_jk²)
        let jj = j * (j + 1) / 2 + j;
        let mut d = l[jj] as f64;
        for k in 0..j {
            let v = l[j * (j + 1) / 2 + k] as f64;
            d -= v * v;
        }
        if d <= 0.0 {
            return Err(NotPositiveDefinite { pivot: j });
        }
        let diag = d.sqrt();
        l[jj] = diag as f32;
        // Column below the diagonal: l_ij = (a_ij - Σ_{k<j} l_ik l_jk) / l_jj
        for i in j + 1..dim {
            let mut s = l[i * (i + 1) / 2 + j] as f64;
            for k in 0..j {
                s -= l[i * (i + 1) / 2 + k] as f64 * l[j * (j + 1) / 2 + k] as f64;
            }
            l[i * (i + 1) / 2 + j] = (s / diag) as f32;
        }
    }
    Ok(CholeskyFactor { dim, l })
}

impl CholeskyFactor {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Entry `L[i][j]` (zero above the diagonal).
    pub fn l(&self, i: usize, j: usize) -> f32 {
        if j > i {
            0.0
        } else {
            self.l[i * (i + 1) / 2 + j]
        }
    }

    /// Solve `A x = b` in place: forward substitution `L y = b`, then
    /// backward substitution `Lᵀ x = y`.
    pub fn solve_in_place(&self, b: &mut [f32]) {
        assert_eq!(b.len(), self.dim, "cholesky solve: rhs length");
        // L y = b
        for i in 0..self.dim {
            let base = i * (i + 1) / 2;
            let mut s = b[i] as f64;
            for (&lv, &bv) in self.l[base..base + i].iter().zip(b.iter()) {
                s -= lv as f64 * bv as f64;
            }
            b[i] = (s / self.l[base + i] as f64) as f32;
        }
        // Lᵀ x = y
        for i in (0..self.dim).rev() {
            let mut s = b[i] as f64;
            for (k, &bv) in b.iter().enumerate().skip(i + 1) {
                s -= self.l[k * (k + 1) / 2 + i] as f64 * bv as f64;
            }
            b[i] = (s / self.l[i * (i + 1) / 2 + i] as f64) as f32;
        }
    }

    /// Solve into a fresh vector.
    pub fn solve(&self, b: &[f32]) -> Vec<f32> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }
}

/// One-shot solve `A x = b` for packed SPD `A`.
pub fn cholesky_solve(a: &SymPacked, b: &[f32]) -> Result<Vec<f32>, NotPositiveDefinite> {
    Ok(cholesky_factor(a)?.solve(b))
}

/// Exact FMA count of a packed Cholesky factorization of dimension `f`
/// followed by two triangular solves — used by the simulator's cost model.
pub fn cholesky_flops(f: usize) -> u64 {
    let f = f as u64;
    // factor: ~f³/3 multiply-adds; solves: 2 × f²/2.
    f * f * f / 3 + f * f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::dot;

    fn spd(dim: usize, seed: u64) -> SymPacked {
        // Build Σ v vᵀ + I from a few pseudo-random vectors: SPD by construction.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32 * 2.0 - 0.5
        };
        let mut a = SymPacked::zeros(dim);
        for _ in 0..dim + 2 {
            let v: Vec<f32> = (0..dim).map(|_| next()).collect();
            a.syr(&v);
        }
        a.add_diagonal(1.0);
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd(6, 42);
        let f = cholesky_factor(&a).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                let mut s = 0.0f32;
                for k in 0..6 {
                    s += f.l(i, k) * f.l(j, k);
                }
                assert!(
                    (s - a.get(i, j)).abs() < 1e-4,
                    "({i},{j}): {s} vs {}",
                    a.get(i, j)
                );
            }
        }
    }

    #[test]
    fn solve_residual_is_small() {
        for seed in 1..8u64 {
            let a = spd(10, seed);
            let b: Vec<f32> = (0..10).map(|i| (i as f32 - 4.5) * 0.3).collect();
            let x = cholesky_solve(&a, &b).unwrap();
            let mut ax = vec![0.0; 10];
            a.matvec(&x, &mut ax);
            for i in 0..10 {
                assert!((ax[i] - b[i]).abs() < 1e-3, "seed {seed} row {i}");
            }
        }
    }

    #[test]
    fn identity_solve_is_identity() {
        let mut a = SymPacked::zeros(5);
        a.add_diagonal(1.0);
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(cholesky_solve(&a, &b).unwrap(), b.to_vec());
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = SymPacked::zeros(3);
        a.add_diagonal(-1.0);
        assert_eq!(
            cholesky_factor(&a).unwrap_err(),
            NotPositiveDefinite { pivot: 0 }
        );
    }

    #[test]
    fn solution_minimizes_quadratic() {
        // x* = argmin ½xᵀAx - bᵀx ⇒ perturbations increase the objective.
        let a = spd(5, 9);
        let b = [0.3, -0.2, 1.0, 0.0, -0.7];
        let x = cholesky_solve(&a, &b).unwrap();
        let obj = |x: &[f32]| {
            let mut ax = vec![0.0; 5];
            a.matvec(x, &mut ax);
            0.5 * dot(&ax, x) - dot(&b, x)
        };
        let base = obj(&x);
        for i in 0..5 {
            for delta in [-0.01f32, 0.01] {
                let mut xp = x.clone();
                xp[i] += delta;
                assert!(
                    obj(&xp) >= base - 1e-5,
                    "perturbing {i} by {delta} decreased objective"
                );
            }
        }
    }

    #[test]
    fn flop_count_is_cubic() {
        assert!(cholesky_flops(200) > 7 * cholesky_flops(100));
    }
}
