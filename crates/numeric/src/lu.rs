//! LU factorization with partial pivoting.
//!
//! This is the host-side analog of cuBLAS `getrfBatched`/`getrsBatched`, the
//! "direct solver" the paper's Figure 5 uses as its `LU-FP32` baseline. It is
//! deliberately general (works for any nonsingular matrix, not just SPD) so
//! it can also back the batched GEMM/solve comparisons.

use crate::dense::DenseMatrix;

/// Error raised when elimination encounters a (numerically) singular pivot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Singular {
    /// Column at which no usable pivot was found.
    pub column: usize,
}

impl core::fmt::Display for Singular {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for Singular {}

/// A row-pivoted LU factorization `P A = L U` stored compactly: `L` (unit
/// diagonal) below, `U` on and above the diagonal of one dense matrix.
#[derive(Clone, Debug)]
pub struct LuFactor {
    dim: usize,
    lu: DenseMatrix,
    /// Row permutation: row `i` of the factored matrix came from `perm[i]`.
    perm: Vec<usize>,
}

/// Factor a square dense matrix with partial pivoting.
pub fn lu_factor(a: &DenseMatrix) -> Result<LuFactor, Singular> {
    assert_eq!(a.rows(), a.cols(), "lu_factor: must be square");
    let dim = a.rows();
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..dim).collect();

    for k in 0..dim {
        // Pivot: largest |value| in column k at or below the diagonal.
        let mut pivot_row = k;
        let mut pivot_val = lu.get(k, k).abs();
        for i in k + 1..dim {
            let v = lu.get(i, k).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = i;
            }
        }
        if pivot_val == 0.0 || !pivot_val.is_finite() {
            return Err(Singular { column: k });
        }
        if pivot_row != k {
            perm.swap(k, pivot_row);
            for j in 0..dim {
                let a = lu.get(k, j);
                let b = lu.get(pivot_row, j);
                lu.set(k, j, b);
                lu.set(pivot_row, j, a);
            }
        }
        // Eliminate below the pivot.
        let pivot = lu.get(k, k);
        for i in k + 1..dim {
            let factor = lu.get(i, k) / pivot;
            lu.set(i, k, factor);
            for j in k + 1..dim {
                let v = lu.get(i, j) - factor * lu.get(k, j);
                lu.set(i, j, v);
            }
        }
    }
    Ok(LuFactor { dim, lu, perm })
}

impl LuFactor {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Solve `A x = b` using the stored factors.
    pub fn solve(&self, b: &[f32]) -> Vec<f32> {
        assert_eq!(b.len(), self.dim, "lu solve: rhs length");
        // Apply permutation, then L y = Pb (unit diagonal), then U x = y.
        let mut x: Vec<f32> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 0..self.dim {
            let mut s = x[i] as f64;
            for (k, &xv) in x.iter().enumerate().take(i) {
                s -= self.lu.get(i, k) as f64 * xv as f64;
            }
            x[i] = s as f32;
        }
        for i in (0..self.dim).rev() {
            let mut s = x[i] as f64;
            for (k, &xv) in x.iter().enumerate().skip(i + 1) {
                s -= self.lu.get(i, k) as f64 * xv as f64;
            }
            x[i] = (s / self.lu.get(i, i) as f64) as f32;
        }
        x
    }
}

/// One-shot dense solve `A x = b`.
pub fn lu_solve(a: &DenseMatrix, b: &[f32]) -> Result<Vec<f32>, Singular> {
    Ok(lu_factor(a)?.solve(b))
}

/// FMA count of an LU factor + solve of dimension `f` — the `O(f³)` term in
/// the paper's Table I `solve` row, used by the simulator's cost model.
pub fn lu_flops(f: usize) -> u64 {
    let f = f as u64;
    // 2f³/3 for elimination, 2 × f²/2 for the triangular solves.
    2 * f * f * f / 3 + f * f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_system_exactly() {
        // [[2,1],[1,3]] x = [3,5] → x = [4/5, 7/5]
        let a = DenseMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = lu_solve(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-6);
        assert!((x[1] - 1.4).abs() < 1e-6);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [[0,1],[1,0]] needs a row swap.
        let a = DenseMatrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = lu_solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn detects_singular() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(lu_solve(&a, &[1.0, 1.0]), Err(Singular { .. })));
    }

    #[test]
    fn residual_small_on_random_systems() {
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u32 << 24) as f32 - 0.5
        };
        for trial in 0..10 {
            let n = 8;
            let mut a = DenseMatrix::zeros(n, n);
            a.fill_with(&mut next);
            for i in 0..n {
                a.set(i, i, a.get(i, i) + 4.0); // diagonally dominant
            }
            let b: Vec<f32> = (0..n).map(|_| next()).collect();
            let x = lu_solve(&a, &b).unwrap();
            let mut ax = vec![0.0; n];
            a.matvec(&x, &mut ax);
            for i in 0..n {
                assert!((ax[i] - b[i]).abs() < 1e-4, "trial {trial} row {i}");
            }
        }
    }

    #[test]
    fn agrees_with_cholesky_on_spd() {
        use crate::sym::SymPacked;
        let mut s = SymPacked::zeros(4);
        s.syr(&[1.0, 2.0, 0.5, -1.0]);
        s.syr(&[0.0, 1.0, 1.0, 1.0]);
        s.add_diagonal(2.0);
        let b = [1.0, 0.0, -1.0, 2.0];
        let x_chol = crate::cholesky::cholesky_solve(&s, &b).unwrap();
        let x_lu = lu_solve(&s.to_dense(), &b).unwrap();
        for i in 0..4 {
            assert!((x_chol[i] - x_lu[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn lu_flops_dominate_cholesky_flops() {
        // LU does ~2× the work of Cholesky at the same size.
        let f = 100;
        assert!(lu_flops(f) > crate::cholesky::cholesky_flops(f));
    }
}
