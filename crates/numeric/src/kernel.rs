//! Register-blocked scoring microkernels with fused narrow-type decode.
//!
//! The serving scorer's innermost operation is an `f`-long inner product
//! per user×item pair. A sequential `f32` reduction is a dependency chain
//! the compiler must preserve (FP addition is not associative), so it can
//! never be vectorized. The kernels here break the chain the way every
//! SIMD dot product does — [`LANES`] independent accumulators, one per
//! vector lane — but make the resulting evaluation order an explicit,
//! documented contract instead of an implementation accident:
//!
//! * element `i` is accumulated into lane `i % LANES`, walking the input
//!   left to right in [`LANES`]-element chunks; remainder elements feed
//!   lanes `0..len % LANES` in order;
//! * the lanes are combined by the fixed pairwise tree of
//!   [`reduce_lanes`]: `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`;
//! * products are **not** contracted into FMAs — `mul` then `add`, so the
//!   bit pattern is identical on every host regardless of target features.
//!
//! Every kernel in this module — and every scoring surface wired to it —
//! follows that one order, which is what lets blocked, sharded,
//! approximate and naive-reference paths stay bit-identical to each other
//! while still vectorizing.
//!
//! The narrow-type variants ([`dot_f16`], [`dot_i8_scaled`]) fuse the
//! decode into the accumulation loop: the f16→f32 widen (resp. int8
//! dequant) happens in registers between the load and the multiply, so a
//! quantized scan never materializes an `f32` scratch copy — the byte
//! savings of the narrow format convert into time instead of being spent
//! on an extra store/load pass. This mirrors the paper's FP16 pipeline
//! (half-width loads feeding full-width arithmetic) and the
//! decode-in-the-kernel structure of low-precision GEMMs.
//!
//! [`score_tile`] adds the second classic GEMM trick, register tiling
//! over users: each Θ row is loaded (and, for f16, decoded) once per
//! [`TILE_USERS`] users instead of once per user, quartering the Θ
//! traffic of a batched scan.
//!
//! # Vector-width multiversioning
//!
//! The lane order fixes *what* is computed, not how wide the machine
//! computes it: eight independent `f32` accumulators vectorize equally
//! well at SSE2 (two 128-bit registers) and AVX2 (one 256-bit register),
//! and IEEE lane arithmetic is width-independent — the bits cannot
//! change. On x86-64 each public kernel therefore dispatches, via the
//! cached `is_x86_feature_detected!` probe, to an AVX2 compilation of
//! the *same* portable body when the host supports it. FMA contraction
//! stays off in both versions (Rust never contracts `mul` + `add`
//! without explicit fast-math), so this is purely a throughput switch —
//! the property tests cover both compilations on AVX2 hosts.

use crate::f16::F16;

/// Independent accumulator lanes per dot product. Eight `f32` lanes fill
/// one 256-bit vector register; the fixed lane order below is part of the
/// crate's determinism contract, not a tuning knob.
pub const LANES: usize = 8;

/// Users scored per register tile in [`score_tile`]: small enough that
/// `TILE_USERS` accumulator arrays plus one Θ chunk stay in registers,
/// large enough to amortize each Θ load across several users.
pub const TILE_USERS: usize = 4;

/// Combine the [`LANES`] accumulators in the documented fixed order:
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
///
/// Every kernel in this module reduces through this exact tree, so two
/// kernels that accumulate the same products always produce the same
/// bits.
#[inline]
pub fn reduce_lanes(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Inner product with [`LANES`] independent accumulators: element `i`
/// lands in lane `i % LANES`, lanes combine via [`reduce_lanes`].
///
/// This is the scalar-argument form of the scoring microkernel; all
/// serving reference paths (`score_one`, the approximate member scan, the
/// centroid probe) route through it so the blocked/tiled paths can be
/// bit-identical to them by construction.
///
/// Panics if the slices differ in length.
#[inline]
pub fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 requirement was just probed on this host.
        return unsafe { avx2::dot_lanes(a, b) };
    }
    dot_lanes_impl(a, b)
}

#[inline(always)]
fn dot_lanes_impl(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_lanes: length mismatch");
    let mut acc = [0.0f32; LANES];
    let full = a.len() / LANES * LANES;
    let mut i = 0;
    while i < full {
        let ca = &a[i..i + LANES];
        let cb = &b[i..i + LANES];
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
        i += LANES;
    }
    for (l, (&x, &y)) in a[full..].iter().zip(&b[full..]).enumerate() {
        acc[l] += x * y;
    }
    reduce_lanes(acc)
}

/// Widen one binary16 value to `f32`, branch-light and vectorizable.
///
/// Bit-identical to [`F16::to_f32`] for **every** 16-bit pattern
/// (exhaustively test-enforced), but built from shifts, masks and one
/// exact multiply instead of a leading-zeros normalization loop, so the
/// compiler can keep it inside a SIMD decode: the magnitude bits shifted
/// into f32 position read as `value × 2⁻¹¹²` for normals *and*
/// subnormals, and multiplying by `2¹¹²` (exactly representable) rescales
/// without rounding. Infinities and NaNs take the saturated-exponent
/// fixup instead.
#[inline]
pub fn decode_f16(h: F16) -> f32 {
    let bits = h.to_bits() as u32;
    let mag = (bits & 0x7FFF) << 13;
    let sign = (bits & 0x8000) << 16;
    // 2^112 is exact in f32, and the product never overflows or rounds:
    // this maps normals and subnormals alike.
    let finite = f32::from_bits(mag) * f32::from_bits(0x7780_0000);
    // Inf/NaN: rebase the saturated exponent to f32's, payload kept.
    let special = f32::from_bits(mag + 0x7000_0000);
    // Both arms are computed unconditionally so the decode is a branch-
    // free select — inside the tile loops this is what lets the
    // autovectorizer keep the widen in SIMD instead of bailing to a
    // scalar loop with control flow.
    let val = if bits & 0x7C00 == 0x7C00 {
        special
    } else {
        finite
    };
    f32::from_bits(val.to_bits() | sign)
}

/// Inner product of an `f32` vector against an `F16` row, with the widen
/// fused into the accumulation loop — no scratch pass.
///
/// Bit-identical to widening `b` with [`F16::to_f32`] first and calling
/// [`dot_lanes`] (the decode is exact and the lane order is the same).
///
/// Panics if the slices differ in length.
#[inline]
pub fn dot_f16(a: &[f32], b: &[F16]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 requirement was just probed on this host.
        return unsafe { avx2::dot_f16(a, b) };
    }
    dot_f16_impl(a, b)
}

#[inline(always)]
fn dot_f16_impl(a: &[f32], b: &[F16]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_f16: length mismatch");
    let mut acc = [0.0f32; LANES];
    let full = a.len() / LANES * LANES;
    let mut i = 0;
    while i < full {
        let ca = &a[i..i + LANES];
        let cb = &b[i..i + LANES];
        for l in 0..LANES {
            acc[l] += ca[l] * decode_f16(cb[l]);
        }
        i += LANES;
    }
    for (l, (&x, &h)) in a[full..].iter().zip(&b[full..]).enumerate() {
        acc[l] += x * decode_f16(h);
    }
    reduce_lanes(acc)
}

/// Inner product of an `f32` vector against an int8 row with one scale:
/// the weights are widened to `f32` in the accumulation loop (fused
/// dequant, one byte read per weight) and the scale is applied **once**
/// to the reduced sum — the same factoring as a blockwise-quantized
/// scan.
///
/// Bit-identical to widening `q` element-wise to `f32` (no scale),
/// calling [`dot_lanes`], and multiplying the result by `scale` once.
///
/// Panics if the slices differ in length.
#[inline]
pub fn dot_i8_scaled(a: &[f32], q: &[i8], scale: f32) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 requirement was just probed on this host.
        return unsafe { avx2::dot_i8_scaled(a, q, scale) };
    }
    dot_i8_scaled_impl(a, q, scale)
}

#[inline(always)]
fn dot_i8_scaled_impl(a: &[f32], q: &[i8], scale: f32) -> f32 {
    assert_eq!(a.len(), q.len(), "dot_i8_scaled: length mismatch");
    let mut acc = [0.0f32; LANES];
    let full = a.len() / LANES * LANES;
    let mut i = 0;
    while i < full {
        let ca = &a[i..i + LANES];
        let cq = &q[i..i + LANES];
        for l in 0..LANES {
            acc[l] += ca[l] * cq[l] as f32;
        }
        i += LANES;
    }
    for (l, (&x, &w)) in a[full..].iter().zip(&q[full..]).enumerate() {
        acc[l] += x * w as f32;
    }
    reduce_lanes(acc) * scale
}

/// Score an `n_users × n_items` tile: `out[u * n_items + v] =
/// users_row(u) · theta_row(v)`, register-tiled so each Θ chunk is loaded
/// once per [`TILE_USERS`] users.
///
/// `users` is `n_users` contiguous `f`-long rows; `theta` is `n_items`
/// contiguous `f`-long rows. Every entry is bit-identical to
/// [`dot_lanes`] on the corresponding row pair — the tile walks `f` in
/// the same chunk order with a private lane array per user, so the
/// per-pair evaluation order is unchanged; tiling only reorders work
/// *across* independent pairs.
///
/// Panics if the slice lengths are inconsistent with the given shape or
/// `out` is shorter than `n_users * n_items`.
pub fn score_tile(
    users: &[f32],
    n_users: usize,
    theta: &[f32],
    n_items: usize,
    f: usize,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 requirement was just probed on this host.
        return unsafe { avx2::score_tile(users, n_users, theta, n_items, f, out) };
    }
    score_tile_impl(users, n_users, theta, n_items, f, out)
}

#[inline(always)]
fn score_tile_impl(
    users: &[f32],
    n_users: usize,
    theta: &[f32],
    n_items: usize,
    f: usize,
    out: &mut [f32],
) {
    assert_eq!(users.len(), n_users * f, "score_tile: bad user slice");
    assert_eq!(theta.len(), n_items * f, "score_tile: bad theta slice");
    assert!(
        out.len() >= n_users * n_items,
        "score_tile: out too short ({} < {})",
        out.len(),
        n_users * n_items
    );
    let full = f / LANES * LANES;
    let mut u0 = 0;
    while u0 + TILE_USERS <= n_users {
        let x0 = &users[u0 * f..(u0 + 1) * f];
        let x1 = &users[(u0 + 1) * f..(u0 + 2) * f];
        let x2 = &users[(u0 + 2) * f..(u0 + 3) * f];
        let x3 = &users[(u0 + 3) * f..(u0 + 4) * f];
        for v in 0..n_items {
            let tv = &theta[v * f..(v + 1) * f];
            let mut acc = [[0.0f32; LANES]; TILE_USERS];
            let mut i = 0;
            while i < full {
                let t = &tv[i..i + LANES];
                let c0 = &x0[i..i + LANES];
                let c1 = &x1[i..i + LANES];
                let c2 = &x2[i..i + LANES];
                let c3 = &x3[i..i + LANES];
                for l in 0..LANES {
                    let tl = t[l];
                    acc[0][l] += c0[l] * tl;
                    acc[1][l] += c1[l] * tl;
                    acc[2][l] += c2[l] * tl;
                    acc[3][l] += c3[l] * tl;
                }
                i += LANES;
            }
            for (l, j) in (full..f).enumerate() {
                let tl = tv[j];
                acc[0][l] += x0[j] * tl;
                acc[1][l] += x1[j] * tl;
                acc[2][l] += x2[j] * tl;
                acc[3][l] += x3[j] * tl;
            }
            out[u0 * n_items + v] = reduce_lanes(acc[0]);
            out[(u0 + 1) * n_items + v] = reduce_lanes(acc[1]);
            out[(u0 + 2) * n_items + v] = reduce_lanes(acc[2]);
            out[(u0 + 3) * n_items + v] = reduce_lanes(acc[3]);
        }
        u0 += TILE_USERS;
    }
    for u in u0..n_users {
        let xu = &users[u * f..(u + 1) * f];
        for v in 0..n_items {
            out[u * n_items + v] = dot_lanes_impl(xu, &theta[v * f..(v + 1) * f]);
        }
    }
}

/// [`score_tile`] against an `F16` Θ-block with the widen fused into the
/// tile loop: each Θ chunk is decoded **once** per [`TILE_USERS`] users —
/// the decode cost is amortized exactly like the load — and no `f32`
/// scratch copy of the block ever exists.
///
/// Every entry is bit-identical to [`dot_f16`] on the corresponding row
/// pair (and therefore to widen-then-[`dot_lanes`]).
///
/// Panics if the slice lengths are inconsistent with the given shape or
/// `out` is shorter than `n_users * n_items`.
pub fn score_tile_f16(
    users: &[f32],
    n_users: usize,
    theta: &[F16],
    n_items: usize,
    f: usize,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 requirement was just probed on this host.
        return unsafe { avx2::score_tile_f16(users, n_users, theta, n_items, f, out) };
    }
    score_tile_f16_impl(users, n_users, theta, n_items, f, out)
}

#[inline(always)]
fn score_tile_f16_impl(
    users: &[f32],
    n_users: usize,
    theta: &[F16],
    n_items: usize,
    f: usize,
    out: &mut [f32],
) {
    assert_eq!(users.len(), n_users * f, "score_tile_f16: bad user slice");
    assert_eq!(theta.len(), n_items * f, "score_tile_f16: bad theta slice");
    assert!(
        out.len() >= n_users * n_items,
        "score_tile_f16: out too short ({} < {})",
        out.len(),
        n_users * n_items
    );
    let full = f / LANES * LANES;
    let mut u0 = 0;
    while u0 + TILE_USERS <= n_users {
        let x0 = &users[u0 * f..(u0 + 1) * f];
        let x1 = &users[(u0 + 1) * f..(u0 + 2) * f];
        let x2 = &users[(u0 + 2) * f..(u0 + 3) * f];
        let x3 = &users[(u0 + 3) * f..(u0 + 4) * f];
        for v in 0..n_items {
            let tv = &theta[v * f..(v + 1) * f];
            let mut acc = [[0.0f32; LANES]; TILE_USERS];
            let mut i = 0;
            while i < full {
                let t = &tv[i..i + LANES];
                let c0 = &x0[i..i + LANES];
                let c1 = &x1[i..i + LANES];
                let c2 = &x2[i..i + LANES];
                let c3 = &x3[i..i + LANES];
                for l in 0..LANES {
                    let tl = decode_f16(t[l]);
                    acc[0][l] += c0[l] * tl;
                    acc[1][l] += c1[l] * tl;
                    acc[2][l] += c2[l] * tl;
                    acc[3][l] += c3[l] * tl;
                }
                i += LANES;
            }
            for (l, j) in (full..f).enumerate() {
                let tl = decode_f16(tv[j]);
                acc[0][l] += x0[j] * tl;
                acc[1][l] += x1[j] * tl;
                acc[2][l] += x2[j] * tl;
                acc[3][l] += x3[j] * tl;
            }
            out[u0 * n_items + v] = reduce_lanes(acc[0]);
            out[(u0 + 1) * n_items + v] = reduce_lanes(acc[1]);
            out[(u0 + 2) * n_items + v] = reduce_lanes(acc[2]);
            out[(u0 + 3) * n_items + v] = reduce_lanes(acc[3]);
        }
        u0 += TILE_USERS;
    }
    for u in u0..n_users {
        let xu = &users[u * f..(u + 1) * f];
        for v in 0..n_items {
            out[u * n_items + v] = dot_f16_impl(xu, &theta[v * f..(v + 1) * f]);
        }
    }
}

/// AVX2 compilations of the portable kernel bodies. Each function simply
/// inlines the matching `*_impl` under `#[target_feature(enable =
/// "avx2")]`, so the evaluation order — and therefore every bit of the
/// result — is identical to the portable build; only the vector width
/// the autovectorizer may use changes. Callers must have verified AVX2
/// support (the public wrappers probe `is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    use core::arch::x86_64::*;

    /// Decode [`LANES`] consecutive binary16 values starting at `p` into
    /// one 8-lane `f32` vector — the exact vector transcription of
    /// [`decode_f16`], lane by lane: zero-extend, shift the magnitude
    /// into f32 position, rescale finite values by the exact `2¹¹²`
    /// multiply, rebase saturated exponents by the integer add, select,
    /// restore the sign. Every lane is bit-identical to the scalar
    /// decode for every 16-bit pattern (NaN payloads included, which a
    /// hardware `vcvtph2ps` would quietize).
    ///
    /// Caller must guarantee `p..p+LANES` is readable.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn decode8(p: *const F16) -> __m256 {
        let h = _mm_loadu_si128(p as *const __m128i);
        let bits = _mm256_cvtepu16_epi32(h);
        // (bits & 0x7FFF) << 13 == (bits << 13) & (0x7FFF << 13).
        let mag = _mm256_and_si256(
            _mm256_slli_epi32::<13>(bits),
            _mm256_set1_epi32(0x0FFF_E000),
        );
        // (bits & 0x8000) << 16 == (bits << 16) & 0x8000_0000.
        let sign = _mm256_and_si256(_mm256_slli_epi32::<16>(bits), _mm256_set1_epi32(i32::MIN));
        let finite = _mm256_mul_ps(
            _mm256_castsi256_ps(mag),
            _mm256_set1_ps(f32::from_bits(0x7780_0000)),
        );
        let special = _mm256_castsi256_ps(_mm256_add_epi32(mag, _mm256_set1_epi32(0x7000_0000)));
        let saturated = _mm256_cmpeq_epi32(
            _mm256_and_si256(bits, _mm256_set1_epi32(0x7C00)),
            _mm256_set1_epi32(0x7C00),
        );
        let val = _mm256_blendv_ps(finite, special, _mm256_castsi256_ps(saturated));
        _mm256_castsi256_ps(_mm256_or_si256(_mm256_castps_si256(val), sign))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
        dot_lanes_impl(a, b)
    }

    /// Explicit-vector [`dot_f16`]: one accumulator vector whose lane
    /// `l` is exactly `acc[l]` of the portable loop, fed by [`decode8`];
    /// the remainder and reduction reuse the scalar code verbatim.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_f16(a: &[f32], b: &[F16]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot_f16: length mismatch");
        let full = a.len() / LANES * LANES;
        let mut vacc = _mm256_setzero_ps();
        let mut i = 0;
        while i < full {
            let x = _mm256_loadu_ps(a.as_ptr().add(i));
            let t = decode8(b.as_ptr().add(i));
            vacc = _mm256_add_ps(vacc, _mm256_mul_ps(x, t));
            i += LANES;
        }
        let mut acc = [0.0f32; LANES];
        _mm256_storeu_ps(acc.as_mut_ptr(), vacc);
        for (l, (&x, &h)) in a[full..].iter().zip(&b[full..]).enumerate() {
            acc[l] += x * decode_f16(h);
        }
        reduce_lanes(acc)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8_scaled(a: &[f32], q: &[i8], scale: f32) -> f32 {
        dot_i8_scaled_impl(a, q, scale)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn score_tile(
        users: &[f32],
        n_users: usize,
        theta: &[f32],
        n_items: usize,
        f: usize,
        out: &mut [f32],
    ) {
        score_tile_impl(users, n_users, theta, n_items, f, out)
    }

    /// Explicit-vector [`score_tile_f16`]: each Θ chunk is decoded once
    /// by [`decode8`] and multiplied into [`TILE_USERS`] accumulator
    /// vectors whose lane `l` is exactly `acc[u][l]` of the portable
    /// loop; remainder users, remainder features, and the reduction
    /// reuse the scalar code verbatim.
    #[target_feature(enable = "avx2")]
    pub unsafe fn score_tile_f16(
        users: &[f32],
        n_users: usize,
        theta: &[F16],
        n_items: usize,
        f: usize,
        out: &mut [f32],
    ) {
        assert_eq!(users.len(), n_users * f, "score_tile_f16: bad user slice");
        assert_eq!(theta.len(), n_items * f, "score_tile_f16: bad theta slice");
        assert!(
            out.len() >= n_users * n_items,
            "score_tile_f16: out too short ({} < {})",
            out.len(),
            n_users * n_items
        );
        let full = f / LANES * LANES;
        let mut u0 = 0;
        while u0 + TILE_USERS <= n_users {
            let xs: [&[f32]; TILE_USERS] = [
                &users[u0 * f..(u0 + 1) * f],
                &users[(u0 + 1) * f..(u0 + 2) * f],
                &users[(u0 + 2) * f..(u0 + 3) * f],
                &users[(u0 + 3) * f..(u0 + 4) * f],
            ];
            for v in 0..n_items {
                let tv = &theta[v * f..(v + 1) * f];
                let mut vacc = [_mm256_setzero_ps(); TILE_USERS];
                let mut i = 0;
                while i < full {
                    let t = decode8(tv.as_ptr().add(i));
                    for (k, a) in vacc.iter_mut().enumerate() {
                        let x = _mm256_loadu_ps(xs[k].as_ptr().add(i));
                        *a = _mm256_add_ps(*a, _mm256_mul_ps(x, t));
                    }
                    i += LANES;
                }
                let mut acc = [[0.0f32; LANES]; TILE_USERS];
                for (k, va) in vacc.iter().enumerate() {
                    _mm256_storeu_ps(acc[k].as_mut_ptr(), *va);
                }
                for (l, j) in (full..f).enumerate() {
                    let tl = decode_f16(tv[j]);
                    for (k, xk) in xs.iter().enumerate() {
                        acc[k][l] += xk[j] * tl;
                    }
                }
                for (k, lanes) in acc.iter().enumerate() {
                    out[(u0 + k) * n_items + v] = reduce_lanes(*lanes);
                }
            }
            u0 += TILE_USERS;
        }
        for u in u0..n_users {
            let xu = &users[u * f..(u + 1) * f];
            for v in 0..n_items {
                out[u * n_items + v] = dot_f16(xu, &theta[v * f..(v + 1) * f]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The lane-order contract, spelled out element by element with no
    /// shared code: element `i` into lane `i % LANES`, then the fixed
    /// pairwise reduction tree.
    fn reference_dot(a: &[f32], b: &[f32]) -> f32 {
        let mut lanes = [0.0f32; LANES];
        for i in 0..a.len() {
            lanes[i % LANES] += a[i] * b[i];
        }
        ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
            + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
    }

    fn vecs(len: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        // Awkward magnitudes so any reassociation shows up in the bits.
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32 - 0.5) * 3.7
        };
        let a: Vec<f32> = (0..len).map(|_| next()).collect();
        let b: Vec<f32> = (0..len).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn dot_lanes_is_bit_identical_to_the_spelled_out_order() {
        for len in 0..=4 * LANES + 3 {
            let (a, b) = vecs(len, len as u64 + 1);
            assert_eq!(
                dot_lanes(&a, &b).to_bits(),
                reference_dot(&a, &b).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn score_tile_is_bit_identical_to_dot_lanes_per_pair() {
        // Cover full tiles, a remainder user, and f remainders.
        for (n_users, n_items, f) in [(1, 3, 5), (4, 7, 8), (6, 5, 19), (9, 4, 35), (3, 1, 1)] {
            let (users, _) = vecs(n_users * f, 42 + f as u64);
            let (theta, _) = vecs(n_items * f, 99 + n_items as u64);
            let mut out = vec![0.0f32; n_users * n_items];
            score_tile(&users, n_users, &theta, n_items, f, &mut out);
            for u in 0..n_users {
                for v in 0..n_items {
                    let want = dot_lanes(&users[u * f..(u + 1) * f], &theta[v * f..(v + 1) * f]);
                    assert_eq!(
                        out[u * n_items + v].to_bits(),
                        want.to_bits(),
                        "u={u} v={v} f={f}"
                    );
                }
            }
        }
    }

    #[test]
    fn decode_f16_matches_to_f32_on_every_bit_pattern() {
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            let slow = h.to_f32();
            let fast = decode_f16(h);
            assert_eq!(
                fast.to_bits(),
                slow.to_bits(),
                "pattern {bits:#06x}: fast {fast} vs slow {slow}"
            );
        }
    }

    #[test]
    fn dot_f16_equals_widen_then_dot_lanes_exactly() {
        for len in 0..=4 * LANES + 3 {
            let (a, raw) = vecs(len, 1000 + len as u64);
            let b: Vec<F16> = raw.iter().map(|&x| F16::from_f32(x)).collect();
            let widened: Vec<f32> = b.iter().map(|h| h.to_f32()).collect();
            assert_eq!(
                dot_f16(&a, &b).to_bits(),
                dot_lanes(&a, &widened).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn score_tile_f16_is_bit_identical_to_dot_f16_per_pair() {
        for (n_users, n_items, f) in [(4, 6, 8), (5, 3, 13), (2, 4, 40)] {
            let (users, _) = vecs(n_users * f, 7 + f as u64);
            let (raw, _) = vecs(n_items * f, 11 + n_items as u64);
            let theta: Vec<F16> = raw.iter().map(|&x| F16::from_f32(x)).collect();
            let mut out = vec![0.0f32; n_users * n_items];
            score_tile_f16(&users, n_users, &theta, n_items, f, &mut out);
            for u in 0..n_users {
                for v in 0..n_items {
                    let want = dot_f16(&users[u * f..(u + 1) * f], &theta[v * f..(v + 1) * f]);
                    assert_eq!(
                        out[u * n_items + v].to_bits(),
                        want.to_bits(),
                        "u={u} v={v} f={f}"
                    );
                }
            }
        }
    }

    /// Exhaustively pin the dispatched `dot_f16` (the AVX2 `decode8`
    /// path on hosts that have it) to widen-then-`dot_lanes` over every
    /// 16-bit pattern, eight consecutive patterns per chunk — this is
    /// the vector decode's equivalent of the scalar exhaustive test,
    /// covering subnormals, infinities, and NaN payloads.
    #[test]
    fn dot_f16_matches_widen_on_every_bit_pattern_chunkwise() {
        let ones = [1.0f32; LANES];
        let mut base = 0u32;
        while base <= u16::MAX as u32 {
            let chunk: Vec<F16> = (0..LANES)
                .map(|i| F16::from_bits((base + i as u32) as u16))
                .collect();
            let widened: Vec<f32> = chunk.iter().map(|h| h.to_f32()).collect();
            assert_eq!(
                dot_f16(&ones, &chunk).to_bits(),
                dot_lanes(&ones, &widened).to_bits(),
                "base {base:#06x}"
            );
            base += LANES as u32;
        }
    }

    #[test]
    fn dot_i8_scaled_equals_dequantize_then_dot_lanes_exactly() {
        for len in 0..=4 * LANES + 3 {
            let (a, raw) = vecs(len, 5000 + len as u64);
            let q: Vec<i8> = raw.iter().map(|&x| (x * 30.0) as i8).collect();
            let widened: Vec<f32> = q.iter().map(|&w| w as f32).collect();
            let scale = 0.037f32;
            assert_eq!(
                dot_i8_scaled(&a, &q, scale).to_bits(),
                (dot_lanes(&a, &widened) * scale).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn empty_and_zero_length_inputs_are_zero() {
        assert_eq!(dot_lanes(&[], &[]), 0.0);
        assert_eq!(dot_f16(&[], &[]), 0.0);
        assert_eq!(dot_i8_scaled(&[], &[], 2.0), 0.0);
        let mut out = [0.0f32; 0];
        score_tile(&[], 0, &[], 0, 7, &mut out);
    }

    #[test]
    fn decode_f16_specials() {
        assert_eq!(decode_f16(F16::ZERO).to_bits(), 0.0f32.to_bits());
        assert_eq!(
            decode_f16(F16::from_bits(0x8000)).to_bits(),
            (-0.0f32).to_bits()
        );
        assert_eq!(decode_f16(F16::INFINITY), f32::INFINITY);
        assert_eq!(decode_f16(F16::NEG_INFINITY), f32::NEG_INFINITY);
        assert!(decode_f16(F16::NAN).is_nan());
        assert_eq!(decode_f16(F16::MIN_SUBNORMAL), 2.0f32.powi(-24));
        assert_eq!(decode_f16(F16::MAX), 65504.0);
    }
}
