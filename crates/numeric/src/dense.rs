//! Dense vector and matrix kernels.
//!
//! Row-major `f32` storage throughout, matching how the feature matrices
//! `X ∈ R^{m×f}` and `Θ ∈ R^{n×f}` live in (simulated) device memory: one
//! `f`-long feature vector per row, contiguous.

/// Dot product of two equal-length vectors, accumulated in `f32`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Dot product accumulated in `f64`; used where the roundoff of a long
/// reduction would pollute a convergence decision (RMSE, CG residuals).
#[inline]
pub fn dot_f64(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        acc += x as f64 * y as f64;
    }
    acc
}

/// `y ← y + alpha·x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y ← x + beta·y` (the CG direction update `p = r + β p`).
#[inline]
pub fn xpby(x: &[f32], beta: f32, y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// Euclidean norm with `f64` accumulation.
#[inline]
pub fn norm2(a: &[f32]) -> f32 {
    dot_f64(a, a).sqrt() as f32
}

/// Scale a vector in place.
#[inline]
pub fn scale(alpha: f32, a: &mut [f32]) {
    for x in a {
        *x *= alpha;
    }
}

/// A dense row-major matrix of `f32`.
///
/// This is the storage for feature matrices and for the full (unpacked) form
/// of Gram matrices where a kernel wants plain `f²` layout.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a row-major buffer; `data.len()` must equal `rows × cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "DenseMatrix::from_vec: size mismatch"
        );
        DenseMatrix { rows, cols, data }
    }

    /// The identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the whole row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the whole row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// `y = self · x` (matrix–vector product).
    pub fn matvec(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec: x length");
        assert_eq!(y.len(), self.rows, "matvec: y length");
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = dot(self.row(i), x);
        }
    }

    /// Dense `C = A · Bᵀ` where both A and B are row-major with equal `cols`.
    ///
    /// This layout (`B` accessed by rows) is the natural one for computing
    /// predicted ratings `X · Θᵀ` from two feature matrices.
    pub fn gemm_nt(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.cols, "gemm_nt: inner dimension");
        let mut out = DenseMatrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a = self.row(i);
            for j in 0..other.rows {
                let v = dot(a, other.row(j));
                out.data[i * out.cols + j] = v;
            }
        }
        out
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Frobenius norm with f64 accumulation.
    pub fn frobenius_norm(&self) -> f32 {
        dot_f64(&self.data, &self.data).sqrt() as f32
    }

    /// Fill with samples from `gen` (used to initialize feature matrices).
    pub fn fill_with(&mut self, mut gen: impl FnMut() -> f32) {
        for v in &mut self.data {
            *v = gen();
        }
    }

    /// Maximum absolute element-wise difference against another matrix.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy_basics() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn xpby_matches_formula() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
    }

    #[test]
    fn matvec_identity_is_noop() {
        let m = DenseMatrix::identity(4);
        let x = [1.0, -2.0, 3.0, -4.0];
        let mut y = [0.0; 4];
        m.matvec(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn gemm_nt_small_case() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]]; A·Bᵀ = [[17,23],[39,53]]
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.gemm_nt(&b);
        assert_eq!(c.as_slice(), &[17.0, 23.0, 39.0, 53.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), m.get(1, 2));
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        let m = DenseMatrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_vec_rejects_bad_length() {
        let _ = DenseMatrix::from_vec(2, 2, vec![1.0; 3]);
    }
}
