//! Integration tests for the HTTP exposition plane, over real sockets:
//! scrape conformance (HELP/TYPE on every family, fresh memory gauges),
//! the readiness flips the health model promises (default model retired,
//! SLO fast-burn), protocol edge cases (malformed/oversized heads, slow
//! clients, unknown routes, non-GET methods), journal replay over
//! `/debug/events`, concurrent scrape consistency, and shutdown latency.

use cumf_numeric::dense::DenseMatrix;
use cumf_serve::{
    CanaryPolicy, HttpConfig, ModelSnapshot, ObsServer, Request, ServeConfig, ServeEngine,
};
use cumf_telemetry::NOOP;
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn engine() -> Arc<ServeEngine> {
    let x = DenseMatrix::identity(4);
    let theta = DenseMatrix::identity(4);
    Arc::new(
        ServeEngine::builder()
            .config(ServeConfig::default().with_k(2))
            .model("default", x, ModelSnapshot::new(0, theta, vec![]))
            .build()
            .expect("tiny engine builds"),
    )
}

fn server(engine: Arc<ServeEngine>) -> ObsServer {
    ObsServer::bind("127.0.0.1:0", engine, HttpConfig::default()).expect("bind ephemeral port")
}

/// One raw HTTP/1.1 GET; returns (status code, body).
fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let raw = format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n");
    let response = exchange(addr, raw.as_bytes());
    split_response(&response)
}

/// Write `request` verbatim, read until the server closes the socket.
fn exchange(addr: SocketAddr, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read to close");
    response
}

fn split_response(response: &str) -> (u16, String) {
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .unwrap_or_default()
        .to_string();
    (status, body)
}

fn json(body: &str) -> Value {
    Value::parse(body).expect("body parses as JSON")
}

#[test]
fn scrape_returns_conformant_prometheus_text_with_fresh_gauges() {
    let engine = engine();
    engine.recommend_batch(&[Request::known(0, 0), Request::known(1, 1)], &NOOP);
    let server = server(Arc::clone(&engine));
    let (code, body) = get(server.local_addr(), "/metrics");
    assert_eq!(code, 200);
    assert!(body.contains("serve_requests_total 2"), "{body}");

    // Every exposed family carries HELP and TYPE, and passes the
    // registry's own conformance lint (names, suffixes, help text).
    let types: Vec<&str> = body.lines().filter(|l| l.starts_with("# TYPE ")).collect();
    assert!(!types.is_empty());
    for t in &types {
        let family = t.split_whitespace().nth(2).unwrap();
        assert!(
            body.contains(&format!("# HELP {family} ")),
            "family {family} is missing HELP"
        );
    }
    let problems = engine.obs().metrics().registry().lint();
    assert_eq!(problems, Vec::<String>::new());

    // Freshness contract: the scrape itself refreshed the memory gauges,
    // with no refresh_memory_gauges() call from the test.
    assert!(
        body.contains("serve_mem_bytes{component=\"engine\",model=\"\"}"),
        "memory gauges must be populated by the scrape"
    );
    let resident: f64 = body
        .lines()
        .find(|l| l.starts_with("serve_mem_bytes{component=\"engine\""))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap();
    assert!(resident > 0.0, "engine resident bytes must be non-zero");
    server.shutdown();
}

#[test]
fn liveness_is_unconditional_but_readiness_flips_on_force_retire() {
    let engine = engine();
    let server = server(Arc::clone(&engine));
    let addr = server.local_addr();

    let (code, body) = get(addr, "/healthz");
    assert_eq!((code, body.as_str()), (200, "ok\n"));
    let (code, body) = get(addr, "/readyz");
    assert_eq!(code, 200);
    assert_eq!(json(&body).get("ready"), Some(&Value::Bool(true)));

    // Emergency-drain the default model: readiness must flip to 503 and
    // name the failing check, while liveness stays green.
    let default = engine.registry().default_model();
    engine.registry().force_retire(&default).unwrap();
    let (code, body) = get(addr, "/readyz");
    assert_eq!(code, 503);
    let status = json(&body);
    assert_eq!(status.get("ready"), Some(&Value::Bool(false)));
    let failing: Vec<&str> = status
        .get("checks")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .filter(|c| c.get("ok") == Some(&Value::Bool(false)))
        .map(|c| c.get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(failing, vec!["default_model_live"]);
    let (code, _) = get(addr, "/healthz");
    assert_eq!(code, 200, "liveness is not readiness");
    server.shutdown();
}

#[test]
fn readiness_flips_while_the_slo_fast_burns() {
    let engine = engine();
    let server = server(Arc::clone(&engine));
    let addr = server.local_addr();
    let (code, _) = get(addr, "/readyz");
    assert_eq!(code, 200);

    // A shed storm inside the short burn window torches the error budget.
    let obs = engine.obs_arc();
    let now = engine.now();
    for _ in 0..20 {
        obs.observe_shed(now);
    }
    let (code, body) = get(addr, "/readyz");
    assert_eq!(code, 503, "{body}");
    assert!(body.contains("slo_fast_burn"));

    // The scrape-driven edge detection journaled the transition.
    let (_, events) = get(addr, "/debug/events");
    assert!(events.contains("SloBurnEntered"));
    server.shutdown();
}

#[test]
fn protocol_edges_get_typed_errors() {
    let server = server(engine());
    let addr = server.local_addr();

    let (code, _) = get(addr, "/no/such/route");
    assert_eq!(code, 404);

    // A request line that isn't `METHOD TARGET VERSION`.
    let (code, _) = split_response(&exchange(addr, b"GARBAGE\r\n\r\n"));
    assert_eq!(code, 400);

    // An HTTP/0.9-style two-token line.
    let (code, _) = split_response(&exchange(addr, b"GET /metrics\r\n\r\n"));
    assert_eq!(code, 400);

    // Non-GET methods are not served.
    let (code, _) = split_response(&exchange(addr, b"POST /metrics HTTP/1.1\r\n\r\n"));
    assert_eq!(code, 405);

    // A head that exceeds the configured cap is rejected, not buffered.
    let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64 * 1024));
    let (code, _) = split_response(&exchange(addr, huge.as_bytes()));
    assert_eq!(code, 400);
    server.shutdown();
}

#[test]
fn slow_loris_is_cut_off_at_the_read_timeout() {
    let cfg = HttpConfig {
        read_timeout: Duration::from_millis(100),
        ..HttpConfig::default()
    };
    let server = ObsServer::bind("127.0.0.1:0", engine(), cfg).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Send half a request line and then stall.
    stream.write_all(b"GET /metr").expect("partial write");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("server must close the connection");
    let (code, _) = split_response(&response);
    assert_eq!(code, 408, "{response:?}");
    server.shutdown();
}

#[test]
fn concurrent_scrapes_return_complete_consistent_expositions() {
    let engine = engine();
    engine.recommend_batch(&[Request::known(0, 0)], &NOOP);
    let server = server(Arc::clone(&engine));
    let addr = server.local_addr();
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let (code, body) = get(addr, "/metrics");
                    assert_eq!(code, 200);
                    body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for body in &bodies {
        // Each scrape is a complete exposition: the request counter is
        // present with its full family header, and the body ends with a
        // newline-terminated sample (no torn writes).
        assert!(body.contains("# TYPE serve_requests_total counter"));
        assert!(body.contains("serve_requests_total 1"));
        assert!(body.ends_with('\n'));
    }
    server.shutdown();
}

#[test]
fn journal_replays_the_lifecycle_in_order_over_http() {
    let engine = engine();
    let server = server(Arc::clone(&engine));
    let reg = engine.registry();

    // register → publish → canary → promote; then a second canary that is
    // rolled back — the full audit trail, in one process lifetime.
    reg.register(
        "challenger",
        DenseMatrix::identity(4),
        ModelSnapshot::new(0, DenseMatrix::identity(4), vec![]),
    )
    .unwrap();
    reg.publish(
        &"challenger".into(),
        ModelSnapshot::new(1, DenseMatrix::identity(4), vec![]),
    )
    .unwrap();
    reg.set_canary(CanaryPolicy::new("challenger", 0.25))
        .unwrap();
    reg.promote().unwrap();
    reg.set_canary(CanaryPolicy::new("default", 0.5)).unwrap();
    reg.rollback().unwrap();

    let (code, body) = get(server.local_addr(), "/debug/events");
    assert_eq!(code, 200);
    let events = json(&body);
    let records = events.get("events").unwrap().as_array().unwrap();
    let kinds: Vec<&str> = records
        .iter()
        .map(|r| r.get("kind").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(
        kinds,
        vec![
            "ModelRegistered",   // default, at bootstrap
            "SnapshotPublished", // default epoch 0
            "ModelRegistered",   // challenger
            "SnapshotPublished", // challenger epoch 0
            "SnapshotPublished", // challenger epoch 1
            "CanarySet",
            "Promoted",
            "CanarySet",
            "RolledBack",
        ]
    );
    let seqs: Vec<f64> = records
        .iter()
        .map(|r| r.get("seq").unwrap().as_f64().unwrap())
        .collect();
    let times: Vec<f64> = records
        .iter()
        .map(|r| r.get("time").unwrap().as_f64().unwrap())
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");

    // The JSONL view carries the same records, one per line.
    let (_, jsonl) = get(server.local_addr(), "/debug/events.jsonl");
    assert_eq!(jsonl.lines().count(), records.len());
    server.shutdown();
}

#[test]
fn shutdown_completes_promptly() {
    let server = server(engine());
    let addr = server.local_addr();
    let start = std::time::Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "shutdown must not wait out the read timeout"
    );
    // The port no longer answers.
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err());
}
