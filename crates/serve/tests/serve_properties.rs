//! Property-based and model-level tests for the serving crate:
//! the blocked top-k path against a naive argsort oracle, the sharded
//! scatter-gather path against the unsharded scorer, the approximate
//! retrieval path's exactness/recall guarantees (full probe bit-identity,
//! recall monotonicity in `n_probe`, int8 round-trip bounds),
//! canary-routing determinism and split convergence, registry
//! promote/rollback cache isolation, admission-queue overload behavior,
//! and the FP16 scoring path's ranking quality on a trained model.

use cumf_als::{AlsConfig, AlsTrainer};
use cumf_datasets::{MfDataset, SizeClass};
use cumf_gpu_sim::GpuSpec;
use cumf_numeric::dense::DenseMatrix;
use cumf_serve::{
    admission_queue, canary_unit, naive_top_k, ndcg_at_k, overlap_at_k, score_one, top_k_batch,
    top_k_batch_sharded, AdmissionConfig, AnnParams, CanaryPolicy, ModelSnapshot, QuantMode,
    QuantizedFactors, Request, Retrieval, ScoreConfig, ServeConfig, ServeEngine, ShardedSnapshot,
    SubmitError,
};
use cumf_telemetry::NOOP;
use proptest::prelude::*;
use std::time::Duration;

/// A random (snapshot, user batch) pair: n items × f features plus u user
/// rows, entries in [-1, 1], and random popularity priors.
fn arb_model() -> impl Strategy<Value = (ModelSnapshot, DenseMatrix)> {
    (1usize..80, 1usize..8, 1usize..12).prop_flat_map(|(n, f, u)| {
        (
            prop::collection::vec(-1.0f32..1.0, n * f),
            prop::collection::vec(0.0f32..0.2, n),
            prop::collection::vec(-1.0f32..1.0, u * f),
        )
            .prop_map(move |(theta, pop, x)| {
                (
                    ModelSnapshot::new(0, DenseMatrix::from_vec(n, f, theta), pop),
                    DenseMatrix::from_vec(u, f, x),
                )
            })
    })
}

proptest! {
    /// The blocked, heap-reduced batch scorer must agree *exactly* (same
    /// items, same scores, same order) with a full naive argsort of the
    /// unblocked score rows, for every tiling geometry.
    #[test]
    fn batched_top_k_equals_naive_argsort(
        model in arb_model(),
        k in 1usize..15,
        block_items in 1usize..97,
        user_chunk in 1usize..9,
    ) {
        let (snapshot, users) = model;
        let cfg = ScoreConfig { block_items: Some(block_items), user_chunk, ..ScoreConfig::default() };
        let got = top_k_batch(&snapshot, &users, k, &cfg);
        prop_assert_eq!(got.len(), users.rows());
        for (u, ranked) in got.iter().enumerate() {
            let scores = score_one(&snapshot, users.row(u), false);
            let want = naive_top_k(&scores, k);
            prop_assert_eq!(ranked, &want, "user {} tiling {}x{}", u, block_items, user_chunk);
        }
    }

    /// Rankings are invariant under tiling: any two block geometries
    /// produce bit-identical results.
    #[test]
    fn tiling_never_changes_the_ranking(
        model in arb_model(),
        blocks in (1usize..64, 1usize..64),
    ) {
        let (snapshot, users) = model;
        let a = top_k_batch(&snapshot, &users, 8, &ScoreConfig {
            block_items: Some(blocks.0), user_chunk: 3, ..ScoreConfig::default() });
        let b = top_k_batch(&snapshot, &users, 8, &ScoreConfig {
            block_items: Some(blocks.1), user_chunk: 5, ..ScoreConfig::default() });
        prop_assert_eq!(a, b);
    }

    /// Sharded scatter-gather scoring is bit-identical to the unsharded
    /// scorer for every shard count, on arbitrary models.
    #[test]
    fn sharded_scoring_equals_unsharded(
        model in arb_model(),
        k in 1usize..15,
    ) {
        let (snapshot, users) = model;
        let cfg = ScoreConfig::default();
        let want = top_k_batch(&snapshot, &users, k, &cfg);
        for shards in [1usize, 2, 3, 7, 8] {
            let sharded = ShardedSnapshot::build(snapshot.clone(), shards);
            let got = top_k_batch_sharded(&sharded, &users, k, &cfg);
            prop_assert_eq!(&got, &want, "{} shards", shards);
        }
    }

    /// Ties straddling shard boundaries never perturb the ranking: with a
    /// catalog of *duplicated* item rows every duplicate pair ties, and
    /// the sharded merge must still reproduce the unsharded order (score
    /// desc, item id asc) for every cut placement.
    #[test]
    fn boundary_ties_merge_identically(
        f in 1usize..6,
        dup in 2usize..5,
        groups in 2usize..8,
        seed_row in prop::collection::vec(-1.0f32..1.0, 8),
    ) {
        let n = dup * groups;
        // Rows repeat every `groups` items, so ties are spread across the
        // catalog and any shard cut separates some tied pair.
        let mut theta = Vec::with_capacity(n * f);
        for i in 0..n {
            for j in 0..f {
                theta.push(seed_row[(i % groups + j) % 8]);
            }
        }
        let snapshot = ModelSnapshot::new(0, DenseMatrix::from_vec(n, f, theta), vec![]);
        let users = DenseMatrix::from_vec(1, f, seed_row[..f].to_vec());
        let cfg = ScoreConfig::default();
        let want = top_k_batch(&snapshot, &users, n, &cfg);
        for shards in 1..=n {
            let sharded = ShardedSnapshot::build(snapshot.clone(), shards);
            let got = top_k_batch_sharded(&sharded, &users, n, &cfg);
            prop_assert_eq!(&got, &want, "{} shards over {} items", shards, n);
        }
    }
}

proptest! {
    /// With every cluster probed and no quantization, the approximate
    /// retrieval path must be bit-identical to the exact scorer: the
    /// candidate set covers the whole catalog, candidates are scored in
    /// FP32, and the heap's total order is push-order independent.
    #[test]
    fn full_probe_unquantized_approx_is_bit_identical_to_exact(
        model in arb_model(),
        k in 1usize..15,
        k_clusters in 1usize..7,
    ) {
        let (snapshot, users) = model;
        let snapshot = snapshot.with_ann(AnnParams { k_clusters, ..AnnParams::default() });
        let exact = top_k_batch(&snapshot, &users, k, &ScoreConfig::default());
        let approx = top_k_batch(&snapshot, &users, k, &ScoreConfig {
            retrieval: Retrieval::Approx { n_probe: k_clusters, quant: QuantMode::None },
            ..ScoreConfig::default()
        });
        prop_assert_eq!(approx, exact);
    }

    /// int8 block quantization round-trips every coefficient to within
    /// half a quantization step of its block's scale.
    #[test]
    fn int8_round_trip_error_is_bounded_by_half_a_step(
        rows in prop::collection::vec(-2.0f32..2.0, 4..260),
    ) {
        let f = 4usize;
        let n = rows.len() / f;
        let items = DenseMatrix::from_vec(n, f, rows[..n * f].to_vec());
        let q = QuantizedFactors::build(&items);
        for i in 0..n {
            let scale = q.scale(i);
            for (j, &v) in items.row(i).iter().enumerate() {
                let back = f32::from(q.row(i)[j]) * scale;
                prop_assert!(
                    (back - v).abs() <= scale * 0.5 + 1e-6,
                    "item {} dim {}: {} -> {} (scale {})", i, j, v, back, scale
                );
            }
        }
    }
}

/// Recall@k versus the exact scorer is monotone in `n_probe`: without
/// quantization the candidate sets nest as the probe widens, so widening
/// the probe can only add true top-k items — and the full probe recovers
/// the exact ranking.
#[test]
fn recall_at_k_is_monotone_in_n_probe() {
    let (n, f, u, k, clusters) = (600usize, 8usize, 24usize, 10usize, 16usize);
    let theta: Vec<f32> = (0..n * f)
        .map(|i| ((i as u64 * 2_654_435_761 % 1000) as f32 - 500.0) / 500.0)
        .collect();
    let x: Vec<f32> = (0..u * f)
        .map(|i| ((i as u64 * 40_503 % 997) as f32 - 498.0) / 498.0)
        .collect();
    let snapshot =
        ModelSnapshot::new(0, DenseMatrix::from_vec(n, f, theta), vec![]).with_ann(AnnParams {
            k_clusters: clusters,
            ..AnnParams::default()
        });
    let x = DenseMatrix::from_vec(u, f, x);
    let exact = top_k_batch(&snapshot, &x, k, &ScoreConfig::default());
    let mut prev = -1.0f64;
    for n_probe in 1..=clusters {
        let approx = top_k_batch(
            &snapshot,
            &x,
            k,
            &ScoreConfig {
                retrieval: Retrieval::Approx {
                    n_probe,
                    quant: QuantMode::None,
                },
                ..ScoreConfig::default()
            },
        );
        let recall = exact
            .iter()
            .zip(&approx)
            .map(|(e, a)| overlap_at_k(e, a, k))
            .sum::<f64>()
            / u as f64;
        assert!(
            recall >= prev - 1e-12,
            "recall fell from {prev} to {recall} at n_probe {n_probe}"
        );
        prev = recall;
    }
    assert_eq!(prev, 1.0, "full probe must recover the exact ranking");
}

proptest! {
    /// Canary routing is deterministic per user (a pure hash, no RNG) and
    /// monotone in the split fraction: ramping a canary up only ever moves
    /// users onto the candidate arm, never shuffles them back and forth.
    #[test]
    fn canary_routing_is_deterministic_and_monotone(
        users in prop::collection::vec(0u32..1_000_000, 1..50),
        fa in 0.0f64..1.0,
        fb in 0.0f64..1.0,
    ) {
        let lo = CanaryPolicy::new("candidate", fa.min(fb));
        let hi = CanaryPolicy::new("candidate", fa.max(fb));
        for &u in &users {
            // Same user, same policy, same arm — every time.
            prop_assert_eq!(
                lo.routes_to_candidate(u as u64),
                lo.routes_to_candidate(u as u64)
            );
            // The user's unit coordinate is fixed; widening the fraction
            // can only add users to the candidate arm.
            if lo.routes_to_candidate(u as u64) {
                prop_assert!(hi.routes_to_candidate(u as u64), "user {} left the arm", u);
            }
            let unit = canary_unit(u as u64);
            prop_assert!((0.0..1.0).contains(&unit));
        }
    }
}

/// The measured split over 10k users converges to the configured fraction
/// within ±2% — the satellite acceptance bound.
#[test]
fn canary_split_converges_within_2_percent_over_10k_users() {
    for fraction in [0.05, 0.1, 0.25, 0.5, 0.75, 0.9] {
        let policy = CanaryPolicy::new("candidate", fraction);
        let hits = (0..10_000u64)
            .filter(|&u| policy.routes_to_candidate(u))
            .count();
        let got = hits as f64 / 10_000.0;
        assert!(
            (got - fraction).abs() <= 0.02,
            "fraction {fraction}: measured {got}"
        );
    }
}

/// Registry promote/rollback round-trip with cache isolation: arms never
/// answer for each other, rollback leaves no stale hits, and routing
/// changes take effect without rebuilding the engine.
#[test]
fn promote_rollback_round_trip_keeps_cache_arms_isolated() {
    let mut v = 0.0f32;
    let mut theta_a = DenseMatrix::zeros(20, 4);
    theta_a.fill_with(|| {
        v += 0.1;
        v
    });
    let mut theta_b = theta_a.clone();
    cumf_numeric::dense::scale(-1.0, theta_b.as_mut_slice());
    let x = DenseMatrix::identity(4);
    let engine = ServeEngine::builder()
        .model(
            "champion",
            x.clone(),
            ModelSnapshot::new(0, theta_a, vec![]),
        )
        .model("challenger", x, ModelSnapshot::new(0, theta_b, vec![]))
        .canary("challenger", 1.0)
        .build()
        .unwrap();
    let reg = engine.registry();

    // Full canary: user 1 is served (and cached) by the challenger.
    let canaried = engine.recommend_user(1, &NOOP).unwrap();
    assert_eq!(canaried.model.as_str(), "challenger");
    assert!(!canaried.from_cache);

    // Rollback: the champion takes 100% again. Same user, same epoch —
    // but a different model slot, so the challenger's cached entry must
    // NOT answer.
    reg.rollback().unwrap();
    let rolled = engine.recommend_user(1, &NOOP).unwrap();
    assert_eq!(rolled.model.as_str(), "champion");
    assert!(!rolled.from_cache, "stale hit across arms after rollback");
    assert_ne!(rolled.items, canaried.items, "arms rank differently");

    // Re-canary: the challenger's earlier entry is still valid under its
    // own (model, epoch, user) key and hits bit-identically.
    reg.set_canary(CanaryPolicy::new("challenger", 1.0))
        .unwrap();
    let recanaried = engine.recommend_user(1, &NOOP).unwrap();
    assert_eq!(recanaried.model.as_str(), "challenger");
    assert!(recanaried.from_cache);
    assert_eq!(recanaried.items, canaried.items);

    // Promote: the challenger becomes the default alias, no restart.
    reg.promote().unwrap();
    assert!(reg.canary().is_none());
    let promoted = engine.recommend_user(1, &NOOP).unwrap();
    assert_eq!(promoted.model.as_str(), "challenger");
    assert!(promoted.from_cache);
    assert_eq!(promoted.items, canaried.items);
}

/// Single-model regression: the v2 engine (registry + router + builder)
/// must return results bit-identical to the direct batch scorer — the
/// redesign may not perturb single-model serving.
#[test]
fn single_model_engine_matches_the_direct_scorer_bit_for_bit() {
    let (n, f, u, k) = (30usize, 3usize, 10usize, 7usize);
    let theta: Vec<f32> = (0..n * f)
        .map(|i| ((i * 37 % 101) as f32 - 50.0) / 50.0)
        .collect();
    let x: Vec<f32> = (0..u * f)
        .map(|i| ((i * 53 % 89) as f32 - 44.0) / 44.0)
        .collect();
    let theta = DenseMatrix::from_vec(n, f, theta);
    let x = DenseMatrix::from_vec(u, f, x);
    let snapshot = ModelSnapshot::new(3, theta, vec![]);
    let want = top_k_batch(&snapshot, &x, k, &ScoreConfig::default());

    let engine = ServeEngine::builder()
        .config(ServeConfig::default().with_k(k))
        .model("only", x.clone(), snapshot)
        .build()
        .unwrap();
    let requests: Vec<Request> = (0..u).map(|i| Request::known(i as u64, i as u32)).collect();
    let got = engine.recommend_batch(&requests, &NOOP);
    assert_eq!(got.len(), u);
    for (i, rec) in got.into_iter().enumerate() {
        let rec = rec.unwrap();
        assert_eq!(rec.model.as_str(), "only");
        assert_eq!(rec.epoch, 3);
        assert_eq!(
            rec.items, want[i],
            "user {i} diverged from the direct scorer"
        );
    }
}

/// An overloaded admission queue must reject rather than grow: with no
/// worker draining, exactly `queue_depth` requests are accepted and every
/// further submission is shed and counted.
#[test]
fn overloaded_admission_queue_rejects_rather_than_grows() {
    let theta = DenseMatrix::identity(8);
    let engine = ServeEngine::builder()
        .config(ServeConfig::default().with_k(3))
        .model(
            "default",
            DenseMatrix::identity(8),
            ModelSnapshot::new(0, theta, vec![]),
        )
        .build()
        .unwrap();
    for depth in [1usize, 4, 16] {
        let (queue, worker, done) = admission_queue(AdmissionConfig {
            max_batch: 8,
            queue_depth: depth,
            batch_age: Duration::from_millis(1),
        });
        let total = depth + 13;
        let mut accepted = 0usize;
        for i in 0..total {
            match queue.try_submit(Request::known(i as u64, (i % 8) as u32), engine.now()) {
                Ok(()) => accepted += 1,
                Err(SubmitError::Full(_)) => {}
                Err(SubmitError::Closed(_)) => panic!("worker still alive"),
            }
        }
        assert_eq!(accepted, depth, "bounded queue holds exactly its depth");
        assert_eq!(queue.rejected(), 13, "every overflow is counted");
        drop(queue);
        let report = worker.run(&engine, &cumf_telemetry::NOOP);
        assert_eq!(report.admitted, depth as u64);
        assert_eq!(report.rejected, 13);
        assert_eq!(done.iter().count(), depth, "accepted requests still served");
    }
}

proptest! {
    /// `SimilarItems` through the full engine is bit-identical to a naive
    /// exclude-then-top-k over Θ·Θᵀ: score every catalog item against the
    /// query item's own factor row, drop the query item, and keep the
    /// usual total order (score desc, item id asc).
    #[test]
    fn similar_items_equals_naive_theta_theta_top_k(
        model in arb_model(),
        k in 1usize..10,
    ) {
        let (snapshot, users) = model;
        let n = snapshot.n_items();
        let engine = ServeEngine::builder()
            .config(ServeConfig::default().with_k(k))
            .model("only", users, snapshot.clone())
            .build()
            .unwrap();
        let requests: Vec<Request> = (0..n)
            .map(|v| Request::similar_items(v as u64, v as u32))
            .collect();
        let got = engine.recommend_batch(&requests, &NOOP);
        for (v, rec) in got.into_iter().enumerate() {
            let rec = rec.unwrap();
            let scores = score_one(&snapshot, snapshot.item_row(v), false);
            let want: Vec<_> = naive_top_k(&scores, n)
                .into_iter()
                .filter(|s| s.item != v as u32)
                .take(k)
                .collect();
            prop_assert_eq!(&rec.items, &want, "query item {}", v);
        }
    }

    /// `RankItems` equals the full top-k restricted to the slate: ranking
    /// a candidate list must reproduce exactly the positions those items
    /// occupy in the complete catalog ranking.
    #[test]
    fn rank_items_equals_full_top_k_restricted_to_the_slate(
        model in arb_model(),
        k in 1usize..10,
        picks in prop::collection::vec(any::<u32>(), 1..20),
    ) {
        let (snapshot, users) = model;
        let n = snapshot.n_items();
        let mut slate: Vec<u32> = picks.iter().map(|ix| ix % n as u32).collect();
        slate.sort_unstable();
        slate.dedup();
        let engine = ServeEngine::builder()
            .config(ServeConfig::default().with_k(k))
            .model("only", users.clone(), snapshot.clone())
            .build()
            .unwrap();
        for u in 0..users.rows() {
            let req = Request::rank_items(u as u64, u as u32, slate.clone());
            let rec = engine.recommend_batch(&[req], &NOOP).pop().unwrap().unwrap();
            let scores = score_one(&snapshot, users.row(u), false);
            let want: Vec<_> = naive_top_k(&scores, n)
                .into_iter()
                .filter(|s| slate.binary_search(&s.item).is_ok())
                .take(k)
                .collect();
            prop_assert_eq!(&rec.items, &want, "user {}", u);
        }
    }

    /// `Explain` decomposes the served score: the per-factor terms plus the
    /// prior sum back to the dot product within 1e-6, and the served score
    /// itself is bit-identical to the exact scorer's row.
    #[test]
    fn explain_terms_sum_to_the_served_dot_product(
        model in arb_model(),
    ) {
        let (snapshot, users) = model;
        let n = snapshot.n_items();
        let engine = ServeEngine::builder()
            .model("only", users.clone(), snapshot.clone())
            .build()
            .unwrap();
        for u in 0..users.rows() {
            let v = (u * 7) % n;
            let req = Request::explain(u as u64, u as u32, v as u32);
            let rec = engine.recommend_batch(&[req], &NOOP).pop().unwrap().unwrap();
            let e = rec.explanation.clone().expect("explain returns an Explanation");
            prop_assert_eq!(rec.items.len(), 1);
            prop_assert_eq!(rec.items[0].item, v as u32);
            let served = rec.items[0].score;
            // Bit-identical to the exact scorer's score for (u, v)...
            prop_assert_eq!(served, score_one(&snapshot, users.row(u), false)[v]);
            // ...and the factor-order term sum lands within 1e-6 of it.
            prop_assert!(
                (e.score() - served).abs() <= 1e-6,
                "user {} item {}: terms sum to {} but served {}", u, v, e.score(), served
            );
            prop_assert_eq!(e.terms.len(), snapshot.f());
            prop_assert_eq!(e.prior, snapshot.prior(v));
        }
    }
}

/// Self-exclusion under ties: with every factor row duplicated, the query
/// item ties bit-exactly with its twin. The twin must survive exclusion and
/// rank first, and the remaining order must follow the (score desc, id asc)
/// total order with only the query item removed.
#[test]
fn similar_items_excludes_only_the_query_item_under_ties() {
    let (groups, dup, k) = (4usize, 3usize, 8usize);
    let (f, n) = (groups, groups * dup);
    // Item i's row is the one-hot e_{i % groups}, so each item has dup-1
    // bit-exact twins, self-similarity is maximal (1.0), and every
    // cross-group pair ties at 0.0.
    let theta: Vec<f32> = (0..n)
        .flat_map(|i| (0..f).map(move |j| if j == i % groups { 1.0 } else { 0.0 }))
        .collect();
    let snapshot = ModelSnapshot::new(0, DenseMatrix::from_vec(n, f, theta), vec![]);
    let engine = ServeEngine::builder()
        .config(ServeConfig::default().with_k(k))
        .model("only", DenseMatrix::identity(f), snapshot.clone())
        .build()
        .unwrap();
    for q in 0..n as u32 {
        let rec = engine
            .recommend_batch(&[Request::similar_items(q as u64, q)], &NOOP)
            .pop()
            .unwrap()
            .unwrap();
        let scores = score_one(&snapshot, snapshot.item_row(q as usize), false);
        let want: Vec<_> = naive_top_k(&scores, n)
            .into_iter()
            .filter(|s| s.item != q)
            .take(k)
            .collect();
        assert_eq!(rec.items, want, "query item {q}");
        // The twin with the lowest id ties the query item's self-score and
        // must lead the list.
        let twin = (0..n as u32)
            .find(|&i| i != q && i % groups as u32 == q % groups as u32)
            .unwrap();
        assert_eq!(rec.items[0].item, twin, "query item {q}");
        assert_eq!(rec.items[0].score, scores[q as usize], "query item {q}");
    }
}

fn trained_tiny() -> (MfDataset, DenseMatrix, DenseMatrix) {
    let data = MfDataset::netflix(SizeClass::Tiny, 77);
    let cfg = AlsConfig {
        f: 8,
        iterations: 5,
        rmse_target: None,
        ..AlsConfig::for_profile(&data.profile)
    };
    let mut t = AlsTrainer::new(&data, cfg, GpuSpec::maxwell_titan_x(), 1);
    t.train();
    let (x, theta) = (t.x.clone(), t.theta.clone());
    drop(t);
    (data, x, theta)
}

/// The paper's claim, transplanted to serving: FP16 storage is
/// approximation-free *where it matters*. Quantized scoring must not move
/// ranking quality — NDCG@10 of the FP16 ranking, graded by the exact FP32
/// scores, stays within 1e-3 of ideal on a trained model.
#[test]
fn fp16_scoring_moves_ndcg_at_10_by_less_than_1e_3() {
    let (data, x, theta) = trained_tiny();
    let snapshot = ModelSnapshot::new(0, theta, vec![]).with_fp16();
    let cfg16 = ScoreConfig {
        use_fp16: true,
        ..ScoreConfig::default()
    };
    let k = 10;
    let ranked16 = top_k_batch(&snapshot, &x, k, &cfg16);
    let mut worst: f64 = 1.0;
    for (u, ranked) in ranked16.iter().enumerate().take(data.m().min(200)) {
        // Relevance = the exact FP32 scores, shifted to be non-negative.
        let exact = score_one(&snapshot, x.row(u), false);
        let min = exact.iter().cloned().fold(f32::INFINITY, f32::min);
        let rel: Vec<f32> = exact.iter().map(|s| s - min).collect();
        let ndcg = ndcg_at_k(ranked, &rel, k);
        worst = worst.min(ndcg);
    }
    assert!(
        worst > 1.0 - 1e-3,
        "FP16 ranking NDCG@10 dropped to {worst}"
    );
}

/// The FP32 path with a quantized copy present (but disabled) must be
/// bit-identical to a snapshot that never carried FP16 at all.
#[test]
fn fp16_copy_present_but_disabled_changes_nothing() {
    let (_, x, theta) = trained_tiny();
    let plain = ModelSnapshot::new(0, theta.clone(), vec![]);
    let carrying = ModelSnapshot::new(0, theta, vec![]).with_fp16();
    let cfg = ScoreConfig::default();
    assert_eq!(
        top_k_batch(&plain, &x, 10, &cfg),
        top_k_batch(&carrying, &x, 10, &cfg)
    );
}
