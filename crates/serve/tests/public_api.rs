//! Public-API snapshot test: the serve crate's exported surface is
//! golden-filed so an accidental signature change, removal, or visibility
//! widening fails CI with a readable diff instead of slipping into a
//! release.
//!
//! The snapshot is a sorted listing of every `pub` item signature in
//! `src/`, one per line, prefixed with its file. To accept an intentional
//! API change, regenerate the golden file:
//!
//! ```text
//! UPDATE_PUBLIC_API=1 cargo test -p cumf-serve --test public_api
//! ```
//!
//! and review the diff in code review like any other contract change.

use std::fs;
use std::path::{Path, PathBuf};

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// True for lines that declare crate-external API: `pub` but not
/// `pub(crate)` / `pub(super)` / `pub(in …)`.
fn is_public_decl(line: &str) -> bool {
    let rest = match line.strip_prefix("pub") {
        Some(rest) => rest,
        None => return false,
    };
    !rest.trim_start().starts_with('(')
}

/// Normalize a declaration line into a stable one-line signature: strip
/// bodies, trailing separators, and collapse interior whitespace.
fn normalize(line: &str) -> String {
    let mut sig = line.trim();
    for suffix in ["{", ";", ","] {
        sig = sig.trim_end_matches(suffix).trim_end();
    }
    sig.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// The current public surface, one sorted `file: signature` line each.
fn current_api() -> Vec<String> {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut files = Vec::new();
    rust_sources(&src, &mut files);
    assert!(!files.is_empty(), "no sources under {}", src.display());

    let mut api = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(&src).unwrap().display().to_string();
        let text = fs::read_to_string(path).unwrap();
        let mut in_tests = false;
        for line in text.lines() {
            let trimmed = line.trim_start();
            // Skip `#[cfg(test)] mod tests` bodies: everything below the
            // marker in a file is test code in this codebase's layout.
            if trimmed.starts_with("#[cfg(test)]") {
                in_tests = true;
            }
            if in_tests {
                continue;
            }
            if is_public_decl(trimmed) {
                api.push(format!("{rel}: {}", normalize(trimmed)));
            }
        }
    }
    api.sort();
    api.dedup();
    api
}

#[test]
fn public_api_matches_the_golden_snapshot() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("public_api.txt");
    let current = current_api();

    if std::env::var_os("UPDATE_PUBLIC_API").is_some() {
        fs::write(&golden_path, current.join("\n") + "\n").unwrap();
        eprintln!("public_api: wrote {} lines", current.len());
        return;
    }

    let golden_text = fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_PUBLIC_API=1 cargo test -p cumf-serve \
             --test public_api to create it",
            golden_path.display()
        )
    });
    let golden: Vec<String> = golden_text.lines().map(str::to_string).collect();

    let added: Vec<&String> = current.iter().filter(|l| !golden.contains(l)).collect();
    let removed: Vec<&String> = golden.iter().filter(|l| !current.contains(l)).collect();
    assert!(
        added.is_empty() && removed.is_empty(),
        "public API drifted from tests/public_api.txt\n\nadded ({}):\n  {}\n\nremoved ({}):\n  \
         {}\n\nIf intentional, regenerate with UPDATE_PUBLIC_API=1 and review the diff.",
        added.len(),
        added
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join("\n  "),
        removed.len(),
        removed
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join("\n  "),
    );
}
