//! The serving engine: micro-batched requests in, ranked items out.
//!
//! [`ServeEngine`] composes the crate's pieces into the request path:
//!
//! 1. snapshot the [`ShardedFactorStore`] once per batch (every request in
//!    the batch scores one consistent epoch);
//! 2. answer known users from the lock-striped result cache
//!    ([`StripedCache`]) when possible;
//! 3. fold cold users' rating histories into factor vectors with
//!    [`cumf_als::fold_in_batch`] (one regularized solve each, CG or
//!    Cholesky per the configured [`SolverKind`]) against the full Θ;
//! 4. scatter the remaining users across the snapshot's shards, one
//!    blocked scoring pass per shard, and gather the per-shard heaps into
//!    global rankings ([`scatter_top_k`] + gather — bit-identical to the
//!    unsharded scorer);
//! 5. fill the cache, update the typed serving metrics
//!    ([`crate::obs::ServeMetrics`]), and stamp a [`BatchTrace`] whose
//!    stage timestamps the admission worker turns into per-request spans.
//!
//! Telemetry uses *wall-clock* seconds since engine construction as the
//! time base — serving is a real host-side workload, unlike training whose
//! events carry simulated GPU time.
//!
//! `recommend_batch` takes `&self` and every shared structure behind it is
//! internally synchronized, so the admission worker
//! ([`crate::admission`]) and any number of submitter threads can share
//! one engine by reference.

use crate::cache::{CacheKey, CacheStats, StripedCache};
use crate::obs::{BatchTrace, ObsConfig, ServeObs, ShardMetrics};
use crate::scorer::ScoreConfig;
use crate::shard::{scatter_top_k, ShardedFactorStore};
use crate::store::ModelSnapshot;
use crate::topk::ScoredItem;
use cumf_als::{fold_in_batch, SolverKind};
use cumf_numeric::dense::DenseMatrix;
use cumf_telemetry::{PhaseSpan, Recorder, NOOP};
use std::sync::Arc;
use std::time::Instant;

/// Engine-level configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Items returned per request.
    pub k: usize,
    /// Scorer tiling and precision (see [`ScoreConfig`]).
    pub score: ScoreConfig,
    /// Contiguous item-range shards the snapshot is split into (clamped
    /// to `[1, n_items]`; 1 reproduces the unsharded scorer exactly).
    pub shards: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Lock stripes the result cache is split into (floored at 1).
    pub cache_stripes: usize,
    /// Regularization for cold-start fold-in solves.
    pub lambda: f32,
    /// Solver for cold-start fold-in systems.
    pub solver: SolverKind,
    /// Observability layer: flight-recorder retention, slow-request
    /// threshold, and the SLO to track (see [`crate::obs`]).
    pub obs: ObsConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            k: 10,
            score: ScoreConfig::default(),
            shards: 1,
            cache_capacity: 4096,
            cache_stripes: 8,
            lambda: 0.05,
            solver: SolverKind::cumf_default(),
            obs: ObsConfig::default(),
        }
    }
}

/// Who a request is for.
#[derive(Clone, Debug)]
pub enum UserRef {
    /// A user the model was trained on: row of the engine's `X` matrix.
    Known(u32),
    /// A cold user: a rating history to fold in before scoring. Cold
    /// results are never cached (there is no stable key for them).
    Cold(Vec<(u32, f32)>),
}

/// One recommendation request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Caller-chosen id, echoed in the [`Recommendation`].
    pub id: u64,
    /// Which user to score.
    pub user: UserRef,
}

/// One served response.
#[derive(Clone, Debug)]
pub struct Recommendation {
    /// The request's id.
    pub request_id: u64,
    /// Model epoch the ranking was computed under.
    pub epoch: u64,
    /// Top-k items, best first.
    pub items: Vec<ScoredItem>,
    /// Whether the ranking came from the result cache.
    pub from_cache: bool,
}

/// The batched top-k inference engine.
///
/// ```
/// use cumf_numeric::dense::DenseMatrix;
/// use cumf_serve::engine::{Request, ServeConfig, ServeEngine, UserRef};
/// use cumf_serve::store::ModelSnapshot;
/// use cumf_telemetry::NOOP;
///
/// // 2 users × 3 items, f = 2, identity-ish factors.
/// let x = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
/// let theta = DenseMatrix::from_vec(3, 2, vec![0.9, 0.1, 0.1, 0.9, 0.5, 0.5]);
/// let engine = ServeEngine::new(x, ModelSnapshot::new(0, theta, vec![]), ServeConfig {
///     k: 1,
///     ..ServeConfig::default()
/// });
/// let out = engine.recommend_batch(
///     &[Request { id: 0, user: UserRef::Known(0) }],
///     &NOOP,
/// );
/// assert_eq!(out[0].items[0].item, 0); // user 0 aligns with item 0
/// ```
pub struct ServeEngine {
    store: ShardedFactorStore,
    user_factors: DenseMatrix,
    cache: StripedCache,
    cfg: ServeConfig,
    started: Instant,
    obs: Arc<ServeObs>,
    /// Registered-once-per-shard metric handles, indexed by shard.
    shard_metrics: Vec<ShardMetrics>,
}

impl ServeEngine {
    /// An engine serving `snapshot` (split into `cfg.shards` ranges), with
    /// `user_factors` (`X` from training) backing known-user requests.
    pub fn new(
        user_factors: DenseMatrix,
        snapshot: ModelSnapshot,
        cfg: ServeConfig,
    ) -> ServeEngine {
        assert_eq!(
            user_factors.cols(),
            snapshot.f(),
            "user and item factor dimensions must agree"
        );
        let store = ShardedFactorStore::new(snapshot, cfg.shards);
        let obs = Arc::new(ServeObs::new(cfg.obs));
        let shard_metrics = (0..store.n_shards())
            .map(|i| obs.metrics().shard(i))
            .collect();
        ServeEngine {
            cache: StripedCache::new(cfg.cache_capacity, cfg.cache_stripes),
            store,
            user_factors,
            cfg,
            started: Instant::now(),
            obs,
            shard_metrics,
        }
    }

    /// The engine's observability bundle: typed metrics, the flight
    /// recorder, and the SLO tracker. Everything behind it is internally
    /// synchronized, so exposition can read while serving writes.
    pub fn obs(&self) -> &ServeObs {
        &self.obs
    }

    /// A shareable handle to the observability bundle (e.g. for an
    /// exposition endpoint or the admission queue's shed accounting).
    pub fn obs_arc(&self) -> Arc<ServeObs> {
        Arc::clone(&self.obs)
    }

    /// The underlying store, for publishing new epochs (each publish is
    /// re-sharded at the engine's configured shard count). Publishing does
    /// not flush the cache — epoch-qualified keys make old entries
    /// unreachable, and the LRU lists age them out.
    pub fn store(&self) -> &ShardedFactorStore {
        &self.store
    }

    /// Replace the known-user factor matrix (e.g. after retraining `X`
    /// alongside a published `Θ`).
    pub fn set_user_factors(&mut self, user_factors: DenseMatrix) {
        assert_eq!(user_factors.cols(), self.store.snapshot().f());
        self.user_factors = user_factors;
    }

    /// Number of known users.
    pub fn n_users(&self) -> usize {
        self.user_factors.rows()
    }

    /// Engine configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Result-cache counters, summed over all stripes.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Wall-clock seconds since engine construction — the time base of the
    /// engine's telemetry events.
    pub fn now(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Serve one known user (a batch of one).
    pub fn recommend_user(&self, user: u32, recorder: &dyn Recorder) -> Recommendation {
        self.recommend_batch(
            &[Request {
                id: user as u64,
                user: UserRef::Known(user),
            }],
            recorder,
        )
        .pop()
        .expect("batch of one returns one response")
    }

    /// Serve a micro-batch: cache lookups, cold-start fold-in, one
    /// scatter-gather scoring pass across the snapshot's shards, responses
    /// in request order.
    ///
    /// Panics if a [`UserRef::Known`] index is out of range of the user
    /// factor matrix.
    pub fn recommend_batch(
        &self,
        requests: &[Request],
        recorder: &dyn Recorder,
    ) -> Vec<Recommendation> {
        self.recommend_batch_traced(requests, recorder).0
    }

    /// [`recommend_batch`](ServeEngine::recommend_batch) plus the batch's
    /// [`BatchTrace`]: six contiguous engine-clock timestamps bracketing
    /// the cache, fold-in, scatter, merge, and response stages. The
    /// admission worker re-bases the trace onto each request as a
    /// [`crate::obs::RequestSpan`] whose stage durations telescope to its
    /// end-to-end latency.
    ///
    /// Always updates the engine's [`ServeObs`] metrics; additionally
    /// emits `serve.batch` / `serve.batch.*` phase spans (and per-shard
    /// `serve.shard{i}.score` spans from the scatter) when `recorder` is
    /// enabled.
    pub fn recommend_batch_traced(
        &self,
        requests: &[Request],
        recorder: &dyn Recorder,
    ) -> (Vec<Recommendation>, BatchTrace) {
        let t0 = self.now();
        let snapshot = self.store.snapshot();
        let epoch = snapshot.epoch();
        let f = snapshot.f();

        // Pass 1: answer from cache (one stripe lock per lookup), collect
        // the users that need scoring.
        let mut responses: Vec<Option<Recommendation>> = vec![None; requests.len()];
        // (request index, Some(user) when cacheable)
        let mut to_score: Vec<(usize, Option<u32>)> = Vec::new();
        let mut cold_histories: Vec<Vec<(u32, f32)>> = Vec::new();
        let mut batch_hits = 0u64;
        for (i, req) in requests.iter().enumerate() {
            match &req.user {
                UserRef::Known(u) => {
                    assert!(
                        (*u as usize) < self.user_factors.rows(),
                        "unknown user {u}; engine knows {} users",
                        self.user_factors.rows()
                    );
                    let key = CacheKey { user: *u, epoch };
                    if let Some(items) = self.cache.get(&key) {
                        batch_hits += 1;
                        responses[i] = Some(Recommendation {
                            request_id: req.id,
                            epoch,
                            items,
                            from_cache: true,
                        });
                    } else {
                        to_score.push((i, Some(*u)));
                    }
                }
                UserRef::Cold(history) => {
                    to_score.push((i, None));
                    cold_histories.push(history.clone());
                }
            }
        }
        let t1 = self.now();

        // Pass 2: fold cold users (against the full Θ), assemble the batch
        // factor matrix.
        let folded = if cold_histories.is_empty() {
            None
        } else {
            Some(fold_in_batch(
                snapshot.full().item_factors(),
                &cold_histories,
                self.cfg.lambda,
                &self.cfg.solver,
            ))
        };
        let mut batch = DenseMatrix::zeros(to_score.len(), f);
        let mut next_cold = 0usize;
        for (row, (_, user)) in to_score.iter().enumerate() {
            let src = match user {
                Some(u) => self.user_factors.row(*u as usize),
                None => {
                    let r = folded
                        .as_ref()
                        .expect("cold rows were folded")
                        .row(next_cold);
                    next_cold += 1;
                    r
                }
            };
            batch.row_mut(row).copy_from_slice(src);
        }
        let t2 = self.now();

        // Pass 3: scatter the micro-batch across shards (per-shard
        // `serve.shard{i}.score` spans land on the engine clock at `t2`),
        // then gather the per-shard heaps into global rankings.
        let scatter_rec: &dyn Recorder = if to_score.is_empty() { &NOOP } else { recorder };
        let scatter = scatter_top_k(
            &snapshot,
            &batch,
            self.cfg.k,
            &self.cfg.score,
            scatter_rec,
            t2,
        );
        let t3 = self.now();
        let (ranked, shard_timings) = scatter.gather(self.cfg.k);
        let t4 = self.now();

        // Pass 4: fill cache, assemble responses in request order.
        for ((i, user), items) in to_score.iter().zip(ranked) {
            if let Some(u) = user {
                self.cache
                    .insert(CacheKey { user: *u, epoch }, items.clone());
            }
            responses[*i] = Some(Recommendation {
                request_id: requests[*i].id,
                epoch,
                items,
                from_cache: false,
            });
        }
        let t5 = self.now();

        let scored_users = to_score.len() - cold_histories.len();
        let trace = BatchTrace {
            start: t0,
            cache_done: t1,
            foldin_done: t2,
            score_done: t3,
            merge_done: t4,
            end: t5,
            requests: requests.len(),
            cache_hits: batch_hits as usize,
            cold_users: cold_histories.len(),
            scored_users,
            epoch,
            shard_timings,
        };

        // Always-on typed metrics (lock-free counters, striped by thread).
        let m = self.obs.metrics();
        m.requests.add(requests.len() as u64);
        m.batches.inc();
        m.cache_hits.add(batch_hits);
        m.cache_misses.add(scored_users as u64);
        m.cold_users.add(cold_histories.len() as u64);
        m.epoch.set(epoch as f64);
        m.observe_batch_stages(&trace);
        if !to_score.is_empty() {
            for t in &trace.shard_timings {
                if let Some(sm) = self.shard_metrics.get(t.shard) {
                    sm.scored.add(t.scored);
                    sm.pass_seconds.observe_secs(t.secs);
                }
            }
        }

        // Event-stream spans for Chrome traces (the scatter already
        // emitted the per-shard spans inside [t2, t3]).
        if recorder.enabled() {
            recorder.phase(PhaseSpan::new("serve.batch", t0, t5));
            recorder.phase(PhaseSpan::new("serve.batch.cache", t0, t1));
            recorder.phase(PhaseSpan::new("serve.batch.foldin", t1, t2));
            recorder.phase(PhaseSpan::new("serve.batch.merge", t3, t4));
            recorder.phase(PhaseSpan::new("serve.batch.respond", t4, t5));
        }

        let out = responses
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect();
        (out, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_telemetry::{MemoryRecorder, NOOP};
    use rand::prelude::*;

    fn engine(users: usize, items: usize, f: usize, cfg: ServeConfig) -> ServeEngine {
        let mut rng = StdRng::seed_from_u64(99);
        let mut x = DenseMatrix::zeros(users, f);
        x.fill_with(|| rng.gen_f32() - 0.5);
        let mut theta = DenseMatrix::zeros(items, f);
        theta.fill_with(|| rng.gen_f32() - 0.5);
        ServeEngine::new(x, ModelSnapshot::new(0, theta, vec![]), cfg)
    }

    fn known(ids: &[u32]) -> Vec<Request> {
        ids.iter()
            .map(|&u| Request {
                id: u as u64,
                user: UserRef::Known(u),
            })
            .collect()
    }

    #[test]
    fn batch_answers_in_request_order() {
        let e = engine(10, 30, 4, ServeConfig::default());
        let out = e.recommend_batch(&known(&[3, 1, 4, 1, 5]), &NOOP);
        assert_eq!(
            out.iter().map(|r| r.request_id).collect::<Vec<_>>(),
            vec![3, 1, 4, 1, 5]
        );
        assert!(out.iter().all(|r| r.items.len() == 10));
    }

    #[test]
    fn second_lookup_hits_cache_bit_identically() {
        let e = engine(5, 40, 6, ServeConfig::default());
        let cold = e.recommend_user(2, &NOOP);
        assert!(!cold.from_cache);
        let warm = e.recommend_user(2, &NOOP);
        assert!(warm.from_cache);
        assert_eq!(cold.items, warm.items, "cache must be bit-identical");
        let s = e.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn duplicate_users_in_one_batch_agree_then_hit() {
        let e = engine(4, 20, 3, ServeConfig::default());
        // Same user twice in one batch: both scored this round (the second
        // is enqueued before the first's insert), identical results.
        let out = e.recommend_batch(&known(&[0, 0]), &NOOP);
        assert_eq!(out[0].items, out[1].items);
        // Next batch hits.
        let again = e.recommend_batch(&known(&[0]), &NOOP);
        assert!(again[0].from_cache);
    }

    #[test]
    fn publish_invalidates_cache_by_keying() {
        let e = engine(3, 15, 4, ServeConfig::default());
        let before = e.recommend_user(1, &NOOP);
        let mut theta2 = e.store().snapshot().full().item_factors().clone();
        cumf_numeric::dense::scale(-1.0, theta2.as_mut_slice());
        e.store().publish(ModelSnapshot::new(1, theta2, vec![]));
        let after = e.recommend_user(1, &NOOP);
        assert!(!after.from_cache, "new epoch must not hit old entries");
        assert_eq!(after.epoch, 1);
        assert_ne!(before.items, after.items);
    }

    #[test]
    fn cold_user_with_history_gets_nonzero_scores() {
        let e = engine(2, 25, 5, ServeConfig::default());
        let history: Vec<(u32, f32)> = (0..8).map(|v| (v, 4.0)).collect();
        let out = e.recommend_batch(
            &[Request {
                id: 7,
                user: UserRef::Cold(history),
            }],
            &NOOP,
        );
        assert!(!out[0].from_cache);
        assert!(out[0].items.iter().any(|s| s.score != 0.0));
    }

    #[test]
    fn mixed_batch_counts_typed_metrics() {
        let e = engine(6, 20, 3, ServeConfig::default());
        e.recommend_user(0, &NOOP); // warm one entry
        let rec = MemoryRecorder::new();
        let mut reqs = known(&[0, 1]);
        reqs.push(Request {
            id: 100,
            user: UserRef::Cold(vec![(0, 5.0)]),
        });
        let m = e.obs().metrics();
        let (req0, hit0) = (m.requests.get(), m.cache_hits.get());
        e.recommend_batch(&reqs, &rec);
        assert_eq!(m.requests.get() - req0, 3);
        assert_eq!(m.cache_hits.get() - hit0, 1);
        assert_eq!(m.cache_misses.get(), 1 + 1); // warming miss + user 1
        assert_eq!(m.cold_users.get(), 1);
        assert_eq!(m.batches.get(), 2);
        // Per-shard handles saw the scoring pass (1 shard by default).
        assert!(e.obs().metrics().shard(0).scored.get() > 0);
        // The event stream carries the batch + stage + shard spans.
        let names: Vec<String> = rec
            .phase_spans()
            .iter()
            .map(|s| s.name.to_string())
            .collect();
        for want in [
            "serve.shard0.score",
            "serve.batch",
            "serve.batch.cache",
            "serve.batch.foldin",
            "serve.batch.merge",
            "serve.batch.respond",
        ] {
            assert!(
                names.contains(&want.to_string()),
                "missing {want}: {names:?}"
            );
        }
        // And the Prometheus exposition renders the same counts.
        let text = e.obs().render_prometheus(e.now());
        assert!(text.contains("serve_cold_users_total 1"));
        assert!(text.contains("serve_shard_scored_total{shard=\"0\"}"));
        assert!(text.contains("serve_stage_seconds_count{stage=\"score\"} 2"));
    }

    #[test]
    fn batch_trace_timestamps_are_contiguous_and_counted() {
        let e = engine(
            8,
            30,
            4,
            ServeConfig {
                shards: 3,
                ..ServeConfig::default()
            },
        );
        e.recommend_user(2, &NOOP); // warm one entry
        let mut reqs = known(&[2, 3]);
        reqs.push(Request {
            id: 50,
            user: UserRef::Cold(vec![(1, 3.0)]),
        });
        let (out, trace) = e.recommend_batch_traced(&reqs, &NOOP);
        assert_eq!(out.len(), 3);
        // Monotone, contiguous boundaries.
        let ts = [
            trace.start,
            trace.cache_done,
            trace.foldin_done,
            trace.score_done,
            trace.merge_done,
            trace.end,
        ];
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
        assert_eq!(
            (
                trace.requests,
                trace.cache_hits,
                trace.cold_users,
                trace.scored_users
            ),
            (3, 1, 1, 1)
        );
        assert_eq!(trace.shard_timings.len(), 3);
        assert_eq!(trace.epoch, 0);
    }

    #[test]
    fn sharded_engine_matches_unsharded() {
        let reqs = known(&[0, 2, 4, 1]);
        let base = engine(6, 37, 4, ServeConfig::default());
        let want = base.recommend_batch(&reqs, &NOOP);
        for shards in [2, 3, 8] {
            let e = engine(
                6,
                37,
                4,
                ServeConfig {
                    shards,
                    ..ServeConfig::default()
                },
            );
            let got = e.recommend_batch(&reqs, &NOOP);
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.items, b.items, "shards={shards}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown user")]
    fn out_of_range_user_panics() {
        let e = engine(2, 10, 2, ServeConfig::default());
        e.recommend_user(5, &NOOP);
    }
}
