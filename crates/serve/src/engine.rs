//! The serving engine: micro-batched requests in, ranked items out.
//!
//! [`ServeEngine`] composes the crate's pieces into the request path. Since
//! the v2 redesign the engine routes over a keyed [`ModelRegistry`] instead
//! of owning a single store — one scorer configuration, one result cache,
//! and one observability bundle shared by every registered model. The v3
//! request path generalizes "which user" into a [`Query`] — user → top-k,
//! item → similar items, user → similar users, rank-a-slate, and explain —
//! each resolving to a (query vector, target matrix, candidate set) triple
//! served through the same sharded scorer (see [`crate::query`]):
//!
//! 1. snapshot the registry's routing state once per batch
//!    ([`crate::registry::Router`]) and resolve every request to a model —
//!    explicit [`ModelId`], default alias, or deterministic canary split;
//!    routing failures become per-request [`ServeError`]s, not panics;
//! 2. answer the cacheable endpoints (user → top-k, item → similar
//!    items) from the lock-striped result cache ([`StripedCache`]) when
//!    possible — keys carry `(model, epoch, id, endpoint, retrieval)`, so
//!    canary arms never see each other's entries, exact/approximate
//!    answers never alias, and an item→item ranking never answers for a
//!    user→top-k one;
//! 3. fold cold users' rating histories into factor vectors with
//!    [`cumf_als::fold_in_batch`] (one regularized solve each, CG or
//!    Cholesky per the configured [`SolverKind`]) against the routed
//!    model's full Θ;
//! 4. scatter each model's share of the batch across its snapshot's
//!    shards, one blocked scoring pass per shard, and gather the per-shard
//!    heaps into global rankings ([`scatter_top_k`] + gather —
//!    bit-identical to the unsharded scorer);
//! 5. fill the cache, update the typed serving metrics
//!    ([`crate::obs::ServeMetrics`], including per-model `model="…"`
//!    series), and stamp a [`BatchTrace`] whose stage timestamps the
//!    admission worker turns into per-request spans.
//!
//! Telemetry uses *wall-clock* seconds since engine construction as the
//! time base — serving is a real host-side workload, unlike training whose
//! events carry simulated GPU time.
//!
//! `recommend_batch` takes `&self` and every shared structure behind it is
//! internally synchronized, so the admission worker
//! ([`crate::admission`]) and any number of submitter threads can share
//! one engine by reference — and registry operations (publish, canary
//! ramps, promote/rollback) apply from the next batch without a restart.

use crate::ann::{AnnParams, AnnPolicy};
use crate::cache::{CacheKey, CacheStats, StripedCache};
use crate::error::ServeError;
use crate::obs::{
    BatchTrace, EventKind, HealthCheck, HealthStatus, ObsConfig, ServeObs, ShardMetrics,
};
use crate::registry::{CanaryPolicy, ModelEntry, ModelId, ModelRegistry, RouteKey};
use crate::scorer::{explain_one, QuantMode, Retrieval, ScoreConfig};
use crate::shard::{rank_slate_sharded, scatter_top_k, ShardTiming, ShardedSnapshot};
use crate::store::ModelSnapshot;
use crate::topk::ScoredItem;
use cumf_als::{fold_in_batch, SolverKind};
use cumf_numeric::dense::DenseMatrix;
use cumf_telemetry::{FootprintReport, MemoryFootprint, PhaseSpan, Recorder, NOOP};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

pub use crate::query::{Endpoint, Explanation, Query};

/// Engine-level configuration.
///
/// Construct via [`ServeConfig::default`] and the `with_*` builder methods
/// — the struct is `#[non_exhaustive]`, so new knobs are not breaking
/// changes:
///
/// ```
/// use cumf_serve::engine::ServeConfig;
///
/// let cfg = ServeConfig::default().with_k(20).with_shards(4);
/// assert_eq!((cfg.k, cfg.shards), (20, 4));
/// ```
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Items returned per request.
    pub k: usize,
    /// Scorer tiling and precision (see [`ScoreConfig`]).
    pub score: ScoreConfig,
    /// Contiguous item-range shards each model's snapshot is split into
    /// (clamped to `[1, n_items]`; 1 reproduces the unsharded scorer
    /// exactly).
    pub shards: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Lock stripes the result cache is split into (floored at 1).
    pub cache_stripes: usize,
    /// Regularization for cold-start fold-in solves.
    pub lambda: f32,
    /// Solver for cold-start fold-in systems.
    pub solver: SolverKind,
    /// Observability layer: flight-recorder retention, slow-request
    /// threshold, and the SLO to track (see [`crate::obs`]).
    pub obs: ObsConfig,
    /// Soft memory budget in bytes over every registered model's resident
    /// footprint (`None` disables the check). A publish that leaves the
    /// registry over it warns on stderr, names the largest component, and
    /// increments `serve_mem_budget_exceeded_total{model=}` — nothing is
    /// evicted.
    pub memory_budget: Option<u64>,
    /// Centroid-index build parameters (cluster count, k-means seed,
    /// iteration cap) used when `score.retrieval` is
    /// [`Retrieval::Approx`]: the engine derives an [`AnnPolicy`] from the
    /// retrieval mode and these parameters, and the registry completes
    /// every registered/published snapshot to it at publish time. Ignored
    /// under [`Retrieval::Exact`].
    pub ann: AnnParams,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            k: 10,
            score: ScoreConfig::default(),
            shards: 1,
            cache_capacity: 4096,
            cache_stripes: 8,
            lambda: 0.05,
            solver: SolverKind::cumf_default(),
            obs: ObsConfig::default(),
            memory_budget: None,
            ann: AnnParams::default(),
        }
    }
}

impl ServeConfig {
    /// Items returned per request.
    pub fn with_k(mut self, k: usize) -> ServeConfig {
        self.k = k;
        self
    }

    /// Scorer tiling and precision.
    pub fn with_score(mut self, score: ScoreConfig) -> ServeConfig {
        self.score = score;
        self
    }

    /// Item-range shards per model snapshot.
    pub fn with_shards(mut self, shards: usize) -> ServeConfig {
        self.shards = shards;
        self
    }

    /// Result-cache capacity in entries (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> ServeConfig {
        self.cache_capacity = capacity;
        self
    }

    /// Lock stripes for the result cache.
    pub fn with_cache_stripes(mut self, stripes: usize) -> ServeConfig {
        self.cache_stripes = stripes;
        self
    }

    /// Regularization for cold-start fold-in solves.
    pub fn with_lambda(mut self, lambda: f32) -> ServeConfig {
        self.lambda = lambda;
        self
    }

    /// Solver for cold-start fold-in systems.
    pub fn with_solver(mut self, solver: SolverKind) -> ServeConfig {
        self.solver = solver;
        self
    }

    /// Observability configuration.
    pub fn with_obs(mut self, obs: ObsConfig) -> ServeConfig {
        self.obs = obs;
        self
    }

    /// Soft memory budget in bytes (warn-only; see
    /// [`ServeConfig::memory_budget`]).
    pub fn with_memory_budget(mut self, bytes: u64) -> ServeConfig {
        self.memory_budget = Some(bytes);
        self
    }

    /// Centroid-index build parameters for approximate retrieval (see
    /// [`ServeConfig::ann`]).
    pub fn with_ann(mut self, ann: AnnParams) -> ServeConfig {
        self.ann = ann;
        self
    }

    /// The approximate-retrieval policy this configuration implies:
    /// `Some` (index parameters plus whether an int8 copy is needed) iff
    /// the retrieval mode is [`Retrieval::Approx`].
    pub fn ann_policy(&self) -> Option<AnnPolicy> {
        match self.score.retrieval {
            Retrieval::Exact => None,
            Retrieval::Approx { quant, .. } => Some(AnnPolicy {
                params: self.ann,
                int8: matches!(quant, QuantMode::Int8),
            }),
        }
    }
}

/// Who a request is for.
#[derive(Clone, Debug, PartialEq)]
pub enum UserRef {
    /// A user the model was trained on: row of the routed model's `X`
    /// matrix.
    Known(u32),
    /// A cold user: a rating history to fold in before scoring. Cold
    /// results are never cached (there is no stable key for them).
    Cold(Vec<(u32, f32)>),
}

/// One serving request: a [`Query`] plus routing hints.
///
/// Construct via the endpoint constructors — [`Request::known`] /
/// [`Request::cold`] for user → top-k (semantics unchanged from the v2
/// engine), [`Request::similar_items`], [`Request::similar_users`],
/// [`Request::rank_items`], and [`Request::explain`] — and target a
/// specific model with [`Request::for_model`]. The struct is
/// `#[non_exhaustive]`, so future fields are not breaking changes:
///
/// ```
/// use cumf_serve::engine::Request;
///
/// let r = Request::known(7, 3).for_model("challenger");
/// assert_eq!(r.id, 7);
/// assert_eq!(r.model.as_ref().unwrap().as_str(), "challenger");
/// ```
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct Request {
    /// Caller-chosen id, echoed in the [`Recommendation`].
    pub id: u64,
    /// What to score (see [`Query`] for the endpoint family).
    pub query: Query,
    /// Which model to score against. `None` routes via the registry's
    /// default alias, subject to any canary policy.
    pub model: Option<ModelId>,
}

impl Request {
    /// A request for `user`, routed by the registry (default alias or
    /// canary split). Shorthand for
    /// [`Request::query`]`(id, Query::User(user))`.
    pub fn new(id: u64, user: UserRef) -> Request {
        Request::query(id, Query::User(user))
    }

    /// A request for an arbitrary [`Query`], routed by the registry.
    pub fn query(id: u64, query: Query) -> Request {
        Request {
            id,
            query,
            model: None,
        }
    }

    /// A request for known user `user`.
    pub fn known(id: u64, user: u32) -> Request {
        Request::new(id, UserRef::Known(user))
    }

    /// A cold-start request folding in `history` before scoring.
    pub fn cold(id: u64, history: Vec<(u32, f32)>) -> Request {
        Request::new(id, UserRef::Cold(history))
    }

    /// An item → similar-items request: rank the catalog by `θ_v·Θᵀ`,
    /// excluding `item` itself.
    ///
    /// ```
    /// use cumf_serve::engine::{Query, Request};
    ///
    /// let r = Request::similar_items(1, 42);
    /// assert_eq!(r.query, Query::SimilarItems(42));
    /// ```
    pub fn similar_items(id: u64, item: u32) -> Request {
        Request::query(id, Query::SimilarItems(item))
    }

    /// A user → similar-users request: rank the model's users by
    /// `x_u·Xᵀ`, excluding `user` itself.
    ///
    /// ```
    /// use cumf_serve::engine::{Query, Request};
    ///
    /// let r = Request::similar_users(1, 7);
    /// assert_eq!(r.query, Query::SimilarUsers(7));
    /// ```
    pub fn similar_users(id: u64, user: u32) -> Request {
        Request::query(id, Query::SimilarUsers(user))
    }

    /// Rank a caller-supplied candidate `slate` for known user `user` —
    /// only the listed items are scored; the catalog scan is skipped.
    ///
    /// ```
    /// use cumf_serve::engine::{Query, Request};
    ///
    /// let r = Request::rank_items(1, 7, vec![3, 9, 4]);
    /// assert_eq!(
    ///     r.query,
    ///     Query::RankItems { user: 7, slate: vec![3, 9, 4] }
    /// );
    /// ```
    pub fn rank_items(id: u64, user: u32, slate: Vec<u32>) -> Request {
        Request::query(id, Query::RankItems { user, slate })
    }

    /// Explain one (user, item) score: the response carries the scored
    /// pair as its single item plus a per-factor
    /// [`Explanation`] on [`Recommendation::explanation`].
    ///
    /// ```
    /// use cumf_serve::engine::{Query, Request};
    ///
    /// let r = Request::explain(1, 7, 42);
    /// assert_eq!(r.query, Query::Explain { user: 7, item: 42 });
    /// ```
    pub fn explain(id: u64, user: u32, item: u32) -> Request {
        Request::query(id, Query::Explain { user, item })
    }

    /// Pin the request to a specific model, bypassing the default alias
    /// and any canary policy (builder-style).
    pub fn for_model(mut self, model: impl Into<ModelId>) -> Request {
        self.model = Some(model.into());
        self
    }
}

/// One served response.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct Recommendation {
    /// The request's id.
    pub request_id: u64,
    /// The model that served the request (after routing).
    pub model: ModelId,
    /// That model's epoch the ranking was computed under.
    pub epoch: u64,
    /// Top-k candidates, best first. For [`Query::SimilarUsers`] responses
    /// the ids are *user* rows of `X`, not items; for [`Query::Explain`]
    /// this is the single explained pair carrying the exact served score.
    pub items: Vec<ScoredItem>,
    /// Whether the ranking came from the result cache.
    pub from_cache: bool,
    /// Per-factor score breakdown — `Some` only for [`Query::Explain`]
    /// responses.
    pub explanation: Option<Explanation>,
}

/// Builder for [`ServeEngine`]: configuration plus the initial model set.
///
/// At least one model is required ([`ServeError::NoModels`] otherwise);
/// the first registered model is the default alias unless
/// [`default_model`](ServeEngineBuilder::default_model) says otherwise.
/// More models can be registered after construction through
/// [`ServeEngine::registry`].
#[derive(Debug, Default)]
pub struct ServeEngineBuilder {
    cfg: Option<ServeConfig>,
    models: Vec<(ModelId, DenseMatrix, ModelSnapshot)>,
    default_model: Option<ModelId>,
    canary: Option<(ModelId, f64)>,
}

impl ServeEngineBuilder {
    /// Set the engine configuration (defaults to
    /// [`ServeConfig::default`]).
    pub fn config(mut self, cfg: ServeConfig) -> ServeEngineBuilder {
        self.cfg = Some(cfg);
        self
    }

    /// Register a model: `user_factors` (`X` from training) backs
    /// known-user requests, `snapshot` is its initial published epoch.
    pub fn model(
        mut self,
        id: impl Into<ModelId>,
        user_factors: DenseMatrix,
        snapshot: ModelSnapshot,
    ) -> ServeEngineBuilder {
        self.models.push((id.into(), user_factors, snapshot));
        self
    }

    /// Make `id` the default alias (must be one of the registered
    /// models).
    pub fn default_model(mut self, id: impl Into<ModelId>) -> ServeEngineBuilder {
        self.default_model = Some(id.into());
        self
    }

    /// Install a canary policy sending `fraction` of unaddressed traffic
    /// to `candidate` (see [`CanaryPolicy`]).
    pub fn canary(mut self, candidate: impl Into<ModelId>, fraction: f64) -> ServeEngineBuilder {
        self.canary = Some((candidate.into(), fraction));
        self
    }

    /// Build the engine: registers every model (first one bootstraps the
    /// registry), applies the default alias and canary policy.
    pub fn build(self) -> Result<ServeEngine, ServeError> {
        let cfg = self.cfg.unwrap_or_default();
        let mut models = self.models.into_iter();
        let (first_id, first_x, first_snap) = models.next().ok_or(ServeError::NoModels)?;
        let obs = Arc::new(ServeObs::new(cfg.obs));
        let registry = ModelRegistry::bootstrap(
            first_id,
            first_x,
            first_snap,
            cfg.shards,
            Arc::clone(&obs),
            cfg.memory_budget,
            cfg.ann_policy(),
        )?;
        for (id, x, snap) in models {
            registry.register(id, x, snap)?;
        }
        if let Some(id) = self.default_model {
            registry.set_default(&id)?;
        }
        if let Some((candidate, fraction)) = self.canary {
            registry.set_canary(CanaryPolicy::new(candidate, fraction))?;
        }
        let shard_metrics = (0..cfg.shards.max(1))
            .map(|i| obs.metrics().shard(i))
            .collect();
        Ok(ServeEngine {
            cache: StripedCache::new(cfg.cache_capacity, cfg.cache_stripes),
            registry,
            cfg,
            obs,
            shard_metrics,
            endpoint_journaled: Default::default(),
        })
    }
}

/// The batched top-k inference engine, routing over a keyed model
/// registry.
///
/// ```
/// use cumf_numeric::dense::DenseMatrix;
/// use cumf_serve::engine::{Request, ServeConfig, ServeEngine};
/// use cumf_serve::store::ModelSnapshot;
/// use cumf_telemetry::NOOP;
///
/// // 2 users × 3 items, f = 2, identity-ish factors.
/// let x = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
/// let theta = DenseMatrix::from_vec(3, 2, vec![0.9, 0.1, 0.1, 0.9, 0.5, 0.5]);
/// let engine = ServeEngine::builder()
///     .config(ServeConfig::default().with_k(1))
///     .model("default", x, ModelSnapshot::new(0, theta, vec![]))
///     .build()
///     .unwrap();
/// let out = engine.recommend_batch(&[Request::known(0, 0)], &NOOP);
/// let rec = out[0].as_ref().unwrap();
/// assert_eq!(rec.items[0].item, 0); // user 0 aligns with item 0
/// assert_eq!(rec.model.as_str(), "default");
/// ```
pub struct ServeEngine {
    registry: ModelRegistry,
    cache: StripedCache,
    cfg: ServeConfig,
    obs: Arc<ServeObs>,
    /// Registered-once-per-shard metric handles, indexed by shard.
    shard_metrics: Vec<ShardMetrics>,
    /// One flag per [`Endpoint`] (in [`Endpoint::ALL`] order), set when
    /// that endpoint first serves so the journal records
    /// `EndpointFirstServed` exactly once per engine.
    endpoint_journaled: [AtomicBool; 5],
}

/// One model's share of a batch, keyed by registry slot so iteration
/// order (and therefore span/timing order) is deterministic.
struct ModelGroup {
    entry: Arc<ModelEntry>,
    snapshot: Arc<ShardedSnapshot>,
    user_factors: Arc<DenseMatrix>,
    /// (request index, `Some(user)` when cacheable).
    to_score: Vec<(usize, Option<u32>)>,
    /// Cold histories, aligned with the `None` entries of `to_score`.
    cold_histories: Vec<Vec<(u32, f32)>>,
    /// Similar-items queries: (request index, query item id).
    similar_items: Vec<(usize, u32)>,
    /// Similar-users queries: (request index, query user id).
    similar_users: Vec<(usize, u32)>,
    /// Rank-slate queries: (request index, user, candidate slate).
    rank_slates: Vec<(usize, u32, Vec<u32>)>,
    /// Explain queries: (request index, user, item).
    explains: Vec<(usize, u32, u32)>,
}

impl ServeEngine {
    /// Start building an engine (see [`ServeEngineBuilder`]).
    pub fn builder() -> ServeEngineBuilder {
        ServeEngineBuilder::default()
    }

    /// The model registry: register/publish/retire models, move the
    /// default alias, and ramp/promote/rollback canaries — all while the
    /// engine serves; changes apply from the next batch.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The engine's observability bundle: typed metrics, the flight
    /// recorder, and the SLO tracker. Everything behind it is internally
    /// synchronized, so exposition can read while serving writes.
    pub fn obs(&self) -> &ServeObs {
        &self.obs
    }

    /// A shareable handle to the observability bundle (e.g. for an
    /// exposition endpoint or the admission queue's shed accounting).
    pub fn obs_arc(&self) -> Arc<ServeObs> {
        Arc::clone(&self.obs)
    }

    /// Engine configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Result-cache counters, summed over all stripes.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Wall-clock seconds since engine construction — the time base of the
    /// engine's telemetry events. Delegates to [`ServeObs::now`], so
    /// request spans, SLO buckets, and journal records all share one
    /// clock.
    pub fn now(&self) -> f64 {
        self.obs.now()
    }

    /// Evaluate the readiness checks against live engine state — the
    /// `/readyz` payload (see [`crate::obs::health`] for the
    /// liveness-vs-readiness model):
    ///
    /// * `default_model_live` — the registry's default alias resolves to
    ///   a live model (false after a `force_retire` drain);
    /// * `slo_fast_burn` — the short-window burn rate is below the
    ///   configured fast-burn threshold (the SLO gauges are refreshed as
    ///   a side effect, so burn transitions are journaled here too);
    /// * `memory_budget` — resident bytes are within the soft budget
    ///   (vacuously true when no budget is configured).
    pub fn health(&self) -> HealthStatus {
        let now = self.now();
        let default = self.registry.default_model();
        let default_live = self.registry.is_live(&default);
        let report = self.obs.refresh_slo_gauges(now);
        let firing = self.obs.fast_burn_firing();
        let short = &report.burn_rates[0];
        let threshold = self.obs.slo().config().fast_burn_threshold;
        let memory = match self.registry.memory_budget() {
            None => HealthCheck {
                name: "memory_budget",
                ok: true,
                detail: "no memory budget configured".to_string(),
            },
            Some(budget) => {
                let resident = self.memory_report().total_bytes();
                HealthCheck {
                    name: "memory_budget",
                    ok: resident <= budget,
                    detail: format!("resident {resident} B vs budget {budget} B"),
                }
            }
        };
        HealthStatus {
            checks: vec![
                HealthCheck {
                    name: "default_model_live",
                    ok: default_live,
                    detail: if default_live {
                        format!("default alias {default} resolves to a live model")
                    } else {
                        format!("default alias {default} is retired")
                    },
                },
                HealthCheck {
                    name: "slo_fast_burn",
                    ok: !firing,
                    detail: format!(
                        "burn {:.2} over {}s window vs threshold {threshold}",
                        short.burn, short.window_secs
                    ),
                },
                memory,
            ],
        }
    }

    /// The engine's full resident-bytes tree: the model registry (every
    /// model's stores, superseded epochs still alive behind `Arc`s, and
    /// user factors), the result cache (per stripe), and the flight
    /// recorder. Children provably sum to the total
    /// ([`FootprintReport::verify`]).
    pub fn memory_report(&self) -> FootprintReport {
        FootprintReport::branch(
            "engine",
            vec![
                self.registry.footprint(),
                self.cache.footprint(),
                self.obs.flight().footprint(),
            ],
        )
    }

    /// Refresh every memory gauge from live state and return the full
    /// tree: the registry's `serve_mem_bytes{component=,model=}` series
    /// (also refreshed automatically on register / publish / retire /
    /// promote / rollback), the engine-level `cache` and
    /// `flight_recorder` components, and the `serve_cache_entries` /
    /// `serve_cache_bytes` gauges. On demand rather than per batch — the
    /// cache walk is O(entries) — so call it before scraping.
    pub fn refresh_memory_gauges(&self) -> FootprintReport {
        self.registry.refresh_memory_gauges();
        let m = self.obs.metrics();
        let stats = self.cache.stats();
        m.cache_entries.set(stats.len as f64);
        m.cache_bytes.set(stats.bytes as f64);
        let report = self.memory_report();
        for child in report.children() {
            if child.name() != "registry" {
                m.mem_bytes(child.name(), "")
                    .set(child.total_bytes() as f64);
            }
        }
        m.mem_bytes("engine", "").set(report.total_bytes() as f64);
        report
    }

    /// Serve one known user (a batch of one), routed by the registry.
    pub fn recommend_user(
        &self,
        user: u32,
        recorder: &dyn Recorder,
    ) -> Result<Recommendation, ServeError> {
        self.recommend_batch(&[Request::known(user as u64, user)], recorder)
            .pop()
            .expect("batch of one returns one response")
    }

    /// Serve a micro-batch: route every request to a model, cache
    /// lookups, cold-start fold-in, one scatter-gather scoring pass per
    /// routed model, responses in request order.
    ///
    /// Failures are *per request*: a request that routes to an unknown or
    /// retired model, or names a user the routed model does not know,
    /// gets an `Err` in its slot while the rest of the batch is served
    /// normally (each failure also increments
    /// `serve_errors_total{reason=…}`).
    pub fn recommend_batch(
        &self,
        requests: &[Request],
        recorder: &dyn Recorder,
    ) -> Vec<Result<Recommendation, ServeError>> {
        self.recommend_batch_traced(requests, recorder).0
    }

    /// [`recommend_batch`](ServeEngine::recommend_batch) plus the batch's
    /// [`BatchTrace`]: six contiguous engine-clock timestamps bracketing
    /// the cache, fold-in, scatter, merge, and response stages, plus the
    /// `(model, epoch)` arms the batch served. The admission worker
    /// re-bases the trace onto each request as a
    /// [`crate::obs::RequestSpan`] whose stage durations telescope to its
    /// end-to-end latency.
    ///
    /// Always updates the engine's [`ServeObs`] metrics; additionally
    /// emits `serve.batch` / `serve.batch.*` phase spans (and per-shard
    /// `serve.shard{i}.score` spans from each model's scatter) when
    /// `recorder` is enabled.
    pub fn recommend_batch_traced(
        &self,
        requests: &[Request],
        recorder: &dyn Recorder,
    ) -> (Vec<Result<Recommendation, ServeError>>, BatchTrace) {
        let t0 = self.now();
        let table = self.registry.routing_table();

        // Pass 1: route every request, answer from cache (one stripe lock
        // per lookup), group the rest by model.
        let mut responses: Vec<Option<Result<Recommendation, ServeError>>> =
            vec![None; requests.len()];
        let mut groups: BTreeMap<u32, ModelGroup> = BTreeMap::new();
        let mut batch_hits = 0u64;
        let mut errors = 0usize;
        for (i, req) in requests.iter().enumerate() {
            // Every query kind routes on a stable key: user-keyed queries
            // by their user, similar-items by the *item* id (deterministic
            // per item, so canary arms cache consistently), cold starts by
            // request id.
            let route_key = match &req.query {
                Query::User(UserRef::Known(u)) => RouteKey::User(*u),
                Query::User(UserRef::Cold(_)) => RouteKey::Cold(req.id),
                Query::SimilarItems(v) => RouteKey::User(*v),
                Query::SimilarUsers(u) => RouteKey::User(*u),
                Query::RankItems { user, .. } => RouteKey::User(*user),
                Query::Explain { user, .. } => RouteKey::User(*user),
            };
            let entry = match table.route(req.model.as_ref(), route_key) {
                Ok(entry) => entry,
                Err(e) => {
                    self.obs.metrics().error(e.reason()).inc();
                    errors += 1;
                    responses[i] = Some(Err(e));
                    continue;
                }
            };
            let group = groups.entry(entry.slot).or_insert_with(|| ModelGroup {
                snapshot: entry.store.snapshot(),
                user_factors: entry.user_factors(),
                entry,
                to_score: Vec::new(),
                cold_histories: Vec::new(),
                similar_items: Vec::new(),
                similar_users: Vec::new(),
                rank_slates: Vec::new(),
                explains: Vec::new(),
            });
            group.entry.metrics.requests.inc();
            let epoch = group.snapshot.epoch();
            let n_users = group.user_factors.rows();
            let n_items = group.snapshot.n_items();
            let unknown_user = |user: u32| ServeError::UnknownUser {
                user,
                n_users,
                model: group.entry.id.clone(),
            };
            let unknown_item = |item: u32| ServeError::UnknownItem {
                item,
                n_items,
                model: group.entry.id.clone(),
            };
            // Validation per endpoint; `Err` short-circuits the request,
            // `Ok(None)` means queued for scoring, `Ok(Some(items))` is a
            // cache hit.
            let outcome: Result<Option<Vec<ScoredItem>>, ServeError> = match &req.query {
                Query::User(UserRef::Known(u)) => {
                    if (*u as usize) >= n_users {
                        Err(unknown_user(*u))
                    } else {
                        let key = CacheKey {
                            model: group.entry.slot,
                            epoch,
                            user: *u,
                            endpoint: Endpoint::TopK,
                            retrieval: self.cfg.score.retrieval,
                        };
                        match self.cache.get(&key) {
                            Some(items) => Ok(Some(items)),
                            None => {
                                group.to_score.push((i, Some(*u)));
                                Ok(None)
                            }
                        }
                    }
                }
                Query::User(UserRef::Cold(history)) => {
                    group.to_score.push((i, None));
                    group.cold_histories.push(history.clone());
                    Ok(None)
                }
                Query::SimilarItems(v) => {
                    if (*v as usize) >= n_items {
                        Err(unknown_item(*v))
                    } else {
                        let key = CacheKey {
                            model: group.entry.slot,
                            epoch,
                            user: *v,
                            endpoint: Endpoint::SimilarItems,
                            retrieval: self.cfg.score.retrieval,
                        };
                        match self.cache.get(&key) {
                            Some(items) => Ok(Some(items)),
                            None => {
                                group.similar_items.push((i, *v));
                                Ok(None)
                            }
                        }
                    }
                }
                Query::SimilarUsers(u) => {
                    if n_users == 0 {
                        Err(ServeError::NoUserFactors(group.entry.id.clone()))
                    } else if (*u as usize) >= n_users {
                        Err(unknown_user(*u))
                    } else {
                        group.similar_users.push((i, *u));
                        Ok(None)
                    }
                }
                Query::RankItems { user, slate } => {
                    if (*user as usize) >= n_users {
                        Err(unknown_user(*user))
                    } else if slate.is_empty() {
                        Err(ServeError::EmptySlate)
                    } else if let Some(&bad) = slate.iter().find(|&&v| (v as usize) >= n_items) {
                        Err(unknown_item(bad))
                    } else {
                        group.rank_slates.push((i, *user, slate.clone()));
                        Ok(None)
                    }
                }
                Query::Explain { user, item } => {
                    if (*user as usize) >= n_users {
                        Err(unknown_user(*user))
                    } else if (*item as usize) >= n_items {
                        Err(unknown_item(*item))
                    } else {
                        group.explains.push((i, *user, *item));
                        Ok(None)
                    }
                }
            };
            match outcome {
                Ok(None) => {}
                Ok(Some(items)) => {
                    batch_hits += 1;
                    group.entry.metrics.cache_hits.inc();
                    responses[i] = Some(Ok(Recommendation {
                        request_id: req.id,
                        model: group.entry.id.clone(),
                        epoch,
                        items,
                        from_cache: true,
                        explanation: None,
                    }));
                }
                Err(e) => {
                    self.obs.metrics().error(e.reason()).inc();
                    errors += 1;
                    responses[i] = Some(Err(e));
                }
            }
        }
        let t1 = self.now();

        // Pass 2: per model (slot order), fold cold users against that
        // model's full Θ and assemble its batch factor matrix.
        let mut batches: BTreeMap<u32, DenseMatrix> = BTreeMap::new();
        for (&slot, group) in &groups {
            let folded = if group.cold_histories.is_empty() {
                None
            } else {
                Some(fold_in_batch(
                    group.snapshot.full().item_factors(),
                    &group.cold_histories,
                    self.cfg.lambda,
                    &self.cfg.solver,
                ))
            };
            let mut batch = DenseMatrix::zeros(group.to_score.len(), group.snapshot.f());
            let mut next_cold = 0usize;
            for (row, (_, user)) in group.to_score.iter().enumerate() {
                let src = match user {
                    Some(u) => group.user_factors.row(*u as usize),
                    None => {
                        let r = folded
                            .as_ref()
                            .expect("cold rows were folded")
                            .row(next_cold);
                        next_cold += 1;
                        r
                    }
                };
                batch.row_mut(row).copy_from_slice(src);
            }
            batches.insert(slot, batch);
        }
        // Query matrices for the vector endpoints: similar-items rows are
        // Θ rows of the query items, similar-users rows are X rows of the
        // query users — both resolve to "score this vector against a
        // target matrix", which is the query abstraction's whole point.
        let mut item_query_batches: BTreeMap<u32, DenseMatrix> = BTreeMap::new();
        let mut user_query_batches: BTreeMap<u32, DenseMatrix> = BTreeMap::new();
        for (&slot, group) in &groups {
            if !group.similar_items.is_empty() {
                let f = group.snapshot.f();
                let mut q = DenseMatrix::zeros(group.similar_items.len(), f);
                for (row, (_, v)) in group.similar_items.iter().enumerate() {
                    q.row_mut(row)
                        .copy_from_slice(group.snapshot.full().item_row(*v as usize));
                }
                item_query_batches.insert(slot, q);
            }
            if !group.similar_users.is_empty() {
                let f = group.user_factors.cols();
                let mut q = DenseMatrix::zeros(group.similar_users.len(), f);
                for (row, (_, u)) in group.similar_users.iter().enumerate() {
                    q.row_mut(row)
                        .copy_from_slice(group.user_factors.row(*u as usize));
                }
                user_query_batches.insert(slot, q);
            }
        }
        let t2 = self.now();

        // Pass 3: scatter each model's micro-batch across its shards
        // (slot order, so per-shard `serve.shard{i}.score` spans land
        // deterministically), then gather per-shard heaps into global
        // rankings.
        let mut scatters = Vec::with_capacity(groups.len());
        for (slot, group) in &groups {
            let scatter_rec: &dyn Recorder = if group.to_score.is_empty() {
                &NOOP
            } else {
                recorder
            };
            let scatter = scatter_top_k(
                &group.snapshot,
                &batches[slot],
                self.cfg.k,
                &self.cfg.score,
                scatter_rec,
                self.now(),
            );
            scatters.push((*slot, scatter));
        }
        // Vector-endpoint scoring rides the same score window. The
        // scatters run with a silent recorder so the per-shard span stream
        // stays exactly the top-k path's; their work is still accounted in
        // the shard timings merged below.
        let mut item_scatters = Vec::new();
        let mut user_scatters = Vec::new();
        let mut slate_ranked: BTreeMap<u32, Vec<Vec<ScoredItem>>> = BTreeMap::new();
        let mut slate_timings: Vec<ShardTiming> = Vec::new();
        let mut explained: BTreeMap<u32, Vec<(Explanation, f32)>> = BTreeMap::new();
        for (slot, group) in &groups {
            if let Some(q) = item_query_batches.get(slot) {
                // k+1 candidates: the query item ranks itself first more
                // often than not, and one spare guarantees k survivors
                // after self-exclusion. Runs under the engine's ScoreConfig,
                // so similar-items gets the ANN dial and FP16 path free.
                let scatter = scatter_top_k(
                    &group.snapshot,
                    q,
                    self.cfg.k + 1,
                    &self.cfg.score,
                    &NOOP,
                    self.now(),
                );
                item_scatters.push((*slot, scatter));
            }
            if let Some(q) = user_query_batches.get(slot) {
                // The user side always scans exactly in FP32: X carries no
                // FP16/int8/centroid sidecars, and building them per batch
                // would cost more than the scan they would save.
                let user_cfg = ScoreConfig {
                    retrieval: Retrieval::Exact,
                    use_fp16: false,
                    ..self.cfg.score
                };
                let scatter = scatter_top_k(
                    &group.entry.user_side_snapshot(),
                    q,
                    self.cfg.k + 1,
                    &user_cfg,
                    &NOOP,
                    self.now(),
                );
                user_scatters.push((*slot, scatter));
            }
            for (_, user, slate) in &group.rank_slates {
                let (items, timings) = rank_slate_sharded(
                    &group.snapshot,
                    group.user_factors.row(*user as usize),
                    slate,
                    self.cfg.k,
                );
                slate_timings.extend(timings);
                slate_ranked.entry(*slot).or_default().push(items);
            }
            for (_, user, item) in &group.explains {
                let (e, score) = explain_one(
                    group.snapshot.full(),
                    group.user_factors.row(*user as usize),
                    *item as usize,
                );
                explained.entry(*slot).or_default().push((e, score));
            }
        }
        let t3 = self.now();
        let mut shard_timings: Vec<ShardTiming> = Vec::new();
        let mut ranked: BTreeMap<u32, Vec<Vec<ScoredItem>>> = BTreeMap::new();
        for (slot, scatter) in scatters {
            let (rankings, timings) = scatter.gather(self.cfg.k);
            if !groups[&slot].to_score.is_empty() {
                shard_timings.extend(timings);
            }
            ranked.insert(slot, rankings);
        }
        let mut item_ranked: BTreeMap<u32, Vec<Vec<ScoredItem>>> = BTreeMap::new();
        for (slot, scatter) in item_scatters {
            let (rankings, timings) = scatter.gather(self.cfg.k + 1);
            shard_timings.extend(timings);
            item_ranked.insert(slot, rankings);
        }
        let mut user_ranked: BTreeMap<u32, Vec<Vec<ScoredItem>>> = BTreeMap::new();
        for (slot, scatter) in user_scatters {
            let (rankings, timings) = scatter.gather(self.cfg.k + 1);
            shard_timings.extend(timings);
            user_ranked.insert(slot, rankings);
        }
        shard_timings.extend(slate_timings);
        let t4 = self.now();

        // Pass 4: fill cache, assemble responses in request order.
        let mut scored_users = 0usize;
        let mut cold_users = 0usize;
        // Only the cacheable endpoints (top-k known users, similar-items)
        // count as cache misses; the uncached endpoints are scored work
        // but never a miss.
        let mut cacheable_misses = 0u64;
        for (&slot, group) in &groups {
            let known_misses = group.to_score.len() - group.cold_histories.len();
            scored_users += known_misses
                + group.similar_items.len()
                + group.similar_users.len()
                + group.rank_slates.len()
                + group.explains.len();
            cold_users += group.cold_histories.len();
            cacheable_misses += (known_misses + group.similar_items.len()) as u64;
            let epoch = group.snapshot.epoch();
            let respond = |request_id: u64, items: Vec<ScoredItem>, explanation| {
                Ok(Recommendation {
                    request_id,
                    model: group.entry.id.clone(),
                    epoch,
                    items,
                    from_cache: false,
                    explanation,
                })
            };
            for ((i, user), items) in group.to_score.iter().zip(&ranked[&slot]) {
                if let Some(u) = user {
                    self.cache.insert(
                        CacheKey {
                            model: slot,
                            epoch,
                            user: *u,
                            endpoint: Endpoint::TopK,
                            retrieval: self.cfg.score.retrieval,
                        },
                        items.clone(),
                    );
                }
                responses[*i] = Some(respond(requests[*i].id, items.clone(), None));
            }
            if let Some(rankings) = item_ranked.get(&slot) {
                for ((i, v), items) in group.similar_items.iter().zip(rankings) {
                    // Self-exclusion: drop the query item, keep the best k.
                    // Filtering the k+1 ranking is provably identical to
                    // excluding before selection under the total order.
                    let items: Vec<ScoredItem> = items
                        .iter()
                        .filter(|s| s.item != *v)
                        .take(self.cfg.k)
                        .copied()
                        .collect();
                    self.cache.insert(
                        CacheKey {
                            model: slot,
                            epoch,
                            user: *v,
                            endpoint: Endpoint::SimilarItems,
                            retrieval: self.cfg.score.retrieval,
                        },
                        items.clone(),
                    );
                    responses[*i] = Some(respond(requests[*i].id, items, None));
                }
            }
            if let Some(rankings) = user_ranked.get(&slot) {
                for ((i, u), items) in group.similar_users.iter().zip(rankings) {
                    let items: Vec<ScoredItem> = items
                        .iter()
                        .filter(|s| s.item != *u)
                        .take(self.cfg.k)
                        .copied()
                        .collect();
                    responses[*i] = Some(respond(requests[*i].id, items, None));
                }
            }
            if let Some(per_req) = slate_ranked.get(&slot) {
                for ((i, _, _), items) in group.rank_slates.iter().zip(per_req) {
                    responses[*i] = Some(respond(requests[*i].id, items.clone(), None));
                }
            }
            if let Some(per_req) = explained.get(&slot) {
                for ((i, _, item), (e, score)) in group.explains.iter().zip(per_req) {
                    responses[*i] = Some(respond(
                        requests[*i].id,
                        vec![ScoredItem {
                            item: *item,
                            score: *score,
                        }],
                        Some(e.clone()),
                    ));
                }
            }
        }
        let t5 = self.now();

        let arms: Vec<(ModelId, u64)> = groups
            .values()
            .map(|g| (g.entry.id.clone(), g.snapshot.epoch()))
            .collect();
        // Factor bytes the scatter passes streamed: per-shard accounting
        // ([`ShardTiming::bytes`] — analytic on the exact path, measured
        // on the approximate one), summed over every arm. Cache hits
        // never reach a scatter, so they contribute nothing.
        let scan_bytes: u64 = shard_timings.iter().map(|t| t.bytes).sum();
        let score_flops: u64 = shard_timings.iter().map(|t| t.flops).sum();
        let approx = !self.cfg.score.retrieval.is_exact();
        let ann_probed: u64 = shard_timings.iter().map(|t| t.probed_clusters).sum();
        let ann_rescored: u64 = shard_timings.iter().map(|t| t.rescored).sum();
        // Stage-2 candidate rows under the approximate mode; 0 on exact
        // engines, where ShardTiming::scored is the full scan.
        let ann_candidates: u64 = if approx {
            shard_timings.iter().map(|t| t.scored).sum()
        } else {
            0
        };
        let trace = BatchTrace {
            start: t0,
            cache_done: t1,
            foldin_done: t2,
            score_done: t3,
            merge_done: t4,
            end: t5,
            requests: requests.len(),
            cache_hits: batch_hits as usize,
            cold_users,
            scored_users,
            errors,
            arms,
            shard_timings,
            scan_bytes,
            score_flops,
            ann_probed,
            ann_candidates,
            ann_rescored,
        };

        // Always-on typed metrics (lock-free counters, striped by thread).
        let m = self.obs.metrics();
        m.requests.add(requests.len() as u64);
        m.batches.inc();
        m.cache_hits.add(batch_hits);
        m.cache_misses.add(cacheable_misses);
        m.cold_users.add(cold_users as u64);
        m.scan_bytes.add(scan_bytes);
        m.ann_probed.add(trace.ann_probed);
        m.ann_candidates.add(trace.ann_candidates);
        m.ann_rescored.add(trace.ann_rescored);
        // FP16 was asked for but a snapshot without an FP16 copy scanned
        // in FP32: count the silently-widened requests per model.
        if self.cfg.score.use_fp16 {
            for group in groups.values() {
                let scans = group.to_score.len() + group.similar_items.len();
                if scans > 0 && !group.snapshot.full().has_fp16() {
                    group.entry.metrics.fp16_fallback.add(scans as u64);
                }
            }
        }
        // Approx retrieval was asked for but a snapshot without a centroid
        // index scanned exactly: count the silently-exact requests per
        // model (rare — the registry's policy attaches the index — but a
        // recall dial that silently reads 4× the bytes must be visible).
        if approx {
            for group in groups.values() {
                let scans = group.to_score.len() + group.similar_items.len();
                if scans > 0 && !group.snapshot.full().has_ann() {
                    group.entry.metrics.ann_fallback.add(scans as u64);
                }
            }
        }
        if let Some(default) = table.entries.get(table.router.default_model()) {
            m.epoch.set(default.store.epoch() as f64);
        }
        // Per-endpoint accounting: one request count and one batch-time
        // latency observation per request, plus a once-per-engine journal
        // record the first time each endpoint serves.
        for req in requests {
            let ep = req.query.endpoint();
            let handles = m.endpoint(ep);
            handles.requests.inc();
            handles.latency.observe_secs(t5 - t0);
            let idx = Endpoint::ALL
                .iter()
                .position(|e| *e == ep)
                .expect("endpoint in ALL");
            if !self.endpoint_journaled[idx].swap(true, Ordering::Relaxed) {
                self.obs.journal().record(
                    t5,
                    None,
                    EventKind::EndpointFirstServed {
                        endpoint: ep.name(),
                    },
                );
            }
        }
        m.observe_batch_stages(&trace);
        for t in &trace.shard_timings {
            if let Some(sm) = self.shard_metrics.get(t.shard) {
                sm.scored.add(t.scored);
                sm.pass_seconds.observe_secs(t.secs);
            }
        }

        // Event-stream spans for Chrome traces (each model's scatter
        // already emitted its per-shard spans inside [t2, t3]).
        if recorder.enabled() {
            recorder.phase(PhaseSpan::new("serve.batch", t0, t5));
            recorder.phase(PhaseSpan::new("serve.batch.cache", t0, t1));
            recorder.phase(PhaseSpan::new("serve.batch.foldin", t1, t2));
            recorder.phase(PhaseSpan::new("serve.batch.merge", t3, t4));
            recorder.phase(PhaseSpan::new("serve.batch.respond", t4, t5));
        }

        let out = responses
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect();
        (out, trace)
    }
}

impl MemoryFootprint for ServeEngine {
    /// Alias for [`ServeEngine::memory_report`].
    fn footprint(&self) -> FootprintReport {
        self.memory_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_telemetry::{MemoryRecorder, NOOP};
    use rand::prelude::*;

    fn factors(users: usize, items: usize, f: usize, seed: u64) -> (DenseMatrix, DenseMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = DenseMatrix::zeros(users, f);
        x.fill_with(|| rng.gen_f32() - 0.5);
        let mut theta = DenseMatrix::zeros(items, f);
        theta.fill_with(|| rng.gen_f32() - 0.5);
        (x, theta)
    }

    fn engine(users: usize, items: usize, f: usize, cfg: ServeConfig) -> ServeEngine {
        let (x, theta) = factors(users, items, f, 99);
        ServeEngine::builder()
            .config(cfg)
            .model("default", x, ModelSnapshot::new(0, theta, vec![]))
            .build()
            .unwrap()
    }

    fn known(ids: &[u32]) -> Vec<Request> {
        ids.iter().map(|&u| Request::known(u as u64, u)).collect()
    }

    fn unwrap_all(out: Vec<Result<Recommendation, ServeError>>) -> Vec<Recommendation> {
        out.into_iter().map(|r| r.unwrap()).collect()
    }

    #[test]
    fn batch_answers_in_request_order() {
        let e = engine(10, 30, 4, ServeConfig::default());
        let out = unwrap_all(e.recommend_batch(&known(&[3, 1, 4, 1, 5]), &NOOP));
        assert_eq!(
            out.iter().map(|r| r.request_id).collect::<Vec<_>>(),
            vec![3, 1, 4, 1, 5]
        );
        assert!(out.iter().all(|r| r.items.len() == 10));
        assert!(out.iter().all(|r| r.model.as_str() == "default"));
    }

    #[test]
    fn second_lookup_hits_cache_bit_identically() {
        let e = engine(5, 40, 6, ServeConfig::default());
        let cold = e.recommend_user(2, &NOOP).unwrap();
        assert!(!cold.from_cache);
        let warm = e.recommend_user(2, &NOOP).unwrap();
        assert!(warm.from_cache);
        assert_eq!(cold.items, warm.items, "cache must be bit-identical");
        let s = e.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn duplicate_users_in_one_batch_agree_then_hit() {
        let e = engine(4, 20, 3, ServeConfig::default());
        // Same user twice in one batch: both scored this round (the second
        // is enqueued before the first's insert), identical results.
        let out = unwrap_all(e.recommend_batch(&known(&[0, 0]), &NOOP));
        assert_eq!(out[0].items, out[1].items);
        // Next batch hits.
        let again = unwrap_all(e.recommend_batch(&known(&[0]), &NOOP));
        assert!(again[0].from_cache);
    }

    #[test]
    fn publish_invalidates_cache_by_keying() {
        let e = engine(3, 15, 4, ServeConfig::default());
        let id = e.registry().default_model();
        let before = e.recommend_user(1, &NOOP).unwrap();
        let mut theta2 = e
            .registry()
            .snapshot(&id)
            .unwrap()
            .full()
            .item_factors()
            .clone();
        cumf_numeric::dense::scale(-1.0, theta2.as_mut_slice());
        e.registry()
            .publish(&id, ModelSnapshot::new(1, theta2, vec![]))
            .unwrap();
        let after = e.recommend_user(1, &NOOP).unwrap();
        assert!(!after.from_cache, "new epoch must not hit old entries");
        assert_eq!(after.epoch, 1);
        assert_ne!(before.items, after.items);
    }

    #[test]
    fn cold_user_with_history_gets_nonzero_scores() {
        let e = engine(2, 25, 5, ServeConfig::default());
        let history: Vec<(u32, f32)> = (0..8).map(|v| (v, 4.0)).collect();
        let out = unwrap_all(e.recommend_batch(&[Request::cold(7, history)], &NOOP));
        assert!(!out[0].from_cache);
        assert!(out[0].items.iter().any(|s| s.score != 0.0));
    }

    #[test]
    fn mixed_batch_counts_typed_metrics() {
        let e = engine(6, 20, 3, ServeConfig::default());
        e.recommend_user(0, &NOOP).unwrap(); // warm one entry
        let rec = MemoryRecorder::new();
        let mut reqs = known(&[0, 1]);
        reqs.push(Request::cold(100, vec![(0, 5.0)]));
        let m = e.obs().metrics();
        let (req0, hit0) = (m.requests.get(), m.cache_hits.get());
        e.recommend_batch(&reqs, &rec);
        assert_eq!(m.requests.get() - req0, 3);
        assert_eq!(m.cache_hits.get() - hit0, 1);
        assert_eq!(m.cache_misses.get(), 1 + 1); // warming miss + user 1
        assert_eq!(m.cold_users.get(), 1);
        assert_eq!(m.batches.get(), 2);
        // Per-shard handles saw the scoring pass (1 shard by default).
        assert!(e.obs().metrics().shard(0).scored.get() > 0);
        // Per-model handles saw every routed request.
        assert_eq!(m.model("default").requests.get(), 4);
        assert_eq!(m.model("default").cache_hits.get(), 1);
        // The event stream carries the batch + stage + shard spans.
        let names: Vec<String> = rec
            .phase_spans()
            .iter()
            .map(|s| s.name.to_string())
            .collect();
        for want in [
            "serve.shard0.score",
            "serve.batch",
            "serve.batch.cache",
            "serve.batch.foldin",
            "serve.batch.merge",
            "serve.batch.respond",
        ] {
            assert!(
                names.contains(&want.to_string()),
                "missing {want}: {names:?}"
            );
        }
        // And the Prometheus exposition renders the same counts.
        let text = e.obs().render_prometheus(e.now());
        assert!(text.contains("serve_cold_users_total 1"));
        assert!(text.contains("serve_shard_scored_total{shard=\"0\"}"));
        assert!(text.contains("serve_stage_seconds_count{stage=\"score\"} 2"));
        assert!(text.contains("serve_model_requests_total{model=\"default\"} 4"));
    }

    #[test]
    fn batch_trace_timestamps_are_contiguous_and_counted() {
        let e = engine(8, 30, 4, ServeConfig::default().with_shards(3));
        e.recommend_user(2, &NOOP).unwrap(); // warm one entry
        let mut reqs = known(&[2, 3]);
        reqs.push(Request::cold(50, vec![(1, 3.0)]));
        let (out, trace) = e.recommend_batch_traced(&reqs, &NOOP);
        assert_eq!(out.len(), 3);
        // Monotone, contiguous boundaries.
        let ts = [
            trace.start,
            trace.cache_done,
            trace.foldin_done,
            trace.score_done,
            trace.merge_done,
            trace.end,
        ];
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
        assert_eq!(
            (
                trace.requests,
                trace.cache_hits,
                trace.cold_users,
                trace.scored_users,
                trace.errors,
            ),
            (3, 1, 1, 1, 0)
        );
        assert_eq!(trace.shard_timings.len(), 3);
        assert_eq!(trace.arms, vec![(ModelId::from("default"), 0)]);
    }

    #[test]
    fn batch_scan_bytes_count_scored_users_not_cache_hits() {
        let e = engine(8, 30, 4, ServeConfig::default());
        let (_, trace) = e.recommend_batch_traced(&known(&[0, 1]), &NOOP);
        // One chunk of 2 users scans all of Θ once: 30 items × f=4 × 4 B.
        assert_eq!(trace.scan_bytes, 30 * 4 * 4);
        assert_eq!(e.obs().metrics().scan_bytes.get(), trace.scan_bytes);
        // An all-hit batch streams nothing.
        let (_, warm) = e.recommend_batch_traced(&known(&[0, 1]), &NOOP);
        assert_eq!(warm.scan_bytes, 0);
        assert_eq!(e.obs().metrics().scan_bytes.get(), trace.scan_bytes);
        // Sharding re-partitions the same scan: byte totals are invariant.
        let sharded = engine(8, 30, 4, ServeConfig::default().with_shards(3));
        let (_, t3) = sharded.recommend_batch_traced(&known(&[0, 1]), &NOOP);
        assert_eq!(t3.scan_bytes, trace.scan_bytes);
    }

    #[test]
    fn fp16_fallback_is_counted_per_model() {
        let score = ScoreConfig {
            use_fp16: true,
            ..ScoreConfig::default()
        };
        let e = engine(6, 20, 3, ServeConfig::default().with_score(score));
        // The snapshot has no FP16 copy: every scored request falls back.
        e.recommend_batch(&known(&[0, 1, 2]), &NOOP);
        let m = e.obs().metrics().model("default");
        assert_eq!(m.fp16_fallback.get(), 3);
        // Cache hits bypass the scan and are not counted.
        e.recommend_batch(&known(&[0, 1]), &NOOP);
        assert_eq!(m.fp16_fallback.get(), 3);
        // Publishing a snapshot that carries FP16 stops the fallback.
        let id = e.registry().default_model();
        let theta = e
            .registry()
            .snapshot(&id)
            .unwrap()
            .full()
            .item_factors()
            .clone();
        e.registry()
            .publish(&id, ModelSnapshot::new(1, theta, vec![]).with_fp16())
            .unwrap();
        e.recommend_batch(&known(&[3, 4]), &NOOP);
        assert_eq!(m.fp16_fallback.get(), 3);
        // An engine not asking for FP16 never counts.
        let plain = engine(6, 20, 3, ServeConfig::default());
        plain.recommend_batch(&known(&[0]), &NOOP);
        assert_eq!(
            plain.obs().metrics().model("default").fp16_fallback.get(),
            0
        );
    }

    #[test]
    fn memory_report_sums_registry_cache_and_flight() {
        let e = engine(6, 20, 3, ServeConfig::default());
        let empty = e.memory_report();
        assert!(empty.verify());
        let names: Vec<&str> = empty.children().iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["registry", "cache", "flight_recorder"]);
        // Serving fills the cache, so resident bytes grow.
        e.recommend_batch(&known(&[0, 1, 2]), &NOOP);
        let report = e.refresh_memory_gauges();
        assert!(report.verify());
        assert!(report.total_bytes() > empty.total_bytes());
        let m = e.obs().metrics();
        assert_eq!(m.cache_entries.get(), 3.0);
        assert_eq!(m.cache_bytes.get() as u64, e.cache_stats().bytes);
        assert_eq!(m.mem_bytes("engine", "").get() as u64, report.total_bytes());
        let text = e.obs().render_prometheus(e.now());
        assert!(text.contains("serve_mem_bytes{component=\"engine\",model=\"\"}"));
        assert!(text.contains("serve_mem_bytes{component=\"model\",model=\"default\"}"));
        assert!(text.contains("serve_cache_entries 3"));
    }

    #[test]
    fn health_reports_ready_then_flips_on_force_retire() {
        let e = engine(6, 20, 3, ServeConfig::default());
        let status = e.health();
        assert!(status.ready(), "fresh engine must be ready: {status:?}");
        assert_eq!(status.checks.len(), 3);
        e.registry()
            .force_retire(&e.registry().default_model())
            .unwrap();
        let drained = e.health();
        assert!(!drained.ready());
        assert_eq!(drained.failing(), vec!["default_model_live"]);
        // A drained default fails requests instead of panicking.
        let out = e.recommend_batch(&known(&[0]), &NOOP);
        assert!(matches!(
            out[0].as_ref().unwrap_err(),
            ServeError::RetiredModel(_)
        ));
    }

    #[test]
    fn health_flips_when_the_memory_budget_is_exceeded() {
        let (x, theta) = factors(4, 10, 2, 3);
        let e = ServeEngine::builder()
            .config(ServeConfig::default().with_memory_budget(1))
            .model("default", x, ModelSnapshot::new(0, theta, vec![]))
            .build()
            .unwrap();
        let status = e.health();
        assert!(!status.ready());
        assert_eq!(status.failing(), vec!["memory_budget"]);
    }

    #[test]
    fn health_flips_while_the_slo_fast_burns() {
        let e = engine(4, 10, 2, ServeConfig::default());
        assert!(e.health().ready());
        // A burst of sheds torches the 1 s window: burn 100 ≥ 10.
        let now = e.now();
        for i in 0..20 {
            e.obs().observe_shed(now + i as f64 * 1e-4);
        }
        let burning = e.health();
        assert!(!burning.ready());
        assert_eq!(burning.failing(), vec!["slo_fast_burn"]);
        // The journal recorded the transition in.
        assert!(e
            .obs()
            .journal()
            .records()
            .iter()
            .any(|r| r.kind.name() == "SloBurnEntered"));
    }

    #[test]
    fn sharded_engine_matches_unsharded() {
        let reqs = known(&[0, 2, 4, 1]);
        let base = engine(6, 37, 4, ServeConfig::default());
        let want = unwrap_all(base.recommend_batch(&reqs, &NOOP));
        for shards in [2, 3, 8] {
            let e = engine(6, 37, 4, ServeConfig::default().with_shards(shards));
            let got = unwrap_all(e.recommend_batch(&reqs, &NOOP));
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.items, b.items, "shards={shards}");
            }
        }
    }

    #[test]
    fn unknown_user_is_an_error_not_a_panic() {
        let e = engine(2, 10, 2, ServeConfig::default());
        // The bad request fails alone; its neighbors are served.
        let out = e.recommend_batch(&known(&[0, 5, 1]), &NOOP);
        assert!(out[0].is_ok() && out[2].is_ok());
        let err = out[1].as_ref().unwrap_err();
        assert!(matches!(
            err,
            ServeError::UnknownUser {
                user: 5,
                n_users: 2,
                ..
            }
        ));
        // Counted under its reason label.
        let text = e.obs().render_prometheus(e.now());
        assert!(text.contains("serve_errors_total{reason=\"unknown_user\"} 1"));
    }

    #[test]
    fn explicit_model_ids_route_past_the_canary() {
        let (x, theta) = factors(6, 20, 3, 1);
        let (x2, mut theta2) = (x.clone(), theta.clone());
        cumf_numeric::dense::scale(-1.0, theta2.as_mut_slice());
        let e = ServeEngine::builder()
            .model("champion", x, ModelSnapshot::new(0, theta, vec![]))
            .model("challenger", x2, ModelSnapshot::new(0, theta2, vec![]))
            .canary("challenger", 1.0)
            .build()
            .unwrap();
        // fraction 1.0: unaddressed traffic goes to the challenger…
        let routed = e.recommend_user(0, &NOOP).unwrap();
        assert_eq!(routed.model.as_str(), "challenger");
        // …but an explicit id bypasses the split.
        let pinned =
            unwrap_all(e.recommend_batch(&[Request::known(0, 0).for_model("champion")], &NOOP));
        assert_eq!(pinned[0].model.as_str(), "champion");
        assert_ne!(pinned[0].items, routed.items, "the arms differ");
        // Unknown and retired models fail per-request.
        let out = e.recommend_batch(&[Request::known(1, 1).for_model("ghost")], &NOOP);
        assert!(matches!(
            out[0].as_ref().unwrap_err(),
            ServeError::UnknownModel(_)
        ));
    }

    fn approx_config(n_probe: usize) -> ServeConfig {
        ServeConfig::default()
            .with_score(ScoreConfig {
                retrieval: Retrieval::Approx {
                    n_probe,
                    quant: QuantMode::Int8,
                },
                ..ScoreConfig::default()
            })
            .with_ann(AnnParams {
                k_clusters: 16,
                ..AnnParams::default()
            })
    }

    #[test]
    fn approx_engine_attaches_the_index_and_cuts_scan_bytes() {
        let exact = engine(8, 600, 8, ServeConfig::default());
        let approx = engine(8, 600, 8, approx_config(4));
        // The builder-derived policy attached both sidecars.
        let id = approx.registry().default_model();
        let held = approx.registry().snapshot(&id).unwrap();
        assert!(held.full().has_ann() && held.full().has_int8());
        let reqs = known(&[0, 1, 2, 3]);
        let (want, te) = exact.recommend_batch_traced(&reqs, &NOOP);
        let (got, ta) = approx.recommend_batch_traced(&reqs, &NOOP);
        assert!(
            ta.scan_bytes < te.scan_bytes,
            "{} vs {}",
            ta.scan_bytes,
            te.scan_bytes
        );
        assert!(ta.ann_probed > 0 && ta.ann_candidates > 0 && ta.ann_rescored > 0);
        assert_eq!(te.ann_probed, 0, "exact engines never probe");
        // The shortlist rescore keeps the rankings close to exact.
        let mut recall = 0.0;
        for (a, b) in want.iter().zip(&got) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            recall += crate::metrics::overlap_at_k(&a.items, &b.items, 10);
        }
        assert!(recall / 4.0 >= 0.9, "recall@10 {}", recall / 4.0);
        // The ann counters reached the typed metrics and exposition.
        let m = approx.obs().metrics();
        assert_eq!(m.ann_probed.get(), ta.ann_probed);
        assert_eq!(m.ann_candidates.get(), ta.ann_candidates);
        assert_eq!(m.ann_rescored.get(), ta.ann_rescored);
        let text = approx.obs().render_prometheus(approx.now());
        assert!(text.contains("serve_ann_probed_clusters_total"));
        // Cache round trip under the approximate key.
        let warm = approx.recommend_user(0, &NOOP).unwrap();
        assert!(warm.from_cache);
        assert_eq!(warm.items, got[0].as_ref().unwrap().items);
    }

    #[test]
    fn approx_published_epochs_get_the_index_too() {
        let e = engine(6, 300, 4, approx_config(4));
        let id = e.registry().default_model();
        let theta = e
            .registry()
            .snapshot(&id)
            .unwrap()
            .full()
            .item_factors()
            .clone();
        e.registry()
            .publish(&id, ModelSnapshot::new(1, theta, vec![]))
            .unwrap();
        let held = e.registry().snapshot(&id).unwrap();
        assert!(held.full().has_ann() && held.full().has_int8());
        let (_, trace) = e.recommend_batch_traced(&known(&[0, 1]), &NOOP);
        assert!(trace.ann_probed > 0);
        assert_eq!(
            e.obs().metrics().model("default").ann_fallback.get(),
            0,
            "policy-completed snapshots never fall back"
        );
    }

    #[test]
    fn canary_batch_serves_both_arms_in_one_pass() {
        let (x, theta) = factors(64, 20, 3, 7);
        let e = ServeEngine::builder()
            .model("a", x.clone(), ModelSnapshot::new(0, theta.clone(), vec![]))
            .model("b", x, ModelSnapshot::new(5, theta, vec![]))
            .canary("b", 0.5)
            .build()
            .unwrap();
        let reqs = known(&(0..64).collect::<Vec<u32>>());
        let (out, trace) = e.recommend_batch_traced(&reqs, &NOOP);
        let out = unwrap_all(out);
        let on_b = out.iter().filter(|r| r.model.as_str() == "b").count();
        assert!(on_b > 0 && on_b < 64, "both arms must serve: {on_b}/64");
        // The trace reports both arms with their epochs, in slot order.
        assert_eq!(
            trace.arms,
            vec![(ModelId::from("a"), 0), (ModelId::from("b"), 5)]
        );
        // Routing is deterministic: a second pass picks identical arms
        // (and hits the cache).
        let again = unwrap_all(e.recommend_batch(&reqs, &NOOP));
        for (first, second) in out.iter().zip(&again) {
            assert_eq!(first.model, second.model);
            assert!(second.from_cache);
        }
    }
}
