//! Bounded top-k selection: a size-capped min-heap per user, plus the
//! deterministic merge the sharded scorer reduces through.
//!
//! Scoring a user against `n` items produces `n` candidate scores but the
//! response only carries `k ≪ n` of them. Keeping a k-entry min-heap while
//! streaming scores costs `O(n log k)` and `O(k)` memory per user — versus
//! `O(n log n)` time and `O(n)` memory for a full argsort — which is what
//! lets the scorer walk item blocks without ever materializing the full
//! score row.
//!
//! ## The tie-break contract
//!
//! Every selection and merge in this module orders candidates by **score
//! descending, then item id ascending** ([`ScoredItem::ranks_before`],
//! a total order via `f32::total_cmp`). The contract matters because the
//! same item set reaches a ranking along different paths — one heap walk,
//! a naive argsort, or a merge of per-shard heaps — and responses must be
//! bit-identical regardless of which path produced them (test-enforced).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One recommendation candidate: an item index and its score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredItem {
    /// Item (column of the rating matrix / row of `Θ`).
    pub item: u32,
    /// Predicted score, priors included.
    pub score: f32,
}

impl ScoredItem {
    /// Ranking order: higher score first; ties broken toward the smaller
    /// item id so rankings are deterministic regardless of scoring order.
    #[inline]
    pub fn ranks_before(&self, other: &ScoredItem) -> bool {
        match self.score.total_cmp(&other.score) {
            Ordering::Greater => true,
            Ordering::Less => false,
            Ordering::Equal => self.item < other.item,
        }
    }
}

/// Heap adapter: orders entries *worst-first* so a max-[`BinaryHeap`] keeps
/// the current cut-off candidate at the top.
#[derive(Clone, Copy, Debug, PartialEq)]
struct WorstFirst(ScoredItem);

impl Eq for WorstFirst {}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.0 == other.0 {
            Ordering::Equal
        } else if self.0.ranks_before(&other.0) {
            Ordering::Less
        } else {
            Ordering::Greater
        }
    }
}

/// A bounded min-heap keeping the best `k` of a stream of scored items.
///
/// ```
/// use cumf_serve::topk::TopK;
///
/// let mut top = TopK::new(2);
/// for (item, score) in [(0, 1.0), (1, 5.0), (2, 3.0), (3, 4.0)] {
///     top.push(item, score);
/// }
/// let best = top.into_sorted();
/// assert_eq!(best[0].item, 1);
/// assert_eq!(best[1].item, 3);
/// ```
#[derive(Clone, Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<WorstFirst>,
}

impl TopK {
    /// An empty selector that will retain at most `k` items.
    pub fn new(k: usize) -> TopK {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer one candidate. Kept only if fewer than `k` items have been
    /// seen or it ranks before the current worst retained item.
    #[inline]
    pub fn push(&mut self, item: u32, score: f32) {
        if self.k == 0 {
            return;
        }
        let cand = ScoredItem { item, score };
        if self.heap.len() < self.k {
            self.heap.push(WorstFirst(cand));
        } else if let Some(worst) = self.heap.peek() {
            if cand.ranks_before(&worst.0) {
                self.heap.pop();
                self.heap.push(WorstFirst(cand));
            }
        }
    }

    /// Number of items currently retained (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The retained items, best first.
    pub fn into_sorted(self) -> Vec<ScoredItem> {
        let mut v: Vec<ScoredItem> = self.heap.into_iter().map(|w| w.0).collect();
        v.sort_unstable_by(|a, b| {
            if a.ranks_before(b) {
                Ordering::Less
            } else if b.ranks_before(a) {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        });
        v
    }
}

/// Merge per-shard rankings into one global top-k, best first.
///
/// Each input list must already be sorted best-first by the module's
/// tie-break order (score descending, item id ascending) — which is what
/// [`TopK::into_sorted`] and [`naive_top_k`] produce. The merge preserves
/// that total order, so the result is bit-identical to ranking the union
/// of all candidates in one pass: shard boundaries can never reorder tied
/// scores (test-enforced, including ties straddling shards).
///
/// ```
/// use cumf_serve::topk::{merge_top_k, ScoredItem};
///
/// let s = |item, score| ScoredItem { item, score };
/// // Two shards, a tie at 1.0 straddling them: item 2 must win the tie.
/// let a = vec![s(5, 1.0), s(0, 0.5)];
/// let b = vec![s(2, 1.0), s(9, 0.7)];
/// let merged = merge_top_k(&[a, b], 3);
/// assert_eq!(
///     merged.iter().map(|x| x.item).collect::<Vec<_>>(),
///     vec![2, 5, 9]
/// );
/// ```
pub fn merge_top_k(lists: &[Vec<ScoredItem>], k: usize) -> Vec<ScoredItem> {
    debug_assert!(lists.iter().all(|l| l
        .windows(2)
        .all(|w| w[0].ranks_before(&w[1]) || w[0] == w[1])));
    let mut all: Vec<ScoredItem> = Vec::with_capacity(lists.iter().map(Vec::len).sum());
    for list in lists {
        all.extend_from_slice(list);
    }
    all.sort_unstable_by(|a, b| {
        if a.ranks_before(b) {
            Ordering::Less
        } else if b.ranks_before(a) {
            Ordering::Greater
        } else {
            Ordering::Equal
        }
    });
    all.truncate(k);
    all
}

/// Reference selection: full argsort, then truncate. `O(n log n)` — used by
/// tests as the ground truth the heap path must match exactly. Follows the
/// module's tie-break contract: score descending, then item id ascending.
pub fn naive_top_k(scores: &[f32], k: usize) -> Vec<ScoredItem> {
    let mut all: Vec<ScoredItem> = scores
        .iter()
        .enumerate()
        .map(|(i, &s)| ScoredItem {
            item: i as u32,
            score: s,
        })
        .collect();
    all.sort_unstable_by(|a, b| {
        if a.ranks_before(b) {
            Ordering::Less
        } else if b.ranks_before(a) {
            Ordering::Greater
        } else {
            Ordering::Equal
        }
    });
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k_sorted() {
        let scores = [0.5, 3.0, -1.0, 2.0, 3.0, 0.0];
        let mut top = TopK::new(3);
        for (i, &s) in scores.iter().enumerate() {
            top.push(i as u32, s);
        }
        let got = top.into_sorted();
        // Ties (items 1 and 4, both 3.0) break toward the smaller id.
        assert_eq!(
            got.iter().map(|s| s.item).collect::<Vec<_>>(),
            vec![1, 4, 3]
        );
        assert_eq!(got, naive_top_k(&scores, 3));
    }

    #[test]
    fn fewer_candidates_than_k() {
        let mut top = TopK::new(10);
        top.push(7, 1.0);
        top.push(3, 2.0);
        let got = top.into_sorted();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].item, 3);
    }

    #[test]
    fn k_zero_retains_nothing() {
        let mut top = TopK::new(0);
        top.push(0, 1.0);
        assert!(top.is_empty());
        assert!(top.into_sorted().is_empty());
    }

    #[test]
    fn merge_matches_single_list_ranking() {
        // Items 0..12 with scores that collide in pairs; split across three
        // "shards" by item-id range, the merge must equal one global sort.
        let scores: Vec<f32> = (0..12).map(|i| ((i * 7) % 5) as f32).collect();
        let want = naive_top_k(&scores, 6);
        let lists: Vec<Vec<ScoredItem>> = [(0usize, 4usize), (4, 8), (8, 12)]
            .iter()
            .map(|&(lo, hi)| {
                let mut top = TopK::new(6);
                for (i, &score) in scores.iter().enumerate().take(hi).skip(lo) {
                    top.push(i as u32, score);
                }
                top.into_sorted()
            })
            .collect();
        assert_eq!(merge_top_k(&lists, 6), want);
    }

    #[test]
    fn merge_breaks_ties_toward_smaller_item_id_across_lists() {
        let s = |item, score| ScoredItem { item, score };
        // The tied score 2.0 appears in both lists; item 1 (second list)
        // must rank before item 6 (first list).
        let a = vec![s(6, 2.0), s(0, 1.0)];
        let b = vec![s(1, 2.0), s(3, 1.5)];
        let merged = merge_top_k(&[a, b], 4);
        assert_eq!(
            merged.iter().map(|x| x.item).collect::<Vec<_>>(),
            vec![1, 6, 3, 0]
        );
        // Reversing the list order changes nothing: the order is total.
        let a = vec![s(6, 2.0), s(0, 1.0)];
        let b = vec![s(1, 2.0), s(3, 1.5)];
        assert_eq!(merge_top_k(&[b, a], 4), merged);
    }

    #[test]
    fn merge_truncates_and_handles_empty_lists() {
        let s = |item, score| ScoredItem { item, score };
        let lists = vec![vec![], vec![s(2, 1.0)], vec![], vec![s(1, 3.0)]];
        let merged = merge_top_k(&lists, 1);
        assert_eq!(merged, vec![s(1, 3.0)]);
        assert!(merge_top_k(&[], 5).is_empty());
    }

    #[test]
    fn naive_top_k_tie_break_is_score_desc_then_item_asc() {
        // Regression: the documented contract, checked directly.
        let scores = [2.0f32, 3.0, 3.0, 1.0, 3.0];
        let got = naive_top_k(&scores, 5);
        assert_eq!(
            got.iter().map(|s| s.item).collect::<Vec<_>>(),
            vec![1, 2, 4, 0, 3]
        );
    }

    #[test]
    fn matches_naive_on_adversarial_ties() {
        // All-equal scores: ranking must be item order, and heap == argsort.
        let scores = vec![1.0f32; 20];
        let mut top = TopK::new(5);
        for (i, &s) in scores.iter().enumerate() {
            top.push(i as u32, s);
        }
        assert_eq!(top.into_sorted(), naive_top_k(&scores, 5));
    }
}
