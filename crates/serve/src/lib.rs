//! # cumf-serve — batched top-k recommendation inference
//!
//! Training (`cumf-als`) ends with two factor matrices; serving turns them
//! into ranked recommendations under load. This crate is the online half
//! the ROADMAP's "heavy traffic from millions of users" goal needs:
//!
//! * [`store`] — [`FactorStore`]: immutable [`ModelSnapshot`]s behind an
//!   atomic `Arc` swap, so a background trainer publishes new epochs
//!   without ever blocking readers. Snapshots optionally carry an FP16
//!   copy of the factors — the paper's half-precision storage trick
//!   (Solution 4), here halving *scoring* bandwidth instead of solver
//!   bandwidth.
//! * [`scorer`] — a blocked user×item scoring pass reduced through
//!   per-user bounded heaps ([`topk`]): `O(n log k)` per user, never
//!   materializing the full score matrix. The Θ-block size auto-tunes
//!   from `f` to a ~100 KiB cache-resident tile.
//! * [`ann`] — two-stage approximate retrieval: a deterministic k-means
//!   [`CentroidIndex`] built at publish time plus an int8 per-block
//!   [`QuantizedFactors`] copy, so [`Retrieval::Approx`] scans only the
//!   top `n_probe` clusters' members (optionally at 1 byte/coord) and
//!   rescores the shortlist exactly in FP32 — the paper's
//!   accuracy-for-bandwidth dial applied to serving (see
//!   `docs/APPROXIMATION.md`).
//! * [`shard`] — [`ShardedFactorStore`]: the catalog split into
//!   contiguous item-range shards, scored scatter-gather and merged with
//!   a deterministic tie-break so the result is bit-identical to the
//!   unsharded scorer.
//! * [`registry`] — multi-model serving: a keyed [`ModelRegistry`] of
//!   factor stores sharing one scorer, cache, and observability bundle,
//!   with a deterministic-hash canary [`Router`] ([`CanaryPolicy`]) and
//!   promote/rollback — production A/B arms and staged rollouts without
//!   an engine restart.
//! * [`engine`] — [`ServeEngine`]: micro-batching, per-request model
//!   routing, cold-start fold-in via [`cumf_als::fold_in_batch`], a
//!   `(model, epoch, user)`-keyed lock-striped LRU result [`cache`], and
//!   telemetry counters through [`cumf_telemetry::Recorder`]. Built with
//!   [`ServeEngineBuilder`]; fallible paths return [`ServeError`] instead
//!   of panicking, per request.
//! * [`admission`] — a bounded request queue in front of the engine:
//!   batches close on size or age, overload sheds with a counted
//!   rejection instead of unbounded queueing.
//! * [`metrics`] — NDCG@k, the ranking-quality yardstick used to bound the
//!   FP16 path's approximation error, plus overlap@k for comparing two
//!   rankers.
//! * [`obs`] — request-level observability: stage-decomposed
//!   [`RequestSpan`]s, typed metrics with Prometheus exposition, an
//!   always-on flight recorder, and SLO burn-rate tracking (see
//!   `docs/OBSERVABILITY.md`). PR 9 puts the bundle on the network:
//!   [`ObsServer`] is a zero-dependency HTTP/1.1 exposition server
//!   (`/metrics`, `/healthz`, `/readyz`, `/debug/*`), backed by the typed
//!   [`obs::health`] readiness model and the [`EventJournal`] lifecycle
//!   audit ring.
//! * **Byte accounting** — every resident structure implements
//!   [`cumf_telemetry::MemoryFootprint`], rolled up by
//!   [`engine::ServeEngine::memory_report`] into a tree whose children
//!   provably sum to the total (`serve_mem_bytes` gauges), and the
//!   scorer's analytic scan-byte model flows through
//!   [`BatchTrace`]/[`RequestSpan`] into `serve_scan_bytes_total` and the
//!   admission report's effective GB/s.
//!
//! ## Round-trip: fold a cold user in, then recommend
//!
//! ```
//! use cumf_als::{fold_in_row, SolverKind};
//! use cumf_numeric::dense::DenseMatrix;
//! use cumf_serve::scorer::{top_k_one, ScoreConfig};
//! use cumf_serve::store::ModelSnapshot;
//!
//! // A trained Θ for 4 items in a 2-D latent space: items 0–1 are "genre
//! // A", items 2–3 "genre B".
//! let theta = DenseMatrix::from_vec(4, 2, vec![
//!     1.0, 0.0,
//!     0.9, 0.1,
//!     0.0, 1.0,
//!     0.1, 0.9,
//! ]);
//!
//! // A new user who loved item 0: one regularized solve against Θ.
//! let x_new = fold_in_row(&theta, &[(0, 5.0)], 0.05, &SolverKind::BatchCholesky);
//!
//! // Score them against the catalog.
//! let snapshot = ModelSnapshot::new(0, theta, vec![]);
//! let top = top_k_one(&snapshot, &x_new, 2, &ScoreConfig::default());
//! assert_eq!(top[0].item, 0, "their rated item ranks first");
//! assert_eq!(top[1].item, 1, "the same-genre neighbour is next");
//! ```
//!
//! For the full engine path (batching, cache, cold-start, telemetry) see
//! [`engine::ServeEngine`]; for the closed-loop load generator see
//! `serve_bench` in `cumf-bench`.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod admission;
pub mod ann;
pub mod cache;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod obs;
pub mod query;
pub mod registry;
pub mod scorer;
pub mod shard;
pub mod store;
pub mod topk;

pub use admission::{
    admission_queue, AdmissionConfig, AdmissionQueue, AdmissionReport, AdmissionWorker, Completion,
    SubmitError,
};
pub use ann::{AnnParams, AnnPolicy, CentroidIndex, QuantizedFactors, QUANT_BLOCK_ROWS};
pub use cache::{CacheKey, CacheStats, ResultCache, StripedCache};
pub use engine::{Recommendation, Request, ServeConfig, ServeEngine, ServeEngineBuilder, UserRef};
pub use error::ServeError;
pub use metrics::{dcg_at_k, ndcg_at_k, overlap_at_k};
pub use obs::{
    BatchTrace, EventJournal, EventKind, FlightRecorder, HealthCheck, HealthStatus, HttpConfig,
    JournalRecord, ObsConfig, ObsServer, RequestSpan, ServeMetrics, ServeObs, ShutdownHandle,
    SloConfig, SloReport, SloTracker, StageBreakdown,
};
pub use query::{Endpoint, Explanation, Query};
pub use registry::{canary_unit, CanaryPolicy, ModelId, ModelRegistry, RouteKey, Router};
pub use scorer::{
    explain_one, scan_bytes, score_one, top_k_batch, top_k_batch_stats, top_k_one, QuantMode,
    Retrieval, ScanStats, ScoreConfig,
};
pub use shard::{
    rank_slate_sharded, top_k_batch_sharded, top_k_batch_sharded_timed, Shard, ShardTiming,
    ShardedFactorStore, ShardedSnapshot,
};
pub use store::{FactorStore, ModelSnapshot};
pub use topk::{merge_top_k, naive_top_k, ScoredItem, TopK};
