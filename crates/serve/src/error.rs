//! Typed serving errors.
//!
//! The v1 engine panicked on malformed input (an unknown user id, a
//! published snapshot with the wrong feature dimension). Panics are the
//! wrong failure mode for a serving system: one bad request in a
//! micro-batch must not take down the batch, let alone the process. Every
//! fallible path in the crate now returns [`ServeError`], and
//! [`crate::engine::ServeEngine::recommend_batch`] reports errors
//! *per request* so the rest of the batch is served normally.
//!
//! Each variant carries enough context to answer "which model, what was
//! expected" without a debugger, and [`ServeError::reason`] gives the
//! stable snake_case token used as the `reason` label on the
//! `serve_errors_total` metric (see `docs/OBSERVABILITY.md`).

use crate::registry::ModelId;

/// Why a serving operation failed.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm, so
/// future failure modes are not breaking changes.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request named a model the registry has never seen.
    UnknownModel(ModelId),
    /// The request named a model that has been retired from serving.
    RetiredModel(ModelId),
    /// `register` was called with an id that already exists (live or
    /// retired — retired ids are tombstoned, not recycled).
    DuplicateModel(ModelId),
    /// A [`crate::engine::UserRef::Known`] index is out of range of the
    /// routed model's user-factor matrix.
    UnknownUser {
        /// The requested user row.
        user: u32,
        /// How many users the model knows.
        n_users: usize,
        /// The model the request was routed to.
        model: ModelId,
    },
    /// A snapshot or user-factor matrix disagrees with the model's pinned
    /// feature dimension `f` (set when the model was registered).
    DimensionMismatch {
        /// The model involved (a placeholder id for bare-store publishes).
        model: ModelId,
        /// The feature dimension the model was registered with.
        expected: usize,
        /// The feature dimension of the offending matrix.
        got: usize,
    },
    /// A [`crate::engine::Query::SimilarItems`] (or explain / slate) item
    /// index is out of range of the routed model's item catalog.
    UnknownItem {
        /// The requested item row.
        item: u32,
        /// How many items the model's snapshot holds.
        n_items: usize,
        /// The model the request was routed to.
        model: ModelId,
    },
    /// A [`crate::engine::Query::RankItems`] request carried an empty
    /// candidate slate — there is nothing to rank.
    EmptySlate,
    /// A [`crate::engine::Query::SimilarUsers`] request reached a model
    /// whose user-factor matrix is empty, so there is no user side to
    /// scan.
    NoUserFactors(ModelId),
    /// The operation needs the model to be out of the routing path, but it
    /// is currently the default alias or the canary candidate.
    ModelInUse(ModelId),
    /// `promote` or `rollback` was called with no canary policy in place.
    NoCanary,
    /// An engine cannot be built without at least one registered model.
    NoModels,
}

impl ServeError {
    /// Stable snake_case token for this failure mode — the `reason` label
    /// on the `serve_errors_total` counter.
    pub fn reason(&self) -> &'static str {
        match self {
            ServeError::UnknownModel(_) => "unknown_model",
            ServeError::RetiredModel(_) => "retired_model",
            ServeError::DuplicateModel(_) => "duplicate_model",
            ServeError::UnknownUser { .. } => "unknown_user",
            ServeError::UnknownItem { .. } => "unknown_item",
            ServeError::EmptySlate => "empty_slate",
            ServeError::NoUserFactors(_) => "no_user_factors",
            ServeError::DimensionMismatch { .. } => "dimension_mismatch",
            ServeError::ModelInUse(_) => "model_in_use",
            ServeError::NoCanary => "no_canary",
            ServeError::NoModels => "no_models",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(m) => write!(f, "unknown model {m:?}"),
            ServeError::RetiredModel(m) => write!(f, "model {m:?} is retired"),
            ServeError::DuplicateModel(m) => write!(f, "model {m:?} is already registered"),
            ServeError::UnknownUser {
                user,
                n_users,
                model,
            } => write!(
                f,
                "unknown user {user}; model {model:?} knows {n_users} users"
            ),
            ServeError::UnknownItem {
                item,
                n_items,
                model,
            } => write!(
                f,
                "unknown item {item}; model {model:?} serves {n_items} items"
            ),
            ServeError::EmptySlate => write!(f, "rank-items request carried an empty slate"),
            ServeError::NoUserFactors(m) => write!(
                f,
                "model {m:?} has no user factors to scan for similar-users"
            ),
            ServeError::DimensionMismatch {
                model,
                expected,
                got,
            } => write!(
                f,
                "dimension mismatch for model {model:?}: expected f = {expected}, got {got}"
            ),
            ServeError::ModelInUse(m) => write!(
                f,
                "model {m:?} is the default alias or canary candidate and cannot be retired"
            ),
            ServeError::NoCanary => write!(f, "no canary policy is in place"),
            ServeError::NoModels => write!(f, "an engine needs at least one registered model"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_are_stable_snake_case_tokens() {
        let m = ModelId::from("a");
        for (err, want) in [
            (ServeError::UnknownModel(m.clone()), "unknown_model"),
            (ServeError::RetiredModel(m.clone()), "retired_model"),
            (ServeError::DuplicateModel(m.clone()), "duplicate_model"),
            (
                ServeError::UnknownUser {
                    user: 3,
                    n_users: 2,
                    model: m.clone(),
                },
                "unknown_user",
            ),
            (
                ServeError::UnknownItem {
                    item: 9,
                    n_items: 4,
                    model: m.clone(),
                },
                "unknown_item",
            ),
            (ServeError::EmptySlate, "empty_slate"),
            (ServeError::NoUserFactors(m.clone()), "no_user_factors"),
            (
                ServeError::DimensionMismatch {
                    model: m.clone(),
                    expected: 8,
                    got: 4,
                },
                "dimension_mismatch",
            ),
            (ServeError::ModelInUse(m), "model_in_use"),
            (ServeError::NoCanary, "no_canary"),
            (ServeError::NoModels, "no_models"),
        ] {
            assert_eq!(err.reason(), want);
            assert!(!format!("{err}").is_empty());
        }
    }

    #[test]
    fn display_carries_the_context() {
        let err = ServeError::DimensionMismatch {
            model: ModelId::from("eu-west"),
            expected: 16,
            got: 8,
        };
        let text = format!("{err}");
        assert!(text.contains("eu-west") && text.contains("16") && text.contains('8'));
    }
}
