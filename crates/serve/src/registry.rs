//! The model registry and request router: many models behind one engine.
//!
//! Production recommenders never run a single model — per-region variants,
//! A/B arms, and staged rollouts all serve at once. This module
//! generalizes the v1 "one engine owns one store" design into a keyed
//! registry:
//!
//! * [`ModelId`] — a cheap, cloneable model name (an interned string).
//! * [`ModelRegistry`] — register / publish / retire keyed
//!   [`ShardedFactorStore`]s. All models share one scorer configuration,
//!   one result cache, and one observability bundle (the engine owns
//!   those); the registry owns routing state and per-model factor state.
//! * [`Router`] — resolves each request to a model: an explicit
//!   [`ModelId`] on the request wins, otherwise the *default alias*,
//!   subject to an optional [`CanaryPolicy`] that deterministically sends
//!   a fraction of traffic to a candidate model before promotion.
//! * promote / rollback — [`ModelRegistry::promote`] makes the canary
//!   candidate the new default and clears the policy;
//!   [`ModelRegistry::rollback`] clears the policy so the default takes
//!   100% of traffic again. Both are routing-only operations: no engine
//!   restart, no cache flush (cache keys carry the model slot, so arms
//!   never see each other's entries).
//!
//! ## Canary determinism
//!
//! [`CanaryPolicy`] splits traffic by *user*, not by request: a user's id
//! is hashed (SplitMix64) to a unit-interval coordinate and routed to the
//! candidate iff the coordinate is below the policy's fraction. The same
//! user therefore always lands on the same arm for a fixed policy
//! (consistent experience, valid A/B attribution), and *ramping* the
//! fraction up only ever moves users default → candidate, never back and
//! forth. Cold-start requests carry no stable user id and are hashed by
//! request id instead (a salted hash, so they don't shadow user 0).

use crate::ann::AnnPolicy;
use crate::error::ServeError;
use crate::obs::{EventKind, ModelMetrics, ServeObs};
use crate::shard::{ShardedFactorStore, ShardedSnapshot};
use crate::store::ModelSnapshot;
use cumf_numeric::dense::DenseMatrix;
use cumf_telemetry::{FootprintReport, MemoryFootprint};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A model's name: cheap to clone, hash, and compare — the key of the
/// registry and the routing target carried by requests and responses.
///
/// ```
/// use cumf_serve::registry::ModelId;
///
/// let id = ModelId::from("eu-west/als-f64");
/// assert_eq!(id.as_str(), "eu-west/als-f64");
/// assert_eq!(id, ModelId::from(String::from("eu-west/als-f64")));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(Arc<str>);

impl ModelId {
    /// The model name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for ModelId {
    fn from(s: &str) -> ModelId {
        ModelId(Arc::from(s))
    }
}

impl From<String> for ModelId {
    fn from(s: String) -> ModelId {
        ModelId(Arc::from(s.as_str()))
    }
}

impl From<&ModelId> for ModelId {
    fn from(id: &ModelId) -> ModelId {
        id.clone()
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::fmt::Debug for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", &*self.0)
    }
}

/// SplitMix64: the standard 64-bit finalizer — full avalanche, so
/// consecutive user ids land uniformly on the unit interval.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a routing key to its deterministic coordinate in `[0, 1)`.
///
/// Pure and process-independent (no RNG, no time), so the same user lands
/// on the same canary arm across restarts and across replicas.
pub fn canary_unit(key: u64) -> f64 {
    // Top 53 bits → an exactly representable dyadic rational in [0, 1).
    (splitmix64(key) >> 11) as f64 / (1u64 << 53) as f64
}

/// Salt mixed into request ids when routing cold-start requests, so a
/// cold request with id `u` is routed independently of known user `u`.
const COLD_ROUTE_SALT: u64 = 0xC01D_0000_0000_0000;

/// Canary split: send `fraction` of traffic to `candidate`, the rest to
/// the default alias.
///
/// ```
/// use cumf_serve::registry::CanaryPolicy;
///
/// let p = CanaryPolicy::new("challenger", 0.25);
/// // Deterministic: the same user always gets the same answer.
/// assert_eq!(p.routes_to_candidate(42), p.routes_to_candidate(42));
/// // Ramping up only ever moves users toward the candidate.
/// let wider = CanaryPolicy::new("challenger", 0.75);
/// if p.routes_to_candidate(42) {
///     assert!(wider.routes_to_candidate(42));
/// }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CanaryPolicy {
    /// The model receiving the canary fraction.
    pub candidate: ModelId,
    /// Fraction of traffic routed to the candidate, in `[0, 1]`.
    pub fraction: f64,
}

impl CanaryPolicy {
    /// A policy sending `fraction` (clamped to `[0, 1]`; NaN becomes 0)
    /// of traffic to `candidate`.
    pub fn new(candidate: impl Into<ModelId>, fraction: f64) -> CanaryPolicy {
        let fraction = if fraction.is_nan() {
            0.0
        } else {
            fraction.clamp(0.0, 1.0)
        };
        CanaryPolicy {
            candidate: candidate.into(),
            fraction,
        }
    }

    /// Whether routing key `key` (a user id, or a salted request id for
    /// cold requests) lands on the candidate arm.
    pub fn routes_to_candidate(&self, key: u64) -> bool {
        canary_unit(key) < self.fraction
    }
}

/// How a request identifies itself to the router.
#[derive(Clone, Copy, Debug)]
pub enum RouteKey {
    /// A known user id — the canary split hashes this.
    User(u32),
    /// A cold request's id — salted so it is independent of user ids.
    Cold(u64),
}

impl RouteKey {
    fn hash_key(self) -> u64 {
        match self {
            RouteKey::User(u) => u as u64,
            RouteKey::Cold(id) => id ^ COLD_ROUTE_SALT,
        }
    }
}

/// An immutable snapshot of the routing state, taken once per batch so
/// every request in a batch routes under one consistent policy.
///
/// Pure — resolution never touches the registry's lock — which makes the
/// canary split property-testable in isolation.
#[derive(Clone, Debug)]
pub struct Router {
    default_model: ModelId,
    canary: Option<CanaryPolicy>,
    /// Live (serving) model ids.
    live: Vec<ModelId>,
    /// Retired (tombstoned) model ids.
    retired: Vec<ModelId>,
}

impl Router {
    /// The model a request resolves to: the explicit id when present
    /// (erroring if unknown or retired), otherwise the canary split over
    /// the default alias.
    pub fn resolve(
        &self,
        explicit: Option<&ModelId>,
        key: RouteKey,
    ) -> Result<ModelId, ServeError> {
        if let Some(id) = explicit {
            if self.live.contains(id) {
                return Ok(id.clone());
            }
            if self.retired.contains(id) {
                return Err(ServeError::RetiredModel(id.clone()));
            }
            return Err(ServeError::UnknownModel(id.clone()));
        }
        if let Some(policy) = &self.canary {
            // A force-retired candidate falls through to the default
            // rather than erroring: the canary arm is best-effort.
            if policy.routes_to_candidate(key.hash_key()) && self.live.contains(&policy.candidate) {
                return Ok(policy.candidate.clone());
            }
        }
        if !self.live.contains(&self.default_model) {
            // Reachable only via force_retire of the default alias — the
            // "drained" state the readiness model reports as not-ready.
            return Err(ServeError::RetiredModel(self.default_model.clone()));
        }
        Ok(self.default_model.clone())
    }

    /// The default alias every unaddressed request falls back to.
    pub fn default_model(&self) -> &ModelId {
        &self.default_model
    }

    /// The canary policy in force, if any.
    pub fn canary(&self) -> Option<&CanaryPolicy> {
        self.canary.as_ref()
    }
}

/// One registered model: its factor state, routing identity, and cached
/// per-model metric handles.
#[derive(Debug)]
pub(crate) struct ModelEntry {
    pub(crate) id: ModelId,
    /// Unique small integer, never reused — the `model` component of
    /// cache keys, so arms can never hit each other's entries.
    pub(crate) slot: u32,
    /// Feature dimension pinned at registration; publishes and
    /// user-factor swaps must match it.
    pub(crate) f: usize,
    pub(crate) store: ShardedFactorStore,
    /// `X` for known-user requests, swapped atomically alongside (but
    /// independently of) Θ publishes.
    user_factors: RwLock<Arc<DenseMatrix>>,
    /// Lazily built sharded view of `X` for similar-users scans
    /// ([`crate::engine::Query::SimilarUsers`]); invalidated whenever the
    /// user-factor matrix is swapped.
    user_snapshot: RwLock<Option<Arc<ShardedSnapshot>>>,
    retired: AtomicBool,
    pub(crate) metrics: ModelMetrics,
}

impl ModelEntry {
    /// The current user-factor matrix (an `Arc` clone; hold it for a
    /// whole batch).
    pub(crate) fn user_factors(&self) -> Arc<DenseMatrix> {
        self.user_factors.read().clone()
    }

    /// The user-factor matrix as a sharded snapshot, for `x_u·Xᵀ`
    /// similar-users scans through the same scatter-gather path items
    /// use. Built lazily on first use (rows copied once, off the hot
    /// path for every later batch) and cached until
    /// [`ModelRegistry::set_user_factors`] swaps `X`. The snapshot
    /// carries no priors, FP16 copy, or centroid index: the user side
    /// always scans exactly in FP32.
    pub(crate) fn user_side_snapshot(&self) -> Arc<ShardedSnapshot> {
        if let Some(s) = self.user_snapshot.read().as_ref() {
            return Arc::clone(s);
        }
        let mut slot = self.user_snapshot.write();
        if let Some(s) = slot.as_ref() {
            return Arc::clone(s);
        }
        let x = self.user_factors();
        let sharded = Arc::new(ShardedSnapshot::build(
            ModelSnapshot::new(0, (*x).clone(), vec![]),
            self.store.n_shards(),
        ));
        *slot = Some(Arc::clone(&sharded));
        sharded
    }

    pub(crate) fn is_retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }

    /// This model's resident bytes, rooted at its id: the sharded store
    /// (current epoch plus any superseded epochs still alive behind
    /// `Arc`s) and the user-factor matrix. Retired models keep their
    /// memory until dropped, so they report too.
    pub(crate) fn footprint(&self) -> FootprintReport {
        let uf = self.user_factors();
        let mut children = vec![
            self.store.footprint(),
            FootprintReport::leaf("user_factors", std::mem::size_of_val(uf.as_slice()) as u64),
        ];
        if let Some(s) = self.user_snapshot.read().as_ref() {
            children.push(s.footprint().renamed("user_snapshot"));
        }
        FootprintReport::branch(self.id.as_str(), children)
    }
}

/// The routing table an engine batch works from: the pure [`Router`] plus
/// the entries it may resolve to, captured under one read of the
/// registry's lock.
pub(crate) struct RoutingTable {
    pub(crate) router: Router,
    pub(crate) entries: HashMap<ModelId, Arc<ModelEntry>>,
}

impl RoutingTable {
    /// Resolve a request and return its entry (retired entries are
    /// unreachable: the router already rejected them).
    pub(crate) fn route(
        &self,
        explicit: Option<&ModelId>,
        key: RouteKey,
    ) -> Result<Arc<ModelEntry>, ServeError> {
        let id = self.router.resolve(explicit, key)?;
        Ok(Arc::clone(
            self.entries
                .get(&id)
                .expect("router resolves to a live entry"),
        ))
    }
}

struct Inner {
    models: HashMap<ModelId, Arc<ModelEntry>>,
    default_model: ModelId,
    canary: Option<CanaryPolicy>,
    next_slot: u32,
}

/// Keyed registry of serving models sharing one engine.
///
/// Created by [`crate::engine::ServeEngineBuilder`]; reachable at runtime
/// through [`crate::engine::ServeEngine::registry`]. All mutating
/// operations (`register`, `publish`, `retire`, `set_default`,
/// `set_canary`, `promote`, `rollback`) take `&self` and are safe to call
/// while the engine serves — routing changes apply from the next batch.
///
/// ```
/// use cumf_numeric::dense::DenseMatrix;
/// use cumf_serve::engine::ServeEngine;
/// use cumf_serve::registry::CanaryPolicy;
/// use cumf_serve::store::ModelSnapshot;
///
/// let engine = ServeEngine::builder()
///     .model("champion", DenseMatrix::identity(4), ModelSnapshot::new(0, DenseMatrix::identity(4), vec![]))
///     .build()
///     .unwrap();
/// let reg = engine.registry();
/// reg.register("challenger", DenseMatrix::identity(4), ModelSnapshot::new(0, DenseMatrix::identity(4), vec![])).unwrap();
/// reg.set_canary(CanaryPolicy::new("challenger", 0.1)).unwrap();
/// assert_eq!(reg.promote().unwrap().as_str(), "challenger");
/// assert_eq!(reg.default_model().as_str(), "challenger");
/// ```
pub struct ModelRegistry {
    inner: RwLock<Inner>,
    /// Shard count every model's snapshots are split into.
    shards: usize,
    /// The engine's observability bundle: metric handle factory, the
    /// engine clock, and the lifecycle journal every registry mutation
    /// writes to.
    obs: Arc<ServeObs>,
    /// Soft resident-bytes budget over every model's footprint. A publish
    /// that leaves the registry over it warns and counts
    /// (`serve_mem_budget_exceeded_total`); nothing is evicted.
    memory_budget: Option<u64>,
    /// When set, every registered or published snapshot is completed to
    /// this approximate-retrieval policy: a missing centroid index is
    /// built (k-means at publish time, off the serving path) and — when
    /// the policy asks for int8 — a missing int8 copy is quantized. The
    /// engine derives this from its retrieval mode so `Approx` requests
    /// never fall back to the exact scan just because a publisher forgot
    /// to attach the index.
    ann: Option<AnnPolicy>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("ModelRegistry")
            .field("models", &inner.models.len())
            .field("default_model", &inner.default_model)
            .field("canary", &inner.canary)
            .finish()
    }
}

impl ModelRegistry {
    /// A registry whose first model is `(id, user_factors, snapshot)` —
    /// there is always a default alias, so construction takes the initial
    /// model rather than allowing an empty registry.
    pub(crate) fn bootstrap(
        id: ModelId,
        user_factors: DenseMatrix,
        snapshot: ModelSnapshot,
        shards: usize,
        obs: Arc<ServeObs>,
        memory_budget: Option<u64>,
        ann: Option<AnnPolicy>,
    ) -> Result<ModelRegistry, ServeError> {
        let registry = ModelRegistry {
            inner: RwLock::new(Inner {
                models: HashMap::new(),
                default_model: id.clone(),
                canary: None,
                next_slot: 0,
            }),
            shards,
            obs,
            memory_budget,
            ann,
        };
        registry.register(id, user_factors, snapshot)?;
        Ok(registry)
    }

    /// Append one lifecycle record to the engine's journal at the
    /// current engine time.
    fn journal(&self, model: Option<&ModelId>, kind: EventKind) {
        self.obs
            .journal()
            .record(self.obs.now(), model.cloned(), kind);
    }

    /// Complete `snapshot` to the registry's approximate-retrieval policy:
    /// build the centroid index and/or int8 copy it is missing. A no-op
    /// when no policy is set or the snapshot already carries them (a
    /// publisher's own index wins — it may have tuned the cluster count).
    fn apply_ann_policy(&self, mut snapshot: ModelSnapshot) -> ModelSnapshot {
        if let Some(policy) = self.ann {
            if !snapshot.has_ann() {
                snapshot = snapshot.with_ann(policy.params);
            }
            if policy.int8 && !snapshot.has_int8() {
                snapshot = snapshot.with_int8();
            }
        }
        snapshot
    }

    fn entry_of(inner: &Inner, id: &ModelId) -> Result<Arc<ModelEntry>, ServeError> {
        match inner.models.get(id) {
            Some(e) if e.is_retired() => Err(ServeError::RetiredModel(id.clone())),
            Some(e) => Ok(Arc::clone(e)),
            None => Err(ServeError::UnknownModel(id.clone())),
        }
    }

    /// Register a new model under `id`. Fails with
    /// [`ServeError::DuplicateModel`] when the id exists (live *or*
    /// retired — slots are never recycled) and
    /// [`ServeError::DimensionMismatch`] when `user_factors` and
    /// `snapshot` disagree on `f`.
    pub fn register(
        &self,
        id: impl Into<ModelId>,
        user_factors: DenseMatrix,
        snapshot: ModelSnapshot,
    ) -> Result<(), ServeError> {
        let id = id.into();
        if user_factors.cols() != snapshot.f() {
            return Err(ServeError::DimensionMismatch {
                model: id,
                expected: snapshot.f(),
                got: user_factors.cols(),
            });
        }
        let mut inner = self.inner.write();
        if inner.models.contains_key(&id) {
            return Err(ServeError::DuplicateModel(id));
        }
        let snapshot = self.apply_ann_policy(snapshot);
        let slot = inner.next_slot;
        inner.next_slot += 1;
        let metrics = self.obs.metrics().model(id.as_str());
        metrics.epoch.set(snapshot.epoch as f64);
        let f = snapshot.f();
        let epoch = snapshot.epoch;
        let bytes = snapshot.footprint().total_bytes();
        let entry = Arc::new(ModelEntry {
            id: id.clone(),
            slot,
            f,
            store: ShardedFactorStore::new(snapshot, self.shards),
            user_factors: RwLock::new(Arc::new(user_factors)),
            user_snapshot: RwLock::new(None),
            retired: AtomicBool::new(false),
            metrics,
        });
        inner.models.insert(id.clone(), entry);
        drop(inner);
        self.refresh_memory_gauges();
        // Registration is also the model's first publish: journal both so
        // the audit trail always opens register → publish.
        self.journal(Some(&id), EventKind::ModelRegistered);
        self.journal(Some(&id), EventKind::SnapshotPublished { epoch, bytes });
        Ok(())
    }

    /// Publish a new epoch of `id`'s item factors. The snapshot's `f`
    /// must match the dimension the model was registered with
    /// ([`ServeError::DimensionMismatch`] otherwise — a different `f` is
    /// a different model, register it as one). When an
    /// approximate-retrieval policy is in force, the snapshot's missing
    /// centroid index / int8 copy are built here — publish time, off the
    /// request path. Returns the new epoch.
    pub fn publish(&self, id: &ModelId, snapshot: ModelSnapshot) -> Result<u64, ServeError> {
        let entry = Self::entry_of(&self.inner.read(), id)?;
        if snapshot.f() != entry.f {
            return Err(ServeError::DimensionMismatch {
                model: id.clone(),
                expected: entry.f,
                got: snapshot.f(),
            });
        }
        let snapshot = self.apply_ann_policy(snapshot);
        let bytes = snapshot.footprint().total_bytes();
        let epoch = entry.store.publish(snapshot)?;
        entry.metrics.epoch.set(epoch as f64);
        self.journal(Some(id), EventKind::SnapshotPublished { epoch, bytes });
        let report = self.refresh_memory_gauges();
        if let Some(budget) = self.memory_budget {
            let total = report.total_bytes();
            if total > budget {
                entry.metrics.budget_exceeded.inc();
                self.journal(
                    Some(id),
                    EventKind::MemBudgetExceeded {
                        resident_bytes: total,
                        budget_bytes: budget,
                    },
                );
                let (path, bytes) = report.largest_leaf();
                eprintln!(
                    "serve: memory budget exceeded after publishing {id} epoch {epoch}: \
                     resident {total} B > budget {budget} B (largest component {path}: {bytes} B)"
                );
            }
        }
        Ok(epoch)
    }

    /// Replace `id`'s user-factor matrix (e.g. after retraining `X`
    /// alongside a published Θ). The column count must match the model's
    /// pinned `f`.
    pub fn set_user_factors(
        &self,
        id: &ModelId,
        user_factors: DenseMatrix,
    ) -> Result<(), ServeError> {
        let entry = Self::entry_of(&self.inner.read(), id)?;
        if user_factors.cols() != entry.f {
            return Err(ServeError::DimensionMismatch {
                model: id.clone(),
                expected: entry.f,
                got: user_factors.cols(),
            });
        }
        *entry.user_factors.write() = Arc::new(user_factors);
        // The similar-users view is a copy of the old X: drop it so the
        // next similar-users batch rebuilds from the swapped matrix.
        *entry.user_snapshot.write() = None;
        Ok(())
    }

    /// Retire `id`: it stops serving (requests naming it get
    /// [`ServeError::RetiredModel`]) and its id is tombstoned. The default
    /// alias and the canary candidate cannot be retired
    /// ([`ServeError::ModelInUse`]) — point routing elsewhere first.
    pub fn retire(&self, id: &ModelId) -> Result<(), ServeError> {
        {
            let inner = self.inner.write();
            if inner.default_model == *id
                || inner.canary.as_ref().is_some_and(|c| c.candidate == *id)
            {
                return Err(ServeError::ModelInUse(id.clone()));
            }
            let entry = Self::entry_of(&inner, id)?;
            entry.retired.store(true, Ordering::Release);
        }
        // Retirement stops routing but frees nothing (the entry and its
        // epochs stay resident); refresh so the gauges say so.
        self.refresh_memory_gauges();
        self.journal(Some(id), EventKind::Retired);
        Ok(())
    }

    /// Retire `id` even when it is the default alias or the canary
    /// candidate — the emergency drain verb [`ModelRegistry::retire`]
    /// deliberately refuses to be.
    ///
    /// Force-retiring the canary candidate clears the policy (its
    /// traffic share falls back to the default); force-retiring the
    /// default leaves every unaddressed request failing with
    /// [`ServeError::RetiredModel`] until [`ModelRegistry::set_default`]
    /// points the alias at a live model — exactly the state the
    /// `default_model_live` readiness check reports as not-ready, so a
    /// scraping supervisor sees `/readyz` flip to 503 the moment the
    /// drain lands.
    pub fn force_retire(&self, id: &ModelId) -> Result<(), ServeError> {
        let cleared_canary = {
            let mut inner = self.inner.write();
            let entry = Self::entry_of(&inner, id)?;
            entry.retired.store(true, Ordering::Release);
            if inner.canary.as_ref().is_some_and(|c| c.candidate == *id) {
                inner.canary = None;
                true
            } else {
                false
            }
        };
        self.refresh_memory_gauges();
        self.journal(Some(id), EventKind::Retired);
        if cleared_canary {
            self.journal(Some(id), EventKind::RolledBack);
        }
        Ok(())
    }

    /// Point the default alias at `id` (which must be live).
    pub fn set_default(&self, id: &ModelId) -> Result<(), ServeError> {
        let mut inner = self.inner.write();
        Self::entry_of(&inner, id)?;
        inner.default_model = id.clone();
        Ok(())
    }

    /// Install (or replace) the canary policy. The candidate must be a
    /// live model.
    pub fn set_canary(&self, policy: CanaryPolicy) -> Result<(), ServeError> {
        let (candidate, fraction) = {
            let mut inner = self.inner.write();
            Self::entry_of(&inner, &policy.candidate)?;
            let meta = (policy.candidate.clone(), policy.fraction);
            inner.canary = Some(policy);
            meta
        };
        self.journal(Some(&candidate), EventKind::CanarySet { fraction });
        Ok(())
    }

    /// Promote the canary: the candidate becomes the default alias and
    /// the policy is cleared, so it now takes 100% of unaddressed
    /// traffic. Returns the promoted id; [`ServeError::NoCanary`] when no
    /// policy is in place.
    pub fn promote(&self) -> Result<ModelId, ServeError> {
        let candidate = {
            let mut inner = self.inner.write();
            let candidate = inner.canary.take().ok_or(ServeError::NoCanary)?.candidate;
            inner.default_model = candidate.clone();
            candidate
        };
        self.refresh_memory_gauges();
        self.journal(Some(&candidate), EventKind::Promoted);
        Ok(candidate)
    }

    /// Roll the canary back: the policy is cleared and the default alias
    /// (unchanged) takes 100% of traffic again. The candidate stays
    /// registered — its cache entries are keyed by its own slot, so
    /// nothing it served can ever answer for another model. Returns the
    /// rolled-back candidate id.
    pub fn rollback(&self) -> Result<ModelId, ServeError> {
        let candidate = {
            let mut inner = self.inner.write();
            inner.canary.take().ok_or(ServeError::NoCanary)?.candidate
        };
        self.refresh_memory_gauges();
        self.journal(Some(&candidate), EventKind::RolledBack);
        Ok(candidate)
    }

    /// The current default alias.
    pub fn default_model(&self) -> ModelId {
        self.inner.read().default_model.clone()
    }

    /// The canary policy in force, if any.
    pub fn canary(&self) -> Option<CanaryPolicy> {
        self.inner.read().canary.clone()
    }

    /// A pure snapshot of the routing state (see [`Router`]).
    pub fn router(&self) -> Router {
        let inner = self.inner.read();
        let (mut live, mut retired) = (Vec::new(), Vec::new());
        for (id, entry) in &inner.models {
            if entry.is_retired() {
                retired.push(id.clone());
            } else {
                live.push(id.clone());
            }
        }
        Router {
            default_model: inner.default_model.clone(),
            canary: inner.canary.clone(),
            live,
            retired,
        }
    }

    /// Routing table for one engine batch: router + resolvable entries.
    pub(crate) fn routing_table(&self) -> RoutingTable {
        let router = self.router();
        let inner = self.inner.read();
        RoutingTable {
            router,
            entries: inner
                .models
                .iter()
                .filter(|(_, e)| !e.is_retired())
                .map(|(id, e)| (id.clone(), Arc::clone(e)))
                .collect(),
        }
    }

    /// Live model ids, sorted (for stable reporting).
    pub fn model_ids(&self) -> Vec<ModelId> {
        let inner = self.inner.read();
        let mut ids: Vec<ModelId> = inner
            .models
            .iter()
            .filter(|(_, e)| !e.is_retired())
            .map(|(id, _)| id.clone())
            .collect();
        ids.sort();
        ids
    }

    /// Whether `id` is registered and live.
    pub fn is_live(&self, id: &ModelId) -> bool {
        self.inner
            .read()
            .models
            .get(id)
            .is_some_and(|e| !e.is_retired())
    }

    /// The currently served epoch of `id`.
    pub fn epoch(&self, id: &ModelId) -> Result<u64, ServeError> {
        Ok(Self::entry_of(&self.inner.read(), id)?.store.epoch())
    }

    /// The current sharded snapshot of `id` (an `Arc` clone — hold it for
    /// a whole batch, as with [`ShardedFactorStore::snapshot`]).
    pub fn snapshot(&self, id: &ModelId) -> Result<Arc<ShardedSnapshot>, ServeError> {
        Ok(Self::entry_of(&self.inner.read(), id)?.store.snapshot())
    }

    /// How many users `id` knows (rows of its user-factor matrix).
    pub fn n_users(&self, id: &ModelId) -> Result<usize, ServeError> {
        Ok(Self::entry_of(&self.inner.read(), id)?
            .user_factors()
            .rows())
    }

    /// The registry's cache-key slot for `id` — unique per registered
    /// model, never reused. Exposed for cache introspection and tests.
    pub fn slot(&self, id: &ModelId) -> Result<u32, ServeError> {
        Ok(Self::entry_of(&self.inner.read(), id)?.slot)
    }

    /// Shard count every model's snapshots are split into.
    pub fn n_shards(&self) -> usize {
        self.shards
    }

    /// Entries in stable id order, retired included (they stay resident).
    fn entries_sorted(&self) -> Vec<Arc<ModelEntry>> {
        let inner = self.inner.read();
        let mut entries: Vec<Arc<ModelEntry>> = inner.models.values().cloned().collect();
        entries.sort_by(|a, b| a.id.cmp(&b.id));
        entries
    }

    /// Refresh the `serve_mem_bytes{component=,model=}` gauges from the
    /// registry's current footprint and return the full tree.
    ///
    /// Called automatically on register / publish / retire / promote /
    /// rollback; call it yourself before scraping if byte-perfect gauges
    /// matter between those events. To keep the series set bounded, each
    /// model exports a fixed component set — `model` (total),
    /// `model/store/current`, `model/store/superseded`,
    /// `model/user_factors` — rather than one gauge per epoch; the full
    /// per-epoch, per-shard breakdown lives in the returned
    /// [`FootprintReport`].
    pub fn refresh_memory_gauges(&self) -> FootprintReport {
        fn child_bytes(r: &FootprintReport, name: &str) -> u64 {
            r.children()
                .iter()
                .find(|c| c.name() == name)
                .map_or(0, FootprintReport::total_bytes)
        }
        let entries = self.entries_sorted();
        let mut children = Vec::with_capacity(entries.len());
        for entry in entries {
            let tree = entry.footprint();
            let model = entry.id.as_str();
            let store = tree
                .children()
                .iter()
                .find(|c| c.name() == "store")
                .cloned()
                .unwrap_or_else(|| FootprintReport::leaf("store", 0));
            self.obs
                .metrics()
                .mem_bytes("model", model)
                .set(tree.total_bytes() as f64);
            self.obs
                .metrics()
                .mem_bytes("model/store/current", model)
                .set(child_bytes(&store, "current") as f64);
            self.obs
                .metrics()
                .mem_bytes("model/store/superseded", model)
                .set(child_bytes(&store, "superseded") as f64);
            self.obs
                .metrics()
                .mem_bytes("model/user_factors", model)
                .set(child_bytes(&tree, "user_factors") as f64);
            children.push(tree);
        }
        let report = FootprintReport::branch("registry", children);
        self.obs
            .metrics()
            .mem_bytes("registry", "")
            .set(report.total_bytes() as f64);
        report
    }

    /// The configured soft memory budget, if any.
    pub fn memory_budget(&self) -> Option<u64> {
        self.memory_budget
    }
}

impl MemoryFootprint for ModelRegistry {
    /// Children: one subtree per registered model (retired models
    /// included — they stay resident until dropped), each rooted at the
    /// model's id, in stable id order.
    fn footprint(&self) -> FootprintReport {
        FootprintReport::branch(
            "registry",
            self.entries_sorted()
                .iter()
                .map(|e| e.footprint())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{ObsConfig, ServeObs};

    fn obs() -> Arc<ServeObs> {
        Arc::new(ServeObs::new(ObsConfig::default()))
    }

    fn snap(epoch: u64, n: usize, f: usize) -> ModelSnapshot {
        let mut m = DenseMatrix::zeros(n, f);
        m.fill_with(|| 0.25);
        ModelSnapshot::new(epoch, m, vec![])
    }

    fn registry() -> ModelRegistry {
        registry_on(obs())
    }

    fn registry_on(obs: Arc<ServeObs>) -> ModelRegistry {
        ModelRegistry::bootstrap(
            ModelId::from("champion"),
            DenseMatrix::identity(4),
            snap(0, 6, 4),
            2,
            obs,
            None,
            None,
        )
        .unwrap()
    }

    #[test]
    fn register_publish_retire_lifecycle() {
        let reg = registry();
        let challenger = ModelId::from("challenger");
        reg.register("challenger", DenseMatrix::identity(4), snap(0, 6, 4))
            .unwrap();
        assert_eq!(reg.model_ids().len(), 2);
        assert_eq!(reg.publish(&challenger, snap(5, 8, 4)).unwrap(), 5);
        assert_eq!(reg.epoch(&challenger).unwrap(), 5);
        // Slots are distinct and stable.
        assert_ne!(
            reg.slot(&ModelId::from("champion")).unwrap(),
            reg.slot(&challenger).unwrap()
        );
        reg.retire(&challenger).unwrap();
        assert!(!reg.is_live(&challenger));
        assert_eq!(
            reg.publish(&challenger, snap(6, 8, 4)),
            Err(ServeError::RetiredModel(challenger.clone()))
        );
        // Tombstoned: the id cannot be re-registered.
        assert_eq!(
            reg.register("challenger", DenseMatrix::identity(4), snap(0, 6, 4)),
            Err(ServeError::DuplicateModel(challenger))
        );
    }

    #[test]
    fn dimension_mismatches_are_rejected_everywhere() {
        let reg = registry();
        let champ = ModelId::from("champion");
        // Publish with the wrong f.
        assert_eq!(
            reg.publish(&champ, snap(1, 6, 3)),
            Err(ServeError::DimensionMismatch {
                model: champ.clone(),
                expected: 4,
                got: 3,
            })
        );
        // User factors with the wrong f.
        assert!(matches!(
            reg.set_user_factors(&champ, DenseMatrix::identity(5)),
            Err(ServeError::DimensionMismatch { .. })
        ));
        // Register with internally inconsistent dimensions.
        assert!(matches!(
            reg.register("b", DenseMatrix::identity(3), snap(0, 6, 4)),
            Err(ServeError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn default_and_candidate_cannot_be_retired() {
        let reg = registry();
        let champ = ModelId::from("champion");
        assert_eq!(
            reg.retire(&champ),
            Err(ServeError::ModelInUse(champ.clone()))
        );
        reg.register("challenger", DenseMatrix::identity(4), snap(0, 6, 4))
            .unwrap();
        let challenger = ModelId::from("challenger");
        reg.set_canary(CanaryPolicy::new("challenger", 0.5))
            .unwrap();
        assert_eq!(
            reg.retire(&challenger),
            Err(ServeError::ModelInUse(challenger.clone()))
        );
        // After rollback the candidate is retirable.
        assert_eq!(reg.rollback().unwrap(), challenger);
        reg.retire(&challenger).unwrap();
    }

    #[test]
    fn promote_swaps_the_default_and_clears_the_policy() {
        let reg = registry();
        reg.register("challenger", DenseMatrix::identity(4), snap(0, 6, 4))
            .unwrap();
        assert_eq!(reg.promote(), Err(ServeError::NoCanary));
        reg.set_canary(CanaryPolicy::new("challenger", 0.1))
            .unwrap();
        assert_eq!(reg.promote().unwrap().as_str(), "challenger");
        assert_eq!(reg.default_model().as_str(), "challenger");
        assert!(reg.canary().is_none());
        // The old champion is now retirable.
        reg.retire(&ModelId::from("champion")).unwrap();
    }

    #[test]
    fn canary_to_unknown_model_is_rejected() {
        let reg = registry();
        assert_eq!(
            reg.set_canary(CanaryPolicy::new("ghost", 0.5)),
            Err(ServeError::UnknownModel(ModelId::from("ghost")))
        );
        assert_eq!(
            reg.set_default(&ModelId::from("ghost")),
            Err(ServeError::UnknownModel(ModelId::from("ghost")))
        );
    }

    #[test]
    fn router_resolves_explicit_default_and_canary() {
        let reg = registry();
        reg.register("challenger", DenseMatrix::identity(4), snap(0, 6, 4))
            .unwrap();
        reg.set_canary(CanaryPolicy::new("challenger", 1.0))
            .unwrap();
        let router = reg.router();
        // fraction = 1.0: every unaddressed request hits the candidate.
        for u in 0..50 {
            assert_eq!(
                router.resolve(None, RouteKey::User(u)).unwrap().as_str(),
                "challenger"
            );
        }
        // Explicit ids bypass the canary.
        let champ = ModelId::from("champion");
        assert_eq!(
            router.resolve(Some(&champ), RouteKey::User(0)).unwrap(),
            champ
        );
        assert_eq!(
            router.resolve(Some(&ModelId::from("ghost")), RouteKey::User(0)),
            Err(ServeError::UnknownModel(ModelId::from("ghost")))
        );
    }

    #[test]
    fn router_is_a_snapshot_not_a_live_view() {
        let reg = registry();
        reg.register("challenger", DenseMatrix::identity(4), snap(0, 6, 4))
            .unwrap();
        reg.set_canary(CanaryPolicy::new("challenger", 1.0))
            .unwrap();
        let before = reg.router();
        reg.rollback().unwrap();
        // The old snapshot still routes to the candidate; a fresh one
        // does not.
        assert_eq!(
            before.resolve(None, RouteKey::User(1)).unwrap().as_str(),
            "challenger"
        );
        assert_eq!(
            reg.router()
                .resolve(None, RouteKey::User(1))
                .unwrap()
                .as_str(),
            "champion"
        );
    }

    #[test]
    fn cold_requests_route_independently_of_user_ids() {
        // A cold request with id u must not be forced onto the same arm
        // as known user u: the salt decorrelates them. With 512 keys and
        // a fair coin-ish fraction, at least one pair must disagree.
        let policy = CanaryPolicy::new("c", 0.5);
        let disagree = (0..512u64)
            .filter(|&k| {
                policy.routes_to_candidate(RouteKey::User(k as u32).hash_key())
                    != policy.routes_to_candidate(RouteKey::Cold(k).hash_key())
            })
            .count();
        assert!(disagree > 0, "cold routing shadows user routing");
    }

    #[test]
    fn registry_footprint_sums_models_and_tracks_superseded_epochs() {
        let reg = registry();
        reg.register("challenger", DenseMatrix::identity(4), snap(0, 6, 4))
            .unwrap();
        let report = reg.footprint();
        assert!(report.verify(), "children must sum to totals");
        assert_eq!(report.children().len(), 2);
        let names: Vec<&str> = report.children().iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["challenger", "champion"], "stable id order");
        // identity(4) user factors: 16 f32s.
        let champ = &report.children()[1];
        let uf = champ
            .children()
            .iter()
            .find(|c| c.name() == "user_factors")
            .unwrap();
        assert_eq!(uf.total_bytes(), 16 * 4);

        // Hold the pre-publish snapshot across a publish: the superseded
        // epoch stays resident and the footprint says so.
        let champ_id = ModelId::from("champion");
        let held = reg.snapshot(&champ_id).unwrap();
        let before = reg.footprint().total_bytes();
        reg.publish(&champ_id, snap(1, 6, 4)).unwrap();
        let with_held = reg.footprint().total_bytes();
        assert!(
            with_held > before,
            "superseded epoch behind a live Arc must add bytes"
        );
        drop(held);
        assert_eq!(
            reg.footprint().total_bytes(),
            before,
            "dropping the last Arc prunes the superseded epoch"
        );
    }

    #[test]
    fn memory_gauges_refresh_on_publish() {
        let o = obs();
        let reg = registry_on(Arc::clone(&o));
        let m = o.metrics().clone();
        let total = reg.footprint().total_bytes() as f64;
        assert_eq!(m.mem_bytes("registry", "").get(), total);
        assert_eq!(m.mem_bytes("model", "champion").get(), total);
        reg.publish(&ModelId::from("champion"), snap(1, 12, 4))
            .unwrap();
        let grown = reg.footprint().total_bytes() as f64;
        assert!(grown > total);
        assert_eq!(m.mem_bytes("registry", "").get(), grown);
        assert_eq!(
            m.mem_bytes("model/store/superseded", "champion").get(),
            0.0,
            "no Arc held: the old epoch died at publish"
        );
    }

    #[test]
    fn publish_over_budget_warns_and_counts() {
        let o = obs();
        let reg = ModelRegistry::bootstrap(
            ModelId::from("champion"),
            DenseMatrix::identity(4),
            snap(0, 6, 4),
            2,
            Arc::clone(&o),
            Some(1), // 1 byte: any publish exceeds
            None,
        )
        .unwrap();
        let m = o.metrics().clone();
        assert_eq!(reg.memory_budget(), Some(1));
        let counter = m.model("champion").budget_exceeded;
        assert_eq!(counter.get(), 0, "registration alone does not count");
        reg.publish(&ModelId::from("champion"), snap(1, 6, 4))
            .unwrap();
        assert_eq!(counter.get(), 1);
        reg.publish(&ModelId::from("champion"), snap(2, 6, 4))
            .unwrap();
        assert_eq!(counter.get(), 2, "warn-only: publishes keep landing");
        // Each breach is journaled with the offending byte counts.
        let breaches: Vec<_> = o
            .journal()
            .records()
            .into_iter()
            .filter(|r| matches!(r.kind, EventKind::MemBudgetExceeded { .. }))
            .collect();
        assert_eq!(breaches.len(), 2);
        if let EventKind::MemBudgetExceeded {
            resident_bytes,
            budget_bytes,
        } = breaches[0].kind
        {
            assert_eq!(budget_bytes, 1);
            assert!(resident_bytes > 1);
        }
    }

    #[test]
    fn ann_policy_completes_registered_and_published_snapshots() {
        use crate::ann::{AnnParams, AnnPolicy};
        let policy = AnnPolicy {
            params: AnnParams {
                k_clusters: 3,
                ..AnnParams::default()
            },
            int8: true,
        };
        let reg = ModelRegistry::bootstrap(
            ModelId::from("champion"),
            DenseMatrix::identity(4),
            snap(0, 6, 4),
            1,
            obs(),
            None,
            Some(policy),
        )
        .unwrap();
        let champ = ModelId::from("champion");
        // Registration attached both sidecars…
        let held = reg.snapshot(&champ).unwrap();
        assert!(held.full().has_ann() && held.full().has_int8());
        assert_eq!(held.full().ann().unwrap().k_clusters(), 3);
        // …and a bare published snapshot gets them too, at publish time.
        reg.publish(&champ, snap(1, 8, 4)).unwrap();
        let next = reg.snapshot(&champ).unwrap();
        assert!(next.full().has_ann() && next.full().has_int8());
        // A publisher-supplied index is kept, not rebuilt.
        let tuned = snap(2, 8, 4).with_ann(AnnParams {
            k_clusters: 5,
            ..AnnParams::default()
        });
        reg.publish(&champ, tuned).unwrap();
        let kept = reg.snapshot(&champ).unwrap();
        assert_eq!(kept.full().ann().unwrap().k_clusters(), 5);
    }

    #[test]
    fn lifecycle_journal_replays_in_order_with_monotone_timestamps() {
        let o = obs();
        let reg = registry_on(Arc::clone(&o));
        reg.register("challenger", DenseMatrix::identity(4), snap(0, 6, 4))
            .unwrap();
        reg.publish(&ModelId::from("challenger"), snap(1, 8, 4))
            .unwrap();
        reg.set_canary(CanaryPolicy::new("challenger", 0.25))
            .unwrap();
        reg.promote().unwrap();
        reg.set_canary(CanaryPolicy::new("champion", 0.5)).unwrap();
        reg.rollback().unwrap();
        reg.retire(&ModelId::from("champion")).unwrap();
        let recs = o.journal().records();
        let kinds: Vec<_> = recs.iter().map(|r| r.kind.name()).collect();
        assert_eq!(
            kinds,
            vec![
                "ModelRegistered",   // champion (bootstrap)
                "SnapshotPublished", // champion epoch 0
                "ModelRegistered",   // challenger
                "SnapshotPublished", // challenger epoch 0
                "SnapshotPublished", // challenger epoch 1
                "CanarySet",
                "Promoted",
                "CanarySet",
                "RolledBack",
                "Retired",
            ]
        );
        assert!(recs.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(recs.windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(recs[6].model.as_ref().unwrap().as_str(), "challenger");
        // Payloads ride along: the challenger's epoch-1 publish.
        assert!(matches!(
            recs[4].kind,
            EventKind::SnapshotPublished { epoch: 1, bytes } if bytes > 0
        ));
    }

    #[test]
    fn user_side_snapshot_is_cached_and_invalidated_on_swap() {
        let reg = registry();
        let champ = ModelId::from("champion");
        let entry = ModelRegistry::entry_of(&reg.inner.read(), &champ).unwrap();
        let first = entry.user_side_snapshot();
        // identity(4): 4 user rows, sharded at the store's count, exact
        // FP32 only.
        assert_eq!(first.n_items(), 4);
        assert_eq!(first.n_shards(), entry.store.n_shards());
        assert!(!first.full().has_fp16() && !first.full().has_ann());
        assert!(
            Arc::ptr_eq(&first, &entry.user_side_snapshot()),
            "second call must reuse the cached view"
        );
        // The cached copy is honest resident memory.
        let uf_side = entry
            .footprint()
            .children()
            .iter()
            .any(|c| c.name() == "user_snapshot");
        assert!(uf_side, "cached view must appear in the footprint");
        // Swapping X drops the view; the next call rebuilds from the new
        // matrix.
        reg.set_user_factors(&champ, DenseMatrix::zeros(7, 4))
            .unwrap();
        let rebuilt = entry.user_side_snapshot();
        assert!(!Arc::ptr_eq(&first, &rebuilt));
        assert_eq!(rebuilt.n_items(), 7);
    }

    #[test]
    fn force_retire_bypasses_the_in_use_guard() {
        let reg = registry();
        let champ = ModelId::from("champion");
        assert_eq!(
            reg.retire(&champ),
            Err(ServeError::ModelInUse(champ.clone()))
        );
        reg.force_retire(&champ).unwrap();
        assert!(!reg.is_live(&champ));
        // The drained default now fails resolution instead of panicking.
        assert_eq!(
            reg.router().resolve(None, RouteKey::User(7)),
            Err(ServeError::RetiredModel(champ))
        );
    }

    #[test]
    fn force_retiring_the_candidate_clears_the_canary() {
        let reg = registry();
        reg.register("challenger", DenseMatrix::identity(4), snap(0, 6, 4))
            .unwrap();
        reg.set_canary(CanaryPolicy::new("challenger", 1.0))
            .unwrap();
        reg.force_retire(&ModelId::from("challenger")).unwrap();
        assert!(reg.canary().is_none(), "policy must not outlive its arm");
        // All traffic falls back to the (live) default.
        assert_eq!(
            reg.router()
                .resolve(None, RouteKey::User(1))
                .unwrap()
                .as_str(),
            "champion"
        );
    }

    #[test]
    fn stale_router_snapshot_falls_through_a_dead_candidate() {
        let reg = registry();
        reg.register("challenger", DenseMatrix::identity(4), snap(0, 6, 4))
            .unwrap();
        reg.set_canary(CanaryPolicy::new("challenger", 1.0))
            .unwrap();
        // Build a router that still carries the policy, but whose live
        // set lacks the candidate (the race a batch can observe).
        let mut router = reg.router();
        router.live.retain(|id| id.as_str() != "challenger");
        assert_eq!(
            router.resolve(None, RouteKey::User(3)).unwrap().as_str(),
            "champion",
            "dead canary arm must fall through, not panic"
        );
    }

    #[test]
    fn canary_fraction_edge_cases() {
        let never = CanaryPolicy::new("c", 0.0);
        let always = CanaryPolicy::new("c", 1.0);
        for u in 0..1000 {
            assert!(!never.routes_to_candidate(u));
            assert!(always.routes_to_candidate(u));
        }
        // NaN and out-of-range fractions are clamped.
        assert_eq!(CanaryPolicy::new("c", f64::NAN).fraction, 0.0);
        assert_eq!(CanaryPolicy::new("c", 7.0).fraction, 1.0);
        assert_eq!(CanaryPolicy::new("c", -1.0).fraction, 0.0);
    }
}
