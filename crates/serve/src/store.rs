//! The factor store: immutable model snapshots behind an atomic swap.
//!
//! Serving reads factors on every request while a background trainer wants
//! to publish a new epoch every few minutes. The classic lock-free-reader
//! answer (arc-swap, RCU) is an `Arc` per snapshot swapped under a brief
//! lock: readers clone the `Arc` (nanoseconds, never blocked by a publish
//! in progress), in-flight batches keep scoring the epoch they started
//! with, and the old snapshot is dropped when its last reader finishes.

use crate::ann::{AnnParams, CentroidIndex, QuantizedFactors};
use crate::error::ServeError;
use crate::registry::ModelId;
use cumf_numeric::dense::DenseMatrix;
use cumf_numeric::f16::{narrow_slice, widen_slice, F16};
use cumf_telemetry::{FootprintReport, MemoryFootprint};
use parking_lot::RwLock;
use std::sync::Arc;

/// Placeholder model id carried by [`ServeError::DimensionMismatch`] when
/// a bare store (not registered under a [`crate::registry::ModelRegistry`])
/// rejects a publish.
pub(crate) const UNREGISTERED: &str = "(unregistered)";

/// One immutable published model epoch: item factors (optionally also in
/// FP16), per-item popularity priors, and the epoch number.
///
/// ```
/// use cumf_numeric::dense::DenseMatrix;
/// use cumf_serve::store::ModelSnapshot;
///
/// let theta = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
/// let snap = ModelSnapshot::new(7, theta, vec![0.1, 0.2]).with_fp16();
/// assert_eq!(snap.epoch, 7);
/// assert_eq!(snap.n_items(), 2);
/// assert!(snap.has_fp16());
/// ```
#[derive(Clone, Debug)]
pub struct ModelSnapshot {
    /// Monotonic epoch number; cache keys embed it so entries from an old
    /// model can never answer for a new one.
    pub epoch: u64,
    /// Item factors `Θ`, one `f`-long row per item.
    item_factors: DenseMatrix,
    /// The same factors narrowed to binary16 (row-major, same layout),
    /// populated by [`ModelSnapshot::with_fp16`]. Reading these halves
    /// scoring bandwidth exactly as the paper's FP16 Gram storage halves
    /// solver bandwidth.
    item_factors_f16: Option<Vec<F16>>,
    /// Per-item additive prior (e.g. log-popularity), added to every score;
    /// empty means no prior.
    popularity: Vec<f32>,
    /// K-means centroid index over the item factors, populated by
    /// [`ModelSnapshot::with_ann`]. Enables the two-stage approximate
    /// retrieval path ([`crate::scorer::Retrieval::Approx`]).
    ann: Option<CentroidIndex>,
    /// Int8 per-block-scale copy of the factors, populated by
    /// [`ModelSnapshot::with_int8`] — the shortlist-scan format of the
    /// approximate path (a quarter of the FP32 scan bytes).
    int8: Option<QuantizedFactors>,
}

impl ModelSnapshot {
    /// A snapshot of `item_factors` with additive `popularity` priors
    /// (pass an empty vector for none; otherwise one entry per item).
    pub fn new(epoch: u64, item_factors: DenseMatrix, popularity: Vec<f32>) -> ModelSnapshot {
        assert!(
            popularity.is_empty() || popularity.len() == item_factors.rows(),
            "popularity prior length {} != item count {}",
            popularity.len(),
            item_factors.rows()
        );
        ModelSnapshot {
            epoch,
            item_factors,
            item_factors_f16: None,
            popularity,
            ann: None,
            int8: None,
        }
    }

    /// Attach an FP16 copy of the factors, enabling the quantized scoring
    /// path (builder-style). Costs one narrowing pass now; the FP32 master
    /// stays available (fold-in always solves against it).
    pub fn with_fp16(mut self) -> ModelSnapshot {
        let src = self.item_factors.as_slice();
        let mut q = vec![F16::ZERO; src.len()];
        narrow_slice(src, &mut q);
        self.item_factors_f16 = Some(q);
        self
    }

    /// Build and attach a [`CentroidIndex`] over the item factors
    /// (builder-style) — the publish-time half of two-stage approximate
    /// retrieval. Costs one seeded k-means pass now; requests probe the
    /// index instead of scanning the full catalog when the scorer runs in
    /// [`crate::scorer::Retrieval::Approx`] mode.
    pub fn with_ann(mut self, params: AnnParams) -> ModelSnapshot {
        self.ann = Some(CentroidIndex::build(&self.item_factors, params));
        self
    }

    /// Build and attach an int8 per-block-scale copy of the factors
    /// (builder-style), the shortlist-scan format of the approximate
    /// path. The FP32 master stays available — final shortlists are
    /// always rescored against it.
    pub fn with_int8(mut self) -> ModelSnapshot {
        self.int8 = Some(QuantizedFactors::build(&self.item_factors));
        self
    }

    /// Number of items (rows of `Θ`).
    pub fn n_items(&self) -> usize {
        self.item_factors.rows()
    }

    /// Feature dimension `f`.
    pub fn f(&self) -> usize {
        self.item_factors.cols()
    }

    /// Whether the FP16 factor copy is present.
    pub fn has_fp16(&self) -> bool {
        self.item_factors_f16.is_some()
    }

    /// Whether a centroid index is present.
    pub fn has_ann(&self) -> bool {
        self.ann.is_some()
    }

    /// Whether the int8 factor copy is present.
    pub fn has_int8(&self) -> bool {
        self.int8.is_some()
    }

    /// The centroid index, when [`ModelSnapshot::with_ann`] built one.
    pub fn ann(&self) -> Option<&CentroidIndex> {
        self.ann.as_ref()
    }

    /// The int8 factor copy, when [`ModelSnapshot::with_int8`] built one.
    pub fn int8(&self) -> Option<&QuantizedFactors> {
        self.int8.as_ref()
    }

    /// The FP32 item-factor matrix.
    pub fn item_factors(&self) -> &DenseMatrix {
        &self.item_factors
    }

    /// The per-item popularity priors (empty when none were attached).
    pub fn popularity(&self) -> &[f32] {
        &self.popularity
    }

    /// Borrow item `v`'s FP32 factor row directly — no scratch argument,
    /// no block arithmetic. The single-row accessor the approximate
    /// member scan and exact rescore use per candidate.
    #[inline]
    pub fn item_row(&self, v: usize) -> &[f32] {
        let f = self.f();
        &self.item_factors.as_slice()[v * f..(v + 1) * f]
    }

    /// The FP16 factor copy as one flat row-major slice, when
    /// [`ModelSnapshot::with_fp16`] attached one. The fused-decode scorer
    /// slices Θ-blocks straight out of this — the widen happens inside
    /// the kernel loop, never into a scratch buffer.
    #[inline]
    pub fn f16_factors(&self) -> Option<&[F16]> {
        self.item_factors_f16.as_deref()
    }

    /// Additive prior for `item` (0 when no priors were attached).
    #[inline]
    pub fn prior(&self, item: usize) -> f32 {
        if self.popularity.is_empty() {
            0.0
        } else {
            self.popularity[item]
        }
    }

    /// Materialize item rows `[start, start+len)` as `f32` into `scratch`
    /// and return the filled slice, reading the FP16 copy when `fp16` is
    /// set (and present). The FP32 path borrows directly from the matrix —
    /// no copy — so `scratch` is only written on the quantized path.
    pub fn block_rows<'a>(
        &'a self,
        start: usize,
        len: usize,
        fp16: bool,
        scratch: &'a mut [f32],
    ) -> &'a [f32] {
        let f = self.f();
        debug_assert!(start + len <= self.n_items());
        match (&self.item_factors_f16, fp16) {
            (Some(q), true) => {
                let dst = &mut scratch[..len * f];
                widen_slice(&q[start * f..(start + len) * f], dst);
                dst
            }
            _ => {
                let all = self.item_factors.as_slice();
                &all[start * f..(start + len) * f]
            }
        }
    }
}

impl MemoryFootprint for ModelSnapshot {
    /// Children: `fp32` (the master `Θ` matrix), `fp16` (the narrowed
    /// copy, present only after [`ModelSnapshot::with_fp16`]),
    /// `centroids` (after [`ModelSnapshot::with_ann`]), `int8` (after
    /// [`ModelSnapshot::with_int8`]), and `priors`. Exact payload bytes —
    /// container headers are not counted.
    fn footprint(&self) -> FootprintReport {
        let mut children = vec![FootprintReport::leaf(
            "fp32",
            std::mem::size_of_val(self.item_factors.as_slice()) as u64,
        )];
        if let Some(q) = &self.item_factors_f16 {
            children.push(FootprintReport::leaf(
                "fp16",
                (q.len() * std::mem::size_of::<F16>()) as u64,
            ));
        }
        if let Some(idx) = &self.ann {
            children.push(FootprintReport::leaf("centroids", idx.bytes()));
        }
        if let Some(q) = &self.int8 {
            children.push(FootprintReport::leaf("int8", q.bytes()));
        }
        children.push(FootprintReport::leaf(
            "priors",
            (self.popularity.len() * std::mem::size_of::<f32>()) as u64,
        ));
        FootprintReport::branch("snapshot", children)
    }
}

/// Snapshot-swapped holder of the current [`ModelSnapshot`].
///
/// ```
/// use cumf_numeric::dense::DenseMatrix;
/// use cumf_serve::store::{FactorStore, ModelSnapshot};
///
/// let store = FactorStore::new(ModelSnapshot::new(0, DenseMatrix::identity(3), vec![]));
/// let reader = store.snapshot(); // epoch 0, held across a batch
/// store.publish(ModelSnapshot::new(1, DenseMatrix::identity(3), vec![])).unwrap();
/// assert_eq!(reader.epoch, 0);           // in-flight batch is unaffected
/// assert_eq!(store.snapshot().epoch, 1); // new requests see the new epoch
/// // A snapshot with a different feature dimension is a different model:
/// assert!(store.publish(ModelSnapshot::new(2, DenseMatrix::identity(4), vec![])).is_err());
/// ```
#[derive(Debug)]
pub struct FactorStore {
    current: RwLock<Arc<ModelSnapshot>>,
}

impl FactorStore {
    /// A store initially serving `snapshot`.
    pub fn new(snapshot: ModelSnapshot) -> FactorStore {
        FactorStore {
            current: RwLock::new(Arc::new(snapshot)),
        }
    }

    /// The current snapshot. Cheap (`Arc` clone under a read lock) and
    /// never blocked for the duration of a publish — hold the returned
    /// `Arc` for a whole batch so the batch scores one consistent epoch.
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        self.current.read().clone()
    }

    /// Atomically replace the served snapshot; returns the new epoch.
    /// In-flight readers keep their old `Arc`; it is freed when the last
    /// of them drops it.
    ///
    /// The snapshot's feature dimension must match the one currently
    /// served ([`ServeError::DimensionMismatch`] otherwise): every scorer
    /// and user-factor matrix downstream is sized for the live `f`, so a
    /// different `f` is a different model, not a new epoch.
    pub fn publish(&self, snapshot: ModelSnapshot) -> Result<u64, ServeError> {
        let mut current = self.current.write();
        if snapshot.f() != current.f() {
            return Err(ServeError::DimensionMismatch {
                model: ModelId::from(UNREGISTERED),
                expected: current.f(),
                got: snapshot.f(),
            });
        }
        let epoch = snapshot.epoch;
        *current = Arc::new(snapshot);
        Ok(epoch)
    }

    /// Epoch of the currently served snapshot.
    pub fn epoch(&self) -> u64 {
        self.current.read().epoch
    }
}

impl MemoryFootprint for FactorStore {
    /// The currently served snapshot, relabelled `current`.
    fn footprint(&self) -> FootprintReport {
        FootprintReport::branch(
            "factor_store",
            vec![self.snapshot().footprint().renamed("current")],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64, n: usize, f: usize) -> ModelSnapshot {
        let mut m = DenseMatrix::zeros(n, f);
        for i in 0..n {
            for j in 0..f {
                m.set(i, j, (i * f + j) as f32 * 0.1);
            }
        }
        ModelSnapshot::new(epoch, m, vec![])
    }

    #[test]
    fn publish_swaps_epoch_without_touching_readers() {
        let store = FactorStore::new(snap(1, 4, 3));
        let held = store.snapshot();
        assert_eq!(store.publish(snap(2, 4, 3)), Ok(2));
        assert_eq!(held.epoch, 1);
        assert_eq!(store.epoch(), 2);
        assert_eq!(store.snapshot().epoch, 2);
    }

    #[test]
    fn publish_rejects_a_dimension_mismatch() {
        // The serving scorers are sized for the live f; a snapshot with a
        // different f used to be accepted silently and corrupt the next
        // batch. It is now rejected and the served snapshot is untouched.
        let store = FactorStore::new(snap(1, 4, 3));
        let err = store.publish(snap(2, 4, 5)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::DimensionMismatch {
                expected: 3,
                got: 5,
                ..
            }
        ));
        assert_eq!(err.reason(), "dimension_mismatch");
        assert_eq!(store.epoch(), 1, "rejected publish must not swap");
        // Item-count changes (catalog growth) are still fine.
        assert_eq!(store.publish(snap(2, 9, 3)), Ok(2));
    }

    #[test]
    fn fp16_block_read_is_close_to_fp32() {
        let s = snap(0, 8, 4).with_fp16();
        let mut scratch = vec![0.0f32; 8 * 4];
        let exact: Vec<f32> = s.block_rows(2, 3, false, &mut scratch).to_vec();
        let quant = s.block_rows(2, 3, true, &mut scratch);
        assert_eq!(quant.len(), exact.len());
        for (q, e) in quant.iter().zip(&exact) {
            // binary16 unit roundoff is 2⁻¹¹; values here are ≤ 3.1.
            assert!((q - e).abs() <= e.abs() * 1e-3 + 1e-6, "{q} vs {e}");
        }
    }

    #[test]
    fn fp16_flag_without_copy_falls_back_to_fp32() {
        let s = snap(0, 4, 2);
        let mut scratch = vec![0.0f32; 8];
        let rows = s.block_rows(0, 2, true, &mut scratch);
        assert_eq!(rows, &s.item_factors().as_slice()[..4]);
    }

    #[test]
    fn priors_default_to_zero() {
        let s = snap(0, 3, 2);
        assert_eq!(s.prior(2), 0.0);
        let with = ModelSnapshot::new(0, DenseMatrix::identity(2), vec![0.5, -0.5]);
        assert_eq!(with.prior(0), 0.5);
        assert_eq!(with.prior(1), -0.5);
    }

    #[test]
    #[should_panic(expected = "popularity prior length")]
    fn wrong_prior_length_rejected() {
        let _ = ModelSnapshot::new(0, DenseMatrix::identity(3), vec![1.0]);
    }

    #[test]
    fn fp16_footprint_is_half_the_fp32_copy() {
        let plain = snap(0, 64, 16);
        let r = plain.footprint();
        assert!(r.verify());
        let find = |r: &cumf_telemetry::FootprintReport, name: &str| {
            r.children()
                .iter()
                .find(|c| c.name() == name)
                .map(|c| c.total_bytes())
        };
        assert_eq!(find(&r, "fp32"), Some(64 * 16 * 4));
        assert_eq!(find(&r, "fp16"), None, "no FP16 copy, no FP16 component");

        let quant = snap(0, 64, 16).with_fp16();
        let r = quant.footprint();
        assert!(r.verify());
        let fp32 = find(&r, "fp32").unwrap();
        let fp16 = find(&r, "fp16").unwrap();
        assert_eq!(fp16 * 2, fp32, "binary16 copy is exactly half the master");
        assert_eq!(r.total_bytes(), fp32 + fp16);
    }

    #[test]
    fn ann_and_int8_footprints_appear_when_attached() {
        let s = snap(0, 64, 8)
            .with_ann(crate::ann::AnnParams {
                k_clusters: 4,
                ..crate::ann::AnnParams::default()
            })
            .with_int8();
        assert!(s.has_ann() && s.has_int8());
        let r = s.footprint();
        assert!(r.verify());
        let find = |name: &str| {
            r.children()
                .iter()
                .find(|c| c.name() == name)
                .map(|c| c.total_bytes())
        };
        assert_eq!(find("centroids"), Some(s.ann().unwrap().bytes()));
        assert_eq!(find("int8"), Some(s.int8().unwrap().bytes()));
        // int8 weights are a quarter of the fp32 payload (plus scales).
        assert_eq!(find("int8").unwrap(), 64 * 8 + 2 * 4);
        assert_eq!(find("fp32").unwrap(), 64 * 8 * 4);
        // A plain snapshot carries neither component.
        let plain = snap(0, 64, 8).footprint();
        assert!(plain.children().iter().all(|c| c.name() != "centroids"));
        assert!(plain.children().iter().all(|c| c.name() != "int8"));
    }

    #[test]
    fn store_footprint_tracks_the_published_snapshot() {
        let store = FactorStore::new(snap(0, 8, 4));
        let before = store.footprint().total_bytes();
        store.publish(snap(1, 16, 4)).unwrap();
        let after = store.footprint();
        assert!(after.verify());
        assert_eq!(after.total_bytes(), 2 * before);
        assert_eq!(after.children()[0].name(), "current");
    }
}
