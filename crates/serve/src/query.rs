//! The query abstraction: what a serving request asks *for*.
//!
//! The v2 engine answered exactly one question — user → top-k items. But
//! every matrix-factorization deployment grows the same endpoint family:
//! item → similar items ("customers also bought", the cacheable
//! high-QPS workload), user → similar users, rank-this-slate (the
//! ad/feed-ranking shape), and explain-this-score. All of them are still
//! a `q·Θᵀ` (or `q·Xᵀ`) scan — only the *query vector*, the *target
//! matrix*, and the *candidate set* differ — so the paper's
//! memory-bandwidth framing applies to each one unchanged.
//!
//! [`Query`] names the five shapes. The engine resolves each to a
//! (query vector, target matrix, candidate set) triple and routes the
//! scan through the same sharded scorer:
//!
//! | query | vector | target | candidates |
//! |---|---|---|---|
//! | [`Query::User`] | `x_u` (stored or folded-in) | Θ | full catalog |
//! | [`Query::SimilarItems`] | `θ_v` | Θ | catalog minus `v` |
//! | [`Query::SimilarUsers`] | `x_u` | X | users minus `u` |
//! | [`Query::RankItems`] | `x_u` | Θ rows of the slate | the slate |
//! | [`Query::Explain`] | `x_u` | `θ_v` only | the one item |
//!
//! [`Endpoint`] is the coarse label used for cache partitioning and the
//! `endpoint=` dimension on serving metrics.

use crate::engine::UserRef;

/// What a [`Request`](crate::engine::Request) asks the engine to score.
///
/// Marked `#[non_exhaustive]`: future query shapes (e.g. batch explain)
/// must not be breaking changes for downstream matches.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Query {
    /// Classic user → top-k over the full item catalog (known user row or
    /// cold-start fold-in). Semantics are identical to the v2 engine.
    User(UserRef),
    /// Item → top-k most similar items: score `θ_v·Θᵀ` and exclude the
    /// query item itself from the ranking.
    SimilarItems(u32),
    /// User → top-k most similar users: score `x_u·Xᵀ` over the model's
    /// user-factor matrix, excluding the query user.
    SimilarUsers(u32),
    /// Rank a caller-supplied candidate slate for a known user: score
    /// only the listed items (the scan is skipped entirely) and return
    /// them in the engine's total order.
    RankItems {
        /// The known user whose factor row scores the slate.
        user: u32,
        /// Candidate item ids to rank; duplicates rank independently.
        slate: Vec<u32>,
    },
    /// Explain one (user, item) score: return the per-factor contribution
    /// terms `x_u[j]·θ_v[j]` plus the popularity prior, which sum to the
    /// served dot product.
    Explain {
        /// The known user side of the score.
        user: u32,
        /// The item side of the score.
        item: u32,
    },
}

impl Query {
    /// The coarse endpoint label this query is served under.
    pub fn endpoint(&self) -> Endpoint {
        match self {
            Query::User(_) => Endpoint::TopK,
            Query::SimilarItems(_) => Endpoint::SimilarItems,
            Query::SimilarUsers(_) => Endpoint::SimilarUsers,
            Query::RankItems { .. } => Endpoint::RankItems,
            Query::Explain { .. } => Endpoint::Explain,
        }
    }
}

/// The serving endpoint family — one label per [`Query`] shape.
///
/// Used to partition the result cache (an item→item entry must never
/// alias a user→top-k entry for the same id) and as the `endpoint=`
/// label on `serve_endpoint_requests_total` and the per-endpoint latency
/// histograms (see `docs/OBSERVABILITY.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// User → top-k items ([`Query::User`]).
    TopK,
    /// Item → similar items ([`Query::SimilarItems`]).
    SimilarItems,
    /// User → similar users ([`Query::SimilarUsers`]).
    SimilarUsers,
    /// Rank a caller-supplied slate ([`Query::RankItems`]).
    RankItems,
    /// Per-factor score explanation ([`Query::Explain`]).
    Explain,
}

impl Endpoint {
    /// Every endpoint, in declaration order — the full `endpoint=` label
    /// set, registered up front so `/metrics` always exposes all five.
    pub const ALL: [Endpoint; 5] = [
        Endpoint::TopK,
        Endpoint::SimilarItems,
        Endpoint::SimilarUsers,
        Endpoint::RankItems,
        Endpoint::Explain,
    ];

    /// Stable snake_case token used as the `endpoint=` metric label and
    /// in bench output.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::TopK => "topk",
            Endpoint::SimilarItems => "similar_items",
            Endpoint::SimilarUsers => "similar_users",
            Endpoint::RankItems => "rank_items",
            Endpoint::Explain => "explain",
        }
    }
}

/// Per-factor breakdown of one (user, item) score, returned by
/// [`Query::Explain`] requests on
/// [`Recommendation::explanation`](crate::engine::Recommendation::explanation).
///
/// The invariant — test-enforced to 1e-6 — is that
/// `terms.iter().sum::<f32>() + prior` reproduces the score the serving
/// path would assign the same (user, item) pair.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub struct Explanation {
    /// One `x_u[j]·θ_v[j]` product per latent factor, in factor order.
    pub terms: Vec<f32>,
    /// The item's popularity prior (0 when the model has none).
    pub prior: f32,
}

impl Explanation {
    /// The explained score: sum of the factor terms plus the prior,
    /// accumulated in factor order.
    pub fn score(&self) -> f32 {
        self.terms.iter().sum::<f32>() + self.prior
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_names_are_stable_snake_case_tokens() {
        let names: Vec<&str> = Endpoint::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            [
                "topk",
                "similar_items",
                "similar_users",
                "rank_items",
                "explain"
            ]
        );
    }

    #[test]
    fn queries_map_to_their_endpoints() {
        for (q, want) in [
            (Query::User(UserRef::Known(3)), Endpoint::TopK),
            (Query::SimilarItems(7), Endpoint::SimilarItems),
            (Query::SimilarUsers(2), Endpoint::SimilarUsers),
            (
                Query::RankItems {
                    user: 1,
                    slate: vec![4, 5],
                },
                Endpoint::RankItems,
            ),
            (Query::Explain { user: 1, item: 4 }, Endpoint::Explain),
        ] {
            assert_eq!(q.endpoint(), want);
        }
    }

    #[test]
    fn explanation_score_sums_terms_and_prior() {
        let e = Explanation {
            terms: vec![0.5, -0.25, 1.0],
            prior: 0.125,
        };
        assert_eq!(e.score(), 1.375);
    }
}
