//! Sharded factor storage and scatter-gather scoring.
//!
//! The paper's training-side win comes from partitioning the factor
//! matrices across parallel workers and cache-blocking each partition's
//! walk; this module applies the same reasoning to serving. Item factors
//! are split into contiguous item-id ranges — each shard carrying its own
//! FP32 (and optional FP16) blocks and popularity priors — and a request
//! batch is *scattered*: every shard runs the existing blocked scoring
//! kernel ([`top_k_batch`](crate::scorer::top_k_batch)) over its slice, producing one bounded heap per
//! (shard, user). The *gather* step merges the per-shard heaps with the
//! deterministic tie-break of [`merge_top_k`] (score descending, item id
//! ascending), so the sharded ranking is bit-identical to the unsharded
//! scorer's — test-enforced for shard counts 1–8 including tied scores
//! straddling shard boundaries.
//!
//! Shards score on scoped OS threads when the host has more than one core
//! (the rayon shim is sequential, so parallelism across shards comes from
//! `std::thread`); on a single-core host they run inline in shard order.
//! Either way the merge order is fixed, so results never depend on the
//! schedule. Beyond parallel scoring, contiguous range shards are the
//! on-ramp to multi-node serving: each range could live in a different
//! process and the gather step would not change.

use crate::ann::AnnParams;
use crate::error::ServeError;
use crate::registry::ModelId;
use crate::scorer::{top_k_batch_stats, ScoreConfig};
use crate::store::ModelSnapshot;
use crate::topk::{merge_top_k, ScoredItem};
use cumf_numeric::dense::DenseMatrix;
use cumf_numeric::kernel;
use cumf_telemetry::{FootprintReport, MemoryFootprint, PhaseSpan, Recorder, NOOP};
use parking_lot::{Mutex, RwLock};
use std::sync::{Arc, Weak};
use std::time::Instant;

/// One contiguous slice of the item catalog: global ids
/// `[start, start + local.n_items())`, with factors and priors copied out
/// of the parent snapshot so each shard's scoring walk touches only its
/// own blocks.
#[derive(Clone, Debug)]
pub struct Shard {
    /// Global item id of the shard's first row.
    pub start: usize,
    /// The shard's factors/priors as a self-contained snapshot (same
    /// epoch as the parent; FP16 copy present iff the parent carried one).
    pub local: ModelSnapshot,
}

impl Shard {
    /// Number of items in this shard.
    pub fn n_items(&self) -> usize {
        self.local.n_items()
    }
}

/// A published model epoch split into contiguous item-range shards.
///
/// Keeps the unsharded [`ModelSnapshot`] alongside the shards: cold-start
/// fold-in solves against the full Θ, and the single-shard fast path
/// scores it directly.
///
/// ```
/// use cumf_numeric::dense::DenseMatrix;
/// use cumf_serve::shard::ShardedSnapshot;
/// use cumf_serve::store::ModelSnapshot;
///
/// let theta = DenseMatrix::from_vec(5, 2, (0..10).map(|i| i as f32).collect());
/// let sharded = ShardedSnapshot::build(ModelSnapshot::new(3, theta, vec![]), 2);
/// assert_eq!(sharded.epoch(), 3);
/// assert_eq!(sharded.n_shards(), 2);
/// // 5 items over 2 shards: ranges [0,3) and [3,5).
/// assert_eq!(sharded.shards()[0].n_items(), 3);
/// assert_eq!(sharded.shards()[1].start, 3);
/// ```
#[derive(Clone, Debug)]
pub struct ShardedSnapshot {
    full: ModelSnapshot,
    shards: Vec<Shard>,
}

impl ShardedSnapshot {
    /// Split `snapshot` into `n_shards` contiguous item ranges, sized as
    /// evenly as possible (earlier shards take the remainder). The shard
    /// count is clamped to `[1, n_items]` so no shard is ever empty; each
    /// shard re-narrows its own FP16 copy when the parent carries one,
    /// re-quantizes its own int8 copy, and — when the parent carries a
    /// centroid index — re-clusters its slice with the cluster count
    /// scaled down proportionally (`⌈k·len/n⌉`, floored at 1) so the
    /// probe/scan ratio stays roughly the parent's at any shard count.
    pub fn build(snapshot: ModelSnapshot, n_shards: usize) -> ShardedSnapshot {
        let n = snapshot.n_items();
        let f = snapshot.f();
        let s = n_shards.clamp(1, n.max(1));
        let theta = snapshot.item_factors().as_slice();
        let priors = snapshot.popularity();
        let (base, rem) = (n / s, n % s);
        let mut shards = Vec::with_capacity(s);
        let mut start = 0usize;
        for i in 0..s {
            let len = base + usize::from(i < rem);
            let rows = theta[start * f..(start + len) * f].to_vec();
            let pop = if priors.is_empty() {
                vec![]
            } else {
                priors[start..start + len].to_vec()
            };
            let mut local =
                ModelSnapshot::new(snapshot.epoch, DenseMatrix::from_vec(len, f, rows), pop);
            if snapshot.has_fp16() {
                local = local.with_fp16();
            }
            if let Some(idx) = snapshot.ann() {
                let parent = idx.params();
                let k = (parent.k_clusters * len).div_ceil(n.max(1)).max(1);
                local = local.with_ann(AnnParams {
                    k_clusters: k,
                    ..parent
                });
            }
            if snapshot.has_int8() {
                local = local.with_int8();
            }
            shards.push(Shard { start, local });
            start += len;
        }
        ShardedSnapshot {
            full: snapshot,
            shards,
        }
    }

    /// Model epoch of this snapshot.
    pub fn epoch(&self) -> u64 {
        self.full.epoch
    }

    /// Feature dimension `f`.
    pub fn f(&self) -> usize {
        self.full.f()
    }

    /// Total items across all shards.
    pub fn n_items(&self) -> usize {
        self.full.n_items()
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The unsharded snapshot (fold-in solves and the single-shard fast
    /// path read this).
    pub fn full(&self) -> &ModelSnapshot {
        &self.full
    }

    /// The shards, in item-range order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }
}

impl MemoryFootprint for ShardedSnapshot {
    /// Children: `full` (the unsharded master kept for fold-in and the
    /// single-shard fast path) and `shards` with one `shard{i}` subtree
    /// each. Sharding *copies* rows, so the honest total is roughly twice
    /// the factor payload — the tree shows exactly where.
    fn footprint(&self) -> FootprintReport {
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.local.footprint().renamed(format!("shard{i}")))
            .collect();
        FootprintReport::branch(
            "sharded_snapshot",
            vec![
                self.full.footprint().renamed("full"),
                FootprintReport::branch("shards", shards),
            ],
        )
    }
}

/// Wall-clock accounting for one shard's scoring pass, for per-shard
/// telemetry counters.
#[derive(Clone, Copy, Debug)]
pub struct ShardTiming {
    /// Shard index.
    pub shard: usize,
    /// Stage-2 score evaluations the shard performed: `items × users` on
    /// the exact path, the pruned candidate count on the approximate one.
    pub scored: u64,
    /// Factor bytes the pass streamed from the shard's snapshot. Exact
    /// scans use [`scan_bytes`](crate::scorer::scan_bytes)'s analytic
    /// count (FP16 blocks 2 bytes per element, FP32 blocks 4, once per
    /// user chunk); approximate scans report the measured centroid +
    /// member + rescore traffic from
    /// [`ScanStats`](crate::scorer::ScanStats).
    pub bytes: u64,
    /// Clusters the shard's pass probed, summed over users (0 on the
    /// exact path).
    pub probed_clusters: u64,
    /// Shortlist rows the shard rescored exactly in FP32 (nonzero only on
    /// the int8 approximate path).
    pub rescored: u64,
    /// Nominal floating-point operations of the shard's pass (`2·f` per
    /// scored row, probe and rescore included) from
    /// [`ScanStats`](crate::scorer::ScanStats) — the numerator of
    /// effective GFLOP/s.
    pub flops: u64,
    /// Host wall-clock seconds the shard's pass took.
    pub secs: f64,
}

/// The scatter half of sharded scoring: per-shard rankings (global item
/// ids, pre-merge) plus per-shard timings. Produced by [`scatter_top_k`],
/// consumed by [`ShardScatter::gather`] — the split lets the engine stamp
/// scatter and merge time separately for request-span stage breakdowns.
#[derive(Debug)]
pub struct ShardScatter {
    /// Shard-major rankings: `rankings[shard][user]`.
    rankings: Vec<Vec<Vec<ScoredItem>>>,
    /// Per-shard accounting, in shard order.
    pub timings: Vec<ShardTiming>,
    users: usize,
}

impl ShardScatter {
    /// The gather half: merge each user's per-shard heaps under the
    /// total order of [`merge_top_k`] (score descending, item id
    /// ascending). Consumes the scatter; returns rankings in user order
    /// plus the per-shard timings.
    pub fn gather(mut self, k: usize) -> (Vec<Vec<ScoredItem>>, Vec<ShardTiming>) {
        if self.rankings.len() == 1 {
            // Single shard: its local order is already the global order.
            let only = self.rankings.pop().expect("one shard");
            return (only, self.timings);
        }
        let mut scratch: Vec<Vec<ScoredItem>> = vec![Vec::new(); self.rankings.len()];
        let merged = (0..self.users)
            .map(|u| {
                for (slot, rankings) in scratch.iter_mut().zip(&mut self.rankings) {
                    *slot = std::mem::take(&mut rankings[u]);
                }
                merge_top_k(&scratch, k)
            })
            .collect();
        (merged, self.timings)
    }
}

/// Scatter: one blocked scoring pass per shard over its item range, on
/// scoped threads when the host has more than one core.
///
/// When `recorder` is enabled, each shard buffers a
/// `serve.shard{i}.score` [`PhaseSpan`] *locally on its own thread* —
/// stamped on the engine clock as `t_base` plus the shard's offset within
/// the scatter — and the buffered spans are flushed to the recorder in
/// shard-index order after all threads join. Recording therefore never
/// takes a lock inside the scoring loop and the event order is
/// deterministic regardless of thread schedule; scores are bit-identical
/// with the recorder on or off (test-enforced).
pub fn scatter_top_k(
    sharded: &ShardedSnapshot,
    user_factors: &DenseMatrix,
    k: usize,
    cfg: &ScoreConfig,
    recorder: &dyn Recorder,
    t_base: f64,
) -> ShardScatter {
    let users = user_factors.rows();
    let tracing = recorder.enabled();
    let anchor = Instant::now();
    // One shard's pass: rankings shifted to global ids, timing, and the
    // locally buffered span (None when tracing is off).
    let score_shard =
        |idx: usize, shard: &Shard| -> (Vec<Vec<ScoredItem>>, ShardTiming, Option<PhaseSpan>) {
            let s0 = anchor.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let (mut local, stats) = top_k_batch_stats(&shard.local, user_factors, k, cfg);
            for user_ranking in &mut local {
                for item in user_ranking.iter_mut() {
                    item.item += shard.start as u32;
                }
            }
            let secs = t0.elapsed().as_secs_f64();
            let timing = ShardTiming {
                shard: idx,
                scored: stats.candidates,
                bytes: stats.bytes,
                probed_clusters: stats.probed_clusters,
                rescored: stats.rescored,
                flops: stats.flops,
                secs,
            };
            let span = tracing.then(|| {
                PhaseSpan::new(
                    format!("serve.shard{idx}.score"),
                    t_base + s0,
                    t_base + s0 + secs,
                )
            });
            (local, timing, span)
        };
    let multicore = std::thread::available_parallelism()
        .map(|p| p.get() > 1)
        .unwrap_or(false);
    let per_shard: Vec<(Vec<Vec<ScoredItem>>, ShardTiming, Option<PhaseSpan>)> =
        if multicore && sharded.n_shards() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = sharded
                    .shards()
                    .iter()
                    .enumerate()
                    .map(|(idx, shard)| scope.spawn(move || score_shard(idx, shard)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard scoring panicked"))
                    .collect()
            })
        } else {
            sharded
                .shards()
                .iter()
                .enumerate()
                .map(|(idx, shard)| score_shard(idx, shard))
                .collect()
        };

    // Deterministic merge of the per-thread buffers: shard-index order,
    // whatever order the threads actually finished in.
    let mut rankings = Vec::with_capacity(per_shard.len());
    let mut timings = Vec::with_capacity(per_shard.len());
    for (local, timing, span) in per_shard {
        rankings.push(local);
        timings.push(timing);
        if let Some(span) = span {
            recorder.phase(span);
        }
    }
    ShardScatter {
        rankings,
        timings,
        users,
    }
}

/// Scatter-gather scoring: every shard runs the blocked kernel over its
/// item range, then per-user heaps are merged into global rankings.
/// Returns the rankings plus per-shard timings.
///
/// Bit-identical to [`top_k_batch`](crate::scorer::top_k_batch) over the unsharded snapshot: shard
/// slices preserve row layout so each item's dot product is the same
/// arithmetic, and [`merge_top_k`]'s total order (score descending, item
/// id ascending) picks exactly the set and order one global heap would.
pub fn top_k_batch_sharded_timed(
    sharded: &ShardedSnapshot,
    user_factors: &DenseMatrix,
    k: usize,
    cfg: &ScoreConfig,
) -> (Vec<Vec<ScoredItem>>, Vec<ShardTiming>) {
    scatter_top_k(sharded, user_factors, k, cfg, &NOOP, 0.0).gather(k)
}

/// Score only a caller-supplied candidate slate against one query vector
/// and return the best `k`, best first, plus per-shard timings for the
/// shards that owned at least one candidate.
///
/// This is the candidate-set serving path ([`crate::engine::Query::RankItems`]):
/// the catalog scan is skipped entirely — each slate member is looked up
/// in its owning contiguous-range shard and scored with the same
/// `kernel::dot_lanes + prior` arithmetic as every other surface, so the
/// result is bit-identical to the full sharded top-k ranking restricted
/// to the slate (test-enforced). Duplicate slate entries rank
/// independently. Slate ids must be `< n_items()` (the engine validates
/// and rejects out-of-range ids before calling).
pub fn rank_slate_sharded(
    sharded: &ShardedSnapshot,
    query: &[f32],
    slate: &[u32],
    k: usize,
) -> (Vec<ScoredItem>, Vec<ShardTiming>) {
    let f = sharded.f();
    assert_eq!(query.len(), f, "query dimension must match the model");
    // Group candidates by owning shard: ranges are contiguous, so the
    // owner is the last shard starting at or before the id.
    let shards = sharded.shards();
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); shards.len()];
    for &item in slate {
        assert!(
            (item as usize) < sharded.n_items(),
            "slate item out of range"
        );
        let idx = shards.partition_point(|s| s.start <= item as usize) - 1;
        groups[idx].push(item);
    }
    let mut all: Vec<ScoredItem> = Vec::with_capacity(slate.len());
    let mut timings = Vec::new();
    for (idx, (shard, group)) in shards.iter().zip(&groups).enumerate() {
        if group.is_empty() {
            continue;
        }
        let t0 = Instant::now();
        for &item in group {
            let local = item as usize - shard.start;
            let score =
                kernel::dot_lanes(query, shard.local.item_row(local)) + shard.local.prior(local);
            all.push(ScoredItem { item, score });
        }
        let scored = group.len() as u64;
        timings.push(ShardTiming {
            shard: idx,
            scored,
            bytes: scored * f as u64 * 4,
            probed_clusters: 0,
            rescored: 0,
            flops: 2 * f as u64 * scored,
            secs: t0.elapsed().as_secs_f64(),
        });
    }
    all.sort_unstable_by(|a, b| {
        if a.ranks_before(b) {
            std::cmp::Ordering::Less
        } else if b.ranks_before(a) {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Equal
        }
    });
    all.truncate(k);
    (all, timings)
}

/// [`top_k_batch_sharded_timed`] without the timings — the plain sharded
/// counterpart of [`top_k_batch`](crate::scorer::top_k_batch).
pub fn top_k_batch_sharded(
    sharded: &ShardedSnapshot,
    user_factors: &DenseMatrix,
    k: usize,
    cfg: &ScoreConfig,
) -> Vec<Vec<ScoredItem>> {
    top_k_batch_sharded_timed(sharded, user_factors, k, cfg).0
}

/// Snapshot-swapped holder of the current [`ShardedSnapshot`] — the
/// sharded successor of [`FactorStore`](crate::store::FactorStore), with
/// the same publish semantics: readers clone an `Arc` per batch and are
/// never blocked by a publish in progress.
///
/// ```
/// use cumf_numeric::dense::DenseMatrix;
/// use cumf_serve::shard::ShardedFactorStore;
/// use cumf_serve::store::ModelSnapshot;
///
/// let store = ShardedFactorStore::new(
///     ModelSnapshot::new(0, DenseMatrix::identity(8), vec![]),
///     4,
/// );
/// let held = store.snapshot();
/// store.publish(ModelSnapshot::new(1, DenseMatrix::identity(8), vec![])).unwrap();
/// assert_eq!(held.epoch(), 0); // in-flight batch unaffected
/// assert_eq!(store.epoch(), 1);
/// assert_eq!(store.snapshot().n_shards(), 4); // re-sharded on publish
/// ```
#[derive(Debug)]
pub struct ShardedFactorStore {
    current: RwLock<Arc<ShardedSnapshot>>,
    n_shards: usize,
    /// Weak handles to snapshots this store has *replaced*. A superseded
    /// epoch whose `Weak` still upgrades is memory held alive by some
    /// outside `Arc` (an in-flight batch — fine; a leaked clone — not),
    /// and is reported under `superseded` in the footprint tree. Dead
    /// handles are pruned on every footprint walk.
    superseded: Mutex<Vec<Weak<ShardedSnapshot>>>,
}

impl ShardedFactorStore {
    /// A store serving `snapshot` split into `n_shards` ranges (clamped
    /// to the item count; every later publish re-shards at the same
    /// count).
    pub fn new(snapshot: ModelSnapshot, n_shards: usize) -> ShardedFactorStore {
        let sharded = ShardedSnapshot::build(snapshot, n_shards);
        let n_shards = sharded.n_shards();
        ShardedFactorStore {
            current: RwLock::new(Arc::new(sharded)),
            n_shards,
            superseded: Mutex::new(Vec::new()),
        }
    }

    /// The current sharded snapshot. Cheap (`Arc` clone under a read
    /// lock); hold it for a whole batch so the batch scores one epoch.
    pub fn snapshot(&self) -> Arc<ShardedSnapshot> {
        self.current.read().clone()
    }

    /// Shard, then atomically replace the served snapshot; returns the
    /// new epoch. The sharding pass runs before the write lock is taken,
    /// so readers only ever wait for the pointer swap.
    ///
    /// As with [`crate::store::FactorStore::publish`], the snapshot's
    /// feature dimension must match the one currently served
    /// ([`ServeError::DimensionMismatch`] otherwise).
    pub fn publish(&self, snapshot: ModelSnapshot) -> Result<u64, ServeError> {
        let expected = self.current.read().f();
        if snapshot.f() != expected {
            return Err(ServeError::DimensionMismatch {
                model: ModelId::from(crate::store::UNREGISTERED),
                expected,
                got: snapshot.f(),
            });
        }
        let sharded = Arc::new(ShardedSnapshot::build(snapshot, self.n_shards));
        let epoch = sharded.epoch();
        let mut current = self.current.write();
        if sharded.f() != current.f() {
            // A concurrent publish changed f under us (only possible if it
            // itself raced a mismatched publish); re-check under the lock.
            return Err(ServeError::DimensionMismatch {
                model: ModelId::from(crate::store::UNREGISTERED),
                expected: current.f(),
                got: sharded.f(),
            });
        }
        // Remember the replaced epoch weakly: if readers keep it alive it
        // shows up under `superseded` in the footprint (the snapshot-leak
        // signal); once the last Arc drops, the handle prunes itself.
        self.superseded.lock().push(Arc::downgrade(&current));
        *current = sharded;
        Ok(epoch)
    }

    /// Superseded snapshots still alive behind outside `Arc`s, oldest
    /// first. Prunes dead handles as a side effect.
    pub fn live_superseded(&self) -> Vec<Arc<ShardedSnapshot>> {
        let mut weaks = self.superseded.lock();
        weaks.retain(|w| w.strong_count() > 0);
        weaks.iter().filter_map(Weak::upgrade).collect()
    }

    /// Shard count every snapshot is split into.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Epoch of the currently served snapshot.
    pub fn epoch(&self) -> u64 {
        self.current.read().epoch()
    }
}

impl MemoryFootprint for ShardedFactorStore {
    /// Children: `current` (the served [`ShardedSnapshot`]) and
    /// `superseded` — one `epoch{N}` subtree per replaced snapshot still
    /// reachable through an outside `Arc`. A `superseded` total that stays
    /// nonzero long after a publish is the snapshot-leak signal.
    fn footprint(&self) -> FootprintReport {
        let current = self.snapshot().footprint().renamed("current");
        let old = self
            .live_superseded()
            .into_iter()
            .map(|s| {
                let epoch = s.epoch();
                s.footprint().renamed(format!("epoch{epoch}"))
            })
            .collect();
        FootprintReport::branch(
            "store",
            vec![current, FootprintReport::branch("superseded", old)],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scorer::top_k_batch;

    fn snap(n: usize, f: usize, priors: bool) -> ModelSnapshot {
        let mut theta = DenseMatrix::zeros(n, f);
        for i in 0..n {
            for j in 0..f {
                theta.set(i, j, ((i * 31 + j * 7) % 13) as f32 * 0.21 - 1.0);
            }
        }
        let pop = if priors {
            (0..n).map(|i| (i % 5) as f32 * 0.1).collect()
        } else {
            vec![]
        };
        ModelSnapshot::new(0, theta, pop)
    }

    fn users(u: usize, f: usize) -> DenseMatrix {
        let mut x = DenseMatrix::zeros(u, f);
        for i in 0..u {
            for j in 0..f {
                x.set(i, j, ((i * 17 + j * 3) % 11) as f32 * 0.19 - 0.9);
            }
        }
        x
    }

    #[test]
    fn shard_ranges_partition_the_catalog() {
        for (n, s) in [(10, 3), (8, 8), (7, 2), (5, 1), (3, 9)] {
            let sharded = ShardedSnapshot::build(snap(n, 2, true), s);
            assert_eq!(sharded.n_shards(), s.min(n));
            let mut next = 0usize;
            for shard in sharded.shards() {
                assert_eq!(shard.start, next);
                assert!(shard.n_items() > 0, "no shard may be empty");
                next += shard.n_items();
            }
            assert_eq!(next, n);
        }
    }

    #[test]
    fn shard_slices_carry_identical_rows_and_priors() {
        let full = snap(11, 3, true);
        let sharded = ShardedSnapshot::build(full.clone(), 4);
        for shard in sharded.shards() {
            for local in 0..shard.n_items() {
                let global = shard.start + local;
                assert_eq!(
                    shard.local.item_factors().row(local),
                    full.item_factors().row(global)
                );
                assert_eq!(shard.local.prior(local), full.prior(global));
            }
        }
    }

    #[test]
    fn fp16_carries_through_sharding() {
        let sharded = ShardedSnapshot::build(snap(9, 4, false).with_fp16(), 3);
        assert!(sharded.full().has_fp16());
        assert!(sharded.shards().iter().all(|s| s.local.has_fp16()));
        let plain = ShardedSnapshot::build(snap(9, 4, false), 3);
        assert!(plain.shards().iter().all(|s| !s.local.has_fp16()));
    }

    #[test]
    fn sharded_scoring_is_bit_identical_to_unsharded() {
        let full = snap(37, 5, true);
        let x = users(6, 5);
        let cfg = ScoreConfig::default();
        let want = top_k_batch(&full, &x, 9, &cfg);
        for s in [1, 2, 3, 7, 8] {
            let sharded = ShardedSnapshot::build(full.clone(), s);
            let (got, timings) = top_k_batch_sharded_timed(&sharded, &x, 9, &cfg);
            assert_eq!(got, want, "{s} shards");
            assert_eq!(timings.len(), sharded.n_shards());
            let scored: u64 = timings.iter().map(|t| t.scored).sum();
            assert_eq!(scored, 37 * 6, "{s} shards must cover every score");
        }
    }

    #[test]
    fn tied_scores_straddling_a_boundary_merge_deterministically() {
        // All items identical ⇒ every score ties; the ranking must be
        // items 0..k in id order no matter where shard cuts fall.
        let theta = DenseMatrix::from_vec(12, 2, vec![0.5; 24]);
        let full = ModelSnapshot::new(0, theta, vec![]);
        let x = users(3, 2);
        let want = top_k_batch(&full, &x, 5, &ScoreConfig::default());
        for s in [2, 3, 5, 7, 8, 12] {
            let sharded = ShardedSnapshot::build(full.clone(), s);
            let got = top_k_batch_sharded(&sharded, &x, 5, &ScoreConfig::default());
            assert_eq!(got, want, "{s} shards");
            for ranking in &got {
                let ids: Vec<u32> = ranking.iter().map(|r| r.item).collect();
                assert_eq!(ids, vec![0, 1, 2, 3, 4]);
            }
        }
    }

    #[test]
    fn recorder_enabled_scatter_is_bit_identical_and_ordered() {
        let full = snap(41, 4, true);
        let x = users(5, 4);
        let cfg = ScoreConfig::default();
        for s in [1, 3, 8] {
            let sharded = ShardedSnapshot::build(full.clone(), s);
            // Recorder off (the production fast path)…
            let (want, _) =
                scatter_top_k(&sharded, &x, 7, &cfg, &cumf_telemetry::NOOP, 0.0).gather(7);
            // …vs recorder on: scores must be bit-identical (the PR 1
            // guarantee: telemetry never branches the math).
            let rec = cumf_telemetry::MemoryRecorder::new();
            let (got, timings) = scatter_top_k(&sharded, &x, 7, &cfg, &rec, 100.0).gather(7);
            assert_eq!(got, want, "{s} shards");
            // Per-thread span buffers merge deterministically: one span
            // per shard, in shard-index order, on the engine time base.
            let spans = rec.phase_spans();
            assert_eq!(spans.len(), sharded.n_shards());
            for (i, span) in spans.iter().enumerate() {
                assert_eq!(span.name.as_ref(), format!("serve.shard{i}.score"));
                assert!(span.start >= 100.0 && span.end >= span.start);
            }
            // And the spans agree with the reported timings.
            for (span, t) in spans.iter().zip(&timings) {
                assert!((span.duration() - t.secs).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rank_slate_matches_the_full_ranking_restricted_to_the_slate() {
        let full = snap(37, 5, true);
        let x = users(1, 5);
        let q = x.row(0);
        let cfg = ScoreConfig::default();
        // Reference: the complete ranking (k = catalog) filtered down to
        // the slate members, truncated to k.
        let slate = vec![4u32, 9, 0, 36, 17, 22];
        let complete = top_k_batch(&full, &x, 37, &cfg).pop().unwrap();
        let want: Vec<ScoredItem> = complete
            .iter()
            .filter(|s| slate.contains(&s.item))
            .take(4)
            .copied()
            .collect();
        for s in [1, 3, 8] {
            let sharded = ShardedSnapshot::build(full.clone(), s);
            let (got, timings) = rank_slate_sharded(&sharded, q, &slate, 4);
            assert_eq!(got, want, "{s} shards");
            let scored: u64 = timings.iter().map(|t| t.scored).sum();
            assert_eq!(scored, slate.len() as u64, "{s} shards");
            let bytes: u64 = timings.iter().map(|t| t.bytes).sum();
            assert_eq!(bytes, slate.len() as u64 * 5 * 4, "only slate rows read");
            assert!(timings.iter().all(|t| t.scored > 0), "empty shards skipped");
        }
    }

    #[test]
    fn rank_slate_scores_duplicates_independently() {
        let full = snap(12, 3, false);
        let x = users(1, 3);
        let sharded = ShardedSnapshot::build(full, 3);
        let (got, _) = rank_slate_sharded(&sharded, x.row(0), &[5, 5, 2], 3);
        assert_eq!(got.len(), 3);
        assert!(got[0].score >= got[1].score && got[1].score >= got[2].score);
        let fives = got.iter().filter(|s| s.item == 5).count();
        assert_eq!(fives, 2, "each occurrence ranks on its own");
    }

    #[test]
    fn store_republish_reshards_at_the_same_count() {
        let store = ShardedFactorStore::new(snap(10, 2, false), 3);
        assert_eq!(store.n_shards(), 3);
        let epoch = store.publish(snap_at(9, 6, 2)).unwrap();
        assert_eq!(epoch, 9);
        let held = store.snapshot();
        assert_eq!(held.n_shards(), 3);
        assert_eq!(held.n_items(), 6);
    }

    #[test]
    fn store_publish_rejects_a_dimension_mismatch() {
        let store = ShardedFactorStore::new(snap(10, 2, false), 3);
        let err = store.publish(snap_at(9, 6, 4)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::DimensionMismatch {
                expected: 2,
                got: 4,
                ..
            }
        ));
        assert_eq!(store.epoch(), 0, "rejected publish must not swap");
    }

    fn snap_at(epoch: u64, n: usize, f: usize) -> ModelSnapshot {
        let mut s = snap(n, f, false);
        s.epoch = epoch;
        s
    }

    #[test]
    fn shard_timings_account_scan_bytes() {
        let full = snap(37, 5, false);
        let x = users(6, 5);
        let cfg = ScoreConfig::default();
        for s in [1, 3, 8] {
            let sharded = ShardedSnapshot::build(full.clone(), s);
            let (_, timings) = top_k_batch_sharded_timed(&sharded, &x, 9, &cfg);
            let total: u64 = timings.iter().map(|t| t.bytes).sum();
            // 6 users fit one chunk; every shard streams its slice once,
            // so shards partition the unsharded scan exactly.
            assert_eq!(total, 37 * 5 * 4, "{s} shards");
            for (t, shard) in timings.iter().zip(sharded.shards()) {
                assert_eq!(t.bytes, (shard.n_items() * 5 * 4) as u64);
            }
        }
    }

    #[test]
    fn ann_and_int8_carry_through_sharding_with_scaled_clusters() {
        let params = AnnParams {
            k_clusters: 8,
            ..AnnParams::default()
        };
        let parent = snap(40, 3, false).with_ann(params).with_int8();
        let sharded = ShardedSnapshot::build(parent, 4);
        assert!(sharded.full().has_ann() && sharded.full().has_int8());
        for shard in sharded.shards() {
            assert!(shard.local.has_int8());
            let idx = shard.local.ann().expect("shard index");
            // 8 clusters over 40 items, 10-item shards ⇒ 2 clusters each.
            assert_eq!(idx.k_clusters(), 2);
        }
        let plain = ShardedSnapshot::build(snap(40, 3, false), 4);
        assert!(plain.shards().iter().all(|s| !s.local.has_ann()));
    }

    #[test]
    fn approx_shard_timings_report_measured_traffic() {
        let params = AnnParams {
            k_clusters: 8,
            ..AnnParams::default()
        };
        let full = snap(400, 4, true).with_ann(params).with_int8();
        let x = users(5, 4);
        let cfg = ScoreConfig {
            retrieval: crate::scorer::Retrieval::Approx {
                n_probe: 2,
                quant: crate::scorer::QuantMode::Int8,
            },
            ..ScoreConfig::default()
        };
        for s in [1, 3] {
            let sharded = ShardedSnapshot::build(full.clone(), s);
            let (_, timings) = top_k_batch_sharded_timed(&sharded, &x, 3, &cfg);
            let probed: u64 = timings.iter().map(|t| t.probed_clusters).sum();
            let scored: u64 = timings.iter().map(|t| t.scored).sum();
            let rescored: u64 = timings.iter().map(|t| t.rescored).sum();
            assert!(probed > 0, "{s} shards");
            assert!(scored < 400 * 5, "{s} shards must prune the scan");
            assert!(rescored > 0 && rescored <= scored, "{s} shards");
        }
        // Single shard at the reference shape: the measured approximate
        // traffic must undercut the exact FP32 scan.
        let single = ShardedSnapshot::build(full.clone(), 1);
        let (_, timings) = top_k_batch_sharded_timed(&single, &x, 3, &cfg);
        let exact_bytes = crate::scorer::scan_bytes(&full, 5, &ScoreConfig::default());
        assert!(
            timings[0].bytes < exact_bytes,
            "{} vs {exact_bytes}",
            timings[0].bytes
        );
    }

    #[test]
    fn sharded_snapshot_footprint_sums_full_plus_shards() {
        let sharded = ShardedSnapshot::build(snap(10, 2, true).with_fp16(), 3);
        let r = sharded.footprint();
        assert!(r.verify());
        // full: 10×2 f32 + f16 + 10 prior f32s = 80 + 40 + 40; shards copy
        // the same payload across 3 ranges.
        let full = 10 * 2 * 4 + 10 * 2 * 2 + 10 * 4;
        assert_eq!(r.total_bytes(), 2 * full);
        assert_eq!(r.children()[0].name(), "full");
        assert_eq!(r.children()[1].children().len(), 3);
    }

    #[test]
    fn superseded_epochs_show_until_their_last_arc_drops() {
        let store = ShardedFactorStore::new(snap(8, 2, false), 2);
        let resident = store.footprint().total_bytes();
        let held = store.snapshot(); // an in-flight batch
        store.publish(snap_at(1, 8, 2)).unwrap();
        let r = store.footprint();
        assert!(r.verify());
        let superseded = r
            .children()
            .iter()
            .find(|c| c.name() == "superseded")
            .expect("superseded branch");
        assert_eq!(superseded.children().len(), 1);
        assert_eq!(superseded.children()[0].name(), "epoch0");
        assert_eq!(r.total_bytes(), 2 * resident, "old epoch still resident");
        drop(held);
        let r = store.footprint();
        assert_eq!(r.total_bytes(), resident, "pruned once the Arc dropped");
        assert!(store.live_superseded().is_empty());
    }
}
