//! Approximate nearest-neighbour retrieval structures: a k-means centroid
//! index for candidate generation and an int8 per-block quantized copy of
//! the item factors for cheap shortlist scanning.
//!
//! The paper's central trade is accuracy for memory bandwidth (FP16 factor
//! storage, CG truncation); this module applies the same dial to serving.
//! The exact scorer streams every item row per request — `O(n·f)` bytes —
//! and `AdmissionReport::effective_gbps` shows that scan is
//! bandwidth-bound. Two-stage retrieval cuts the bytes twice:
//!
//! 1. **Candidate generation.** At publish time the item factors are
//!    clustered with deterministic seeded k-means ([`CentroidIndex`]). A
//!    request scores `k_clusters` centroids (tiny), keeps the top
//!    `n_probe` clusters by inner product, and scans only their members.
//! 2. **Quantized shortlist scan.** The probed members are scored against
//!    an int8 copy of the factors with one scale per
//!    [`QUANT_BLOCK_ROWS`]-row block ([`QuantizedFactors`]) — a quarter of
//!    the FP32 bytes — and only the surviving shortlist is rescored
//!    exactly in FP32 before the final merge.
//!
//! Both structures are immutable once built and ride inside
//! [`crate::store::ModelSnapshot`], so the store's publish/swap semantics
//! and the sharded scatter-gather path carry them for free. Everything is
//! deterministic: k-means uses a fixed seed and iteration cap, ties break
//! toward lower indices, and member lists are in ascending item order —
//! so the approximate path is as reproducible as the exact one.

use crate::topk::TopK;
use cumf_numeric::dense::DenseMatrix;
use cumf_numeric::kernel;

/// Item rows sharing one int8 quantization scale in
/// [`QuantizedFactors`]. 32 rows keeps the scale local enough that one
/// outlier row cannot crush its whole block's resolution, while the
/// per-block overhead (4 bytes per `32·f` weights) stays negligible.
pub const QUANT_BLOCK_ROWS: usize = 32;

/// SplitMix64 — the same full-avalanche finalizer the canary router uses;
/// duplicated here so index construction has no dependency on routing.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build parameters for a [`CentroidIndex`]: how many clusters, the
/// deterministic seed, and the Lloyd-iteration cap.
///
/// The defaults suit catalogs of a few hundred to a few thousand items
/// (the bench datasets); for larger catalogs scale `k_clusters` roughly
/// with `√n` so both stages stay balanced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnnParams {
    /// Number of k-means clusters (clamped to `[1, n_items]` at build).
    pub k_clusters: usize,
    /// Seed for the deterministic initialization: the same factors and
    /// params always produce the same index, on any host.
    pub seed: u64,
    /// Maximum Lloyd iterations (the loop also stops early when the
    /// assignment reaches a fixed point).
    pub max_iters: usize,
}

impl Default for AnnParams {
    fn default() -> AnnParams {
        AnnParams {
            k_clusters: 64,
            seed: 0x5EED_C1C5,
            max_iters: 10,
        }
    }
}

/// How a registry prepares snapshots for approximate retrieval at publish
/// time: the index build parameters plus whether to also attach the int8
/// factor copy. Derived from the engine's configured
/// [`crate::scorer::Retrieval`] mode, so every publish — bootstrap,
/// `register`, `publish` — carries the structures the scorer will ask for.
#[derive(Clone, Copy, Debug)]
pub struct AnnPolicy {
    /// Centroid-index build parameters.
    pub params: AnnParams,
    /// Attach an int8 quantized factor copy alongside the index.
    pub int8: bool,
}

/// A k-means clustering of the item factors, stored inside the snapshot
/// it was built from: `k` centroid rows plus the item ids of each cluster
/// in one flat, offset-indexed member array.
///
/// ```
/// use cumf_numeric::dense::DenseMatrix;
/// use cumf_serve::ann::{AnnParams, CentroidIndex};
///
/// let theta = DenseMatrix::from_vec(4, 1, vec![-1.0, -0.9, 0.9, 1.0]);
/// let idx = CentroidIndex::build(&theta, AnnParams { k_clusters: 2, ..AnnParams::default() });
/// assert_eq!(idx.k_clusters(), 2);
/// // Every item belongs to exactly one cluster.
/// let mut all: Vec<u32> = (0..2).flat_map(|c| idx.members(c).to_vec()).collect();
/// all.sort_unstable();
/// assert_eq!(all, vec![0, 1, 2, 3]);
/// ```
#[derive(Clone, Debug)]
pub struct CentroidIndex {
    params: AnnParams,
    f: usize,
    n_items: usize,
    /// `k × f` centroid rows, row-major.
    centroids: Vec<f32>,
    /// Item ids grouped by cluster, ascending within each cluster.
    members: Vec<u32>,
    /// `k + 1` prefix offsets into `members`.
    offsets: Vec<usize>,
}

impl CentroidIndex {
    /// Cluster `items` (one `f`-long row per item) into
    /// `params.k_clusters` groups with deterministic seeded k-means.
    ///
    /// Initialization picks `k` distinct item rows via a SplitMix64-driven
    /// Fisher–Yates shuffle of the item ids; Lloyd iterations assign each
    /// item to its squared-Euclidean-nearest centroid (ties toward the
    /// lower cluster id) and recompute means, stopping at
    /// `params.max_iters` or a fixed point. A cluster that empties keeps
    /// its previous centroid, so `k` never silently shrinks below the
    /// clamped value.
    pub fn build(items: &DenseMatrix, params: AnnParams) -> CentroidIndex {
        let n = items.rows();
        let f = items.cols();
        let k = params.k_clusters.clamp(1, n.max(1));
        let theta = items.as_slice();

        // Deterministic init: shuffle item ids, take the first k as seeds.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (splitmix64(params.seed ^ i as u64) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut centroids = vec![0.0f32; k * f];
        for (c, &item) in order.iter().take(k).enumerate() {
            centroids[c * f..(c + 1) * f].copy_from_slice(&theta[item * f..(item + 1) * f]);
        }

        let mut assignment = vec![0usize; n];
        for _ in 0..params.max_iters.max(1) {
            // Assign: nearest centroid by squared L2, ties to the lower id.
            let mut changed = false;
            for (v, slot) in assignment.iter_mut().enumerate() {
                let row = &theta[v * f..(v + 1) * f];
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for c in 0..k {
                    let cen = &centroids[c * f..(c + 1) * f];
                    let mut d = 0.0f32;
                    for j in 0..f {
                        let e = row[j] - cen[j];
                        d += e * e;
                    }
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if *slot != best {
                    *slot = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            // Update: mean of each cluster's members; empty clusters keep
            // their previous centroid.
            let mut sums = vec![0.0f64; k * f];
            let mut counts = vec![0usize; k];
            for (v, &c) in assignment.iter().enumerate() {
                counts[c] += 1;
                for j in 0..f {
                    sums[c * f + j] += theta[v * f + j] as f64;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for j in 0..f {
                        centroids[c * f + j] = (sums[c * f + j] / counts[c] as f64) as f32;
                    }
                }
            }
        }

        // Group members by cluster, ascending item id within each (items
        // are walked in id order, so the grouping is already sorted).
        let mut offsets = vec![0usize; k + 1];
        for &c in &assignment {
            offsets[c + 1] += 1;
        }
        for c in 0..k {
            offsets[c + 1] += offsets[c];
        }
        let mut cursor = offsets.clone();
        let mut members = vec![0u32; n];
        for (v, &c) in assignment.iter().enumerate() {
            members[cursor[c]] = v as u32;
            cursor[c] += 1;
        }

        CentroidIndex {
            params: AnnParams {
                k_clusters: k,
                ..params
            },
            f,
            n_items: n,
            centroids,
            members,
            offsets,
        }
    }

    /// The build parameters, with `k_clusters` as actually clamped — the
    /// sharded store re-derives per-shard parameters from these.
    pub fn params(&self) -> AnnParams {
        self.params
    }

    /// Number of clusters.
    pub fn k_clusters(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Feature dimension of the factors the index was built over.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Number of items the index covers.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Centroid row `c`.
    pub fn centroid(&self, c: usize) -> &[f32] {
        &self.centroids[c * self.f..(c + 1) * self.f]
    }

    /// Item ids of cluster `c`, ascending.
    pub fn members(&self, c: usize) -> &[u32] {
        &self.members[self.offsets[c]..self.offsets[c + 1]]
    }

    /// The `n_probe` clusters with the highest inner product against
    /// `user`, best first (ties toward the lower cluster id — the same
    /// total order as every other ranking in the crate). Centroid scores
    /// use the same [`kernel::dot_lanes`] lane order as every other
    /// scoring surface.
    pub fn probe(&self, user: &[f32], n_probe: usize) -> Vec<u32> {
        debug_assert_eq!(user.len(), self.f);
        let mut top = TopK::new(n_probe.clamp(1, self.k_clusters()));
        for c in 0..self.k_clusters() {
            top.push(c as u32, kernel::dot_lanes(user, self.centroid(c)));
        }
        top.into_sorted().into_iter().map(|s| s.item).collect()
    }

    /// Payload bytes of the index: centroids, member ids, and offsets.
    pub fn bytes(&self) -> u64 {
        (self.centroids.len() * std::mem::size_of::<f32>()
            + self.members.len() * std::mem::size_of::<u32>()
            + self.offsets.len() * std::mem::size_of::<usize>()) as u64
    }
}

/// An int8 copy of the item factors with one FP32 scale per
/// [`QUANT_BLOCK_ROWS`]-row block: `q = round(v / scale)` clamped to
/// `[-127, 127]`, with `scale = max|v| / 127` over the block.
///
/// Reading these rows costs a quarter of the FP32 scan bytes; the
/// per-element round-trip error is bounded by `scale / 2`
/// (test-enforced), which is why the shortlist scan may rank with them
/// but the final shortlist is always rescored exactly.
#[derive(Clone, Debug)]
pub struct QuantizedFactors {
    f: usize,
    n_items: usize,
    /// `n × f` quantized weights, row-major.
    data: Vec<i8>,
    /// One scale per row block (`⌈n / QUANT_BLOCK_ROWS⌉` entries).
    scales: Vec<f32>,
}

impl QuantizedFactors {
    /// Quantize `items` (one `f`-long row per item) blockwise. An
    /// all-zero block gets scale 0 and round-trips exactly.
    pub fn build(items: &DenseMatrix) -> QuantizedFactors {
        let n = items.rows();
        let f = items.cols();
        let theta = items.as_slice();
        let n_blocks = n.div_ceil(QUANT_BLOCK_ROWS).max(1);
        let mut data = vec![0i8; n * f];
        let mut scales = vec![0.0f32; n_blocks];
        for (b, slot) in scales.iter_mut().enumerate() {
            let lo = b * QUANT_BLOCK_ROWS;
            let hi = (lo + QUANT_BLOCK_ROWS).min(n);
            let block = &theta[lo * f..hi * f];
            let max_abs = block.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            if max_abs == 0.0 {
                continue; // scale stays 0, weights stay 0: exact.
            }
            let scale = max_abs / 127.0;
            *slot = scale;
            for (q, &v) in data[lo * f..hi * f].iter_mut().zip(block) {
                *q = (v / scale).round().clamp(-127.0, 127.0) as i8;
            }
        }
        QuantizedFactors {
            f,
            n_items: n,
            data,
            scales,
        }
    }

    /// Feature dimension.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Number of quantized item rows.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The scale of `item`'s block.
    #[inline]
    pub fn scale(&self, item: usize) -> f32 {
        self.scales[item / QUANT_BLOCK_ROWS]
    }

    /// The quantized row of `item`.
    #[inline]
    pub fn row(&self, item: usize) -> &[i8] {
        &self.data[item * self.f..(item + 1) * self.f]
    }

    /// Approximate inner product `user · θ̃_item`: the int8 weights are
    /// dequantized inside the accumulation loop by
    /// [`kernel::dot_i8_scaled`] — one byte read per weight, FP32 lanes,
    /// the block scale applied once to the reduced sum.
    #[inline]
    pub fn dot(&self, item: usize, user: &[f32]) -> f32 {
        debug_assert_eq!(user.len(), self.f);
        kernel::dot_i8_scaled(user, self.row(item), self.scale(item))
    }

    /// Payload bytes: the int8 weights plus the per-block scales.
    pub fn bytes(&self) -> u64 {
        (self.data.len() + self.scales.len() * std::mem::size_of::<f32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn theta(n: usize, f: usize, seed: u64) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(n, f);
        let mut state = seed;
        m.fill_with(|| {
            state = splitmix64(state);
            (state % 2000) as f32 / 1000.0 - 1.0
        });
        m
    }

    #[test]
    fn kmeans_is_deterministic_for_a_fixed_seed() {
        let t = theta(60, 4, 7);
        let p = AnnParams {
            k_clusters: 8,
            ..AnnParams::default()
        };
        let a = CentroidIndex::build(&t, p);
        let b = CentroidIndex::build(&t, p);
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.members, b.members);
        assert_eq!(a.offsets, b.offsets);
        // A different seed permutes the initialization.
        let c = CentroidIndex::build(&t, AnnParams { seed: 999, ..p });
        assert!(a.centroids != c.centroids || a.members != c.members);
    }

    #[test]
    fn members_partition_the_catalog() {
        for (n, k) in [(50, 7), (10, 10), (3, 64), (1, 1)] {
            let idx = CentroidIndex::build(
                &theta(n, 3, 11),
                AnnParams {
                    k_clusters: k,
                    ..AnnParams::default()
                },
            );
            assert_eq!(idx.k_clusters(), k.min(n), "k clamps to n");
            assert_eq!(idx.params().k_clusters, k.min(n));
            let mut all = Vec::new();
            for c in 0..idx.k_clusters() {
                let m = idx.members(c);
                assert!(m.windows(2).all(|w| w[0] < w[1]), "ascending in-cluster");
                all.extend_from_slice(m);
            }
            all.sort_unstable();
            assert_eq!(all, (0..n as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn probe_ranks_centroids_by_inner_product() {
        // Two well-separated 1-D clusters: a positive user probes the
        // positive cluster first.
        let t = DenseMatrix::from_vec(6, 1, vec![-1.0, -0.9, -1.1, 0.9, 1.0, 1.1]);
        let idx = CentroidIndex::build(
            &t,
            AnnParams {
                k_clusters: 2,
                ..AnnParams::default()
            },
        );
        let probed = idx.probe(&[1.0], 1);
        assert_eq!(probed.len(), 1);
        let members = idx.members(probed[0] as usize);
        assert_eq!(members, &[3, 4, 5], "positive cluster probed first");
        // Probing every cluster returns them all.
        assert_eq!(idx.probe(&[1.0], 2).len(), 2);
        assert_eq!(idx.probe(&[1.0], 100).len(), 2, "n_probe clamps to k");
    }

    #[test]
    fn int8_round_trip_error_is_within_half_a_scale_per_block() {
        let t = theta(70, 5, 13); // 3 blocks, last one partial
        let q = QuantizedFactors::build(&t);
        assert_eq!(q.n_items(), 70);
        assert_eq!(q.f(), 5);
        for v in 0..70 {
            let scale = q.scale(v);
            assert!(scale > 0.0);
            for (j, &w) in q.row(v).iter().enumerate() {
                let exact = t.row(v)[j];
                let back = w as f32 * scale;
                assert!(
                    (back - exact).abs() <= scale / 2.0 + 1e-6,
                    "item {v} dim {j}: {back} vs {exact} (scale {scale})"
                );
            }
        }
    }

    #[test]
    fn int8_zero_block_round_trips_exactly() {
        let t = DenseMatrix::zeros(40, 3);
        let q = QuantizedFactors::build(&t);
        assert_eq!(q.scale(0), 0.0);
        assert!(q.row(7).iter().all(|&w| w == 0));
        assert_eq!(q.dot(7, &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn quantized_dot_matches_manual_dequantization() {
        let t = theta(34, 4, 17);
        let q = QuantizedFactors::build(&t);
        let user = [0.3f32, -0.7, 0.11, 0.9];
        for v in [0usize, 31, 32, 33] {
            // Reference: widen the weights exactly, dot in the kernel's
            // lane order, apply the block scale once — the documented
            // semantics of the fused kernel.
            let widened: Vec<f32> = q.row(v).iter().map(|&w| w as f32).collect();
            let manual = kernel::dot_lanes(&user, &widened) * q.scale(v);
            assert_eq!(q.dot(v, &user), manual);
            // And it approximates the exact product.
            let exact = kernel::dot_lanes(&user, t.row(v));
            assert!((q.dot(v, &user) - exact).abs() < 0.05, "item {v}");
        }
    }

    #[test]
    fn payload_bytes_are_exact() {
        let t = theta(64, 8, 19);
        let q = QuantizedFactors::build(&t);
        assert_eq!(q.bytes(), 64 * 8 + 2 * 4); // weights + 2 block scales
        let idx = CentroidIndex::build(
            &t,
            AnnParams {
                k_clusters: 4,
                ..AnnParams::default()
            },
        );
        // 4×8 f32 centroids + 64 u32 members + 5 usize offsets.
        assert_eq!(
            idx.bytes(),
            (4 * 8 * 4 + 64 * 4 + 5 * std::mem::size_of::<usize>()) as u64
        );
    }
}
